// Fleet-scale hardware selection driver: a generated device catalog
// (--catalog=gen:N) driven by 100+ endpoints of random-walk demand, with a
// fig. 5-style cost-vs-SLO frontier swept over the selection headroom.
//
// Also the fleet-scale face of the --no-prune equivalence check: before the
// frontier runs, the pruned and exhaustive-linear modes are executed over
// the same schedule and their choice digests compared — any divergence is a
// hard failure (exit 1), mirroring the byte-identity CI on fig04 exports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/exp/fleet.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"

namespace {

using namespace paldia;

struct Options {
  std::string catalog_spec = "gen:64";
  int fleet_nodes = 120;
  int ticks = 40;
  std::uint64_t seed = 2026;
  bool prune = true;
};

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--catalog=", 0) == 0) {
      options.catalog_spec = arg.substr(10);
    } else if (arg.rfind("--fleet-nodes=", 0) == 0) {
      options.fleet_nodes = std::max(1, std::atoi(arg.c_str() + 14));
    } else if (arg.rfind("--ticks=", 0) == 0) {
      options.ticks = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--no-prune") {
      options.prune = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--catalog=gen:N[:seed=S][:gpu=F]] [--fleet-nodes=N]\n"
          "          [--ticks=N] [--seed=S] [--no-prune]\n"
          "  --catalog=SPEC     device catalog: 'table2' or 'gen:<count>'\n"
          "                     with optional :seed=/:gpu=/:noise=/:twins=\n"
          "  --fleet-nodes=N    model endpoints in the fleet (default 120)\n"
          "  --ticks=N          monitor ticks per endpoint (default 40)\n"
          "  --seed=S           demand random-walk seed (default 2026)\n"
          "  --no-prune         exhaustive linear Algorithm 1 sweep\n"
          "                     (pruning bypass reference)\n",
          argv[0]);
      std::exit(0);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);

  std::string error;
  const auto gen = hw::parse_catalog_spec(options.catalog_spec, &error);
  if (!gen.has_value() && !error.empty()) {
    std::fprintf(stderr, "error: --catalog: %s\n", error.c_str());
    return 1;
  }
  const hw::Catalog catalog =
      gen.has_value() ? hw::generate_catalog(*gen) : hw::Catalog::instance();
  const models::ProfileTable profile(catalog);
  const auto& zoo = models::Zoo::instance();

  int gpus = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.spec(hw::make_node_type(static_cast<int>(i))).is_gpu()) ++gpus;
  }
  std::printf("=== Fleet-scale hardware selection ===\n");
  std::printf("Catalog: %s (%zu types: %d GPU, %zu CPU)\n",
              options.catalog_spec.c_str(), catalog.size(), gpus,
              catalog.size() - static_cast<std::size_t>(gpus));
  std::printf("Fleet:   %d endpoints x %d ticks (seed %llu)\n\n",
              options.fleet_nodes, options.ticks,
              static_cast<unsigned long long>(options.seed));

  exp::FleetConfig config;
  config.endpoints = options.fleet_nodes;
  config.ticks = options.ticks;
  config.seed = options.seed;
  config.prune = options.prune;
  const auto schedule = exp::build_fleet_schedule(config, zoo);

  // Equivalence self-check: the pruned and linear modes must choose
  // identically, bit for bit, over the whole fleet.
  {
    exp::FleetConfig pruned = config, linear = config;
    pruned.prune = true;
    linear.prune = false;
    const auto a = exp::run_fleet(pruned, schedule, zoo, catalog, profile);
    const auto b = exp::run_fleet(linear, schedule, zoo, catalog, profile);
    if (a.choice_digest != b.choice_digest) {
      std::fprintf(stderr,
                   "FAIL: pruned (%016llx) and linear (%016llx) choice "
                   "digests diverge\n",
                   static_cast<unsigned long long>(a.choice_digest),
                   static_cast<unsigned long long>(b.choice_digest));
      return 1;
    }
    const double saved =
        a.pool_candidates > 0
            ? 100.0 * (1.0 - static_cast<double>(a.evaluated) /
                                 static_cast<double>(a.pool_candidates))
            : 0.0;
    std::printf("self-check: pruned == linear over %lld choices "
                "(digest %016llx)\n",
                a.choices, static_cast<unsigned long long>(a.choice_digest));
    std::printf("sweep work: %lld of %lld pool candidates evaluated "
                "(%.1f%% pruned); %.1f vs %.1f us/choose\n\n",
                a.evaluated, a.pool_candidates, saved, a.micros_per_choice,
                b.micros_per_choice);
  }

  // Cost-vs-SLO frontier: sweep the feasibility headroom. Lower headroom
  // accepts nodes closer to the raw SLO (cheaper, riskier); higher headroom
  // provisions conservatively (costlier, safer) — the fig. 5 trade-off at
  // fleet scale.
  std::printf("%-9s %10s %12s %12s %11s\n", "headroom", "$/hour",
              "SLO attain", "CPU share", "us/choose");
  for (double headroom : {0.70, 0.75, 0.80, 0.85, 0.90, 0.95}) {
    exp::FleetConfig point = config;
    point.slo_headroom = headroom;
    const auto result = exp::run_fleet(point, schedule, zoo, catalog, profile);
    std::printf("%-9.2f %10.2f %11.1f%% %11.1f%% %11.1f\n", headroom,
                result.fleet_cost_per_hour, 100.0 * result.slo_attainment,
                100.0 * static_cast<double>(result.cpu_choices) /
                    static_cast<double>(result.choices),
                result.micros_per_choice);
  }
  return 0;
}
