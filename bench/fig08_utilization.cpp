// Figure 8 — compute node utilization (non-idle time) of all schemes for
// VGG 19, Azure trace.
//
// Expected shape (paper): INFless/Llama ($) highest GPU utilization (~99%),
// Molecule ($) ~90%, Paldia between them (~94%); the (P) schemes far lower
// (their V100 is underutilized); CPU utilization ~72% for the schemes that
// serve low traffic on CPU nodes.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 8: node utilization (VGG 19, Azure trace)",
      "GPU util: INFless ($) ~99% > Paldia ~94% > Molecule ($) ~90% >> (P) "
      "schemes; CPU util ~72% for cost-effective schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig08");
  auto scenario = exp::azure_scenario(models::ModelId::kVgg19, options.repetitions);

  Table table({"Scheme", "GPU node util", "CPU node util"});
  for (const auto scheme : exp::main_schemes()) {
    const auto metrics = observer.run(runner, scenario, scheme).combined;
    const bool uses_cpu = metrics.cpu_utilization > 0.0;
    table.add_row({metrics.scheme, Table::percent(metrics.gpu_utilization),
                   uses_cpu ? Table::percent(metrics.cpu_utilization)
                            : std::string("n/a")});
  }
  table.print(std::cout);
  return 0;
}
