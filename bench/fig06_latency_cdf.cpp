// Figure 6 — CDF of end-to-end latencies for all schemes, SENet 18,
// Azure trace.
//
// Expected shape (paper): Paldia stays within the SLO through P99; the ($)
// schemes cross the SLO around P80 already; the (P) schemes sit far left
// at 6.9x the cost.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 6: end-to-end latency CDF (SENet 18, Azure trace)",
      "Paldia within the 200 ms SLO until P99; ($) schemes exceed it from "
      "~P80; (P) schemes well inside at much higher cost.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig06");
  auto scenario = exp::azure_scenario(models::ModelId::kSeNet18,
                                      options.repetitions);

  Table table({"Scheme", "P50", "P80", "P90", "P95", "P99", "SLO met at"});
  std::cout << "CDF series (percentile -> ms); full series in CSV below.\n\n";
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>> series;
  for (const auto scheme : exp::main_schemes()) {
    const auto result = observer.run(runner, scenario, scheme, /*keep_cdf=*/true);
    const auto& cdf = result.per_workload[0].latency_cdf;
    series.emplace_back(result.combined.scheme, cdf);
    auto value_at = [&](double q) {
      for (const auto& [value, fraction] : cdf) {
        if (fraction >= q) return value;
      }
      return cdf.empty() ? 0.0 : cdf.back().first;
    };
    // Highest percentile still within the SLO.
    double slo_met_at = 0.0;
    for (const auto& [value, fraction] : cdf) {
      if (value <= 200.0) slo_met_at = fraction;
    }
    table.add_row({result.combined.scheme, bench::ms(value_at(0.50)),
                   bench::ms(value_at(0.80)), bench::ms(value_at(0.90)),
                   bench::ms(value_at(0.95)), bench::ms(value_at(0.99)),
                   Table::percent(slo_met_at)});
  }
  table.print(std::cout);

  std::cout << "\nCSV: scheme,latency_ms,cumulative_fraction\n";
  for (const auto& [name, cdf] : series) {
    // Downsample to ~40 points per scheme for readable output.
    const std::size_t stride = std::max<std::size_t>(1, cdf.size() / 40);
    for (std::size_t i = 0; i < cdf.size(); i += stride) {
      std::printf("%s,%.2f,%.5f\n", name.c_str(), cdf[i].first, cdf[i].second);
    }
  }
  return 0;
}
