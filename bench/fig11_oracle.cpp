// Figure 11 — Paldia vs. Oracle (clairvoyant Paldia with perfect arrival
// knowledge, ideal hardware timeline and offline-swept splits), Azure
// trace, two characteristically different models.
//
// Expected shape (paper): Paldia within ~0.8% of Oracle's SLO compliance
// (sometimes 0.1%); Oracle slightly cheaper (<1%) because Paldia pays for
// hardware-transition overlaps and prediction error.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 11: Paldia vs Oracle (Azure trace)",
      "Paldia within ~0.8% of Oracle's compliance; cost difference <~1%.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig11");
  Table table({"Model", "Scheme", "SLO compliance", "Cost", "Delta SLO",
               "Delta cost"});
  for (const auto model :
       {models::ModelId::kResNet50, models::ModelId::kSeNet18}) {
    auto scenario = exp::azure_scenario(model, options.repetitions);
    const auto paldia =
        observer.run(runner, scenario, exp::SchemeId::kPaldia).combined;
    const auto oracle =
        observer.run(runner, scenario, exp::SchemeId::kOracle).combined;
    table.add_row({std::string(models::model_id_name(model)), paldia.scheme,
                   Table::percent(paldia.slo_compliance), bench::dollars(paldia.cost),
                   "-", "-"});
    table.add_row({"", oracle.scheme, Table::percent(oracle.slo_compliance),
                   bench::dollars(oracle.cost),
                   Table::percent(oracle.slo_compliance - paldia.slo_compliance),
                   Table::percent(paldia.cost > 0
                                      ? (oracle.cost - paldia.cost) / paldia.cost
                                      : 0.0)});
  }
  table.print(std::cout);
  return 0;
}
