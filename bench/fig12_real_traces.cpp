// Figure 12 — additional real-world traces:
//  (a) 5-day diurnal Wikipedia trace (peak ~170 rps), ResNet 50;
//  (b) 90-minute erratic Twitter trace (5x the Azure mean), DPN 92.
//
// Expected shape (paper): the sustained high traffic of the Wiki trace
// drops the ($) schemes to 84.39% (Molecule) / 79.93% (INFless) while
// Paldia keeps 99.25% at only ~4% more cost (72% below the (P) schemes);
// the erratic Twitter trace is harsher still (71.86% / 70.28% vs Paldia's
// 98.48%, ~7% more cost, 69% below (P)).
//
// The Wiki trace runs time-compressed by default (same diurnal shape);
// pass --full for the real 5 x 24 h length.
#include "bench/bench_common.hpp"
#include "src/trace/generators.hpp"

using namespace paldia;

namespace {

void run_block(const exp::Runner& runner, exp::Scenario& scenario,
               const std::string& title, ThreadPool* pool,
               bench::RunObserver& observer) {
  std::cout << "--- " << title << " ---\n";
  Table table({"Scheme", "SLO compliance", "P99", "Cost", "Normalized cost"});
  const auto rows = bench::run_schemes(runner, scenario, exp::main_schemes(),
                                       observer, /*keep_cdf=*/false, pool);
  double max_cost = 0.0;
  for (const auto& row : rows) max_cost = std::max(max_cost, row.cost);
  for (const auto& row : rows) {
    table.add_row({row.scheme, Table::percent(row.slo_compliance),
                   bench::ms(row.p99_latency_ms), bench::dollars(row.cost),
                   Table::num(row.cost / max_cost, 3)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 12: Wikipedia (ResNet 50) and Twitter (DPN 92) traces",
      "Sustained/erratic traffic widens Paldia's compliance lead over the "
      "($) schemes (99.25% vs ~80-84%; 98.48% vs ~70-72%) at a few % more "
      "cost, far below the (P) schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig12");

  {
    exp::Scenario scenario;
    scenario.name = "wikipedia";
    scenario.repetitions = options.repetitions;
    trace::WikiOptions wiki;
    if (options.full) wiki.day_length_ms = hours(24);
    scenario.workloads.push_back(exp::WorkloadSpec{
        models::ModelId::kResNet50, trace::make_wiki_trace(wiki)});
    run_block(runner, scenario, "(a) Wikipedia trace, ResNet 50",
              &bench::shared_pool(options), observer);
  }
  {
    exp::Scenario scenario;
    scenario.name = "twitter";
    scenario.repetitions = options.repetitions;
    trace::TwitterOptions twitter;
    if (!options.full) twitter.duration_ms = minutes(30);
    scenario.workloads.push_back(exp::WorkloadSpec{
        models::ModelId::kDpn92, trace::make_twitter_trace(twitter)});
    run_block(runner, scenario, "(b) Twitter trace, DPN 92",
              &bench::shared_pool(options), observer);
  }
  return 0;
}
