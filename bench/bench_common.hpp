// Shared helpers for the figure/table benches: flag parsing, scheme-row
// printing, and the paper-vs-measured framing every binary emits.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"

namespace paldia::bench {

struct BenchOptions {
  int repetitions = 3;  // the paper uses 5; --reps=5 reproduces that
  bool full = false;    // --full: uncompressed traces where applicable
  int threads = 0;      // worker threads; 0 = hardware concurrency, 1 = serial
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      options.repetitions = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::max(0, std::atoi(arg.c_str() + 10));
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--reps=N] [--threads=N] [--full]\n", argv[0]);
      std::exit(0);
    }
  }
  return options;
}

/// Pool shared by a figure binary's whole sweep: schemes fan out here, each
/// scheme's repetitions fan out inside Runner::run, and the policies'
/// y-sweeps nest one level below that — all on the same task-group executor.
inline ThreadPool& shared_pool(const BenchOptions& options) {
  static ThreadPool pool(static_cast<std::size_t>(options.threads));
  return pool;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_claim << "\n\n";
}

/// Runs the scenario for the given schemes and returns combined metrics in
/// the same order. With a pool, the (scheme x rep) grid runs concurrently:
/// schemes fan out here and Runner::run nests a parallel_for over reps —
/// results land in fixed slots, so rows match the serial order exactly.
inline std::vector<telemetry::RunMetrics> run_schemes(
    const exp::Runner& runner, const exp::Scenario& scenario,
    const std::vector<exp::SchemeId>& schemes, bool keep_cdf = false,
    ThreadPool* pool = nullptr) {
  std::vector<telemetry::RunMetrics> rows(schemes.size());
  auto run_one = [&](std::size_t i) {
    rows[i] = runner.run(scenario, schemes[i], keep_cdf).combined;
  };
  if (pool != nullptr && schemes.size() > 1) {
    pool->parallel_for(schemes.size(), run_one);
  } else {
    for (std::size_t i = 0; i < schemes.size(); ++i) run_one(i);
  }
  return rows;
}

inline std::string ms(double value) { return Table::num(value, 1) + " ms"; }
inline std::string dollars(double value) { return "$" + Table::num(value, 4); }

}  // namespace paldia::bench
