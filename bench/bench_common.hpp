// Shared helpers for the figure/table benches: flag parsing, scheme-row
// printing, and the paper-vs-measured framing every binary emits.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"

namespace paldia::bench {

struct BenchOptions {
  int repetitions = 3;  // the paper uses 5; --reps=5 reproduces that
  bool full = false;    // --full: uncompressed traces where applicable
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      options.repetitions = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--reps=N] [--full]\n", argv[0]);
      std::exit(0);
    }
  }
  return options;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_claim << "\n\n";
}

/// Runs the scenario for the given schemes and returns combined metrics in
/// the same order.
inline std::vector<telemetry::RunMetrics> run_schemes(
    const exp::Runner& runner, const exp::Scenario& scenario,
    const std::vector<exp::SchemeId>& schemes, bool keep_cdf = false) {
  std::vector<telemetry::RunMetrics> rows;
  rows.reserve(schemes.size());
  for (const auto scheme : schemes) {
    rows.push_back(runner.run(scenario, scheme, keep_cdf).combined);
  }
  return rows;
}

inline std::string ms(double value) { return Table::num(value, 1) + " ms"; }
inline std::string dollars(double value) { return "$" + Table::num(value, 4); }

}  // namespace paldia::bench
