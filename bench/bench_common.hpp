// Shared helpers for the figure/table benches: flag parsing, scheme-row
// printing, and the paper-vs-measured framing every binary emits.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/common/thread_pool.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"

namespace paldia::bench {

struct BenchOptions {
  int repetitions = 3;  // the paper uses 5; --reps=5 reproduces that
  bool full = false;    // --full: uncompressed traces where applicable
  int threads = 0;      // worker threads; 0 = hardware concurrency, 1 = serial
  /// Chrome trace-event JSON base path; each (scenario, scheme) run writes
  /// its own derived file (see obs::derive_trace_path). Empty = disabled.
  std::string trace_out;
  /// Streaming RunMetrics rows (.csv -> CSV, else JSONL). Empty = disabled.
  std::string metrics_out;
  /// Streaming scheduler decision log (.csv -> CSV, else JSONL).
  std::string decisions_out;
  /// Analysis report (violation attribution + calibration + occupancy) over
  /// all runs of the sweep, written as JSON at exit. The same analysis
  /// `paldia-analyze` performs offline on --trace-out files.
  std::string report_out;
  /// --no-tmax-cache: run the Eq. 1 sweep memoization in bypass mode —
  /// identical lookups and hit/miss counters, but every sweep recomputes.
  /// Exports must come out byte-identical to the cached run; this flag is
  /// the reference side of that check.
  bool tmax_cache = true;
  /// --no-request-pool: run the request-path arena in bypass mode — same
  /// block API and bookkeeping, but every buffer is dropped on release and
  /// re-allocated on acquire (plain-vector behaviour). Exports must come
  /// out byte-identical to the pooled run.
  bool request_pool = true;
  /// --shards=N: event shards per simulation run. 1 (default) = the serial
  /// drain; higher values split node-group events over per-shard queues
  /// drained in conservative-lookahead epochs. Exports must come out
  /// byte-identical to --shards=1 — the serial drain is the reference side
  /// of that check.
  int shards = 1;
  /// --no-prune: run Algorithm 1's candidate sweep as the exhaustive linear
  /// enumeration instead of the pruned (capability-masked, lower-bounded,
  /// cost-bucketed) walk. Choices and exports must come out byte-identical
  /// to the pruned run; this flag is the reference side of that check.
  bool prune = true;
  /// --sample-rate=N: keep every SLO-violating request lifecycle in the
  /// trace plus a deterministic 1-in-N of compliant ones (1 = keep all).
  /// The decision hashes the request id against a fixed seed — never wall
  /// clock or thread ids — so sampled exports stay byte-identical across
  /// --threads and --shards, and report counts stay exact via the tracer's
  /// sampled_out counters.
  std::uint32_t sample_rate = 1;
  /// --rollup-out=FILE: windowed per-(model, node, cause) rollup stream
  /// (.csv -> CSV, else JSONL), fed by every completion regardless of
  /// --sample-rate. `paldia-analyze --rollup` rebuilds compliance and
  /// attribution from this stream alone.
  std::string rollup_out;
  /// --profile: time the simulator's own hot paths (epoch extract/merge,
  /// selection sweep, dispatch/monitor ticks, export flush) and emit a
  /// per-phase report section plus a chrome-trace self-profile lane.
  bool profile = false;
  /// --alerts-out=FILE: SLO health alert stream (.csv -> CSV, else JSONL) —
  /// one row per resolved incident plus a per-rep ground-truth summary row.
  /// Enables the HealthEngine; `paldia-analyze --alerts` rebuilds the
  /// report's "health" section from this stream alone.
  std::string alerts_out;
  /// --slo-target=F: SLO objective behind the health engine's error budget
  /// (budget = 1 - target; burn rate = violation fraction / budget).
  double slo_target = 0.999;
  /// --burn-windows=FAST,SLOW: burn-rate alert windows in ms. The SRE-style
  /// multi-window rule fires only when both windows breach the threshold.
  double burn_fast_ms = 60'000.0;
  double burn_slow_ms = 600'000.0;
  /// --catalog=SPEC: global node catalog for fleet drivers — 'table2'
  /// (default) or 'gen:<count>' with optional :seed=/:gpu=/:noise=/:twins=
  /// (hw::parse_catalog_spec). Non-fleet drivers ignore it.
  std::string catalog = "table2";
  /// --endpoints=N: serving endpoints (gateways) for fleet drivers. Each
  /// endpoint owns a slice of the catalog and an independent serving loop.
  int endpoints = 4;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      options.repetitions = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::max(0, std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (arg.rfind("--decisions-out=", 0) == 0) {
      options.decisions_out = arg.substr(16);
    } else if (arg.rfind("--report-out=", 0) == 0) {
      options.report_out = arg.substr(13);
    } else if (arg == "--full") {
      options.full = true;
    } else if (arg == "--no-tmax-cache") {
      options.tmax_cache = false;
    } else if (arg == "--no-request-pool") {
      options.request_pool = false;
    } else if (arg == "--no-prune") {
      options.prune = false;
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards = std::max(1, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--sample-rate=", 0) == 0) {
      options.sample_rate =
          static_cast<std::uint32_t>(std::max(1, std::atoi(arg.c_str() + 14)));
    } else if (arg.rfind("--rollup-out=", 0) == 0) {
      options.rollup_out = arg.substr(13);
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg.rfind("--alerts-out=", 0) == 0) {
      options.alerts_out = arg.substr(13);
    } else if (arg.rfind("--slo-target=", 0) == 0) {
      options.slo_target = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--catalog=", 0) == 0) {
      options.catalog = arg.substr(10);
    } else if (arg.rfind("--endpoints=", 0) == 0) {
      options.endpoints = std::max(1, std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--burn-windows=", 0) == 0) {
      double fast = 0.0, slow = 0.0;
      if (std::sscanf(arg.c_str() + 15, "%lf,%lf", &fast, &slow) == 2) {
        options.burn_fast_ms = fast;
        options.burn_slow_ms = slow;
      } else {
        std::fprintf(stderr, "warning: --burn-windows wants FAST,SLOW in ms; "
                             "ignoring '%s'\n", arg.c_str() + 15);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--reps=N] [--threads=N] [--full] [--no-tmax-cache]\n"
          "          [--no-request-pool] [--no-prune] [--shards=N]\n"
          "          [--trace-out=FILE.json]   Chrome trace-event JSON per\n"
          "                                    (scenario, scheme) run (Perfetto)\n"
          "          [--metrics-out=FILE]      RunMetrics rows, streaming\n"
          "                                    (.csv -> CSV, else JSON Lines)\n"
          "          [--decisions-out=FILE]    scheduler decision log, one row\n"
          "                                    per monitor tick per repetition\n"
          "          [--report-out=FILE.json]  violation-attribution +\n"
          "                                    calibration report over the sweep\n"
          "          [--no-tmax-cache]         recompute every Eq. 1 sweep\n"
          "                                    (memoization bypass reference)\n"
          "          [--no-request-pool]       drop request buffers instead of\n"
          "                                    pooling (arena bypass reference)\n"
          "          [--no-prune]              exhaustive linear Algorithm 1\n"
          "                                    sweep (pruning bypass reference)\n"
          "          [--shards=N]              event shards per simulation run\n"
          "                                    (sharded drain; 1 = serial)\n"
          "          [--sample-rate=N]         keep all SLO violators + 1-in-N\n"
          "                                    compliant lifecycles in the trace\n"
          "                                    (deterministic; counts stay exact)\n"
          "          [--rollup-out=FILE]       windowed rollup stream, one row\n"
          "                                    per (rep, window, model, node)\n"
          "          [--profile]               simulator self-profile: per-phase\n"
          "                                    report section + trace lane\n"
          "          [--alerts-out=FILE]       SLO health alert stream: one row\n"
          "                                    per incident + per-rep summary\n"
          "          [--slo-target=F]          SLO objective for the health\n"
          "                                    error budget (default 0.999)\n"
          "          [--burn-windows=FAST,SLOW] burn-rate windows in ms\n"
          "                                    (default 60000,600000)\n"
          "          [--catalog=SPEC]          fleet catalog: 'table2' or\n"
          "                                    'gen:<count>[:seed=S][:gpu=F]'\n"
          "          [--endpoints=N]           fleet serving endpoints, each\n"
          "                                    over a slice of the catalog\n",
          argv[0]);
      std::exit(0);
    }
  }
  return options;
}

/// Pool shared by a figure binary's whole sweep: schemes fan out here, each
/// scheme's repetitions fan out inside Runner::run, and the policies'
/// y-sweeps nest one level below that — all on the same task-group executor.
inline ThreadPool& shared_pool(const BenchOptions& options) {
  static ThreadPool pool(static_cast<std::size_t>(options.threads));
  return pool;
}

/// SchemeFactoryOptions carrying the CLI's policy-level switches. Drivers
/// with extra knobs (tmax_beta, offline split) start from this and override.
inline exp::SchemeFactoryOptions factory_options(const BenchOptions& options) {
  exp::SchemeFactoryOptions factory;
  factory.tmax_cache = options.tmax_cache;
  factory.request_pool = options.request_pool;
  factory.prune = options.prune;
  factory.shards = options.shards;
  factory.sample_rate = options.sample_rate;
  factory.slo_target = options.slo_target;
  factory.burn_fast_ms = options.burn_fast_ms;
  factory.burn_slow_ms = options.burn_slow_ms;
  return factory;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_claim << "\n\n";
}

/// Observability side-channel of a bench driver: owns the streaming metrics
/// and decision-log writers and exports one Chrome trace file per completed
/// (scenario, scheme) run. All export happens on the calling thread, in call
/// order — parallel sweeps capture traces into per-run slots and serialize
/// them afterwards, keeping the files deterministic.
class RunObserver {
 public:
  RunObserver(const BenchOptions& options, std::string figure)
      : figure_(std::move(figure)),
        trace_out_(options.trace_out),
        report_out_(options.report_out),
        profile_(options.profile) {
    if (!options.metrics_out.empty()) {
      metrics_ = std::make_unique<obs::MetricsWriter>(options.metrics_out);
      if (!metrics_->ok()) {
        std::fprintf(stderr, "warning: --metrics-out: %s\n",
                     metrics_->error().c_str());
      }
    }
    if (!options.decisions_out.empty()) {
      decisions_ = std::make_unique<obs::DecisionLogWriter>(options.decisions_out);
      if (!decisions_->ok()) {
        std::fprintf(stderr, "warning: --decisions-out: %s\n",
                     decisions_->error().c_str());
      }
    }
    if (!options.rollup_out.empty()) {
      rollups_ = std::make_unique<obs::RollupWriter>(options.rollup_out);
      if (!rollups_->ok()) {
        std::fprintf(stderr, "warning: --rollup-out: %s\n",
                     rollups_->error().c_str());
      }
    }
    if (!options.alerts_out.empty()) {
      alerts_ = std::make_unique<obs::AlertWriter>(options.alerts_out);
      if (!alerts_->ok()) {
        std::fprintf(stderr, "warning: --alerts-out: %s\n",
                     alerts_->error().c_str());
      }
    }
  }

  ~RunObserver() {
    if (report_out_.empty() || reports_.empty()) return;
    std::string error;
    if (!obs::write_report_json_file(report_out_, reports_, &error)) {
      std::fprintf(stderr, "warning: --report-out: %s\n", error.c_str());
    }
  }

  /// Any per-run observation stream enabled (Chrome trace, decision log,
  /// report, rollups, health alerts, or self-profile)?
  bool tracing() const {
    return capture_events() || rollups_ != nullptr || alerts_ != nullptr ||
           profile_;
  }

  /// Do the enabled streams need full lifecycle event capture? False for
  /// rollup/profile-only runs — the tracer slots stay unallocated, so
  /// memory stays bounded by the rollup cells alone.
  bool capture_events() const {
    return !trace_out_.empty() || !report_out_.empty() || decisions_ != nullptr;
  }

  /// A RunTrace configured for the enabled streams; pass to Runner::run.
  obs::RunTrace make_trace() const {
    obs::RunTrace trace;
    trace.capture_events = capture_events();
    trace.collect_rollups = rollups_ != nullptr;
    trace.profile = profile_;
    trace.collect_health = alerts_ != nullptr;
    return trace;
  }

  /// Run one (scenario, scheme): capture + export the trace when requested,
  /// stream the combined metrics row, return the full result.
  exp::RunResult run(const exp::Runner& runner, const exp::Scenario& scenario,
                     exp::SchemeId scheme, bool keep_cdf = false) {
    exp::RunResult result;
    if (tracing()) {
      obs::RunTrace trace = make_trace();
      result = runner.run(scenario, scheme, trace, keep_cdf);
      export_trace(trace, scenario.name, exp::scheme_name(scheme));
    } else {
      result = runner.run(scenario, scheme, keep_cdf);
    }
    record(result.combined);
    return result;
  }

  /// Stream one metrics row (drivers with hand-rolled sweeps call this).
  void record(const telemetry::RunMetrics& row) {
    if (metrics_ != nullptr) metrics_->write(row, figure_);
  }

  /// Export a captured trace: Chrome JSON to a path derived from the base
  /// (one file per scenario x scheme) plus the decision-log and rollup rows.
  void export_trace(const obs::RunTrace& trace, const std::string& scenario,
                    const std::string& scheme) {
    // Drivers that sweep the same scheme over several scenarios with one
    // name (e.g. fig04's two models, both "azure") would collide on the
    // derived path — uniquify repeats with a run counter. Exports happen
    // in call order even under --threads, so the numbering is stable.
    std::string tag = scenario;
    const int seen = ++trace_runs_[scenario + "\n" + scheme];
    if (seen > 1) tag += "-run" + std::to_string(seen);
    const std::string label = tag + " / " + scheme;
    {
      // Flush time lands in the rep-0 profiler (exports run on this thread,
      // after the reps finished) so the report's export_flush row covers the
      // trace, decision-log, and rollup writes.
      obs::ScopedPhase flush(
          trace.profiles.empty() ? nullptr : trace.profiles[0].get(),
          obs::ProfilePhase::kExportFlush);
      if (!trace_out_.empty()) {
        const std::string path = obs::derive_trace_path(trace_out_, tag, scheme);
        std::string error;
        if (!obs::write_chrome_trace_file(path, trace, label, &error)) {
          std::fprintf(stderr, "warning: --trace-out: %s\n", error.c_str());
        }
      }
      if (decisions_ != nullptr) decisions_->write(trace, scheme, scenario);
      if (rollups_ != nullptr) rollups_->write(trace, label);
      if (alerts_ != nullptr) alerts_->write(trace, label);
    }
    if (!report_out_.empty()) {
      // Same analysis paldia-analyze performs on the exported trace file;
      // extract_run_data quantizes through the exporter formats, so the two
      // reports come out byte-identical. The self-profile section rides
      // along only when --profile recorded something; the health section
      // only when --alerts-out ran a HealthEngine.
      obs::AnalysisReport report =
          obs::analyze_with_zoo(obs::extract_run_data(trace, label));
      report.profile = obs::summarize_profile(trace);
      report.health = obs::summarize_health(trace);
      reports_.push_back(std::move(report));
    }
    obs::warn_if_truncated(trace, figure_ + " " + label);
  }

 private:
  std::string figure_;
  std::string trace_out_;
  std::string report_out_;
  bool profile_ = false;
  std::map<std::string, int> trace_runs_;
  std::vector<obs::AnalysisReport> reports_;
  std::unique_ptr<obs::MetricsWriter> metrics_;
  std::unique_ptr<obs::DecisionLogWriter> decisions_;
  std::unique_ptr<obs::RollupWriter> rollups_;
  std::unique_ptr<obs::AlertWriter> alerts_;
};

/// Runs the scenario for the given schemes and returns combined metrics in
/// the same order. With a pool, the (scheme x rep) grid runs concurrently:
/// schemes fan out here and Runner::run nests a parallel_for over reps —
/// results land in fixed slots, so rows match the serial order exactly.
inline std::vector<telemetry::RunMetrics> run_schemes(
    const exp::Runner& runner, const exp::Scenario& scenario,
    const std::vector<exp::SchemeId>& schemes, bool keep_cdf = false,
    ThreadPool* pool = nullptr) {
  std::vector<telemetry::RunMetrics> rows(schemes.size());
  auto run_one = [&](std::size_t i) {
    rows[i] = runner.run(scenario, schemes[i], keep_cdf).combined;
  };
  if (pool != nullptr && schemes.size() > 1) {
    pool->parallel_for(schemes.size(), run_one);
  } else {
    for (std::size_t i = 0; i < schemes.size(); ++i) run_one(i);
  }
  return rows;
}

/// Observer-aware run_schemes: traces are captured into per-scheme slots
/// while the grid runs (possibly in parallel) and exported afterwards in
/// scheme order, so the trace/metrics/decision files come out byte-identical
/// regardless of thread count.
inline std::vector<telemetry::RunMetrics> run_schemes(
    const exp::Runner& runner, const exp::Scenario& scenario,
    const std::vector<exp::SchemeId>& schemes, RunObserver& observer,
    bool keep_cdf = false, ThreadPool* pool = nullptr) {
  std::vector<telemetry::RunMetrics> rows(schemes.size());
  if (observer.tracing()) {
    std::vector<obs::RunTrace> traces;
    traces.reserve(schemes.size());
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      traces.push_back(observer.make_trace());
    }
    auto run_one = [&](std::size_t i) {
      rows[i] = runner.run(scenario, schemes[i], traces[i], keep_cdf).combined;
    };
    if (pool != nullptr && schemes.size() > 1) {
      pool->parallel_for(schemes.size(), run_one);
    } else {
      for (std::size_t i = 0; i < schemes.size(); ++i) run_one(i);
    }
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      observer.export_trace(traces[i], scenario.name,
                            exp::scheme_name(schemes[i]));
    }
  } else {
    rows = run_schemes(runner, scenario, schemes, keep_cdf, pool);
  }
  for (const auto& row : rows) observer.record(row);
  return rows;
}

inline std::string ms(double value) { return Table::num(value, 1) + " ms"; }
inline std::string dollars(double value) { return "$" + Table::num(value, 4); }

/// Dominant violation cause of a metrics row ("-" when compliant), for the
/// drivers' per-scheme attribution columns.
inline std::string top_violation_cause(const telemetry::RunMetrics& metrics) {
  if (metrics.slo_violations <= 0.0) return "-";
  std::size_t best = 0;
  for (std::size_t i = 1; i < metrics.violations_by_cause.size(); ++i) {
    if (metrics.violations_by_cause[i] > metrics.violations_by_cause[best]) best = i;
  }
  return std::string(telemetry::violation_cause_name(
      static_cast<telemetry::ViolationCause>(best)));
}

}  // namespace paldia::bench
