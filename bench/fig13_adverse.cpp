// Figure 13 — adverse scenarios:
//  (a) Resource exhaustion: GoogleNet under a Poisson trace (mean ~700 rps)
//      that overwhelms even the V100; every scheme ends up on the V100.
//  (b) Node failures: DenseNet 121 with the active node failing every
//      minute for a minute; schemes fail over to stronger hardware.
//
// Expected shape (paper): (a) all-spatial INFless ~33%, time-shared
// Molecule ~62%, Paldia's hybrid occupancy management 97.55%;
// (b) cost-effective schemes *gain* compliance (failover forces stronger
// hardware; Paldia best at 99.82%) while the (P) schemes drop (forced to
// weaker GPUs), Paldia costing ~70% less than them.
#include "bench/bench_common.hpp"
#include "src/exp/summary.hpp"
#include "src/trace/generators.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 13: resource exhaustion (GoogleNet) and node failures (DenseNet 121)",
      "(a) hybrid > time-shared > all-spatial under V100 saturation "
      "(97.6% / ~62% / ~33%); (b) failover lifts cost-effective schemes, "
      "drops (P) schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig13");

  {
    std::cout << "--- (a) Resource exhaustion: GoogleNet, Poisson ~800 rps ---\n";
    exp::Scenario scenario;
    scenario.name = "exhaustion";
    scenario.repetitions = options.repetitions;
    trace::PoissonOptions poisson;
    poisson.mean_rps = 800.0;
    poisson.duration_ms = options.full ? minutes(25) : minutes(5);
    scenario.workloads.push_back(exp::WorkloadSpec{
        models::ModelId::kGoogleNet, trace::make_poisson_trace(poisson)});
    // All schemes resort to the V100 here (the paper pins them there since
    // weaker hardware is hopeless); we start everyone on it.
    scenario.framework.initial_node = hw::NodeType::kP3_2xlarge;

    Table table({"Scheme", "SLO compliance", "P99", "Cost", "Violations/rep",
                 "Top cause"});
    exp::RunResult paldia_result;
    for (const auto scheme :
         {exp::SchemeId::kInflessLlamaPerf, exp::SchemeId::kMoleculePerf,
          exp::SchemeId::kPaldia}) {
      const auto result = observer.run(runner, scenario, scheme);
      const auto& metrics = result.combined;
      table.add_row({metrics.scheme, Table::percent(metrics.slo_compliance),
                     bench::ms(metrics.p99_latency_ms), bench::dollars(metrics.cost),
                     Table::num(metrics.slo_violations, 1),
                     bench::top_violation_cause(metrics)});
      if (scheme == exp::SchemeId::kPaldia) paldia_result = result;
    }
    table.print(std::cout);
    std::cout << "\nPaldia attribution (exhaustion):\n";
    exp::print_compliance_summary(std::cout, paldia_result);
    std::cout << "\n";
  }

  {
    std::cout << "--- (b) Node failures: DenseNet 121, 1 min down every 2 min ---\n";
    auto scenario = exp::azure_scenario(models::ModelId::kDenseNet121,
                                        options.repetitions);
    scenario.failures = cluster::FailureInjectorConfig{};
    Table table({"Scheme", "SLO compliance", "P99", "Cost", "Violations/rep",
                 "Top cause"});
    exp::RunResult paldia_result;
    for (const auto scheme : exp::main_schemes()) {
      const auto result = observer.run(runner, scenario, scheme);
      const auto& metrics = result.combined;
      table.add_row({metrics.scheme, Table::percent(metrics.slo_compliance),
                     bench::ms(metrics.p99_latency_ms), bench::dollars(metrics.cost),
                     Table::num(metrics.slo_violations, 1),
                     bench::top_violation_cause(metrics)});
      if (scheme == exp::SchemeId::kPaldia) paldia_result = result;
    }
    table.print(std::cout);
    std::cout << "\nPaldia attribution (failures):\n";
    exp::print_compliance_summary(std::cout, paldia_result);
  }
  return 0;
}
