// Ablations of Paldia's design choices (Section IV claims):
//  1. Delayed termination + batching cut cold starts "by up to 98%" vs.
//     immediately scaling down.
//  2. The hysteresis wait limit suppresses thrashing without hurting
//     compliance.
//  3. The choose_best_HW 50 ms performance band trades pennies for tail
//     latency.
//  4. The scheduler's beta (superlinear contention) term: beta = 0 (the
//     literal Eq. 1) degenerates to all-spatial scheduling and loses
//     compliance under saturation.
#include "bench/bench_common.hpp"
#include "src/core/paldia_policy.hpp"
#include "src/trace/generators.hpp"

using namespace paldia;

namespace {

telemetry::RunMetrics run_paldia(const exp::Scenario& scenario,
                                 exp::SchemeFactoryOptions factory_options,
                                 ThreadPool* pool, bench::RunObserver& observer,
                                 core::FrameworkConfig framework = {}) {
  exp::Scenario local = scenario;
  if (framework.initial_node || framework.autoscaler.keep_alive_ms !=
                                    core::AutoscalerConfig{}.keep_alive_ms) {
    local.framework = framework;
  }
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(), pool,
                     factory_options);
  return observer.run(runner, local, exp::SchemeId::kPaldia).combined;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Ablations: keep-alive, hysteresis, performance band, scheduler beta",
      "Section IV: delayed termination cuts cold starts by up to 98%; the "
      "beta term is what makes the hybrid split non-trivial.");

  auto scenario = exp::azure_scenario(models::ModelId::kResNet50,
                                      options.repetitions);
  bench::RunObserver observer(options, "ablation_design");

  {
    std::cout << "--- 1. Delayed termination (keep-alive) ---\n";
    Table table({"Keep-alive", "Cold starts", "SLO compliance"});
    for (const DurationMs keep_alive : {0.0, seconds(30), minutes(10)}) {
      exp::Scenario local = scenario;
      local.framework.autoscaler.keep_alive_ms = keep_alive;
      local.framework.autoscaler.min_containers = keep_alive == 0.0 ? 0 : 1;
      exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                         &bench::shared_pool(options),
                         bench::factory_options(options));
      const auto metrics =
          observer.run(runner, local, exp::SchemeId::kPaldia).combined;
      table.add_row({Table::num(keep_alive / 1000.0, 0) + " s",
                     std::to_string(metrics.cold_starts),
                     Table::percent(metrics.slo_compliance)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "--- 2. Scheduler contention coefficient (beta) ---\n";
    exp::Scenario exhaustion;
    exhaustion.name = "exhaustion";
    exhaustion.repetitions = options.repetitions;
    trace::PoissonOptions poisson;
    poisson.mean_rps = 700.0;
    poisson.duration_ms = minutes(4);
    exhaustion.workloads.push_back(exp::WorkloadSpec{
        models::ModelId::kGoogleNet, trace::make_poisson_trace(poisson)});
    exhaustion.framework.initial_node = hw::NodeType::kP3_2xlarge;
    Table table({"beta", "SLO compliance", "P99"});
    for (const double beta : {0.0, 0.1, 0.2, 0.35}) {
      exp::SchemeFactoryOptions factory_options = bench::factory_options(options);
      factory_options.tmax_beta = beta;
      const auto metrics = run_paldia(exhaustion, factory_options,
                                      &bench::shared_pool(options), observer);
      table.add_row({Table::num(beta, 2), Table::percent(metrics.slo_compliance),
                     bench::ms(metrics.p99_latency_ms)});
    }
    table.print(std::cout);
    std::cout << "(beta = 0 is the literal Eq. 1: monotone in y, so the split "
                 "degenerates to all-spatial)\n\n";
  }

  {
    std::cout << "--- 3. choose_best_HW performance band ---\n";
    Table table({"Band (ms)", "SLO compliance", "Cost"});
    for (const double band : {0.0, 50.0, 200.0}) {
      exp::SchemeFactoryOptions factory_options = bench::factory_options(options);
      exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(), nullptr,
                         factory_options);
      // The band lives in the policy config; rebuild via a local runner
      // with a custom scenario is not enough — use PaldiaPolicyConfig
      // through a dedicated runner-less run.
      exp::Scenario local = scenario;
      sim::Simulator simulator;
      Rng rng(1234);
      cluster::Cluster cluster(simulator, rng.fork("cluster"));
      models::ProfileTable profile(hw::Catalog::instance());
      core::PaldiaPolicyConfig config;
      config.selection.performance_band_ms = band;
      config.tmax_cache = options.tmax_cache;
      auto policy = std::make_unique<core::PaldiaPolicy>(
          models::Zoo::instance(), hw::Catalog::instance(), profile, nullptr, config);
      core::FrameworkConfig framework_config = local.framework;
      framework_config.initial_node = hw::NodeType::kC6i_2xlarge;
      core::Framework framework(simulator, cluster, std::move(policy),
                                rng.fork("framework"), models::Zoo::instance(),
                                framework_config);
      framework.add_workload(local.workloads[0].model, local.workloads[0].trace);
      framework.run();
      table.add_row({Table::num(band, 0),
                     Table::percent(
                         framework.slo(local.workloads[0].model).compliance()),
                     bench::dollars(cluster.total_cost())});
    }
    table.print(std::cout);
  }
  return 0;
}
