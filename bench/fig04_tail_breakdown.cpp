// Figure 4 — breakdown of tail (P99) latencies for ResNet 50 and VGG 19
// under the Azure trace: min possible time, queueing and interference
// components per scheme.
//
// Expected shape (paper): INFless/Llama ($) tail dominated by interference
// (76% for ResNet 50); Molecule ($) by queueing (up to 84% for VGG 19);
// Paldia's total overhead ~59% below Molecule ($)'s, with tail within the
// SLO; (P) schemes under 100 ms.
#include "bench/bench_common.hpp"
#include "src/exp/summary.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 4: P99 latency breakdown (ResNet 50, VGG 19; Azure trace)",
      "($) schemes' tails dominated by interference (INFless) or queueing "
      "(Molecule); Paldia's P99 within the 200 ms SLO.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig04");
  for (const auto model : {models::ModelId::kResNet50, models::ModelId::kVgg19}) {
    auto scenario = exp::azure_scenario(model, options.repetitions);
    std::cout << "--- " << models::model_id_name(model) << " ---\n";
    Table table({"Scheme", "P99", "Min possible", "Queueing", "Interference",
                 "Cold start", "Queue share", "Intf share"});
    exp::RunResult paldia_result;
    for (const auto scheme : exp::main_schemes()) {
      const auto result = observer.run(runner, scenario, scheme);
      const auto& metrics = result.combined;
      const auto& breakdown = metrics.p99_breakdown;
      const double total = std::max(1e-9, breakdown.latency_ms);
      table.add_row({metrics.scheme, bench::ms(metrics.p99_latency_ms),
                     bench::ms(breakdown.solo_ms), bench::ms(breakdown.queue_ms),
                     bench::ms(breakdown.interference_ms),
                     bench::ms(breakdown.cold_start_ms),
                     Table::percent(breakdown.queue_ms / total),
                     Table::percent(breakdown.interference_ms / total)});
      if (scheme == exp::SchemeId::kPaldia) paldia_result = result;
    }
    table.print(std::cout);
    std::cout << "\nPaldia attribution:\n";
    exp::print_compliance_summary(std::cout, paldia_result);
    std::cout << "\n";
  }
  return 0;
}
