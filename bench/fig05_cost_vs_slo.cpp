// Figure 5 — normalized cost vs. SLO compliance, for a high-FBR model
// (ResNet 50) and the low-FBR outlier (EfficientNet-B0), Azure trace.
//
// Expected shape (paper): Paldia saves ~85% vs. the (P) schemes; the other
// cost-effective schemes are marginally cheaper (~1-3%) but far less
// compliant; for low-FBR models the cost difference between Paldia and the
// ($) schemes nearly vanishes (0.3% for EfficientNet-B0).
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 5: normalized cost vs SLO compliance (ResNet 50, EfficientNet-B0)",
      "Paldia ~85% cheaper than (P) schemes at comparable compliance; only "
      "marginally (~1-3%) costlier than the ($) schemes while up to ~11% more "
      "compliant.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig05");
  for (const auto model :
       {models::ModelId::kResNet50, models::ModelId::kEfficientNetB0}) {
    auto scenario = exp::azure_scenario(model, options.repetitions);
    std::cout << "--- " << models::model_id_name(model) << " ---\n";

    // Normalize to the most expensive scheme (the (P) column in the paper).
    std::vector<telemetry::RunMetrics> rows =
        bench::run_schemes(runner, scenario, exp::main_schemes(), observer,
                           /*keep_cdf=*/false, &bench::shared_pool(options));
    double max_cost = 0.0;
    for (const auto& row : rows) max_cost = std::max(max_cost, row.cost);

    Table table({"Scheme", "Cost", "Normalized cost", "SLO compliance"});
    for (const auto& row : rows) {
      table.add_row({row.scheme, bench::dollars(row.cost),
                     Table::num(row.cost / max_cost, 3),
                     Table::percent(row.slo_compliance)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
