// Micro-benchmarks (google-benchmark): hot-path costs of the scheduler and
// the simulation substrate. The headline check is the paper's claim that
// the parallel y-sweep finds the best split "with minimal overhead
// (< 3 ms)" — see BM_YOptimizerSweep.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/gpu_device.hpp"
#include "src/common/histogram.hpp"
#include "src/core/batcher.hpp"
#include "src/core/fleet.hpp"
#include "src/core/gateway.hpp"
#include "src/core/hardware_selection.hpp"
#include "src/exp/scheme_factory.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/health.hpp"
#include "src/obs/rollup.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/sketch.hpp"
#include "src/obs/tracer.hpp"
#include "src/perfmodel/tmax_cache.hpp"
#include "src/perfmodel/y_optimizer.hpp"
#include "src/predictor/ewma.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/generators.hpp"

namespace {

using namespace paldia;

void BM_YOptimizerSweep(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2));
  const perfmodel::WorkloadPoint point{n, 64, 90.0, 0.65, 200.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.best_split(point));
  }
  state.SetLabel("paper claims < 3 ms per sweep");
}
BENCHMARK(BM_YOptimizerSweep)->Arg(128)->Arg(1024)->Arg(8192);

void BM_YOptimizerSweepParallel(benchmark::State& state) {
  static ThreadPool pool(4);
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2), &pool);
  const perfmodel::WorkloadPoint point{8192, 64, 90.0, 0.65, 200.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.best_split(point));
  }
}
BENCHMARK(BM_YOptimizerSweepParallel);

void BM_HardwareSelectionChoose(benchmark::State& state) {
  models::ProfileTable profile(hw::Catalog::instance());
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2));
  core::HardwareSelection selection(models::Zoo::instance(), hw::Catalog::instance(),
                                    profile, optimizer);
  core::DemandSnapshot demand;
  demand.model = models::ModelId::kResNet50;
  demand.observed_rps = demand.predicted_rps = demand.smoothed_rps =
      static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(selection.choose({demand}));
  }
}
BENCHMARK(BM_HardwareSelectionChoose)->Arg(10)->Arg(200)->Arg(700);

// Algorithm 1 on a fleet-scale generated catalog (64 node types): the pruned
// candidate walk versus the exhaustive linear reference. Same rotating
// demand points, same catalog, no T_max cache — the benchmark measures raw
// sweep work, which is exactly what pruning saves. perf_baseline.py tracks
// the pruned/linear ratio (target >= 3x) via BENCH_perf.json.
void SelectionSweepLargeCatalog(benchmark::State& state, bool prune) {
  static const hw::Catalog catalog =
      hw::generate_catalog({.node_count = 64, .seed = 7});
  static const models::ProfileTable profile(catalog);
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2));
  core::HardwareSelectionConfig config;
  config.prune = prune;
  core::HardwareSelection selection(models::Zoo::instance(), catalog, profile,
                                    optimizer, nullptr, config);
  std::vector<std::vector<core::DemandSnapshot>> demands;
  for (int i = 0; i < 32; ++i) {
    core::DemandSnapshot demand;
    demand.model = static_cast<models::ModelId>(i % models::kModelCount);
    demand.observed_rps = demand.predicted_rps = demand.smoothed_rps =
        5.0 * (1 + (i * 7) % 40);
    demand.backlog = (i * 13) % 32;
    demands.push_back({demand});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selection.choose(demands[i++ % demands.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SelectionSweepLargeCatalog(benchmark::State& state) {
  SelectionSweepLargeCatalog(state, /*prune=*/true);
}
BENCHMARK(BM_SelectionSweepLargeCatalog);

void BM_SelectionSweepLinearLargeCatalog(benchmark::State& state) {
  SelectionSweepLargeCatalog(state, /*prune=*/false);
}
BENCHMARK(BM_SelectionSweepLinearLargeCatalog);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 10'000; ++i) {
      simulator.schedule_in((i * 37) % 1000, [] {});
    }
    simulator.run_to_completion();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  // The device-sim hot pattern (GpuDevice::reschedule_completion): schedule
  // a completion, cancel it when the concurrency set changes, pop what
  // survives — interleaved so the heap stays warm like a real run.
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventHandle> ring(64);
    std::size_t slot = 0;
    double popped_until = 0.0;
    for (int i = 0; i < 10'000; ++i) {
      ring[slot].cancel();
      const double t =
          popped_until + static_cast<double>((i * 37) % 1000) + 1.0;
      ring[slot] = queue.schedule(t, [] {});
      slot = (slot + 1) % ring.size();
      if (i % 16 == 15) {
        for (int p = 0; p < 8 && !queue.empty(); ++p) {
          auto fired = queue.pop();
          popped_until = fired.time;
          fired.fn();
        }
      }
    }
    while (!queue.empty()) queue.pop().fn();
    benchmark::DoNotOptimize(popped_until);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  state.SetLabel("schedule+cancel+pop churn");
}
BENCHMARK(BM_EventQueueScheduleCancelPop);

void BM_SimulatorPeriodicTick(benchmark::State& state) {
  // Per-firing cost of schedule_every: the monitor/dispatch/sampler loops
  // all ride this primitive, thousands of firings per simulated run.
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t ticks = 0;
    auto handle = simulator.schedule_every(0.0, 1.0, [&] { ++ticks; });
    simulator.run_until(10'000.0);
    handle.cancel();
    simulator.run_to_completion();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10'001);
}
BENCHMARK(BM_SimulatorPeriodicTick);

void sharded_drain(benchmark::State& state, int shards) {
  // Steady-state event drain with a large resident timer population — the
  // shape of a full cluster run, where every node keeps completion and
  // container timers armed at all times. With one shard the drain is a
  // pop-per-event loop over one ~6 MB heap plus a ~21 MB slot slab whose
  // sift paths and callback moves fall out of L2; sharded, each worker
  // shard's heap and slab stay cache-resident and the epoch drain extracts
  // whole lookahead windows with one linear partition pass. Same single
  // core, same event order, same fired count.
  sim::ShardOptions options;
  options.shards = shards;
  options.lookahead_ms = 200.0;
  sim::Simulator simulator(options);
  std::uint64_t fired = 0;
  constexpr int kTimers = 1 << 18;
  // Self-rescheduling one-shot timers: the capture fits in the inline
  // callback storage, so all per-event state lives in the shard's own slab
  // and heap — the drain itself is what gets measured.
  struct Timer {
    sim::Simulator* simulator;
    std::uint64_t* fired;
    double period;
    int shard;
    void operator()() const {
      ++*fired;
      simulator->schedule_in(period, *this, shard);
    }
  };
  for (int i = 0; i < kTimers; ++i) {
    const double period = 10.0 + static_cast<double>((i * 97) % 200);
    const double start = static_cast<double>((i * 131) % 100);
    const int shard = simulator.shard_of(i);
    simulator.schedule_at(start, Timer{&simulator, &fired, period, shard},
                          shard);
  }
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 100.0;
    simulator.run_until(horizon);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
  state.SetLabel(shards == 1 ? "serial reference" : "sharded epoch drain");
}

void BM_ShardedDrain(benchmark::State& state) { sharded_drain(state, 8); }
BENCHMARK(BM_ShardedDrain);

void BM_ShardedDrainSerial(benchmark::State& state) {
  // The --shards=1 reference for BM_ShardedDrain. A run of this benchmark
  // (renamed to BM_ShardedDrain) is recorded in
  // bench/sharded_drain_baseline_pre.json so perf_baseline.py can enforce
  // the sharded drain's speedup floor without rebuilding the old tree.
  sharded_drain(state, 1);
}
BENCHMARK(BM_ShardedDrainSerial);

void fleet_tick(benchmark::State& state, int shards) {
  // 100 ms steps of a full fleet under steady drain load: 16 endpoints over
  // a gen:64 catalog, each an independent serving loop (gateway + policy +
  // autoscaler + trackers) serving a light Poisson stream, plus a 256K
  // armed-timer population — every node of every slice keeping completion
  // and container timers armed at all times, the BM_ShardedDrain shape but
  // owned per endpoint and pinned to the endpoint's shard. Shard-affine,
  // each endpoint's heap and slot slab stay cache-resident, the epoch drain
  // extracts whole lookahead windows with streaming sorts + a tournament
  // merge, and extraction fans out across the pool on multicore hosts;
  // naive single-shard, the whole fleet's events churn one large heap one
  // sift at a time. Same event order, same exports either way.
  static ThreadPool extract_pool(0);  // hardware_concurrency workers
  sim::ShardOptions options;
  options.shards = shards;
  options.lookahead_ms = 200.0;
  options.pool = shards > 1 ? &extract_pool : nullptr;
  sim::Simulator simulator(options);
  const auto& zoo = models::Zoo::instance();
  static const hw::Catalog catalog =
      hw::generate_catalog({.node_count = 64, .seed = 7});
  core::FleetConfig config;
  config.endpoints = 16;
  core::Fleet fleet(
      simulator, Rng(17), zoo, catalog, config,
      [&zoo](int, const hw::Catalog& slice,
             const models::ProfileTable& profile) {
        exp::SchemeFactory factory(zoo, slice, profile);
        return factory.make(exp::SchemeId::kPaldia);
      });
  trace::PoissonOptions poisson;
  poisson.duration_ms = 600'000.0;  // far past the stepped horizon
  poisson.mean_rps = 320.0;         // 20 rps per endpoint
  poisson.seed = 9;
  fleet.add_workload(models::ModelId::kResNet50,
                     trace::make_poisson_trace(poisson));
  for (int e = 0; e < fleet.endpoint_count(); ++e) {
    fleet.framework(e).begin_run();
  }
  std::uint64_t fired = 0;
  constexpr int kTimersPerEndpoint = 1 << 14;
  struct Timer {
    sim::Simulator* simulator;
    std::uint64_t* fired;
    double period;
    int shard;
    void operator()() const {
      ++*fired;
      simulator->schedule_in(period, *this, shard);
    }
  };
  for (int e = 0; e < fleet.endpoint_count(); ++e) {
    const int shard = fleet.shard_of_endpoint(e);
    for (int i = 0; i < kTimersPerEndpoint; ++i) {
      // Offset by endpoint so firings decorrelate across shards — a real
      // fleet's endpoints are not phase-locked.
      const double period = 10.0 + static_cast<double>((i * 97 + e * 13) % 200);
      const double start = static_cast<double>((i * 131 + e * 31) % 100);
      simulator.schedule_at(start, Timer{&simulator, &fired, period, shard},
                            shard);
    }
  }
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 100.0;
    simulator.run_until(horizon);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simulator.events_processed()));
  state.SetLabel(shards == 1 ? "naive single-shard fleet"
                             : "shard-affine fleet");
  // The run stops mid-trace: drop the pending events while the fleet (and
  // the frameworks' request arenas) is still alive.
  simulator.reset();
}

void BM_FleetTick(benchmark::State& state) { fleet_tick(state, 8); }
BENCHMARK(BM_FleetTick)->Iterations(50);

void BM_FleetTickSingleShard(benchmark::State& state) {
  // The --shards=1 reference for BM_FleetTick: the whole fleet's events in
  // one heap. A run of this benchmark (renamed to BM_FleetTick) is recorded
  // in bench/fleet_sim_baseline_pre.json so perf_baseline.py can enforce
  // the shard-affine fleet's speedup floor without rebuilding the old tree.
  fleet_tick(state, 1);
}
BENCHMARK(BM_FleetTickSingleShard)->Iterations(50);

void BM_FleetRoute(benchmark::State& state) {
  // Per-arrival cost of the fleet request router: one splitmix64 finalizer
  // over (seed ^ sequence) plus a modulo. add_workload pays this once per
  // arrival when splitting a global trace, so millions of requests want it
  // in the few-nanosecond range.
  std::uint64_t sequence = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += static_cast<std::uint64_t>(
        core::Fleet::route(0x9a1d1a, sequence++, 64));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetRoute);

void BM_TmaxCacheHit(benchmark::State& state) {
  // Steady-state cost of a memoized Eq. 1 sweep: one mutex + hash lookup
  // instead of the full y-sweep. Compare with BM_YOptimizerSweep — the gap
  // is what the cache saves on every revisited operating point.
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2));
  perfmodel::TmaxCache cache;
  const int n = 1024;
  const perfmodel::WorkloadPoint point{n, 64, 90.0, 0.65, 200.0};
  perfmodel::TmaxCache::Key key;
  key.model = 1;
  key.node = 2;
  key.n_requests = n;
  key.slo_q = perfmodel::TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = perfmodel::kDefaultSweepProbes;
  cache.best_split(optimizer, key, point, perfmodel::kDefaultSweepProbes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.best_split(optimizer, key, point, perfmodel::kDefaultSweepProbes));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("memoized sweep lookup");
}
BENCHMARK(BM_TmaxCacheHit);

void BM_GpuDeviceProcessorSharing(benchmark::State& state) {
  const auto& gpu = *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
  for (auto _ : state) {
    sim::Simulator simulator;
    cluster::GpuDevice device(simulator, gpu, Rng(1));
    for (int i = 0; i < 200; ++i) {
      cluster::GpuJob job;
      job.solo_ms = 50.0;
      job.fbr = 0.4;
      job.on_complete = [](const cluster::ExecutionReport&) {};
      if (i % 3 == 0) {
        device.submit_serial(std::move(job));
      } else {
        device.submit_spatial(std::move(job));
      }
    }
    benchmark::DoNotOptimize(simulator.run_to_completion());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_GpuDeviceProcessorSharing);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram histogram;
  Rng rng(3);
  double value = 1.0;
  for (auto _ : state) {
    value = value * 1.37 + 0.11;
    if (value > 5000.0) value = 1.0;
    histogram.add(value);
  }
  benchmark::DoNotOptimize(histogram.quantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_HistogramPercentiles(benchmark::State& state) {
  // P50/P95/P99 extraction, the per-workload metrics path: one batched
  // scan vs three single-quantile scans.
  Histogram histogram;
  Rng rng(5);
  for (int i = 0; i < 200'000; ++i) histogram.add(rng.uniform(0.5, 4000.0));
  const double qs[] = {0.5, 0.95, 0.99};
  for (auto _ : state) {
    if (state.range(0) == 0) {
      benchmark::DoNotOptimize(histogram.quantiles(qs));
    } else {
      for (const double q : qs) benchmark::DoNotOptimize(histogram.quantile(q));
    }
  }
  state.SetLabel(state.range(0) == 0 ? "batched" : "3x single");
}
BENCHMARK(BM_HistogramPercentiles)->Arg(0)->Arg(1);

void BM_EwmaObservePredict(benchmark::State& state) {
  predictor::EwmaPredictor predictor;
  double t = 0.0;
  for (auto _ : state) {
    t += 1000.0;
    predictor.observe(t, 50.0 + (static_cast<int>(t) % 7));
    benchmark::DoNotOptimize(predictor.predict(t, 4000.0));
  }
}
BENCHMARK(BM_EwmaObservePredict);

void BM_AzureTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    trace::AzureOptions options;
    options.seed = static_cast<std::uint64_t>(state.iterations());
    benchmark::DoNotOptimize(trace::make_azure_trace(options).total_requests());
  }
}
BENCHMARK(BM_AzureTraceGeneration);

void BM_TracerDisabledHook(benchmark::State& state) {
  // The cost every hot-path hook pays when tracing is off: one pointer
  // compare against null (the log.hpp discipline). This must stay in the
  // sub-nanosecond range or tracing is not "free when disabled".
  obs::Tracer* tracer = nullptr;
  benchmark::DoNotOptimize(tracer);
  double sink = 0.0;
  for (auto _ : state) {
    if (tracer != nullptr) tracer->count("arrivals", 1.0);
    sink += 1.0;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("null-tracer branch");
}
BENCHMARK(BM_TracerDisabledHook);

void BM_SketchInsert(benchmark::State& state) {
  // Attribution keeps one QuantileSketch per model/node bucket; every
  // completed request pays one insert per bucket it lands in. Same bucket
  // math as Histogram::add — this pins the per-sample cost.
  obs::QuantileSketch sketch;
  double value = 1.0;
  for (auto _ : state) {
    value = value * 1.31 + 0.07;
    if (value > 4000.0) value = 1.0;
    sketch.insert(value);
  }
  benchmark::DoNotOptimize(sketch.summary().p99_ms);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchInsert);

void BM_AttributionDisabledHook(benchmark::State& state) {
  // The framework holds an AttributionEngine* that is nullptr when
  // attribution is off — the disabled hot-path cost is one branch, exactly
  // like the null-tracer discipline above.
  obs::AttributionEngine* engine = nullptr;
  benchmark::DoNotOptimize(engine);
  double sink = 0.0;
  for (auto _ : state) {
    if (engine != nullptr) engine->on_requeued(1);
    sink += 1.0;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("null-engine branch");
}
BENCHMARK(BM_AttributionDisabledHook);

void BM_AttributionObserve(benchmark::State& state) {
  // Enabled-path cost per completed request: classify + three bucket
  // updates (total, per-model, per-node) + one sketch insert each.
  obs::AttributionEngine engine(models::Zoo::instance());
  obs::LifecycleSample sample;
  sample.model = static_cast<int>(models::ModelId::kResNet50);
  sample.node = static_cast<int>(hw::NodeType::kG3s_xlarge);
  std::int64_t id = 0;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    sample.request_id = id++;
    sample.arrival_ms = t;
    sample.submit_ms = t + 3.0;
    sample.start_ms = t + 5.0;
    // Alternate compliant / violating so both paths are exercised.
    sample.end_ms = t + ((id & 1) != 0 ? 95.0 : 295.0);
    sample.solo_ms = 88.0;
    sample.interference_ms = (id & 1) != 0 ? 2.0 : 202.0;
    benchmark::DoNotOptimize(engine.observe_request(sample));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttributionObserve);

void BM_SamplerDecision(benchmark::State& state) {
  // Per-lifecycle cost of the trace-sampling decision at --sample-rate=N:
  // one splitmix64 finalizer over the request id plus a modulo. This runs
  // once per completed request when sampling is on, so it must stay in the
  // few-nanosecond range for "sampling makes tracing cheaper" to hold.
  const obs::TraceSampler sampler(static_cast<std::uint32_t>(state.range(0)));
  std::int64_t id = 0;
  std::uint64_t kept = 0;
  for (auto _ : state) {
    kept += sampler.keep(id++, /*violated=*/false) ? 1 : 0;
  }
  benchmark::DoNotOptimize(kept);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerDecision)->Arg(8)->Arg(64);

void BM_RollupObserve(benchmark::State& state) {
  // Enabled-path cost per completion of the windowed rollup: one cell
  // lookup (one-entry cache in front of a std::map) plus a counter bump and
  // a sketch insert. Completions cluster within a (window, model, node)
  // cell, so the cache hit path dominates — this pins that cost.
  obs::RollupAggregator rollup;
  const int model = static_cast<int>(models::ModelId::kResNet50);
  const int node = static_cast<int>(hw::NodeType::kG3s_xlarge);
  const std::optional<telemetry::ViolationCause> compliant;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.37;
    rollup.observe_completion(t, model, node, 95.0 + (t * 0.001), compliant);
  }
  benchmark::DoNotOptimize(rollup.completions());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RollupObserve);

void BM_HealthDisabledHook(benchmark::State& state) {
  // The framework holds a HealthEngine* that is nullptr when the health
  // engine is off — the disabled hot-path cost is one branch, same
  // discipline as the null tracer/attribution hooks above.
  obs::HealthEngine* engine = nullptr;
  benchmark::DoNotOptimize(engine);
  double sink = 0.0;
  for (auto _ : state) {
    if (engine != nullptr) engine->observe_in_flight(0.0, 0, 1.0);
    sink += 1.0;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("null-engine branch");
}
BENCHMARK(BM_HealthDisabledHook);

void BM_HealthObserve(benchmark::State& state) {
  // Enabled-path cost per completed request: counter bumps plus a sketch
  // insert on the cluster-wide and the (model, node) key.
  obs::HealthEngine engine;
  const int model = static_cast<int>(models::ModelId::kResNet50);
  const int node = static_cast<int>(hw::NodeType::kG3s_xlarge);
  const std::optional<telemetry::ViolationCause> compliant;
  double t = 0.0;
  for (auto _ : state) {
    t += 0.37;
    engine.observe_completion(t, model, node, 95.0 + (t * 0.001), compliant);
  }
  benchmark::DoNotOptimize(engine.completions());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HealthObserve);

void BM_BurnRateEval(benchmark::State& state) {
  // Monitor-tick cost of one full detector evaluation over a warmed engine:
  // per key, two windowed burn lookups over the tick deque, the CUSUM and
  // z-score updates, and three lifecycle steps. Runs once per monitor tick
  // (default 500 ms of simulated time), so staying in the sub-microsecond
  // range keeps the engine invisible next to the simulation itself.
  obs::HealthEngine engine;
  const int node = static_cast<int>(hw::NodeType::kG3s_xlarge);
  const std::optional<telemetry::ViolationCause> compliant;
  double t = 0.0;
  auto tick = [&] {
    t += 500.0;
    for (int m = 0; m < 4; ++m) {
      engine.observe_completion(t - 250.0, m, node, 95.0, compliant);
      engine.observe_queue_depth(t, m, node, 5.0);
    }
    engine.observe_in_flight(t, node, 3.0);
    engine.evaluate(t);
  };
  for (int warm = 0; warm < 64; ++warm) tick();  // baselines armed, deque full
  for (auto _ : state) {
    tick();
  }
  benchmark::DoNotOptimize(engine.evaluations());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("5-key detector pass");
}
BENCHMARK(BM_BurnRateEval);

void BM_RequestPoolChurn(benchmark::State& state) {
  // The request-path storage churn of one dispatch round: a taken buffer of
  // 64 requests carved into 4 batches of 16, everything freed when the
  // batches complete. This is the pattern Gateway::take + Batcher::chunk +
  // the per-batch completion closures execute millions of times per run.
  cluster::Request proto;
  proto.id = RequestId{1};
  proto.model = models::ModelId::kResNet50;
  proto.arrival_ms = 1.0;
  cluster::RequestArena arena;
  for (auto _ : state) {
    for (int round = 0; round < 64; ++round) {
      cluster::RequestBlock taken = arena.acquire();
      for (int i = 0; i < 64; ++i) taken.push_back(proto);
      for (int begin = 0; begin < 64; begin += 16) {
        cluster::RequestBlock batch = arena.acquire();
        batch.append(taken.data() + begin, 16);
        benchmark::DoNotOptimize(batch.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
  state.SetLabel("take+chunk buffer churn");
}
BENCHMARK(BM_RequestPoolChurn);

void BM_GatewayTakeChunk(benchmark::State& state) {
  // End-to-end storage cost of the dispatch tick's front half: inject an
  // epoch, pop the arrived prefix, chunk it into batches.
  core::Gateway gateway(Rng(11));
  const auto model = models::ModelId::kResNet50;
  gateway.add_workload(model);
  core::Batcher batcher;
  cluster::IdAllocator ids;
  double t = 0.0;
  for (auto _ : state) {
    t += 100.0;
    gateway.inject(model, 256, t, 100.0);
    auto taken = gateway.take(model, 256, t + 100.0);
    const auto batches = batcher.chunk(std::move(taken), 32, t + 100.0, ids);
    benchmark::DoNotOptimize(batches.size());
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel("inject+take+chunk round");
}
BENCHMARK(BM_GatewayTakeChunk);

void BM_TracerBulkAppend(benchmark::State& state) {
  // Per-batch lifecycle recording: one completed 32-request batch fanning
  // out into 4 events per request.
  obs::TracerConfig config;
  config.event_capacity = 1 << 22;
  auto tracer = std::make_unique<obs::Tracer>(config);
  constexpr int kBatch = 32;
  std::vector<cluster::Request> requests(kBatch);
  std::int64_t id = 0;
  double t = 0.0;
  for (auto _ : state) {
    if (tracer->events().size() + 4 * kBatch > config.event_capacity) {
      state.PauseTiming();
      tracer = std::make_unique<obs::Tracer>(config);
      state.ResumeTiming();
    }
    t += 1.0;
    for (int i = 0; i < kBatch; ++i) {
      requests[static_cast<std::size_t>(i)].id = RequestId{id++};
      requests[static_cast<std::size_t>(i)].model = models::ModelId::kResNet50;
      requests[static_cast<std::size_t>(i)].arrival_ms = t;
    }
    tracer->record_batch_lifecycles(requests.data(), kBatch,
                                    models::ModelId::kResNet50,
                                    hw::NodeType::kG3s_xlarge,
                                    cluster::ShareMode::kSpatial, kBatch, 24, 8,
                                    t + 3.0, t + 5.0, t + 95.0, 88.0, 2.0, 0.0);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("batched lifecycle append");
}
BENCHMARK(BM_TracerBulkAppend);

void BM_TracerRecordLifecycle(benchmark::State& state) {
  // Enabled-path cost of the heaviest record: 4 events per request.
  obs::TracerConfig config;
  config.event_capacity = 1 << 22;
  auto tracer = std::make_unique<obs::Tracer>(config);
  std::int64_t id = 0;
  double t = 0.0;
  for (auto _ : state) {
    if (tracer->events().size() + 4 > config.event_capacity) {
      state.PauseTiming();
      tracer = std::make_unique<obs::Tracer>(config);
      state.ResumeTiming();
    }
    t += 1.0;
    tracer->record_request_lifecycle(id++, models::ModelId::kResNet50,
                                     hw::NodeType::kG3s_xlarge,
                                     cluster::ShareMode::kSpatial, 8, 6, 2, t,
                                     t + 3.0, t + 5.0, t + 95.0, 88.0, 2.0, 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerRecordLifecycle);

}  // namespace

// Custom main instead of benchmark_main: adds --json-out=FILE, which routes
// the standard google-benchmark JSON report to FILE (the perf-baseline
// tooling reads it; see tools/perf_baseline.py and BENCH_perf.json).
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      args.push_back("--benchmark_out=" + arg.substr(11));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
