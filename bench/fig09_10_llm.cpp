// Figures 9 & 10 — SLO compliance and cost for the four large language
// models (ALBERT, BERT, DistilBERT, Funnel-Transformer) under a light
// trace (peak 8 rps, batch <= 8; very high FBRs).
//
// Expected shape (paper): every cost-effective scheme selects pricier
// hardware than for vision (avg +86% cost); Paldia averages 99.54%
// compliance vs 97.73% for the ($) schemes, within 0.45% of the (P)
// schemes at ~29% of their cost.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 9/10: large language models (SLO compliance and cost)",
      "Paldia ~99.5% avg compliance vs ~97.7% for ($) schemes; ~72% cost "
      "savings vs (P) schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig09_10");
  const auto schemes = exp::main_schemes();
  const auto llms = models::Zoo::instance().language_models();

  std::vector<std::string> columns = {"Model"};
  for (const auto scheme : schemes) columns.push_back(exp::scheme_name(scheme));

  Table slo_table(columns);
  Table cost_table(columns);
  std::vector<double> slo_sums(schemes.size(), 0.0), cost_sums(schemes.size(), 0.0);

  for (const auto model : llms) {
    auto scenario = exp::llm_scenario(model, options.repetitions);
    std::vector<std::string> slo_row = {std::string(models::model_id_name(model))};
    std::vector<std::string> cost_row = slo_row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto metrics = observer.run(runner, scenario, schemes[s]).combined;
      slo_row.push_back(Table::percent(metrics.slo_compliance));
      cost_row.push_back(bench::dollars(metrics.cost));
      slo_sums[s] += metrics.slo_compliance;
      cost_sums[s] += metrics.cost;
    }
    slo_table.add_row(std::move(slo_row));
    cost_table.add_row(std::move(cost_row));
  }
  std::vector<std::string> slo_avg = {"AVERAGE"}, cost_avg = {"AVERAGE"};
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    slo_avg.push_back(Table::percent(slo_sums[s] / llms.size()));
    cost_avg.push_back(bench::dollars(cost_sums[s] / llms.size()));
  }
  slo_table.add_row(std::move(slo_avg));
  cost_table.add_row(std::move(cost_avg));

  std::cout << "--- Fig. 9: SLO compliance ---\n";
  slo_table.print(std::cout);
  std::cout << "\n--- Fig. 10: cost ---\n";
  cost_table.print(std::cout);
  return 0;
}
