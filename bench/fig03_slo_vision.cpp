// Figure 3 — SLO compliance of all schemes for all 12 vision models under
// the Azure serverless trace (peak 225 rps for high-FBR models, 450 rps
// for the rest; SLO 200 ms).
//
// Expected shape (paper): Paldia within ~0.8% of the (P) schemes
// (99.99% avg) and up to ~13.3% above the ($) schemes; INFless/Llama ($)
// suffers interference (e.g. 89.43% on ResNet 50), Molecule ($) queueing
// (e.g. 95.11% on VGG 19).
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 3: SLO compliance, all vision models x all schemes (Azure trace)",
      "Paldia ~99.5%+, within 0.8% of the (P) schemes; up to 13.3% above the "
      "($) schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig03");
  const auto schemes = exp::main_schemes();

  std::vector<std::string> columns = {"Model"};
  for (const auto scheme : schemes) columns.push_back(exp::scheme_name(scheme));
  Table table(columns);

  std::vector<double> sums(schemes.size(), 0.0);
  const auto vision = models::Zoo::instance().vision_models();
  for (const auto model : vision) {
    auto scenario = exp::azure_scenario(model, options.repetitions);
    std::vector<std::string> row = {std::string(models::model_id_name(model))};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto result = observer.run(runner, scenario, schemes[s]);
      row.push_back(Table::percent(result.combined.slo_compliance));
      sums[s] += result.combined.slo_compliance;
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> average = {"AVERAGE"};
  for (double sum : sums) {
    average.push_back(Table::percent(sum / static_cast<double>(vision.size())));
  }
  table.add_row(std::move(average));
  table.print(std::cout);
  return 0;
}
