// Figure 1 — motivation study: breakdown of tail (P99) latencies vs. SLO
// compliance for Time Shared Only (P)/($), MPS Only (P)/($) and Offline
// Hybrid, serving SENet 18 (~575 rps) and DenseNet 121 (~160 rps) together
// under the (relatively stable) Wiki trace, SLO 200 ms.
//
// Expected shape (paper): Offline Hybrid reaches >99% compliance on the
// cheap M60 while the ($) single-mechanism schemes lose up to ~16% (MPS
// Only: interference) / ~11% (Time Shared Only: queueing); the (P) schemes
// match Offline Hybrid only by paying >4x for the V100.
#include "bench/bench_common.hpp"
#include "src/trace/generators.hpp"
#include "src/trace/trace_ops.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 1: hybrid-sharing motivation (SENet 18 + DenseNet 121, Wiki trace)",
      "Offline Hybrid >99% SLO on the cheap M60; MPS Only ($) loses up to 16% "
      "to interference; Time Shared Only ($) up to ~11% to queueing; (P) "
      "schemes win marginally at >4x cost.");

  // Co-located workloads on one GPU, stable Wiki-style arrivals. SENet 18
  // carries ~3.5x DenseNet's rate (575 vs 160 rps in the paper; scaled to
  // the simulated M60's envelope so that the trade-off region is exercised).
  exp::Scenario scenario;
  scenario.name = "wiki-motivation";
  scenario.repetitions = options.repetitions;
  trace::WikiOptions wiki;
  wiki.days = 1;
  wiki.day_length_ms = options.full ? hours(24) : seconds(600);
  wiki.seed = 21;
  wiki.peak_rps = 340.0;
  scenario.workloads.push_back(
      exp::WorkloadSpec{models::ModelId::kSeNet18, trace::make_wiki_trace(wiki)});
  wiki.seed = 22;
  wiki.peak_rps = 105.0;
  scenario.workloads.push_back(
      exp::WorkloadSpec{models::ModelId::kDenseNet121, trace::make_wiki_trace(wiki)});

  // Offline sweep for the hybrid split (the paper's pre-computed best).
  const double fraction = exp::sweep_offline_spatial_fraction(scenario, 10);
  std::cout << "Offline sweep picked spatial fraction " << fraction << "\n\n";

  exp::SchemeFactoryOptions factory_options = bench::factory_options(options);
  factory_options.offline_spatial_fraction = fraction;
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options), factory_options);
  bench::RunObserver observer(options, "fig01");

  const std::vector<exp::SchemeId> schemes = {
      exp::SchemeId::kTimeSharedPerf, exp::SchemeId::kMpsOnlyPerf,
      exp::SchemeId::kTimeSharedCost, exp::SchemeId::kMpsOnlyCost,
      exp::SchemeId::kOfflineHybrid};

  for (std::size_t w = 0; w < scenario.workloads.size(); ++w) {
    const auto model = scenario.workloads[w].model;
    std::cout << "--- " << models::model_id_name(model) << " ---\n";
    Table table({"Scheme", "SLO compliance", "P99", "Min possible", "Queueing",
                 "Interference", "Cost"});
    for (const auto scheme : schemes) {
      const auto result = observer.run(runner, scenario, scheme);
      const auto& metrics = result.per_workload[w];
      const auto& breakdown = metrics.p99_breakdown;
      table.add_row({metrics.scheme, Table::percent(metrics.slo_compliance),
                     bench::ms(metrics.p99_latency_ms), bench::ms(breakdown.solo_ms),
                     bench::ms(breakdown.queue_ms),
                     bench::ms(breakdown.interference_ms),
                     bench::dollars(metrics.cost)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
