// Figure 7 — (a) goodput during the periods of highest request traffic for
// DenseNet 121 and (b) normalized average power consumption for Simplified
// DLA, Azure trace.
//
// Expected shape (paper): Paldia within ~5% of the ideal goodput while
// INFless/Llama ($) and Molecule ($) serve only 27% / 34% of the incoming
// surge within the SLO; Paldia consumes ~45% less power than the (P)
// schemes and only ~4% more than the ($) schemes.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 7: goodput during surges (DenseNet 121) and power (Simplified DLA)",
      "Paldia within ~5% of ideal goodput (vs 27%/34% for the $ schemes); "
      "~45% less power than the (P) schemes.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "fig07");

  {
    auto scenario = exp::azure_scenario(models::ModelId::kDenseNet121,
                                        options.repetitions);
    std::cout << "--- (a) Goodput during the busiest window, DenseNet 121 ---\n";
    Table table({"Scheme", "Offered (rps)", "Goodput (rps)", "Fraction of ideal"});
    for (const auto scheme : exp::main_schemes()) {
      const auto metrics = observer.run(runner, scenario, scheme).combined;
      const double fraction =
          metrics.offered_rps > 0 ? metrics.goodput_rps / metrics.offered_rps : 0.0;
      table.add_row({metrics.scheme, Table::num(metrics.offered_rps, 1),
                     Table::num(metrics.goodput_rps, 1), Table::percent(fraction)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    auto scenario = exp::azure_scenario(models::ModelId::kSimplifiedDla,
                                        options.repetitions);
    std::cout << "--- (b) Average power, Simplified DLA ---\n";
    const auto rows = bench::run_schemes(runner, scenario, exp::main_schemes(),
                                         observer, /*keep_cdf=*/false,
                                         &bench::shared_pool(options));
    double max_power = 0.0;
    for (const auto& row : rows) max_power = std::max(max_power, row.average_power);
    Table table({"Scheme", "Avg power (W)", "Normalized"});
    for (const auto& row : rows) {
      table.add_row({row.scheme, Table::num(row.average_power, 1),
                     Table::num(row.average_power / max_power, 3)});
    }
    table.print(std::cout);
  }
  return 0;
}
