// Multi-gateway fleet simulation driver: E serving endpoints (gateways)
// over a sliced generated catalog, one shared sharded simulator, millions
// of requests end-to-end. Default load: --catalog=gen:256 --endpoints=64
// with a ~1.2M-request Poisson trace routed across the gateways by the
// deterministic splitmix64 router.
//
// All exports (--trace-out / --metrics-out / --decisions-out / --rollup-out
// / --alerts-out / --report-out) are byte-identical across --threads and
// --shards; the wall-clock summary goes to stdout only. CI runs the small
// smoke (--catalog=gen:16 --endpoints=4) and byte-compares the sharded
// exports against the serial run.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.hpp"
#include "src/exp/fleet_sim.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/trace/generators.hpp"

using namespace paldia;

namespace {

struct FleetFlags {
  std::uint64_t requests = 1'200'000;  // Poisson mean over the whole fleet
  double duration_s = 300.0;
  std::uint64_t trace_seed = 4;
  exp::SchemeId scheme = exp::SchemeId::kPaldia;
  bool catalog_given = false;
  bool endpoints_given = false;
};

FleetFlags parse_fleet_flags(int argc, char** argv) {
  FleetFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--requests=", 0) == 0) {
      flags.requests = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--duration=", 0) == 0) {
      flags.duration_s = std::max(1.0, std::atof(arg.c_str() + 11));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.trace_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--scheme=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "paldia") {
        flags.scheme = exp::SchemeId::kPaldia;
      } else if (name == "infless-cost") {
        flags.scheme = exp::SchemeId::kInflessLlamaCost;
      } else if (name == "infless-perf") {
        flags.scheme = exp::SchemeId::kInflessLlamaPerf;
      } else if (name == "molecule-cost") {
        flags.scheme = exp::SchemeId::kMoleculeCost;
      } else if (name == "molecule-perf") {
        flags.scheme = exp::SchemeId::kMoleculePerf;
      } else {
        std::fprintf(stderr,
                     "error: --scheme wants paldia|infless-cost|infless-perf|"
                     "molecule-cost|molecule-perf, got '%s'\n", name.c_str());
        std::exit(1);
      }
    } else if (arg.rfind("--catalog=", 0) == 0) {
      flags.catalog_given = true;
    } else if (arg.rfind("--endpoints=", 0) == 0) {
      flags.endpoints_given = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "Fleet extras (on top of the shared bench flags):\n"
          "  --requests=N   Poisson mean arrivals over the run (default 1.2M)\n"
          "  --duration=S   trace duration in seconds (default 300)\n"
          "  --seed=S       Poisson trace seed (default 4)\n"
          "  --scheme=NAME  paldia|infless-cost|infless-perf|molecule-cost|\n"
          "                 molecule-perf (default paldia)\n"
          "Fleet defaults for the shared flags: --catalog=gen:256 "
          "--endpoints=64\n\n");
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  // Fleet extras first: on --help they print before parse_options' shared
  // usage text (which exits).
  const FleetFlags flags = parse_fleet_flags(argc, argv);
  auto options = bench::parse_options(argc, argv);
  // The shared-flag defaults suit the single-cluster figure drivers; the
  // fleet wants scale unless told otherwise.
  if (!flags.catalog_given) options.catalog = "gen:256";
  if (!flags.endpoints_given) options.endpoints = 64;

  std::string error;
  const auto gen = hw::parse_catalog_spec(options.catalog, &error);
  if (!gen.has_value() && !error.empty()) {
    std::fprintf(stderr, "error: --catalog: %s\n", error.c_str());
    return 1;
  }
  const hw::Catalog catalog =
      gen.has_value() ? hw::generate_catalog(*gen) : hw::Catalog::instance();
  const auto& zoo = models::Zoo::instance();

  int gpus = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.spec(hw::make_node_type(static_cast<int>(i))).is_gpu()) ++gpus;
  }

  // One fleet-wide Poisson workload, split across gateways by the router.
  exp::Scenario scenario;
  scenario.name = "fleet-poisson";
  trace::PoissonOptions poisson;
  poisson.duration_ms = flags.duration_s * 1000.0;
  poisson.mean_rps = static_cast<double>(flags.requests) / flags.duration_s;
  poisson.seed = flags.trace_seed;
  scenario.workloads.push_back(exp::WorkloadSpec{
      models::ModelId::kResNet50, trace::make_poisson_trace(poisson)});

  bench::print_header(
      "Fleet simulation: multi-gateway serving over a sliced catalog",
      "SLO-compliant serving holds up at fleet scale — E independent "
      "gateways over slices of one heterogeneous catalog, one shared "
      "sharded simulator.");
  std::printf("Catalog:   %s (%zu nodes: %d GPU, %zu CPU)\n",
              options.catalog.c_str(), catalog.size(), gpus,
              catalog.size() - static_cast<std::size_t>(gpus));
  std::printf("Fleet:     %d endpoints, scheme %s, shards=%d threads=%d\n",
              options.endpoints, exp::scheme_name(flags.scheme).c_str(),
              options.shards, options.threads);
  std::printf("Workload:  %llu arrivals over %.0f s (Poisson, seed %llu)\n\n",
              static_cast<unsigned long long>(
                  scenario.workloads[0].trace.total_requests()),
              flags.duration_s,
              static_cast<unsigned long long>(flags.trace_seed));

  exp::FleetSim fleet_sim(zoo, catalog, &bench::shared_pool(options),
                          bench::factory_options(options));
  bench::RunObserver observer(options, "fleet_sim");

  const auto wall_start = std::chrono::steady_clock::now();
  exp::FleetSimResult result;
  if (observer.tracing()) {
    obs::RunTrace trace = observer.make_trace();
    result = fleet_sim.run(scenario, flags.scheme, options.endpoints, &trace);
    observer.export_trace(trace, scenario.name,
                          exp::scheme_name(flags.scheme));
  } else {
    result = fleet_sim.run(scenario, flags.scheme, options.endpoints);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Stream endpoint rows then the fleet row — deterministic order, so the
  // metrics file byte-compares across --threads and --shards.
  for (const auto& endpoint : result.per_endpoint) {
    observer.record(endpoint.combined);
  }
  observer.record(result.combined);

  // Self-check: every routed arrival landed on exactly one gateway.
  std::uint64_t routed = 0;
  for (const auto& endpoint : result.per_endpoint) {
    routed += endpoint.combined.requests;
  }
  routed += result.unserved;
  if (routed != result.total_requests) {
    std::fprintf(stderr,
                 "FAIL: %llu arrivals routed but %llu served+unserved\n",
                 static_cast<unsigned long long>(result.total_requests),
                 static_cast<unsigned long long>(routed));
    return 1;
  }

  const auto& fleet_row = result.combined;
  Table table({"Endpoints", "Nodes", "Requests", "Unserved", "SLO attain",
               "P50", "P99", "Cost", "Power"});
  table.add_row({std::to_string(result.endpoints),
                 std::to_string(result.nodes),
                 std::to_string(fleet_row.requests),
                 std::to_string(result.unserved),
                 Table::percent(fleet_row.slo_compliance),
                 bench::ms(fleet_row.p50_latency_ms),
                 bench::ms(fleet_row.p99_latency_ms),
                 bench::dollars(fleet_row.cost),
                 Table::num(fleet_row.average_power, 1) + " W"});
  table.print(std::cout);

  std::printf("\nDrain: %llu events, %.1f s simulated, %.2f s wall, "
              "%.0f requests/s wall\n",
              static_cast<unsigned long long>(result.events_processed),
              result.end_ms / 1000.0, wall_s,
              static_cast<double>(result.total_requests) / std::max(1e-9, wall_s));
  return 0;
}
