// Table III — mixed workloads: 'regular' CPU-bound serverless co-residents
// (SeBS file compression, dynamic HTML generation, image thumbnailing)
// contend with inference serving on every node's host CPU.
//
// Expected shape (paper): cost-effective schemes lose up to ~10 points of
// compliance (direct CPU contention when serving on CPU nodes); Paldia
// holds ~95%; the (P) schemes are barely affected (99.99%) but cost 6.9x.
#include "bench/bench_common.hpp"

using namespace paldia;

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  bench::print_header(
      "Table III: interference from 'regular' serverless co-residents",
      "Molecule(P)/INFless(P) 99.99%, Molecule($) 76.44%, INFless($) 75.83%, "
      "Paldia 94.78%.");

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     &bench::shared_pool(options),
                     bench::factory_options(options));
  bench::RunObserver observer(options, "table03");
  auto scenario = exp::azure_scenario(models::ModelId::kResNet50,
                                      options.repetitions);
  scenario.coresidents = cluster::sebs_coresidents();

  Table table({"Scheme", "SLO compliance (mixed)", "SLO compliance (clean)",
               "Degradation"});
  auto clean_scenario = exp::azure_scenario(models::ModelId::kResNet50,
                                            options.repetitions);
  for (const auto scheme : exp::main_schemes()) {
    const auto mixed = observer.run(runner, scenario, scheme).combined;
    const auto clean = observer.run(runner, clean_scenario, scheme).combined;
    table.add_row({mixed.scheme, Table::percent(mixed.slo_compliance),
                   Table::percent(clean.slo_compliance),
                   Table::percent(clean.slo_compliance - mixed.slo_compliance)});
  }
  table.print(std::cout);
  return 0;
}
