// Quickstart: serve one ML inference workload under a bursty serverless
// trace with Paldia and with the INFless/Llama cost-effective baseline, and
// compare SLO compliance, tail latency and cost.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--threads=N]
#include <iostream>

#include "examples/example_common.hpp"
#include "src/common/table.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"

int main(int argc, char** argv) {
  using namespace paldia;
  const auto args = examples::parse_args(argc, argv);

  // 1. Describe the experiment: ResNet 50 under a 25-minute Azure-style
  //    serverless trace (peak 225 rps, SLO 200 ms), one repetition.
  exp::Scenario scenario = exp::azure_scenario(models::ModelId::kResNet50,
                                               /*repetitions=*/1);

  // 2. Run two schemes through the shared serving harness.
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     examples::pool_for(args));
  const auto paldia = runner.run(scenario, exp::SchemeId::kPaldia);
  const auto infless = runner.run(scenario, exp::SchemeId::kInflessLlamaCost);

  // 3. Compare.
  Table table({"Scheme", "SLO compliance", "P99 latency", "Mean latency", "Cost"});
  for (const auto* result : {&paldia, &infless}) {
    const auto& m = result->combined;
    table.add_row({m.scheme, Table::percent(m.slo_compliance),
                   Table::num(m.p99_latency_ms, 1) + " ms",
                   Table::num(m.mean_latency_ms, 1) + " ms",
                   "$" + Table::num(m.cost, 4)});
  }
  std::cout << "ResNet 50, Azure trace (" << scenario.workloads[0].trace.mean_rps()
            << " rps mean, " << scenario.workloads[0].trace.peak_rps()
            << " rps peak), SLO 200 ms\n\n";
  table.print(std::cout);
  return 0;
}
