// Surge tolerance: subject one model to an engineered surge (quiet
// baseline -> configurable spike) and watch each scheme's goodput and node
// choice through the surge window — the dynamics behind Fig. 7a.
//
//   ./build/examples/surge_tolerance [--threads=N] [peak-rps] [surge-seconds]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "examples/example_common.hpp"
#include "src/common/table.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"
#include "src/trace/trace_ops.hpp"

int main(int argc, char** argv) {
  using namespace paldia;
  const auto args = examples::parse_args(argc, argv);

  const double peak = examples::positional_double(args, 0, 225.0);
  const double surge_s = examples::positional_double(args, 1, 45.0);
  constexpr auto kModel = models::ModelId::kDenseNet121;

  // Build the trace by hand: 60 s quiet at 10 rps, a raised-cosine surge to
  // `peak`, then 60 s quiet again.
  const DurationMs epoch = 100.0;
  const DurationMs duration = seconds(120 + surge_s);
  std::vector<double> rates(static_cast<std::size_t>(duration / epoch), 10.0);
  const double t0 = seconds(60), t1 = seconds(60 + surge_s);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double t = i * epoch;
    if (t >= t0 && t < t1) {
      const double phase = (t - t0) / (t1 - t0) * 2.0 - 1.0;  // [-1, 1]
      rates[i] = 10.0 + (peak - 10.0) * 0.5 * (1.0 + std::cos(phase * M_PI));
    }
  }
  Rng rng(99);
  exp::Scenario scenario;
  scenario.name = "surge";
  scenario.repetitions = 2;
  scenario.goodput_window_ms = seconds(surge_s);
  scenario.workloads.push_back(exp::WorkloadSpec{
      kModel, trace::from_rate_profile("surge", epoch, rates, rng)});

  std::cout << "DenseNet 121, baseline 10 rps, surge to " << peak << " rps over "
            << surge_s << " s. Goodput measured over the surge window.\n\n";

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     examples::pool_for(args));
  Table table({"Scheme", "SLO", "Goodput (rps)", "Offered (rps)", "Served",
               "Cost"});
  for (const auto scheme : exp::main_schemes()) {
    const auto metrics = runner.run(scenario, scheme).combined;
    table.add_row(
        {metrics.scheme, Table::percent(metrics.slo_compliance),
         Table::num(metrics.goodput_rps, 1), Table::num(metrics.offered_rps, 1),
         Table::percent(metrics.offered_rps > 0
                            ? metrics.goodput_rps / metrics.offered_rps
                            : 1.0),
         "$" + Table::num(metrics.cost, 4)});
  }
  table.print(std::cout);
  return 0;
}
