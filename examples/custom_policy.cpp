// Extending the framework: write your own SchedulerPolicy and run it
// through the same harness as the paper's schemes.
//
// The toy policy below, "GreedyGpu", always grabs the cheapest GPU and
// splits requests 50/50 between MPS and the time-shared lane — no model,
// no prediction. Comparing it against Paldia shows what the Eq. (1)-driven
// split and the hardware selection actually buy.
#include <iostream>

#include "examples/example_common.hpp"
#include "src/common/table.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"

namespace {

using namespace paldia;

class GreedyGpuPolicy final : public core::SchedulerPolicy {
 public:
  GreedyGpuPolicy(const models::Zoo& zoo, const hw::Catalog& catalog)
      : SchedulerPolicy(catalog), zoo_(&zoo) {}

  std::string name() const override { return "GreedyGpu (50/50)"; }

  hw::NodeType select_hardware(const std::vector<core::DemandSnapshot>&,
                               hw::NodeType, TimeMs) override {
    return hw::NodeType::kG3s_xlarge;  // always the cheapest GPU
  }

  core::SplitPlan plan_dispatch(const core::DemandSnapshot& demand, hw::NodeType,
                                TimeMs) override {
    core::SplitPlan plan;
    const auto& model = zoo_->spec(demand.model);
    plan.batch_size = std::min(model.max_batch, std::max(1, demand.backlog));
    plan.spatial_requests = demand.backlog / 2;
    plan.temporal_requests = demand.backlog - plan.spatial_requests;
    return plan;
  }

 private:
  const models::Zoo* zoo_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace paldia;
  const auto args = examples::parse_args(argc, argv);
  auto scenario = exp::azure_scenario(models::ModelId::kResNet50, 2);

  // Custom policies plug into the same Framework the Runner uses.
  auto run_custom = [&](std::unique_ptr<core::SchedulerPolicy> policy) {
    sim::Simulator simulator;
    Rng rng(scenario.base_seed);
    cluster::Cluster cluster(simulator, rng.fork("cluster"));
    core::FrameworkConfig config = scenario.framework;
    config.initial_node = hw::NodeType::kG3s_xlarge;
    core::Framework framework(simulator, cluster, std::move(policy),
                              rng.fork("framework"), models::Zoo::instance(), config);
    framework.add_workload(scenario.workloads[0].model, scenario.workloads[0].trace);
    framework.run();
    const auto& slo = framework.slo(scenario.workloads[0].model);
    const auto& latency = framework.latency(scenario.workloads[0].model);
    return std::tuple{slo.compliance(), latency.p99_ms(), cluster.total_cost()};
  };

  const auto [greedy_slo, greedy_p99, greedy_cost] = run_custom(
      std::make_unique<GreedyGpuPolicy>(models::Zoo::instance(),
                                        hw::Catalog::instance()));

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     examples::pool_for(args));
  const auto paldia = runner.run(scenario, exp::SchemeId::kPaldia).combined;

  Table table({"Scheme", "SLO compliance", "P99", "Cost"});
  table.add_row({"GreedyGpu (50/50)", Table::percent(greedy_slo),
                 Table::num(greedy_p99, 1) + " ms", "$" + Table::num(greedy_cost, 4)});
  table.add_row({paldia.scheme, Table::percent(paldia.slo_compliance),
                 Table::num(paldia.p99_latency_ms, 1) + " ms",
                 "$" + Table::num(paldia.cost, 4)});
  table.print(std::cout);
  std::cout << "\nGreedyGpu ignores demand and the interference model; Paldia's "
               "Eq. (1) split plus hardware selection deliver the difference.\n";
  return 0;
}
