// Shared argument handling for the examples: a --threads=N knob that fans
// repetitions (and the y-sweep) out across a task-group ThreadPool.
//
// Parallelism only changes wall-clock time: every repetition derives its
// seed independently of execution order and lands in a fixed result slot,
// so the numbers printed with --threads=8 are bit-identical to --threads=1
// (see README "Deterministic parallelism").
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/thread_pool.hpp"

namespace examples {

struct Args {
  int threads = 1;
  /// Non-flag arguments in order (flags never shift positional indices).
  std::vector<std::string> positional;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::max(1, std::atoi(argv[i] + 10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--threads=N] [positional args]\n"
                << "  --threads=N  run repetitions on N worker threads\n"
                << "               (output is bit-identical to --threads=1)\n";
      std::exit(0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << " (try --help)\n";
      std::exit(2);
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

/// nullptr when --threads=1 (serial); otherwise a lazily-built pool that
/// lives for the rest of the process.
inline paldia::ThreadPool* pool_for(const Args& args) {
  static std::unique_ptr<paldia::ThreadPool> pool;
  if (args.threads > 1 && pool == nullptr) {
    pool = std::make_unique<paldia::ThreadPool>(args.threads);
  }
  return pool.get();
}

inline int positional_int(const Args& args, std::size_t index, int fallback) {
  if (index >= args.positional.size()) return fallback;
  return std::atoi(args.positional[index].c_str());
}

inline double positional_double(const Args& args, std::size_t index,
                                double fallback) {
  if (index >= args.positional.size()) return fallback;
  return std::atof(args.positional[index].c_str());
}

}  // namespace examples
