// Full inference-serving comparison: every scheme the paper evaluates,
// serving a model of your choice under the Azure serverless trace, with
// the complete metric set (SLO compliance, tail latency, cost, power,
// utilization, goodput).
//
//   ./build/examples/inference_serving [--threads=N] [model-index 0..15] [reps]
//
// Model indices follow paldia::models::ModelId (0 = ResNet 50).
#include <cstdlib>
#include <iostream>

#include "examples/example_common.hpp"
#include "src/common/table.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"

int main(int argc, char** argv) {
  using namespace paldia;
  const auto args = examples::parse_args(argc, argv);

  const int model_index =
      std::clamp(examples::positional_int(args, 0, 0), 0, models::kModelCount - 1);
  const int reps = std::max(1, examples::positional_int(args, 1, 2));
  const auto model = models::ModelId(model_index);
  const auto& spec = models::Zoo::instance().spec(model);

  exp::Scenario scenario = spec.domain == models::Domain::kLanguage
                               ? exp::llm_scenario(model, reps)
                               : exp::azure_scenario(model, reps);

  std::cout << "Serving " << spec.name << " (max batch " << spec.max_batch
            << ", SLO " << spec.slo_ms << " ms) under the Azure trace: peak "
            << scenario.workloads[0].trace.peak_rps() << " rps, mean "
            << scenario.workloads[0].trace.mean_rps() << " rps, "
            << scenario.workloads[0].trace.total_requests() << " requests.\n\n";

  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance(),
                     examples::pool_for(args));
  Table table({"Scheme", "SLO", "P99", "Mean", "Cost", "Power", "GPU util",
               "Goodput/offered"});
  for (const auto scheme : exp::main_schemes()) {
    const auto metrics = runner.run(scenario, scheme).combined;
    const double goodput_fraction =
        metrics.offered_rps > 0 ? metrics.goodput_rps / metrics.offered_rps : 1.0;
    table.add_row({metrics.scheme, Table::percent(metrics.slo_compliance),
                   Table::num(metrics.p99_latency_ms, 1) + " ms",
                   Table::num(metrics.mean_latency_ms, 1) + " ms",
                   "$" + Table::num(metrics.cost, 4),
                   Table::num(metrics.average_power, 0) + " W",
                   Table::percent(metrics.gpu_utilization),
                   Table::percent(goodput_fraction)});
  }
  table.print(std::cout);
  return 0;
}
