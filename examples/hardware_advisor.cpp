// Hardware advisor: for a model and a range of request rates, show what
// Paldia's Hardware Selection module (Algorithm 1) would pick and why —
// the predicted worst-case latency (T_max) per candidate node and the
// winning choice. A direct window into Section III/IV-A.
//
//   ./build/examples/hardware_advisor [--threads=N] [model-index 0..15]
#include <cstdlib>
#include <iostream>

#include "examples/example_common.hpp"
#include "src/common/table.hpp"
#include "src/core/hardware_selection.hpp"
#include "src/models/zoo.hpp"

int main(int argc, char** argv) {
  using namespace paldia;
  const auto args = examples::parse_args(argc, argv);

  const int model_index =
      std::clamp(examples::positional_int(args, 0, 0), 0, models::kModelCount - 1);
  const auto model = models::ModelId(model_index);

  models::ProfileTable profile(hw::Catalog::instance());
  // --threads=N parallelizes the per-node y-sweep; the best split found is
  // the same either way (the sweep space is scanned exhaustively).
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2),
                                  examples::pool_for(args));
  core::HardwareSelection selection(models::Zoo::instance(), hw::Catalog::instance(),
                                    profile, optimizer);

  std::cout << "Hardware advisor for " << models::model_id_name(model)
            << " (SLO 200 ms). T_max = predicted worst-case completion per "
               "Eq. (1); '-' = single request already busts the SLO.\n\n";

  std::vector<std::string> columns = {"Rate (rps)"};
  for (const auto& spec : hw::Catalog::instance().all()) {
    columns.push_back(spec.display_name());
  }
  columns.push_back("CHOSEN");
  Table table(columns);

  for (const Rps rate : {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 250.0, 500.0, 800.0}) {
    core::DemandSnapshot demand;
    demand.model = model;
    demand.observed_rps = demand.predicted_rps = demand.smoothed_rps = rate;

    std::vector<std::string> row = {Table::num(rate, 0)};
    for (int i = 0; i < hw::kNodeTypeCount; ++i) {
      const auto choice = selection.evaluate(hw::NodeType(i), {demand});
      const auto& spec = hw::Catalog::instance().spec(hw::NodeType(i));
      if (profile.lookup(models::Zoo::instance().spec(model), hw::NodeType(i), 1)
              .solo_ms > 200.0) {
        row.push_back("-");
      } else {
        std::string cell = Table::num(choice.t_max_ms, 0) + " ms";
        if (!choice.feasible) cell += " !";
        if (spec.is_gpu() && choice.best_y > 0) {
          cell += " y=" + std::to_string(choice.best_y);
        }
        row.push_back(cell);
      }
    }
    row.push_back(std::string(hw::node_type_name(selection.choose({demand}).node)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n('!' = infeasible: predicted T_max above the SLO budget; "
               "y = requests the hybrid split would queue)\n";
  return 0;
}
