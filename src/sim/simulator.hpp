// Simulation driver: advances simulated time by draining the event queue.
//
// All framework components (gateway, batcher, autoscaler, devices, trackers)
// are wired to one Simulator and communicate through scheduled callbacks.
// The loop is single-threaded, so no component needs internal locking.
#pragma once

#include <functional>

#include "src/common/units.hpp"
#include "src/sim/event_queue.hpp"

namespace paldia::sim {

class Simulator {
 public:
  TimeMs now() const { return now_; }

  /// Schedule fn `delay` ms from now. Negative delays clamp to now (a
  /// zero-delay event runs after currently-pending same-time events).
  EventHandle schedule_in(DurationMs delay, EventFn fn);

  /// Schedule fn at absolute time t (clamped to now).
  EventHandle schedule_at(TimeMs t, EventFn fn);

  /// Schedule fn every `period` ms starting at `start`. fn receives no
  /// arguments; read now() for the tick time. Returns a handle cancelling
  /// the *next* occurrence (and thereby the whole series).
  class PeriodicHandle {
   public:
    void cancel();

   private:
    friend class Simulator;
    std::shared_ptr<bool> stopped_ = std::make_shared<bool>(false);
  };
  PeriodicHandle schedule_every(TimeMs start, DurationMs period, EventFn fn);

  /// Run until the queue is empty or simulated time would pass `until`.
  /// Events exactly at `until` still run. Returns the final now().
  TimeMs run_until(TimeMs until);

  /// Run until the queue is fully drained.
  TimeMs run_to_completion();

  /// Drop every pending event and reset the clock (for reuse in tests).
  void reset();

  std::size_t events_processed() const { return events_processed_; }

 private:
  EventQueue queue_;
  TimeMs now_ = 0.0;
  std::size_t events_processed_ = 0;
};

}  // namespace paldia::sim
