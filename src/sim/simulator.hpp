// Simulation driver: advances simulated time by draining the event queue.
//
// All framework components (gateway, batcher, autoscaler, devices, trackers)
// are wired to one Simulator and communicate through scheduled callbacks.
// The loop is single-threaded, so no component needs internal locking.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/inline_function.hpp"
#include "src/common/units.hpp"
#include "src/sim/event_queue.hpp"

namespace paldia::sim {

class Simulator {
 public:
  TimeMs now() const { return now_; }

  /// Schedule fn `delay` ms from now. Negative delays clamp to now (a
  /// zero-delay event runs after currently-pending same-time events).
  EventHandle schedule_in(DurationMs delay, EventFn fn);

  /// Schedule fn at absolute time t (clamped to now).
  EventHandle schedule_at(TimeMs t, EventFn fn);

  /// Callback of a repeating event; returns whether to keep firing.
  using RepeatFn = InlineFunction<bool()>;

  /// Handle cancelling a repeating series scheduled with schedule_repeating
  /// or schedule_every. Copyable; cancelling twice — or after the series
  /// already stopped and its slot was recycled — is a harmless no-op
  /// (generation-checked, like EventHandle).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();

   private:
    friend class Simulator;
    PeriodicHandle(Simulator* simulator, std::uint32_t index,
                   std::uint32_t generation)
        : simulator_(simulator), index_(index), generation_(generation) {}

    Simulator* simulator_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
  };

  /// First-class repeating event: fn fires at `start` and then every
  /// `period` ms for as long as it returns true (read now() for the tick
  /// time). The series owns one pooled slot and re-arms a thin queue entry
  /// after each firing — no per-firing allocation, unlike the previous
  /// shared_ptr<std::function> self-rescheduling chain.
  PeriodicHandle schedule_repeating(TimeMs start, DurationMs period,
                                    RepeatFn fn);

  /// Schedule fn every `period` ms starting at `start`, until the returned
  /// handle is cancelled. fn receives no arguments; read now() for the tick
  /// time. Sugar over schedule_repeating with an always-true result.
  template <typename F>
  PeriodicHandle schedule_every(TimeMs start, DurationMs period, F&& fn) {
    return schedule_repeating(start, period,
                              [f = std::forward<F>(fn)]() mutable {
                                f();
                                return true;
                              });
  }

  /// Run until the queue is empty or simulated time would pass `until`.
  /// Events exactly at `until` still run. Returns the final now().
  TimeMs run_until(TimeMs until);

  /// Run until the queue is fully drained.
  TimeMs run_to_completion();

  /// Drop every pending event and repeating series and reset the clock (for
  /// reuse in tests). Outstanding handles are invalidated, never dangling
  /// into recycled slots: generations are bumped, not restarted.
  void reset();

  std::size_t events_processed() const { return events_processed_; }

 private:
  static constexpr std::uint32_t kNoPeriodic = 0xffffffffu;

  /// Pooled state of one repeating series; the queue only ever holds a thin
  /// {this, index, generation} re-arming event pointing at it.
  struct PeriodicTask {
    RepeatFn fn;
    DurationMs period = 0.0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoPeriodic;
    bool active = false;
  };

  void fire_periodic(std::uint32_t index, std::uint32_t generation);
  bool cancel_periodic(std::uint32_t index, std::uint32_t generation);
  std::uint32_t acquire_periodic_slot();
  void release_periodic_slot(std::uint32_t index);

  EventQueue queue_;
  std::vector<PeriodicTask> periodic_;
  std::uint32_t periodic_free_head_ = kNoPeriodic;
  TimeMs now_ = 0.0;
  std::size_t events_processed_ = 0;
};

}  // namespace paldia::sim
