// Simulation driver: advances simulated time by draining the event queue.
//
// All framework components (gateway, batcher, autoscaler, devices, trackers)
// are wired to one Simulator and communicate through scheduled callbacks.
// Callbacks always execute single-threaded in global (time, sequence) order,
// so no component needs internal locking.
//
// Sharded mode (ShardOptions.shards > 1) partitions the event population
// into per-shard pooled queues — shard 0 is the control plane (gateway,
// dispatch/monitor ticks, trackers, failure injector), the remaining shards
// hold per-node-group device timers — and drains them in conservative
// lookahead epochs:
//
//   1. Pick the next epoch window [t0, t0 + lookahead], t0 = earliest event
//      across shards.
//   2. Extract every event inside the window from each shard queue
//      independently (batched; in parallel on the task-group executor when
//      a pool is attached). Extraction only touches that shard's heap and
//      slab, so the parallel phase shares nothing.
//   3. Execute the extracted runs as one k-way merge by (time, sequence).
//      Sequence numbers are stamped by a single global counter at
//      schedule() time, exactly like the serial per-queue counter, so the
//      merged order equals the serial drain order event for event — which
//      is what keeps every export byte-identical to --shards=1.
//   4. Callbacks scheduled *inside* the window join the merge immediately
//      (an insert calendar, so zero-delay chains keep their serial order);
//      callbacks scheduled *past* the window are cross-shard mailbox
//      messages, committed at the barrier. Their (time, sequence) stamps —
//      assigned when scheduled — already define the total order, so commit
//      order is immaterial and the mailbox is logically
//      (time, shard, sequence) ordered without a sort.
//
// The lookahead never affects correctness — intra-window schedules are
// merged exactly, not deferred — it only sizes how much queue maintenance
// each barrier epoch can batch. Larger windows amortize extraction; the
// Framework sets it to the fastest control-plane cadence that crosses into
// node shards (the dispatch interval).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/inline_function.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/units.hpp"
#include "src/sim/event_queue.hpp"

namespace paldia::obs {
class Profiler;
}  // namespace paldia::obs

namespace paldia::sim {

struct ShardOptions {
  /// Number of event shards. 1 = the classic serial drain (default);
  /// values above 1 enable the epoch/mailbox machinery.
  int shards = 1;
  /// Conservative lookahead window in simulated ms. Purely a batching knob
  /// (see file comment); must be > 0. Framework overrides it with the
  /// minimum cross-shard cadence.
  DurationMs lookahead_ms = 20.0;
  /// Optional executor for the per-shard extraction phase. Null keeps the
  /// epochs fully single-threaded (useful under TSan and on small fleets,
  /// and the required setting for byte-identity checks on 1-core boxes —
  /// though results are identical either way).
  ThreadPool* pool = nullptr;
};

class Simulator {
 public:
  Simulator() : Simulator(ShardOptions{}) {}
  explicit Simulator(const ShardOptions& options);

  TimeMs now() const { return now_; }

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Shard for the entity_index-th node-like entity: entities round-robin
  /// over the worker shards 1..shards-1; shard 0 is reserved for the
  /// control plane. With one shard everything maps to 0.
  int shard_of(int entity_index) const {
    const int workers = shard_count() - 1;
    if (workers <= 0) return 0;
    return 1 + entity_index % workers;
  }

  /// Override the conservative lookahead window (> 0). Called by the
  /// Framework once the control-plane cadences are known.
  void set_lookahead(DurationMs lookahead_ms);
  DurationMs lookahead_ms() const { return lookahead_ms_; }

  /// Schedule fn `delay` ms from now on `shard`. Negative delays clamp to
  /// now (a zero-delay event runs after currently-pending same-time events).
  EventHandle schedule_in(DurationMs delay, EventFn fn, int shard = 0);

  /// Schedule fn at absolute time t (clamped to now) on `shard`.
  EventHandle schedule_at(TimeMs t, EventFn fn, int shard = 0);

  /// Callback of a repeating event; returns whether to keep firing.
  using RepeatFn = InlineFunction<bool()>;

  /// Handle cancelling a repeating series scheduled with schedule_repeating
  /// or schedule_every. Copyable; cancelling twice — or after the series
  /// already stopped and its slot was recycled — is a harmless no-op
  /// (generation-checked, like EventHandle).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();

   private:
    friend class Simulator;
    PeriodicHandle(Simulator* simulator, std::uint32_t index,
                   std::uint32_t generation)
        : simulator_(simulator), index_(index), generation_(generation) {}

    Simulator* simulator_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
  };

  /// First-class repeating event: fn fires at `start` and then every
  /// `period` ms for as long as it returns true (read now() for the tick
  /// time). The series owns one pooled slot and re-arms a thin queue entry
  /// after each firing — no per-firing allocation, unlike the previous
  /// shared_ptr<std::function> self-rescheduling chain. Every firing lands
  /// on `shard`.
  PeriodicHandle schedule_repeating(TimeMs start, DurationMs period,
                                    RepeatFn fn, int shard = 0);

  /// Schedule fn every `period` ms starting at `start`, until the returned
  /// handle is cancelled. fn receives no arguments; read now() for the tick
  /// time. Sugar over schedule_repeating with an always-true result.
  template <typename F>
  PeriodicHandle schedule_every(TimeMs start, DurationMs period, F&& fn,
                                int shard = 0) {
    return schedule_repeating(start, period,
                              [f = std::forward<F>(fn)]() mutable {
                                f();
                                return true;
                              },
                              shard);
  }

  /// Run until the queues are empty or simulated time would pass `until`.
  /// Events exactly at `until` still run. Returns the final now().
  TimeMs run_until(TimeMs until);

  /// Run until every queue is fully drained.
  TimeMs run_to_completion();

  /// Drop every pending event and repeating series and reset the clock (for
  /// reuse in tests). Outstanding handles are invalidated, never dangling
  /// into recycled slots: generations are bumped, not restarted.
  void reset();

  /// Number of callbacks actually fired (cancelled events never count) —
  /// identical across shard counts for the same workload.
  std::size_t events_processed() const { return events_processed_; }

  /// Attach a self-profiler (nullptr disables; see obs/profiler.hpp). Epoch
  /// extraction is timed as a whole from the driver thread — including the
  /// parallel fan-out — so the profiler is never touched off-thread.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

 private:
  static constexpr std::uint32_t kNoPeriodic = 0xffffffffu;

  /// Pooled state of one repeating series; the queue only ever holds a thin
  /// {this, index, generation} re-arming event pointing at it.
  struct PeriodicTask {
    RepeatFn fn;
    DurationMs period = 0.0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoPeriodic;
    std::uint32_t shard = 0;
    bool active = false;
  };

  /// A staged entry bound for `shard`'s queue: an extracted epoch-run
  /// entry, an intra-window insert (merged into the executing epoch
  /// immediately) or a cross-shard mailbox message (committed at the
  /// barrier).
  using Staged = EventQueue::Tagged;

  /// One event shard: a pooled queue plus its current epoch run.
  struct Shard {
    EventQueue queue;
    std::vector<Staged> run;
  };

  /// Intra-window inserts of the executing epoch, consumed in exact global
  /// (time, sequence) order. A bucketed calendar over [epoch start, window
  /// end]: a push appends to its time bucket in O(1), and the merge loop
  /// only ever needs the global minimum, which lives in the earliest
  /// non-empty bucket — kept as a small binary heap that stays cache-hot.
  /// The previous single epoch-wide heap paid one multi-megabyte sift per
  /// reschedule once fleet-scale timer populations pushed most events
  /// through the insert path.
  class InsertCalendar {
   public:
    /// Arm for one epoch spanning [start, end]. Requires empty() — the merge
    /// drains every insert before the epoch barrier.
    void begin(TimeMs start, TimeMs end);

    void push(const Staged& staged) {
      const std::size_t index =
          inv_width_ > 0.0
              ? std::min(kBuckets - 1,
                         static_cast<std::size_t>(
                             (staged.entry.time - start_) * inv_width_))
              : 0;
      if (index <= current_) {
        heap_.push_back(staged);
        std::push_heap(heap_.begin(), heap_.end(), StagedLater{});
      } else {
        buckets_[index].push_back(staged);
      }
      ++size_;
    }

    bool empty() const { return size_ == 0; }

    /// Global (time, sequence) minimum; requires !empty().
    const Staged& front() {
      if (heap_.empty()) advance();
      return heap_.front();
    }

    Staged pop() {
      if (heap_.empty()) advance();
      std::pop_heap(heap_.begin(), heap_.end(), StagedLater{});
      const Staged staged = heap_.back();
      heap_.pop_back();
      --size_;
      return staged;
    }

   private:
    static constexpr std::size_t kBuckets = 256;

    /// Strict-weak "later" order on staged entries (max-heap comparator
    /// yielding a (time, sequence) min-heap). Sequences are globally
    /// unique, so this never declares a tie.
    struct StagedLater {
      bool operator()(const Staged& a, const Staged& b) const {
        if (a.entry.time != b.entry.time) return a.entry.time > b.entry.time;
        return a.entry.sequence > b.entry.sequence;
      }
    };

    /// Move current_ to the next non-empty bucket and heapify it. Only
    /// called with size_ > 0 and heap_ empty, so termination is guaranteed.
    void advance();

    std::array<std::vector<Staged>, kBuckets> buckets_;
    std::vector<Staged> heap_;  // current bucket, min-heap by (time, sequence)
    std::size_t current_ = 0;
    std::size_t size_ = 0;
    TimeMs start_ = 0.0;
    double inv_width_ = 0.0;  // buckets per simulated ms; 0 = zero-width
  };

  /// Half-open range over staged entries, the unit of the tournament merge
  /// in drain_epoch. Spans point either into a shard's run (round 0, and
  /// the zero-copy single-run case) or into one of the ping-pong merge
  /// buffers.
  struct Span {
    const Staged* begin;
    const Staged* end;
  };

  void fire_periodic(std::uint32_t index, std::uint32_t generation);
  bool cancel_periodic(std::uint32_t index, std::uint32_t generation);
  std::uint32_t acquire_periodic_slot();
  void release_periodic_slot(std::uint32_t index);

  /// Earliest live event time across all shards (kTimeNever when drained).
  TimeMs earliest_event_time();

  /// Run one epoch: extract every event in (-inf, window] per shard, then
  /// execute the merged runs in global (time, sequence) order, then flush
  /// the mailbox back into the shard queues.
  void drain_epoch(TimeMs window);

  TimeMs run_serial(TimeMs until);
  TimeMs run_sharded(TimeMs until);

  std::vector<Shard> shards_;
  std::vector<PeriodicTask> periodic_;
  std::uint32_t periodic_free_head_ = kNoPeriodic;
  TimeMs now_ = 0.0;
  std::size_t events_processed_ = 0;

  // Sharded-mode state. next_sequence_ is the global stamp that makes the
  // cross-shard merge a total order; unused (the queue keeps its own
  // counter) when shards == 1.
  DurationMs lookahead_ms_ = 20.0;
  ThreadPool* pool_ = nullptr;
  std::uint64_t next_sequence_ = 0;
  bool in_epoch_ = false;
  TimeMs window_end_ = 0.0;
  InsertCalendar inserts_;
  std::vector<Staged> mailbox_;
  // Tournament-merge scratch, reused across epochs: spans of the current /
  // next round and the two buffers the rounds ping-pong between.
  std::vector<Span> spans_;
  std::vector<Span> next_spans_;
  std::vector<Staged> merge_front_;
  std::vector<Staged> merge_back_;
  obs::Profiler* profiler_ = nullptr;  // self-profiling hooks (optional)
};

}  // namespace paldia::sim
