// Simulation driver: advances simulated time by draining the event queue.
//
// All framework components (gateway, batcher, autoscaler, devices, trackers)
// are wired to one Simulator and communicate through scheduled callbacks.
// Callbacks always execute single-threaded in global (time, sequence) order,
// so no component needs internal locking.
//
// Sharded mode (ShardOptions.shards > 1) partitions the event population
// into per-shard pooled queues — shard 0 is the control plane (gateway,
// dispatch/monitor ticks, trackers, failure injector), the remaining shards
// hold per-node-group device timers — and drains them in conservative
// lookahead epochs:
//
//   1. Pick the next epoch window [t0, t0 + lookahead], t0 = earliest event
//      across shards.
//   2. Extract every event inside the window from each shard queue
//      independently (batched; in parallel on the task-group executor when
//      a pool is attached). Extraction only touches that shard's heap and
//      slab, so the parallel phase shares nothing.
//   3. Execute the extracted runs as one k-way merge by (time, sequence).
//      Sequence numbers are stamped by a single global counter at
//      schedule() time, exactly like the serial per-queue counter, so the
//      merged order equals the serial drain order event for event — which
//      is what keeps every export byte-identical to --shards=1.
//   4. Callbacks scheduled *inside* the window join the merge immediately
//      (an insert heap, so zero-delay chains keep their serial order);
//      callbacks scheduled *past* the window are cross-shard mailbox
//      messages, committed at the barrier. Their (time, sequence) stamps —
//      assigned when scheduled — already define the total order, so commit
//      order is immaterial and the mailbox is logically
//      (time, shard, sequence) ordered without a sort.
//
// The lookahead never affects correctness — intra-window schedules are
// merged exactly, not deferred — it only sizes how much queue maintenance
// each barrier epoch can batch. Larger windows amortize extraction; the
// Framework sets it to the fastest control-plane cadence that crosses into
// node shards (the dispatch interval).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/inline_function.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/units.hpp"
#include "src/sim/event_queue.hpp"

namespace paldia::obs {
class Profiler;
}  // namespace paldia::obs

namespace paldia::sim {

struct ShardOptions {
  /// Number of event shards. 1 = the classic serial drain (default);
  /// values above 1 enable the epoch/mailbox machinery.
  int shards = 1;
  /// Conservative lookahead window in simulated ms. Purely a batching knob
  /// (see file comment); must be > 0. Framework overrides it with the
  /// minimum cross-shard cadence.
  DurationMs lookahead_ms = 20.0;
  /// Optional executor for the per-shard extraction phase. Null keeps the
  /// epochs fully single-threaded (useful under TSan and on small fleets,
  /// and the required setting for byte-identity checks on 1-core boxes —
  /// though results are identical either way).
  ThreadPool* pool = nullptr;
};

class Simulator {
 public:
  Simulator() : Simulator(ShardOptions{}) {}
  explicit Simulator(const ShardOptions& options);

  TimeMs now() const { return now_; }

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Shard for the entity_index-th node-like entity: entities round-robin
  /// over the worker shards 1..shards-1; shard 0 is reserved for the
  /// control plane. With one shard everything maps to 0.
  int shard_of(int entity_index) const {
    const int workers = shard_count() - 1;
    if (workers <= 0) return 0;
    return 1 + entity_index % workers;
  }

  /// Override the conservative lookahead window (> 0). Called by the
  /// Framework once the control-plane cadences are known.
  void set_lookahead(DurationMs lookahead_ms);
  DurationMs lookahead_ms() const { return lookahead_ms_; }

  /// Schedule fn `delay` ms from now on `shard`. Negative delays clamp to
  /// now (a zero-delay event runs after currently-pending same-time events).
  EventHandle schedule_in(DurationMs delay, EventFn fn, int shard = 0);

  /// Schedule fn at absolute time t (clamped to now) on `shard`.
  EventHandle schedule_at(TimeMs t, EventFn fn, int shard = 0);

  /// Callback of a repeating event; returns whether to keep firing.
  using RepeatFn = InlineFunction<bool()>;

  /// Handle cancelling a repeating series scheduled with schedule_repeating
  /// or schedule_every. Copyable; cancelling twice — or after the series
  /// already stopped and its slot was recycled — is a harmless no-op
  /// (generation-checked, like EventHandle).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();

   private:
    friend class Simulator;
    PeriodicHandle(Simulator* simulator, std::uint32_t index,
                   std::uint32_t generation)
        : simulator_(simulator), index_(index), generation_(generation) {}

    Simulator* simulator_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
  };

  /// First-class repeating event: fn fires at `start` and then every
  /// `period` ms for as long as it returns true (read now() for the tick
  /// time). The series owns one pooled slot and re-arms a thin queue entry
  /// after each firing — no per-firing allocation, unlike the previous
  /// shared_ptr<std::function> self-rescheduling chain. Every firing lands
  /// on `shard`.
  PeriodicHandle schedule_repeating(TimeMs start, DurationMs period,
                                    RepeatFn fn, int shard = 0);

  /// Schedule fn every `period` ms starting at `start`, until the returned
  /// handle is cancelled. fn receives no arguments; read now() for the tick
  /// time. Sugar over schedule_repeating with an always-true result.
  template <typename F>
  PeriodicHandle schedule_every(TimeMs start, DurationMs period, F&& fn,
                                int shard = 0) {
    return schedule_repeating(start, period,
                              [f = std::forward<F>(fn)]() mutable {
                                f();
                                return true;
                              },
                              shard);
  }

  /// Run until the queues are empty or simulated time would pass `until`.
  /// Events exactly at `until` still run. Returns the final now().
  TimeMs run_until(TimeMs until);

  /// Run until every queue is fully drained.
  TimeMs run_to_completion();

  /// Drop every pending event and repeating series and reset the clock (for
  /// reuse in tests). Outstanding handles are invalidated, never dangling
  /// into recycled slots: generations are bumped, not restarted.
  void reset();

  /// Number of callbacks actually fired (cancelled events never count) —
  /// identical across shard counts for the same workload.
  std::size_t events_processed() const { return events_processed_; }

  /// Attach a self-profiler (nullptr disables; see obs/profiler.hpp). Epoch
  /// extraction is timed as a whole from the driver thread — including the
  /// parallel fan-out — so the profiler is never touched off-thread.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

 private:
  static constexpr std::uint32_t kNoPeriodic = 0xffffffffu;

  /// Pooled state of one repeating series; the queue only ever holds a thin
  /// {this, index, generation} re-arming event pointing at it.
  struct PeriodicTask {
    RepeatFn fn;
    DurationMs period = 0.0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoPeriodic;
    std::uint32_t shard = 0;
    bool active = false;
  };

  /// One event shard: a pooled queue plus its current epoch run.
  struct Shard {
    EventQueue queue;
    std::vector<EventQueue::Entry> run;
    std::size_t cursor = 0;
  };

  /// A staged entry bound for `shard`'s queue: either an intra-window
  /// insert (merged into the executing epoch immediately) or a cross-shard
  /// mailbox message (committed at the barrier).
  struct Staged {
    EventQueue::Entry entry;
    std::uint32_t shard;
  };

  /// Compact cursor of one shard's sorted epoch run, scanned by the merge
  /// loop. Keeping the head keys contiguous here (instead of chasing
  /// Shard::run[cursor] through each ~100-byte Shard) makes the per-event
  /// min-scan a walk over a few L1 cache lines.
  struct RunHead {
    TimeMs time;
    std::uint64_t sequence;
    std::uint32_t shard;
  };

  void fire_periodic(std::uint32_t index, std::uint32_t generation);
  bool cancel_periodic(std::uint32_t index, std::uint32_t generation);
  std::uint32_t acquire_periodic_slot();
  void release_periodic_slot(std::uint32_t index);

  /// Earliest live event time across all shards (kTimeNever when drained).
  TimeMs earliest_event_time();

  /// Run one epoch: extract every event in (-inf, window] per shard, then
  /// execute the merged runs in global (time, sequence) order, then flush
  /// the mailbox back into the shard queues.
  void drain_epoch(TimeMs window);

  TimeMs run_serial(TimeMs until);
  TimeMs run_sharded(TimeMs until);

  std::vector<Shard> shards_;
  std::vector<PeriodicTask> periodic_;
  std::uint32_t periodic_free_head_ = kNoPeriodic;
  TimeMs now_ = 0.0;
  std::size_t events_processed_ = 0;

  // Sharded-mode state. next_sequence_ is the global stamp that makes the
  // cross-shard merge a total order; unused (the queue keeps its own
  // counter) when shards == 1.
  DurationMs lookahead_ms_ = 20.0;
  ThreadPool* pool_ = nullptr;
  std::uint64_t next_sequence_ = 0;
  bool in_epoch_ = false;
  TimeMs window_end_ = 0.0;
  std::vector<Staged> inserts_;  // min-heap by (time, sequence)
  std::vector<Staged> mailbox_;
  std::vector<RunHead> heads_;  // merge-scan scratch, reused across epochs
  obs::Profiler* profiler_ = nullptr;  // self-profiling hooks (optional)
};

}  // namespace paldia::sim
