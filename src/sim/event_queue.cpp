#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace paldia::sim {

void EventHandle::cancel() {
  if (queue_ != nullptr && queue_->cancel_entry(index_, generation_)) {
    cancelled_ = true;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = EventFn{};
  ++slot.generation;  // invalidates every outstanding handle to this slot
  slot.state = SlotState::kFree;
  slot.next_free = free_head_;
  free_head_ = index;
}

EventHandle EventQueue::schedule(TimeMs t, EventFn fn) {
  const Entry entry = stage(t, next_sequence_++, std::move(fn));
  commit(entry);
  return handle_for(entry);
}

EventQueue::Entry EventQueue::stage(TimeMs t, std::uint64_t sequence,
                                    EventFn fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.state = SlotState::kPending;
  ++live_;
  return Entry{t, sequence, index, slot.generation};
}

void EventQueue::commit(const Entry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::cancel_entry(std::uint32_t index, std::uint32_t generation) {
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.generation != generation) return false;  // slot already recycled
  if (slot.state == SlotState::kPending) {
    slot.state = SlotState::kCancelled;
    slot.fn = EventFn{};  // release captures now; the heap tombstone is inert
    --live_;
    return true;
  }
  if (slot.state == SlotState::kExtracted) {
    // The event sits in an epoch run awaiting replay; live_ already excludes
    // it, so only the state flips. ready() collects the slot when the run
    // reaches it.
    slot.state = SlotState::kCancelled;
    slot.fn = EventFn{};
    return true;
  }
  return false;  // already cancelled
}

EventQueue::Entry EventQueue::take_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry item = heap_.back();
  heap_.pop_back();
  return item;
}

void EventQueue::collect_dead(const Entry& entry) {
  // A generation mismatch means the slot was already recycled (the item is
  // a pure tombstone); a match means this collects the cancelled entry.
  if (slots_[entry.index].generation == entry.generation) {
    release_slot(entry.index);
  }
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    const Slot& slot = slots_[top.index];
    if (slot.generation == top.generation && slot.state == SlotState::kPending) {
      return;  // live event on top
    }
    collect_dead(take_top());
  }
}

TimeMs EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry top = take_top();
  Slot& slot = slots_[top.index];
  Fired fired{top.time, std::move(slot.fn)};
  release_slot(top.index);
  --live_;
  return fired;
}

void EventQueue::extract_until(TimeMs t, std::uint32_t shard,
                               std::vector<Tagged>& out) {
  const std::size_t first = out.size();
  // One linear pass decides the strategy: dense windows (an epoch that
  // drains a sizeable fraction of the heap) pay O(n) once for a partition
  // plus a single re-heapify of the survivors, instead of one cache-hostile
  // sift-down per extracted item.
  std::size_t in_window = 0;
  for (const Entry& item : heap_) {
    if (item.time <= t) ++in_window;
  }
  if (in_window == 0) return;
  if (in_window * 8 >= heap_.size()) {
    // Sort the whole array ascending by (time, sequence): the extracted
    // prefix comes out already in run order, and the surviving suffix is a
    // valid binary heap as-is (sorted ⇒ parent ≤ children), so neither a
    // separate run sort nor a make_heap re-heapify is needed.
    std::sort(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.sequence < b.sequence;
    });
    const auto window_end = std::upper_bound(
        heap_.begin(), heap_.end(), t,
        [](TimeMs bound, const Entry& item) { return bound < item.time; });
    for (auto it = heap_.begin(); it != window_end; ++it) {
      if (window_end - it > 8) __builtin_prefetch(&slots_[it[8].index]);
      const Slot& slot = slots_[it->index];
      if (slot.generation == it->generation &&
          slot.state == SlotState::kPending) {
        out.push_back(Tagged{*it, shard});
      } else {
        collect_dead(*it);
      }
    }
    heap_.erase(heap_.begin(), window_end);
  } else {
    // take_top() always yields the global (time, sequence) minimum, so this
    // path appends in run order too.
    while (!heap_.empty() && heap_.front().time <= t) {
      const Entry item = take_top();
      const Slot& slot = slots_[item.index];
      if (slot.generation == item.generation &&
          slot.state == SlotState::kPending) {
        out.push_back(Tagged{item, shard});
      } else {
        collect_dead(item);
      }
    }
  }
  for (std::size_t i = first; i < out.size(); ++i) {
    if (i + 8 < out.size()) __builtin_prefetch(&slots_[out[i + 8].entry.index]);
    Slot& slot = slots_[out[i].entry.index];
    slot.state = SlotState::kExtracted;
    --live_;  // the entry now belongs to the epoch run, not the queue
  }
}

bool EventQueue::ready(const Entry& entry) {
  const Slot& slot = slots_[entry.index];
  if (slot.generation != entry.generation) return false;  // recycled tombstone
  if (slot.state == SlotState::kExtracted) return true;
  if (slot.state == SlotState::kPending) return true;  // staged, never committed
  if (slot.state == SlotState::kCancelled) {
    release_slot(entry.index);  // collect: nothing else references this slot
  }
  return false;
}

EventFn EventQueue::take(const Entry& entry) {
  Slot& slot = slots_[entry.index];
  if (slot.generation != entry.generation) return {};  // recycled tombstone
  if (slot.state == SlotState::kCancelled) {
    release_slot(entry.index);  // collect: nothing else references this slot
    return {};
  }
  assert(slot.state == SlotState::kExtracted ||
         slot.state == SlotState::kPending);
  if (slot.state == SlotState::kPending) {
    --live_;  // staged-but-uncommitted entries still count as queued
  }
  EventFn fn = std::move(slot.fn);
  release_slot(entry.index);
  return fn;
}

void EventQueue::fire(const Entry& entry) {
  Slot& slot = slots_[entry.index];
  assert(slot.generation == entry.generation);
  assert(slot.state == SlotState::kExtracted ||
         slot.state == SlotState::kPending);
  if (slot.state == SlotState::kPending) {
    --live_;  // staged-but-uncommitted entries still count as queued
  }
  EventFn fn = std::move(slot.fn);
  release_slot(entry.index);
  fn();
}

void EventQueue::clear() {
  for (const Entry& item : heap_) {
    Slot& slot = slots_[item.index];
    if (slot.generation == item.generation && slot.state != SlotState::kFree) {
      if (slot.state == SlotState::kPending) --live_;
      release_slot(item.index);
    }
  }
  heap_.clear();
  assert(live_ == 0);
  live_ = 0;
}

}  // namespace paldia::sim
