#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace paldia::sim {

void EventHandle::cancel() {
  if (flag_) *flag_ = true;
}

bool EventHandle::cancelled() const { return flag_ && *flag_; }

EventHandle EventQueue::schedule(TimeMs t, EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push_back(Entry{t, next_sequence_++, std::move(fn), flag});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(flag);
}

EventQueue::Entry EventQueue::take_top() const {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.front().cancelled) {
    take_top();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

TimeMs EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Entry top = take_top();
  return Fired{top.time, std::move(top.fn)};
}

}  // namespace paldia::sim
