#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace paldia::sim {

void EventHandle::cancel() {
  if (queue_ != nullptr && queue_->cancel_entry(index_, generation_)) {
    cancelled_ = true;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = EventFn{};
  ++slot.generation;  // invalidates every outstanding handle to this slot
  slot.state = SlotState::kFree;
  slot.next_free = free_head_;
  free_head_ = index;
}

EventHandle EventQueue::schedule(TimeMs t, EventFn fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.state = SlotState::kPending;
  heap_.push_back(HeapItem{t, next_sequence_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventHandle(this, index, slot.generation);
}

bool EventQueue::cancel_entry(std::uint32_t index, std::uint32_t generation) {
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.generation != generation || slot.state != SlotState::kPending) {
    return false;  // stale handle (slot recycled) or already cancelled
  }
  slot.state = SlotState::kCancelled;
  slot.fn = EventFn{};  // release captures now; the heap tombstone is inert
  --live_;
  return true;
}

EventQueue::HeapItem EventQueue::take_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapItem item = heap_.back();
  heap_.pop_back();
  return item;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& slot = slots_[top.index];
    if (slot.generation == top.generation && slot.state == SlotState::kPending) {
      return;  // live event on top
    }
    const HeapItem dead = take_top();
    // A generation mismatch means the slot was already recycled (the item is
    // a pure tombstone); a match means this collects the cancelled entry.
    if (slots_[dead.index].generation == dead.generation) {
      release_slot(dead.index);
    }
  }
}

TimeMs EventQueue::next_time() {
  drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const HeapItem top = take_top();
  Slot& slot = slots_[top.index];
  Fired fired{top.time, std::move(slot.fn)};
  release_slot(top.index);
  --live_;
  return fired;
}

void EventQueue::clear() {
  for (const HeapItem& item : heap_) {
    Slot& slot = slots_[item.index];
    if (slot.generation == item.generation && slot.state != SlotState::kFree) {
      if (slot.state == SlotState::kPending) --live_;
      release_slot(item.index);
    }
  }
  heap_.clear();
  assert(live_ == 0);
  live_ = 0;
}

}  // namespace paldia::sim
