#include "src/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace paldia::sim {

void EventHandle::cancel() {
  if (flag_) *flag_ = true;
}

bool EventHandle::cancelled() const { return flag_ && *flag_; }

EventHandle EventQueue::schedule(TimeMs t, EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{t, next_sequence_++, std::move(fn), flag});
  return EventHandle(flag);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

TimeMs EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  return Fired{top.time, std::move(top.fn)};
}

}  // namespace paldia::sim
