#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/profiler.hpp"

namespace paldia::sim {

namespace {

/// Strict total order on entries: sequences are globally unique, so this
/// never declares a tie.
bool entry_earlier(const EventQueue::Entry& a, const EventQueue::Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

}  // namespace

Simulator::Simulator(const ShardOptions& options)
    : shards_(static_cast<std::size_t>(std::max(1, options.shards))),
      lookahead_ms_(std::max(0.0, options.lookahead_ms)),
      pool_(options.pool) {}

void Simulator::set_lookahead(DurationMs lookahead_ms) {
  lookahead_ms_ = std::max(0.0, lookahead_ms);
}

EventHandle Simulator::schedule_in(DurationMs delay, EventFn fn, int shard) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn), shard);
}

EventHandle Simulator::schedule_at(TimeMs t, EventFn fn, int shard) {
  const TimeMs at = std::max(t, now_);
  if (shard_count() == 1) {
    return shards_[0].queue.schedule(at, std::move(fn));
  }
  const auto target =
      static_cast<std::uint32_t>(std::clamp(shard, 0, shard_count() - 1));
  EventQueue& queue = shards_[target].queue;
  const EventQueue::Entry entry =
      queue.stage(at, next_sequence_++, std::move(fn));
  if (!in_epoch_) {
    queue.commit(entry);
  } else if (at <= window_end_) {
    // Intra-window schedule: merge it into the executing epoch at its exact
    // (time, sequence) position so zero-delay chains and device completions
    // shorter than the lookahead fire in serial order.
    inserts_.push_back(Staged{entry, target});
    std::push_heap(inserts_.begin(), inserts_.end(),
                   [](const Staged& a, const Staged& b) {
                     return entry_earlier(b.entry, a.entry);
                   });
  } else {
    // Cross-shard mailbox message: committed at the epoch barrier.
    mailbox_.push_back(Staged{entry, target});
  }
  return queue.handle_for(entry);
}

void Simulator::PeriodicHandle::cancel() {
  if (simulator_ != nullptr) simulator_->cancel_periodic(index_, generation_);
}

std::uint32_t Simulator::acquire_periodic_slot() {
  if (periodic_free_head_ != kNoPeriodic) {
    const std::uint32_t index = periodic_free_head_;
    periodic_free_head_ = periodic_[index].next_free;
    periodic_[index].next_free = kNoPeriodic;
    return index;
  }
  periodic_.emplace_back();
  return static_cast<std::uint32_t>(periodic_.size() - 1);
}

void Simulator::release_periodic_slot(std::uint32_t index) {
  PeriodicTask& task = periodic_[index];
  task.fn = RepeatFn{};
  task.active = false;
  ++task.generation;  // invalidates every outstanding handle to this slot
  task.next_free = periodic_free_head_;
  periodic_free_head_ = index;
}

bool Simulator::cancel_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return false;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return false;
  // The already-armed queue entry (if any) stays queued and fires as a
  // generation-mismatched no-op — same lazy semantics as event cancel.
  release_periodic_slot(index);
  return true;
}

Simulator::PeriodicHandle Simulator::schedule_repeating(TimeMs start,
                                                        DurationMs period,
                                                        RepeatFn fn,
                                                        int shard) {
  const std::uint32_t index = acquire_periodic_slot();
  PeriodicTask& task = periodic_[index];
  task.fn = std::move(fn);
  task.period = period;
  task.shard = static_cast<std::uint32_t>(std::clamp(shard, 0, shard_count() - 1));
  task.active = true;
  const std::uint32_t generation = task.generation;
  schedule_at(start,
              [this, index, generation] { fire_periodic(index, generation); },
              shard);
  return PeriodicHandle(this, index, generation);
}

void Simulator::fire_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return;
  if (periodic_[index].generation != generation || !periodic_[index].active) {
    return;  // series cancelled after this firing was armed
  }
  // Move the callback out for the call: it may itself schedule repeating
  // events (reallocating the slab) or cancel its own series, either of which
  // would invalidate a reference into the slab mid-invocation.
  RepeatFn fn = std::move(periodic_[index].fn);
  const DurationMs period = periodic_[index].period;
  const int shard = static_cast<int>(periodic_[index].shard);
  const bool keep = fn();
  if (index >= periodic_.size()) return;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return;
  if (keep) {
    task.fn = std::move(fn);
    schedule_in(period,
                [this, index, generation] { fire_periodic(index, generation); },
                shard);
  } else {
    release_periodic_slot(index);
  }
}

TimeMs Simulator::earliest_event_time() {
  TimeMs earliest = kTimeNever;
  for (Shard& shard : shards_) {
    earliest = std::min(earliest, shard.queue.next_time());
  }
  return earliest;
}

void Simulator::drain_epoch(TimeMs window) {
  const std::size_t n = shards_.size();
  const auto extract = [this, window](std::size_t s) {
    Shard& shard = shards_[s];
    shard.run.clear();
    shard.cursor = 0;
    shard.queue.extract_until(window, shard.run);
  };
  {
    // Timed whole from the driver thread, parallel fan-out included, so the
    // profiler never races with pool workers.
    obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kEpochExtract);
    if (pool_ != nullptr && n > 1) {
      pool_->parallel_for(n, extract);
    } else {
      for (std::size_t s = 0; s < n; ++s) extract(s);
    }
  }

  obs::ScopedPhase merge_prof(profiler_, obs::ProfilePhase::kEpochMerge);
  in_epoch_ = true;
  window_end_ = window;
  // Merged execution: always the globally-earliest (time, sequence) entry,
  // whether it came from a shard's extracted run or was scheduled inside
  // this window. Intra-window inserts always carry larger sequence numbers
  // than every extracted entry, so ties at equal times resolve exactly as
  // the serial pop loop would. The scan runs over the compact heads_ array
  // (one {time, sequence, shard} per non-exhausted run); exhausted runs are
  // swap-removed, which is order-safe because the minimum is keyed, not
  // positional.
  heads_.clear();
  for (std::size_t s = 0; s < n; ++s) {
    if (!shards_[s].run.empty()) {
      const EventQueue::Entry& head = shards_[s].run.front();
      heads_.push_back(
          RunHead{head.time, head.sequence, static_cast<std::uint32_t>(s)});
    }
  }
  while (true) {
    std::size_t best_at = heads_.size();
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      if (best_at == heads_.size() ||
          heads_[i].time < heads_[best_at].time ||
          (heads_[i].time == heads_[best_at].time &&
           heads_[i].sequence < heads_[best_at].sequence)) {
        best_at = i;
      }
    }
    const bool have_run = best_at != heads_.size();
    const bool use_insert =
        !inserts_.empty() &&
        (!have_run ||
         inserts_.front().entry.time < heads_[best_at].time ||
         (inserts_.front().entry.time == heads_[best_at].time &&
          inserts_.front().entry.sequence < heads_[best_at].sequence));
    if (use_insert) {
      std::pop_heap(inserts_.begin(), inserts_.end(),
                    [](const Staged& a, const Staged& b) {
                      return entry_earlier(b.entry, a.entry);
                    });
      const Staged staged = inserts_.back();
      inserts_.pop_back();
      EventQueue& queue = shards_[staged.shard].queue;
      if (queue.ready(staged.entry)) {
        now_ = staged.entry.time;
        ++events_processed_;
        queue.fire(staged.entry);
      }
    } else if (have_run) {
      Shard& shard = shards_[heads_[best_at].shard];
      const EventQueue::Entry entry = shard.run[shard.cursor++];
      if (shard.cursor < shard.run.size()) {
        const EventQueue::Entry& next = shard.run[shard.cursor];
        heads_[best_at].time = next.time;
        heads_[best_at].sequence = next.sequence;
      } else {
        heads_[best_at] = heads_.back();
        heads_.pop_back();
      }
      if (shard.queue.ready(entry)) {
        now_ = entry.time;
        ++events_processed_;
        shard.queue.fire(entry);
      }
    } else {
      break;
    }
  }
  in_epoch_ = false;

  // Barrier: deliver cross-shard messages. Commit order is immaterial — the
  // (time, sequence) stamps assigned at stage() time define the total order,
  // and heap extraction is insertion-order independent because sequences are
  // globally unique — so the mailbox is logically (time, shard, sequence)
  // ordered without paying for a sort here.
  for (const Staged& staged : mailbox_) {
    shards_[staged.shard].queue.commit(staged.entry);
  }
  mailbox_.clear();
}

TimeMs Simulator::run_serial(TimeMs until) {
  obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kSerialDrain);
  EventQueue& queue = shards_[0].queue;
  while (!queue.empty() && queue.next_time() <= until) {
    auto fired = queue.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  return now_;
}

TimeMs Simulator::run_sharded(TimeMs until) {
  while (true) {
    const TimeMs t0 = earliest_event_time();
    if (t0 == kTimeNever || t0 > until) break;
    drain_epoch(std::min(t0 + lookahead_ms_, until));
  }
  return now_;
}

TimeMs Simulator::run_until(TimeMs until) {
  if (shard_count() == 1) {
    run_serial(until);
  } else {
    run_sharded(until);
  }
  now_ = std::max(now_, until);
  return now_;
}

TimeMs Simulator::run_to_completion() {
  if (shard_count() == 1) {
    return run_serial(kTimeNever);
  }
  while (true) {
    const TimeMs t0 = earliest_event_time();
    if (t0 == kTimeNever) break;
    drain_epoch(t0 + lookahead_ms_);
  }
  return now_;
}

void Simulator::reset() {
  assert(!in_epoch_ && inserts_.empty() && mailbox_.empty());
  for (Shard& shard : shards_) {
    shard.queue.clear();
    shard.run.clear();
    shard.cursor = 0;
  }
  // Retire every periodic slot without restarting generations, so handles
  // from before the reset cannot cancel series scheduled after it.
  periodic_free_head_ = kNoPeriodic;
  for (std::uint32_t i = 0; i < periodic_.size(); ++i) {
    PeriodicTask& task = periodic_[i];
    task.fn = RepeatFn{};
    task.active = false;
    ++task.generation;
    task.next_free = periodic_free_head_;
    periodic_free_head_ = i;
  }
  now_ = 0.0;
  events_processed_ = 0;
  next_sequence_ = 0;
}

}  // namespace paldia::sim
