#include "src/sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace paldia::sim {

EventHandle Simulator::schedule_in(DurationMs delay, EventFn fn) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

EventHandle Simulator::schedule_at(TimeMs t, EventFn fn) {
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

void Simulator::PeriodicHandle::cancel() { *stopped_ = true; }

Simulator::PeriodicHandle Simulator::schedule_every(TimeMs start, DurationMs period,
                                                    EventFn fn) {
  PeriodicHandle handle;
  auto stopped = handle.stopped_;
  // Self-rescheduling closure; stops when the shared flag is set. The
  // closure holds itself through a weak_ptr to avoid a shared_ptr cycle;
  // the copy stored in the event queue keeps it alive between firings.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, stopped, period, fn = std::move(fn),
           weak = std::weak_ptr<std::function<void()>>(tick)]() {
    if (*stopped) return;
    fn();
    if (!*stopped) {
      if (auto self = weak.lock()) {
        schedule_in(period, [self] { (*self)(); });
      }
    }
  };
  // The queued wrapper owns a shared_ptr, keeping the closure alive while a
  // firing is pending; the closure itself only holds a weak_ptr (no cycle).
  schedule_at(start, [tick] { (*tick)(); });
  return handle;
}

TimeMs Simulator::run_until(TimeMs until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  now_ = std::max(now_, until);
  return now_;
}

TimeMs Simulator::run_to_completion() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  return now_;
}

void Simulator::reset() {
  queue_ = EventQueue{};
  now_ = 0.0;
  events_processed_ = 0;
}

}  // namespace paldia::sim
