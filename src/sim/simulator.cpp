#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/profiler.hpp"

namespace paldia::sim {

void Simulator::InsertCalendar::begin(TimeMs start, TimeMs end) {
  assert(size_ == 0);
  heap_.clear();
  current_ = 0;
  start_ = start;
  inv_width_ = end > start ? static_cast<double>(kBuckets) / (end - start) : 0.0;
}

void Simulator::InsertCalendar::advance() {
  assert(size_ > 0);
  while (heap_.empty()) {
    ++current_;
    assert(current_ < kBuckets);
    // Swap recycles both vectors' capacity across epochs; the bucket is
    // unordered, so heapify it in one linear pass.
    heap_.swap(buckets_[current_]);
    std::make_heap(heap_.begin(), heap_.end(), StagedLater{});
  }
}

Simulator::Simulator(const ShardOptions& options)
    : shards_(static_cast<std::size_t>(std::max(1, options.shards))),
      lookahead_ms_(std::max(0.0, options.lookahead_ms)),
      pool_(options.pool) {}

void Simulator::set_lookahead(DurationMs lookahead_ms) {
  lookahead_ms_ = std::max(0.0, lookahead_ms);
}

EventHandle Simulator::schedule_in(DurationMs delay, EventFn fn, int shard) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn), shard);
}

EventHandle Simulator::schedule_at(TimeMs t, EventFn fn, int shard) {
  const TimeMs at = std::max(t, now_);
  if (shard_count() == 1) {
    return shards_[0].queue.schedule(at, std::move(fn));
  }
  const auto target =
      static_cast<std::uint32_t>(std::clamp(shard, 0, shard_count() - 1));
  EventQueue& queue = shards_[target].queue;
  const EventQueue::Entry entry =
      queue.stage(at, next_sequence_++, std::move(fn));
  if (!in_epoch_) {
    queue.commit(entry);
  } else if (at <= window_end_) {
    // Intra-window schedule: merge it into the executing epoch at its exact
    // (time, sequence) position so zero-delay chains and device completions
    // shorter than the lookahead fire in serial order.
    inserts_.push(Staged{entry, target});
  } else {
    // Cross-shard mailbox message: committed at the epoch barrier.
    mailbox_.push_back(Staged{entry, target});
  }
  return queue.handle_for(entry);
}

void Simulator::PeriodicHandle::cancel() {
  if (simulator_ != nullptr) simulator_->cancel_periodic(index_, generation_);
}

std::uint32_t Simulator::acquire_periodic_slot() {
  if (periodic_free_head_ != kNoPeriodic) {
    const std::uint32_t index = periodic_free_head_;
    periodic_free_head_ = periodic_[index].next_free;
    periodic_[index].next_free = kNoPeriodic;
    return index;
  }
  periodic_.emplace_back();
  return static_cast<std::uint32_t>(periodic_.size() - 1);
}

void Simulator::release_periodic_slot(std::uint32_t index) {
  PeriodicTask& task = periodic_[index];
  task.fn = RepeatFn{};
  task.active = false;
  ++task.generation;  // invalidates every outstanding handle to this slot
  task.next_free = periodic_free_head_;
  periodic_free_head_ = index;
}

bool Simulator::cancel_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return false;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return false;
  // The already-armed queue entry (if any) stays queued and fires as a
  // generation-mismatched no-op — same lazy semantics as event cancel.
  release_periodic_slot(index);
  return true;
}

Simulator::PeriodicHandle Simulator::schedule_repeating(TimeMs start,
                                                        DurationMs period,
                                                        RepeatFn fn,
                                                        int shard) {
  const std::uint32_t index = acquire_periodic_slot();
  PeriodicTask& task = periodic_[index];
  task.fn = std::move(fn);
  task.period = period;
  task.shard = static_cast<std::uint32_t>(std::clamp(shard, 0, shard_count() - 1));
  task.active = true;
  const std::uint32_t generation = task.generation;
  schedule_at(start,
              [this, index, generation] { fire_periodic(index, generation); },
              shard);
  return PeriodicHandle(this, index, generation);
}

void Simulator::fire_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return;
  if (periodic_[index].generation != generation || !periodic_[index].active) {
    return;  // series cancelled after this firing was armed
  }
  // Move the callback out for the call: it may itself schedule repeating
  // events (reallocating the slab) or cancel its own series, either of which
  // would invalidate a reference into the slab mid-invocation.
  RepeatFn fn = std::move(periodic_[index].fn);
  const DurationMs period = periodic_[index].period;
  const int shard = static_cast<int>(periodic_[index].shard);
  const bool keep = fn();
  if (index >= periodic_.size()) return;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return;
  if (keep) {
    task.fn = std::move(fn);
    schedule_in(period,
                [this, index, generation] { fire_periodic(index, generation); },
                shard);
  } else {
    release_periodic_slot(index);
  }
}

TimeMs Simulator::earliest_event_time() {
  TimeMs earliest = kTimeNever;
  for (Shard& shard : shards_) {
    earliest = std::min(earliest, shard.queue.next_time());
  }
  return earliest;
}

void Simulator::drain_epoch(TimeMs window) {
  const std::size_t n = shards_.size();
  const auto extract = [this, window](std::size_t s) {
    Shard& shard = shards_[s];
    shard.run.clear();
    shard.queue.extract_until(window, static_cast<std::uint32_t>(s), shard.run);
  };
  {
    // Timed whole from the driver thread, parallel fan-out included, so the
    // profiler never races with pool workers.
    obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kEpochExtract);
    if (pool_ != nullptr && n > 1) {
      pool_->parallel_for(n, extract);
    } else {
      for (std::size_t s = 0; s < n; ++s) extract(s);
    }
  }

  obs::ScopedPhase merge_prof(profiler_, obs::ProfilePhase::kEpochMerge);
  in_epoch_ = true;
  window_end_ = window;
  inserts_.begin(now_, window);
  // Pre-merge the per-shard sorted runs into one contiguous execution run:
  // tournament rounds of std::merge, log2(shards) strictly-sequential
  // passes. This replaces the old per-event scan over one head per shard —
  // the hot execution loop below then walks a single array and compares
  // only against the insert calendar. With one non-empty run the span
  // aliases that shard's run directly (zero copies).
  const auto earlier = [](const Staged& a, const Staged& b) {
    if (a.entry.time != b.entry.time) return a.entry.time < b.entry.time;
    return a.entry.sequence < b.entry.sequence;
  };
  spans_.clear();
  std::size_t run_total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!shards_[s].run.empty()) {
      spans_.push_back(Span{shards_[s].run.data(),
                            shards_[s].run.data() + shards_[s].run.size()});
      run_total += shards_[s].run.size();
    }
  }
  std::vector<Staged>* out = &merge_front_;
  std::vector<Staged>* spare = &merge_back_;
  while (spans_.size() > 1) {
    out->clear();
    out->reserve(run_total);  // back_inserter must never reallocate: the
                              // spans recorded below point into out
    next_spans_.clear();
    std::size_t i = 0;
    for (; i + 1 < spans_.size(); i += 2) {
      const std::size_t offset = out->size();
      std::merge(spans_[i].begin, spans_[i].end, spans_[i + 1].begin,
                 spans_[i + 1].end, std::back_inserter(*out), earlier);
      next_spans_.push_back(Span{out->data() + offset, nullptr});
    }
    if (i < spans_.size()) {
      // Odd run out: copy it through so no span of the next round aliases
      // the buffer that round writes into.
      const std::size_t offset = out->size();
      out->insert(out->end(), spans_[i].begin, spans_[i].end);
      next_spans_.push_back(Span{out->data() + offset, nullptr});
    }
    for (std::size_t j = 0; j + 1 < next_spans_.size(); ++j) {
      next_spans_[j].end = next_spans_[j + 1].begin;
    }
    next_spans_.back().end = out->data() + out->size();
    spans_.swap(next_spans_);
    std::swap(out, spare);
  }
  const Staged* run_it = nullptr;
  const Staged* run_end = nullptr;
  if (!spans_.empty()) {
    run_it = spans_.front().begin;
    run_end = spans_.front().end;
  }
  // Merged execution: always the globally-earliest (time, sequence) entry,
  // whether it came from the merged run or was scheduled inside this
  // window. Intra-window inserts always carry larger sequence numbers than
  // every extracted entry, so ties at equal times resolve exactly as the
  // serial pop loop would.
  while (true) {
    const bool have_run = run_it != run_end;
    if (have_run && run_it + 3 < run_end) {
      // The run is a few events of exact lookahead — prefetch the slot that
      // fires shortly so take()'s slab access hits cache. The serial heap
      // can never do this: its next event is unknown until the sift ends.
      const Staged& ahead = run_it[3];
      shards_[ahead.shard].queue.prefetch(ahead.entry);
    }
    const bool use_insert =
        !inserts_.empty() &&
        (!have_run || earlier(inserts_.front(), *run_it));
    if (!use_insert && !have_run) break;
    const Staged staged = use_insert ? inserts_.pop() : *run_it++;
    EventFn fn = shards_[staged.shard].queue.take(staged.entry);
    if (fn) {
      now_ = staged.entry.time;
      ++events_processed_;
      fn();
    }
  }
  in_epoch_ = false;

  // Barrier: deliver cross-shard messages. Commit order is immaterial — the
  // (time, sequence) stamps assigned at stage() time define the total order,
  // and heap extraction is insertion-order independent because sequences are
  // globally unique — so the mailbox is logically (time, shard, sequence)
  // ordered without paying for a sort here.
  for (const Staged& staged : mailbox_) {
    shards_[staged.shard].queue.commit(staged.entry);
  }
  mailbox_.clear();
}

TimeMs Simulator::run_serial(TimeMs until) {
  obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kSerialDrain);
  EventQueue& queue = shards_[0].queue;
  while (!queue.empty() && queue.next_time() <= until) {
    auto fired = queue.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  return now_;
}

TimeMs Simulator::run_sharded(TimeMs until) {
  while (true) {
    const TimeMs t0 = earliest_event_time();
    if (t0 == kTimeNever || t0 > until) break;
    drain_epoch(std::min(t0 + lookahead_ms_, until));
  }
  return now_;
}

TimeMs Simulator::run_until(TimeMs until) {
  if (shard_count() == 1) {
    run_serial(until);
  } else {
    run_sharded(until);
  }
  now_ = std::max(now_, until);
  return now_;
}

TimeMs Simulator::run_to_completion() {
  if (shard_count() == 1) {
    return run_serial(kTimeNever);
  }
  while (true) {
    const TimeMs t0 = earliest_event_time();
    if (t0 == kTimeNever) break;
    drain_epoch(t0 + lookahead_ms_);
  }
  return now_;
}

void Simulator::reset() {
  assert(!in_epoch_ && inserts_.empty() && mailbox_.empty());
  for (Shard& shard : shards_) {
    shard.queue.clear();
    shard.run.clear();
  }
  // Retire every periodic slot without restarting generations, so handles
  // from before the reset cannot cancel series scheduled after it.
  periodic_free_head_ = kNoPeriodic;
  for (std::uint32_t i = 0; i < periodic_.size(); ++i) {
    PeriodicTask& task = periodic_[i];
    task.fn = RepeatFn{};
    task.active = false;
    ++task.generation;
    task.next_free = periodic_free_head_;
    periodic_free_head_ = i;
  }
  now_ = 0.0;
  events_processed_ = 0;
  next_sequence_ = 0;
}

}  // namespace paldia::sim
