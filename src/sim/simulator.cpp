#include "src/sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace paldia::sim {

EventHandle Simulator::schedule_in(DurationMs delay, EventFn fn) {
  return schedule_at(now_ + std::max(0.0, delay), std::move(fn));
}

EventHandle Simulator::schedule_at(TimeMs t, EventFn fn) {
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

void Simulator::PeriodicHandle::cancel() {
  if (simulator_ != nullptr) simulator_->cancel_periodic(index_, generation_);
}

std::uint32_t Simulator::acquire_periodic_slot() {
  if (periodic_free_head_ != kNoPeriodic) {
    const std::uint32_t index = periodic_free_head_;
    periodic_free_head_ = periodic_[index].next_free;
    periodic_[index].next_free = kNoPeriodic;
    return index;
  }
  periodic_.emplace_back();
  return static_cast<std::uint32_t>(periodic_.size() - 1);
}

void Simulator::release_periodic_slot(std::uint32_t index) {
  PeriodicTask& task = periodic_[index];
  task.fn = RepeatFn{};
  task.active = false;
  ++task.generation;  // invalidates every outstanding handle to this slot
  task.next_free = periodic_free_head_;
  periodic_free_head_ = index;
}

bool Simulator::cancel_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return false;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return false;
  // The already-armed queue entry (if any) stays queued and fires as a
  // generation-mismatched no-op — same lazy semantics as event cancel.
  release_periodic_slot(index);
  return true;
}

Simulator::PeriodicHandle Simulator::schedule_repeating(TimeMs start,
                                                        DurationMs period,
                                                        RepeatFn fn) {
  const std::uint32_t index = acquire_periodic_slot();
  PeriodicTask& task = periodic_[index];
  task.fn = std::move(fn);
  task.period = period;
  task.active = true;
  const std::uint32_t generation = task.generation;
  schedule_at(start,
              [this, index, generation] { fire_periodic(index, generation); });
  return PeriodicHandle(this, index, generation);
}

void Simulator::fire_periodic(std::uint32_t index, std::uint32_t generation) {
  if (index >= periodic_.size()) return;
  if (periodic_[index].generation != generation || !periodic_[index].active) {
    return;  // series cancelled after this firing was armed
  }
  // Move the callback out for the call: it may itself schedule repeating
  // events (reallocating the slab) or cancel its own series, either of which
  // would invalidate a reference into the slab mid-invocation.
  RepeatFn fn = std::move(periodic_[index].fn);
  const DurationMs period = periodic_[index].period;
  const bool keep = fn();
  if (index >= periodic_.size()) return;
  PeriodicTask& task = periodic_[index];
  if (task.generation != generation || !task.active) return;
  if (keep) {
    task.fn = std::move(fn);
    schedule_in(period, [this, index, generation] {
      fire_periodic(index, generation);
    });
  } else {
    release_periodic_slot(index);
  }
}

TimeMs Simulator::run_until(TimeMs until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  now_ = std::max(now_, until);
  return now_;
}

TimeMs Simulator::run_to_completion() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  return now_;
}

void Simulator::reset() {
  queue_.clear();
  // Retire every periodic slot without restarting generations, so handles
  // from before the reset cannot cancel series scheduled after it.
  periodic_free_head_ = kNoPeriodic;
  for (std::uint32_t i = 0; i < periodic_.size(); ++i) {
    PeriodicTask& task = periodic_[i];
    task.fn = RepeatFn{};
    task.active = false;
    ++task.generation;
    task.next_free = periodic_free_head_;
    periodic_free_head_ = i;
  }
  now_ = 0.0;
  events_processed_ = 0;
}

}  // namespace paldia::sim
