// Discrete-event queue: a min-heap of (time, sequence, slot) over a pooled
// slab of event entries.
//
// The sequence number makes simultaneous events fire in submission order,
// which keeps runs deterministic regardless of heap internals. Events can be
// cancelled lazily — the GPU processor-sharing engine reschedules completion
// events whenever the concurrency set changes — so cancellation must be O(1)
// and cancel-heavy churn must not grow the queue unboundedly.
//
// Layout: callbacks live in a slab (`slots_`) recycled through a free list;
// the heap itself holds only 24-byte POD items referencing a slot by index.
// A per-slot generation counter makes handles ABA-safe: recycling a slot
// bumps its generation, so a stale handle's cancel() is a no-op instead of
// cancelling the slot's new occupant. This replaces the previous
// shared_ptr<bool> cancel flag + std::function entry, which cost two heap
// allocations per scheduled event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/inline_function.hpp"
#include "src/common/units.hpp"

namespace paldia::sim {

using EventFn = InlineFunction<void()>;

class EventQueue;

/// Handle that can cancel a scheduled event. Copyable; cancelling twice is
/// harmless, as is cancelling after the event fired (the generation check
/// makes it a no-op even once the slot has been recycled). A
/// default-constructed handle refers to nothing. Handles must not outlive
/// the queue they came from.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  /// True when cancel() on *this handle* took effect before the event fired.
  bool cancelled() const { return cancelled_; }
  bool valid() const { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t index, std::uint32_t generation)
      : queue_(queue), index_(index), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
  bool cancelled_ = false;
};

class EventQueue {
 public:
  EventQueue() = default;
  // Handles hold a back-pointer to their queue, so the queue is pinned.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule fn at absolute simulated time t. t must be >= now() of the
  /// owning simulator (checked there, not here).
  EventHandle schedule(TimeMs t, EventFn fn);

  /// True when no live (non-cancelled) event remains. O(1): tracked by a
  /// live-entry counter, so no lazy cleanup (and no `mutable`) is needed.
  bool empty() const { return live_ == 0; }

  /// Number of heap entries, including not-yet-collected cancelled ones.
  /// An upper bound on the live event count; exact when nothing was
  /// cancelled. Cheap, used only for diagnostics.
  std::size_t size_upper_bound() const { return heap_.size(); }

  /// Time of the earliest live event; kTimeNever when empty. Collects
  /// cancelled entries sitting at the top of the heap, hence non-const.
  TimeMs next_time();

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimeMs time;
    EventFn fn;
  };
  Fired pop();

  /// Drop every pending event (live and cancelled) and recycle all slots.
  /// Outstanding handles are invalidated via the generation bump.
  void clear();

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  enum class SlotState : unsigned char { kFree, kPending, kCancelled };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  /// What the heap orders: plain data, cheap to sift. The generation lets
  /// surfacing items from recycled slots be recognized as dead.
  struct HeapItem {
    TimeMs time;
    std::uint64_t sequence;
    std::uint32_t index;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Cancel the event in `index` iff the handle's generation still matches
  /// and it has not fired. Returns whether the cancel took effect. The
  /// callback is destroyed eagerly (releasing its captures); the heap item
  /// becomes a tombstone collected when it surfaces.
  bool cancel_entry(std::uint32_t index, std::uint32_t generation);

  /// Discard dead entries (cancelled, or from recycled slots) sitting at the
  /// top of the heap. Dead entries deeper in the heap are collected when
  /// they surface; they never affect emptiness (live_ tracks that exactly).
  void drop_cancelled();

  /// Pop the heap's top item and return it (plain data, no ownership).
  HeapItem take_top();

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  // Min-heap (via the Later comparator) maintained with std::push_heap /
  // std::pop_heap over an owned vector of POD items; callbacks stay put in
  // the slab and are never moved by heap sifts.
  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace paldia::sim
