// Discrete-event queue: a min-heap of (time, sequence, callback).
//
// The sequence number makes simultaneous events fire in submission order,
// which keeps runs deterministic regardless of heap internals. Events can be
// cancelled (lazily, via a shared flag) — the GPU processor-sharing engine
// reschedules completion events whenever the concurrency set changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/units.hpp"

namespace paldia::sim {

using EventFn = std::function<void()>;

/// Handle that can cancel a scheduled event. Copyable; cancelling twice is
/// harmless. A default-constructed handle refers to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool cancelled() const;
  bool valid() const { return flag_ != nullptr; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<bool> flag_;
};

class EventQueue {
 public:
  /// Schedule fn at absolute simulated time t. t must be >= now() of the
  /// owning simulator (checked there, not here).
  EventHandle schedule(TimeMs t, EventFn fn);

  /// True when no live (non-cancelled) event remains.
  bool empty() const;

  /// Number of heap entries, including not-yet-collected cancelled ones.
  /// An upper bound on the live event count; exact when nothing was
  /// cancelled. Cheap, used only for diagnostics.
  std::size_t size_upper_bound() const { return heap_.size(); }

  /// Time of the earliest live event; kTimeNever when empty.
  TimeMs next_time() const;

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimeMs time;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    TimeMs time;
    std::uint64_t sequence;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Discard cancelled entries sitting at the top of the heap. Cancelled
  /// entries deeper in the heap are collected when they surface; they never
  /// affect emptiness (a live entry above them proves non-emptiness).
  void drop_cancelled() const;

  /// Pop the heap's top entry and return it. Unlike std::priority_queue,
  /// owning the heap lets pop() move the entry out legally — top() of a
  /// priority_queue is const and mutating it through const_cast is UB.
  Entry take_top() const;

  // Min-heap (via the Later comparator) maintained with std::push_heap /
  // std::pop_heap over an owned vector.
  mutable std::vector<Entry> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace paldia::sim
