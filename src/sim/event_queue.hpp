// Discrete-event queue: a min-heap of (time, sequence, slot) over a pooled
// slab of event entries.
//
// The sequence number makes simultaneous events fire in submission order,
// which keeps runs deterministic regardless of heap internals. Events can be
// cancelled lazily — the GPU processor-sharing engine reschedules completion
// events whenever the concurrency set changes — so cancellation must be O(1)
// and cancel-heavy churn must not grow the queue unboundedly.
//
// Layout: callbacks live in a slab (`slots_`) recycled through a free list;
// the heap itself holds only 24-byte POD items referencing a slot by index.
// A per-slot generation counter makes handles ABA-safe: recycling a slot
// bumps its generation, so a stale handle's cancel() is a no-op instead of
// cancelling the slot's new occupant. This replaces the previous
// shared_ptr<bool> cancel flag + std::function entry, which cost two heap
// allocations per scheduled event.
//
// Sharded-drain support: the sharded Simulator owns one queue per shard and
// assigns sequence numbers globally, so it drives the queue through a
// lower-level API than schedule()/pop():
//   * stage()/commit() split scheduling into slot creation (which returns
//     the POD entry a mailbox can carry) and heap insertion (which the
//     barrier performs after sorting the mailbox);
//   * extract_until() batch-removes every live entry inside the epoch
//     window — slots stay alive, so handles can still cancel an extracted
//     event right up to the moment it fires;
//   * ready()/fire() replay an extracted entry with exactly pop()'s
//     generation/tombstone semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/inline_function.hpp"
#include "src/common/units.hpp"

namespace paldia::sim {

using EventFn = InlineFunction<void()>;

class EventQueue;

/// Handle that can cancel a scheduled event. Copyable; cancelling twice is
/// harmless, as is cancelling after the event fired (the generation check
/// makes it a no-op even once the slot has been recycled). A
/// default-constructed handle refers to nothing. Handles must not outlive
/// the queue they came from.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  /// True when cancel() on *this handle* took effect before the event fired.
  bool cancelled() const { return cancelled_; }
  bool valid() const { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t index, std::uint32_t generation)
      : queue_(queue), index_(index), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
  bool cancelled_ = false;
};

class EventQueue {
 public:
  EventQueue() = default;
  // Handles hold a back-pointer to their queue, so the queue is pinned.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// What the heap orders: plain data, cheap to sift and to carry through a
  /// cross-shard mailbox. The generation lets items from recycled slots be
  /// recognized as dead.
  struct Entry {
    TimeMs time;
    std::uint64_t sequence;
    std::uint32_t index;
    std::uint32_t generation;
  };

  /// Schedule fn at absolute simulated time t. t must be >= now() of the
  /// owning simulator (checked there, not here).
  EventHandle schedule(TimeMs t, EventFn fn);

  /// Create a live pending entry without inserting it into the heap. The
  /// sharded Simulator stamps `sequence` from its global counter so the
  /// (time, sequence) order is total across shards; commit() inserts the
  /// entry later (at the epoch barrier for mailbox messages). A staged
  /// entry counts as live immediately — handle_for() can cancel it before
  /// it is ever committed.
  Entry stage(TimeMs t, std::uint64_t sequence, EventFn fn);

  /// Insert a staged entry into the heap.
  void commit(const Entry& entry);

  /// Handle addressing a staged entry (same cancel semantics as schedule).
  EventHandle handle_for(const Entry& entry) {
    return EventHandle(this, entry.index, entry.generation);
  }

  /// An entry tagged with the shard whose queue owns it — the unit the
  /// sharded Simulator's merged epoch run, insert calendar and mailbox all
  /// carry, so entries from different queues can interleave in one array.
  struct Tagged {
    Entry entry;
    std::uint32_t shard;
  };

  /// Batch-remove every live entry with time <= t, appending them to `out`
  /// tagged with `shard` and sorted by (time, sequence). Dead entries
  /// inside the window are collected. Extracted slots stay alive (their
  /// state moves to kExtracted) so outstanding handles can still cancel
  /// them until ready()/fire() replays them; the live counter treats them
  /// as gone — they now belong to the epoch, not the queue. Dense windows
  /// switch from per-item pops to a linear partition + one re-heapify,
  /// which is what makes the sharded drain cheaper than the serial pop loop
  /// even before any parallelism.
  void extract_until(TimeMs t, std::uint32_t shard, std::vector<Tagged>& out);

  /// True when the extracted/staged entry is still live; collects the slot
  /// of a dead entry (cancelled while it sat in the epoch run). Call
  /// immediately before fire().
  bool ready(const Entry& entry);

  /// Replay an extracted/staged entry: releases the slot and runs the
  /// callback (same order as pop(): the slot is recycled before the
  /// callback executes). Precondition: ready(entry) just returned true.
  void fire(const Entry& entry);

  /// ready() + fire() fused into one slot lookup, minus the call itself:
  /// claims the extracted/staged entry's callback and releases the slot, or
  /// returns an empty function (collecting the slot) when the entry died in
  /// the epoch run. The sharded drain calls this once per event, so the
  /// second slab access ready()/fire() would pay is gone; the caller runs
  /// the callback after stamping its own clock.
  EventFn take(const Entry& entry);

  /// Hint the cache that `entry`'s slot is about to be touched. The merged
  /// epoch run tells the sharded drain which slots fire next — lookahead a
  /// heap can never give the serial pop loop — so prefetching a few entries
  /// ahead hides the random slab access that otherwise dominates take().
  void prefetch(const Entry& entry) const {
    __builtin_prefetch(&slots_[entry.index]);
  }

  /// True when no live (non-cancelled) event remains. O(1): tracked by a
  /// live-entry counter, so no lazy cleanup (and no `mutable`) is needed.
  bool empty() const { return live_ == 0; }

  /// Number of heap entries, including not-yet-collected cancelled ones.
  /// An upper bound on the live event count; exact when nothing was
  /// cancelled. Cheap, used only for diagnostics.
  std::size_t size_upper_bound() const { return heap_.size(); }

  /// Time of the earliest live event; kTimeNever when empty. Collects
  /// cancelled entries sitting at the top of the heap, hence non-const.
  TimeMs next_time();

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Fired {
    TimeMs time;
    EventFn fn;
  };
  Fired pop();

  /// Drop every pending event (live and cancelled) and recycle all slots.
  /// Outstanding handles are invalidated via the generation bump.
  void clear();

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  enum class SlotState : unsigned char {
    kFree,
    kPending,
    kCancelled,
    /// Removed from the heap by extract_until but not yet fired; the live
    /// counter no longer includes it, yet cancel() still works on it.
    kExtracted,
  };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Cancel the event in `index` iff the handle's generation still matches
  /// and it has not fired. Returns whether the cancel took effect. The
  /// callback is destroyed eagerly (releasing its captures); the heap item
  /// becomes a tombstone collected when it surfaces.
  bool cancel_entry(std::uint32_t index, std::uint32_t generation);

  /// Discard dead entries (cancelled, or from recycled slots) sitting at the
  /// top of the heap. Dead entries deeper in the heap are collected when
  /// they surface; they never affect emptiness (live_ tracks that exactly).
  void drop_cancelled();

  /// Pop the heap's top item and return it (plain data, no ownership).
  Entry take_top();

  /// Collect one dead heap/mailbox entry: recycle the slot when the item is
  /// not a stale tombstone of an already-recycled slot.
  void collect_dead(const Entry& entry);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  // Min-heap (via the Later comparator) maintained with std::push_heap /
  // std::pop_heap over an owned vector of POD items; callbacks stay put in
  // the slab and are never moved by heap sifts.
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace paldia::sim
