#include "src/core/hardware_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

namespace paldia::core {

HardwareSelection::HardwareSelection(const models::Zoo& zoo, const hw::Catalog& catalog,
                                     const models::ProfileTable& profile,
                                     const perfmodel::YOptimizer& optimizer,
                                     ThreadPool* pool, HardwareSelectionConfig config)
    : zoo_(&zoo),
      catalog_(&catalog),
      profile_(&profile),
      optimizer_(&optimizer),
      pool_(pool),
      config_(config),
      index_(zoo, catalog, profile) {}

perfmodel::SharingDecision HardwareSelection::sweep(
    models::ModelId model, hw::NodeType node,
    const perfmodel::WorkloadPoint& point) const {
  if (cache_ == nullptr) return optimizer_->best_split(point);
  perfmodel::TmaxCache::Key key;
  key.model = static_cast<std::int16_t>(model);
  key.node = static_cast<std::int16_t>(node);
  key.n_requests = point.n_requests;
  key.slo_q = perfmodel::TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = perfmodel::kDefaultSweepProbes;
  return cache_->best_split(*optimizer_, key, point, perfmodel::kDefaultSweepProbes);
}

int HardwareSelection::coexisting_requests(const DemandSnapshot& demand,
                                           DurationMs slo_ms) const {
  // Trend-boosted prediction: the burst bound is the early-warning signal
  // for surge fronts — a CPU node must be abandoned *before* the ramp
  // outruns it (procurement + warmup take several seconds). Steady-state
  // feasibility separately uses the smoothed rate (see evaluate()), which
  // keeps prediction noise from flapping the selection at baseline.
  const double rate = std::max(demand.predicted_rps, demand.observed_rps);
  const double window_arrivals = rate * (slo_ms / kMsPerSecond);
  return demand.backlog + static_cast<int>(std::ceil(window_arrivals));
}

HardwareChoice HardwareSelection::evaluate(
    hw::NodeType node, const std::vector<DemandSnapshot>& demand) const {
  HardwareChoice choice;
  choice.node = node;
  choice.feasible = true;
  const bool is_gpu = catalog_->spec(node).is_gpu();

  for (const auto& snapshot : demand) {
    const auto& model = zoo_->spec(snapshot.model);
    const DurationMs budget = model.slo_ms * config_.slo_headroom;

    if (!is_gpu) {
      const int n = coexisting_requests(snapshot, model.slo_ms);
      if (n <= 0) continue;
      // Drain bound for the coexisting burst, plus a steady-state queueing
      // estimate for the sustained rate — a sequential executor must stay
      // well below saturation or its tail explodes.
      const auto burst = perfmodel::approx_cpu_t_max(model, *profile_, node, n, budget);
      // Sustained feasibility is judged on the smoothed rate: the trend-
      // boosted prediction whipsaws in steady state and would bounce the
      // selection between the CPU tier and the cheapest GPU.
      const auto steady = perfmodel::cpu_steady_state(
          model, *profile_, node, std::max(snapshot.smoothed_rps, snapshot.observed_rps),
          budget);
      choice.t_max_ms =
          std::max({choice.t_max_ms, burst.t_max_ms,
                    std::isfinite(steady.latency_ms) ? steady.latency_ms : budget * 10});
      choice.feasible = choice.feasible && burst.feasible && steady.feasible;
      continue;
    }

    // GPU nodes: N_M is the demand that actually *coexists* on the device.
    // Under sustained rate lambda it is the backlog plus the arrivals of
    // one service generation (Little's law), so we iterate the fixed point
    //   N = backlog + lambda * T_max(N)
    // a few times, capping T_max at the SLO — if the fixed point does not
    // settle below the SLO the node cannot sustain the rate.
    const Rps lambda = snapshot.predicted_rps;
    const auto point_for = [&](int n) {
      const int bs = std::min(model.max_batch, std::max(1, n));
      const auto entry = profile_->lookup(model, node, bs);
      return perfmodel::WorkloadPoint{n, bs, entry.solo_ms, entry.fbr, budget,
                                      entry.compute};
    };
    const DurationMs solo_full =
        profile_->lookup(model, node, model.max_batch).solo_ms;
    int n = snapshot.backlog +
            static_cast<int>(std::ceil(lambda * solo_full / kMsPerSecond));
    if (n <= 0) continue;
    perfmodel::SharingDecision decision;
    for (int iteration = 0; iteration < 3; ++iteration) {
      decision = sweep(snapshot.model, node, point_for(n));
      const DurationMs horizon = std::min(decision.t_max_ms, model.slo_ms);
      const int next = snapshot.backlog +
                       static_cast<int>(std::ceil(lambda * horizon / kMsPerSecond));
      if (next == n) break;
      n = std::max(1, next);
    }
    choice.t_max_ms = std::max(choice.t_max_ms, decision.t_max_ms);
    // Beyond meeting T_max at the operating point, the node needs bulk
    // throughput headroom over the offered rate — probe an SLO-window's
    // worth of demand at once and measure how fast the best split drains
    // it. Running near that capacity leaves no room for arrival bursts
    // (the tail explodes just like a saturated CPU queue).
    const int n_sat = std::max(
        n, static_cast<int>(std::ceil(lambda * model.slo_ms / kMsPerSecond)));
    const auto saturated = sweep(snapshot.model, node, point_for(n_sat));
    const Rps capacity =
        saturated.t_max_ms > 0.0
            ? n_sat / (saturated.t_max_ms / kMsPerSecond)
            : std::numeric_limits<Rps>::infinity();
    const bool sustainable = capacity >= lambda * 1.15;
    choice.feasible = choice.feasible && decision.feasible && sustainable;
    choice.best_y = decision.y;  // last model wins; single-model runs only use this
  }
  return choice;
}

DurationMs HardwareSelection::gpu_t_max_lower_bound(
    hw::NodeType node, const std::vector<DemandSnapshot>& demand,
    bool* provably_infeasible) const {
  // For each model, every N the evaluate() fixed point can settle on is at
  // least
  //   N_lb = max(1, backlog + ceil(lambda * min(solo(1), SLO) / 1000))
  // because every sweep's T_max is at least solo(bs) >= solo(1) (so the
  // Little's-law horizon is at least min(solo(1), SLO)), and the starting
  // point uses solo(max_batch) >= solo(1). TmaxModel::t_max_lower_bound is
  // monotone in N under bs = min(max_batch, N), so evaluating it at N_lb
  // bounds the real T_max from below; if the bound already exceeds the
  // headroomed SLO the node is provably infeasible without any y-sweep.
  // The mathematical bound holds over the reals; the evaluated T_max goes
  // through a handful more roundings than the bound, so shave a relative
  // margin far above accumulated ulp error and far below any real pruning
  // threshold. Without it a bound could exceed the computed T_max by an ulp
  // and break the pruned/linear byte-identity on a hairline tie.
  constexpr double kUlpMargin = 1.0 - 1e-9;
  DurationMs lower = 0.0;
  *provably_infeasible = false;
  for (const auto& snapshot : demand) {
    const auto& model = zoo_->spec(snapshot.model);
    const DurationMs budget = model.slo_ms * config_.slo_headroom;
    const Rps lambda = snapshot.predicted_rps;
    const DurationMs solo_full =
        profile_->lookup(model, node, model.max_batch).solo_ms;
    const int n0 = snapshot.backlog +
                   static_cast<int>(std::ceil(lambda * solo_full / kMsPerSecond));
    if (n0 <= 0) continue;  // evaluate() skips this model outright
    const DurationMs solo_one = profile_->lookup(model, node, 1).solo_ms;
    const DurationMs horizon = std::min(solo_one, model.slo_ms);
    const int n_lb = std::max(
        1, snapshot.backlog +
               static_cast<int>(std::ceil(lambda * horizon / kMsPerSecond)));
    const int bs = std::min(model.max_batch, n_lb);
    const auto entry = profile_->lookup(model, node, bs);
    const perfmodel::WorkloadPoint point{n_lb, bs, entry.solo_ms, entry.fbr,
                                         budget, entry.compute};
    const DurationMs bound =
        optimizer_->model().t_max_lower_bound(point) * kUlpMargin;
    lower = std::max(lower, bound);
    if (bound > budget) *provably_infeasible = true;
  }
  return lower;
}

std::vector<hw::NodeType> HardwareSelection::build_pool(
    const std::vector<DemandSnapshot>& demand, bool use_masks) const {
  // Pool: every node whose single-request latency fits the SLO for all
  // active models (profiling prunes hopeless hardware up front). The masked
  // path evaluates the same predicate from the precomputed capability bits;
  // both paths produce the identical pool by construction.
  std::vector<hw::NodeType> pool;
  for (hw::NodeType type : catalog_->by_cost_ascending()) {
    bool capable = true;
    for (const auto& snapshot : demand) {
      if (use_masks) {
        if (!index_.capable(snapshot.model, type)) {
          capable = false;
          break;
        }
      } else {
        const auto& model = zoo_->spec(snapshot.model);
        if (profile_->lookup(model, type, 1).solo_ms > model.slo_ms) {
          capable = false;
          break;
        }
      }
    }
    if (capable) pool.push_back(type);
  }
  if (pool.empty()) {
    if (const auto top = catalog_->most_performant_gpu()) {
      pool.push_back(*top);
    } else {
      // CPU-only catalog with nothing capable: keep every node so the
      // degraded selection below can still return the least-bad CPU.
      pool.assign(catalog_->by_cost_ascending().begin(),
                  catalog_->by_cost_ascending().end());
    }
  }
  return pool;
}

// The pruned Algorithm 1 walk. Exactness argument, phase by phase (the
// randomized equivalence test in tests/core/selection_prune_test.cpp sweeps
// this against the linear reference over generated catalogs):
//
//  1. CPU short-circuit — identical to the linear scan: CPUs are resolved
//     lazily in cost order and the first feasible one wins.
//  2. best_t — the minimum T_max over feasible GPUs. Candidates are visited
//     in ascending lower-bound order; once the next bound reaches the
//     current minimum, no remaining candidate can lower it (their T_max is
//     at least their bound), so the refinement stops with the exact
//     minimum. Provably-infeasible candidates can never contribute.
//  3. Escalation — same rule as the linear path; on a CPU-only catalog the
//     least-bad (minimum T_max, cheapest on ties) CPU is returned instead.
//  4. Winner scan — cheapest-first through the catalog's cost buckets.
//     Candidates whose lower bound exceeds best_t + band cannot land in the
//     band; provably-infeasible ones cannot be feasible; everything else is
//     resolved until the first feasible in-band candidate — the same node
//     the linear scan breaks on, reached at the latest at the best_t node.
//
// Twin dedup (SelectionIndex) applies throughout: a node whose profile-
// relevant silicon matches an earlier pool member copies that evaluation
// (only the node id differs), so regional price variants cost nothing.
template <typename Evaluator>
HardwareSelection::WalkOutcome HardwareSelection::pruned_walk(
    const std::vector<DemandSnapshot>& demand, const std::vector<hw::NodeType>& pool,
    Evaluator&& eval) const {
  WalkOutcome outcome;
  const std::size_t n = pool.size();

  // Twin groups within this pool: first occurrence (cost order) represents.
  std::vector<std::size_t> rep_of(n);
  {
    std::unordered_map<int, std::size_t> first_by_rep;
    for (std::size_t i = 0; i < n; ++i) {
      const int rep = hw::node_index(index_.twin_representative(pool[i]));
      const auto [it, inserted] = first_by_rep.emplace(rep, i);
      rep_of[i] = it->second;
    }
  }

  std::vector<std::optional<HardwareChoice>> resolved(n);
  const auto resolve = [&](std::size_t i) -> const HardwareChoice& {
    if (!resolved[i]) {
      const std::size_t rep = rep_of[i];  // rep is its own representative
      if (!resolved[rep]) {
        resolved[rep] = eval(rep);
        ++outcome.evaluated;
      }
      if (rep != i) {
        HardwareChoice copy = *resolved[rep];
        copy.node = pool[i];
        resolved[i] = copy;
      }
    }
    return *resolved[i];
  };

  // Phase 1: CPU short-circuit, cheapest-first.
  for (std::size_t i = 0; i < n; ++i) {
    if (catalog_->spec(pool[i]).is_gpu()) continue;
    const HardwareChoice& choice = resolve(i);
    if (choice.feasible) {
      outcome.cpu_short_circuit = true;
      outcome.choice = choice;
      return outcome;
    }
  }

  // Phase 2: exact best feasible GPU T_max via lower-bound-ordered
  // refinement.
  std::vector<std::size_t> gpus;
  gpus.reserve(n);
  std::vector<DurationMs> lower(n, 0.0);
  std::vector<char> lb_infeasible(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!catalog_->spec(pool[i]).is_gpu()) continue;
    if (rep_of[i] == i) {
      bool provably_infeasible = false;
      lower[i] = gpu_t_max_lower_bound(pool[i], demand, &provably_infeasible);
      lb_infeasible[i] = provably_infeasible ? 1 : 0;
    } else {
      lower[i] = lower[rep_of[i]];
      lb_infeasible[i] = lb_infeasible[rep_of[i]];
    }
    gpus.push_back(i);
  }
  std::vector<std::size_t> by_bound = gpus;
  std::sort(by_bound.begin(), by_bound.end(), [&](std::size_t a, std::size_t b) {
    if (lower[a] != lower[b]) return lower[a] < lower[b];
    return a < b;
  });
  DurationMs best_t = std::numeric_limits<double>::infinity();
  for (std::size_t i : by_bound) {
    if (lb_infeasible[i]) continue;
    if (lower[i] >= best_t) break;  // bounds are sorted: nothing can improve
    const HardwareChoice& choice = resolve(i);
    if (choice.feasible) best_t = std::min(best_t, choice.t_max_ms);
  }
  if (std::isfinite(best_t)) outcome.best_feasible_gpu_t_max_ms = best_t;

  // Phase 3: escalation when nothing is feasible.
  if (!std::isfinite(best_t)) {
    const auto top = catalog_->most_performant_gpu();
    if (!top.has_value()) {
      // CPU-only catalog, no feasible CPU: degrade to the least-bad CPU
      // (minimum T_max; the cheapest on ties since the pool is
      // cost-ascending). Phase 1 already resolved every CPU.
      const HardwareChoice* least_bad = nullptr;
      for (std::size_t i = 0; i < n; ++i) {
        if (catalog_->spec(pool[i]).is_gpu()) continue;
        const HardwareChoice& choice = resolve(i);
        if (least_bad == nullptr || choice.t_max_ms < least_bad->t_max_ms) {
          least_bad = &choice;
        }
      }
      if (least_bad != nullptr) {
        outcome.choice = *least_bad;
        return outcome;
      }
      // Degenerate GPU-less, CPU-less pool cannot occur (build_pool always
      // returns at least one node); fall through defensively.
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (top.has_value() && pool[i] == *top) {
        outcome.choice = resolve(i);
        return outcome;
      }
    }
    outcome.escalated_outside_pool = true;  // caller evaluates the top GPU
    return outcome;
  }

  // Phase 4: cheapest feasible GPU within the performance band, walked
  // bucket by bucket so the enumeration stops at the first bucket that
  // yields a winner. A misconfigured negative band would disqualify even
  // the best node itself, so clamp it at zero (exact-best-only).
  const DurationMs band = std::max(0.0, config_.performance_band_ms);
  const DurationMs threshold = best_t + band;
  const int bucket_count = static_cast<int>(catalog_->cost_buckets().size());
  std::size_t i = 0;
  for (int bucket = 0; bucket < bucket_count && i < n; ++bucket) {
    for (; i < n && index_.cost_bucket(pool[i]) <= bucket; ++i) {
      if (!catalog_->spec(pool[i]).is_gpu()) continue;
      if (lb_infeasible[i]) continue;
      if (lower[i] > threshold) continue;  // cannot land inside the band
      const HardwareChoice& choice = resolve(i);
      if (choice.feasible && choice.t_max_ms <= threshold) {
        outcome.choice = choice;
        return outcome;
      }
    }
  }
  // Unreachable when best_t is finite (the best_t node itself passes every
  // filter); keep the linear path's defensive escalation shape.
  outcome.escalated_outside_pool = true;
  return outcome;
}

HardwareChoice HardwareSelection::choose(const std::vector<DemandSnapshot>& demand,
                                         SelectionSweep* sweep) const {
  const std::vector<hw::NodeType> pool = build_pool(demand, config_.prune);
  const DurationMs band = std::max(0.0, config_.performance_band_ms);

  // Fast path: no observer. The pruned walk evaluates candidates lazily;
  // the linear reference (--no-prune) evaluates the whole pool up front.
  if (sweep == nullptr && config_.prune) {
    WalkOutcome walk =
        pruned_walk(demand, pool, [&](std::size_t i) { return evaluate(pool[i], demand); });
    if (!walk.escalated_outside_pool) return walk.choice;
    const auto top = catalog_->most_performant_gpu();
    return evaluate(top.value_or(pool.front()), demand);
  }

  // Observed (or linear) path: evaluate every pool member. With an observer
  // attached this happens in *both* prune modes so the exported candidate
  // tables — and the TmaxCache counters feeding the metrics stream — stay
  // byte-identical between --no-prune and the default; the pruned walk is
  // then replayed over the results to account the work it would have saved.
  std::vector<HardwareChoice> choices(pool.size());
  auto evaluate_one = [&](std::size_t i) { choices[i] = evaluate(pool[i], demand); };
  if (pool_ != nullptr && pool.size() > 1) {
    pool_->parallel_for(pool.size(), evaluate_one);
  } else {
    for (std::size_t i = 0; i < pool.size(); ++i) evaluate_one(i);
  }

  WalkOutcome walk = pruned_walk(
      demand, pool, [&](std::size_t i) -> const HardwareChoice& { return choices[i]; });

  if (sweep != nullptr) {
    sweep->candidates = choices;  // cost-ascending, same order as the pool
    sweep->band_ms = band;
    sweep->best_feasible_gpu_t_max_ms = walk.best_feasible_gpu_t_max_ms;
    sweep->cpu_short_circuit = walk.cpu_short_circuit;
    sweep->pool_size = static_cast<int>(pool.size());
    sweep->evaluated = walk.evaluated + (walk.escalated_outside_pool ? 1 : 0);
    sweep->pruned = static_cast<int>(pool.size()) - walk.evaluated;
  }

  if (walk.escalated_outside_pool) {
    // The escalation target was outside the capable pool; still surface it
    // in the sweep so the log shows every node that was actually evaluated.
    const auto top = catalog_->most_performant_gpu();
    const HardwareChoice escalated = evaluate(top.value_or(pool.front()), demand);
    if (sweep != nullptr) sweep->candidates.push_back(escalated);
    return escalated;
  }
  if (config_.prune) return walk.choice;

  // Linear reference scan (--no-prune): Algorithm 1 exactly as written.
  // Walking the pool cheapest-first, the first *feasible CPU node*
  // short-circuits (the pseudocode's `break` after approx_T_max) — CPU
  // nodes handle low request rates whenever one suffices.
  for (const auto& choice : choices) {
    if (!catalog_->spec(choice.node).is_gpu() && choice.feasible) return choice;
  }

  // choose_best_HW over the GPU candidates: among feasible ones, the
  // cheapest within performance_band of the most performant; otherwise the
  // walk above already escalated or degraded.
  DurationMs best_t = std::numeric_limits<double>::infinity();
  for (const auto& choice : choices) {
    if (catalog_->spec(choice.node).is_gpu() && choice.feasible) {
      best_t = std::min(best_t, choice.t_max_ms);
    }
  }
  if (!std::isfinite(best_t)) return walk.choice;  // escalation / CPU degrade
  const HardwareChoice* winner = nullptr;
  for (const auto& choice : choices) {  // pool is cost-ascending
    if (!choice.feasible || !catalog_->spec(choice.node).is_gpu()) continue;
    if (choice.t_max_ms <= best_t + band) {
      winner = &choice;
      break;
    }
    // Defensive fallback: the best_t node always satisfies the clamped band,
    // but track the best feasible choice so we can never dereference null.
    if (winner == nullptr || choice.t_max_ms < winner->t_max_ms) winner = &choice;
  }
  if (winner != nullptr) return *winner;
  return walk.choice;
}

}  // namespace paldia::core
