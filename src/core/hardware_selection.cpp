#include "src/core/hardware_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace paldia::core {

HardwareSelection::HardwareSelection(const models::Zoo& zoo, const hw::Catalog& catalog,
                                     const models::ProfileTable& profile,
                                     const perfmodel::YOptimizer& optimizer,
                                     ThreadPool* pool, HardwareSelectionConfig config)
    : zoo_(&zoo),
      catalog_(&catalog),
      profile_(&profile),
      optimizer_(&optimizer),
      pool_(pool),
      config_(config) {}

perfmodel::SharingDecision HardwareSelection::sweep(
    models::ModelId model, hw::NodeType node,
    const perfmodel::WorkloadPoint& point) const {
  if (cache_ == nullptr) return optimizer_->best_split(point);
  perfmodel::TmaxCache::Key key;
  key.model = static_cast<std::int16_t>(model);
  key.node = static_cast<std::int16_t>(node);
  key.n_requests = point.n_requests;
  key.slo_q = perfmodel::TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = perfmodel::kDefaultSweepProbes;
  return cache_->best_split(*optimizer_, key, point, perfmodel::kDefaultSweepProbes);
}

int HardwareSelection::coexisting_requests(const DemandSnapshot& demand,
                                           DurationMs slo_ms) const {
  // Trend-boosted prediction: the burst bound is the early-warning signal
  // for surge fronts — a CPU node must be abandoned *before* the ramp
  // outruns it (procurement + warmup take several seconds). Steady-state
  // feasibility separately uses the smoothed rate (see evaluate()), which
  // keeps prediction noise from flapping the selection at baseline.
  const double rate = std::max(demand.predicted_rps, demand.observed_rps);
  const double window_arrivals = rate * (slo_ms / kMsPerSecond);
  return demand.backlog + static_cast<int>(std::ceil(window_arrivals));
}

HardwareChoice HardwareSelection::evaluate(
    hw::NodeType node, const std::vector<DemandSnapshot>& demand) const {
  HardwareChoice choice;
  choice.node = node;
  choice.feasible = true;
  const bool is_gpu = catalog_->spec(node).is_gpu();

  for (const auto& snapshot : demand) {
    const auto& model = zoo_->spec(snapshot.model);
    const DurationMs budget = model.slo_ms * config_.slo_headroom;

    if (!is_gpu) {
      const int n = coexisting_requests(snapshot, model.slo_ms);
      if (n <= 0) continue;
      // Drain bound for the coexisting burst, plus a steady-state queueing
      // estimate for the sustained rate — a sequential executor must stay
      // well below saturation or its tail explodes.
      const auto burst = perfmodel::approx_cpu_t_max(model, *profile_, node, n, budget);
      // Sustained feasibility is judged on the smoothed rate: the trend-
      // boosted prediction whipsaws in steady state and would bounce the
      // selection between the CPU tier and the cheapest GPU.
      const auto steady = perfmodel::cpu_steady_state(
          model, *profile_, node, std::max(snapshot.smoothed_rps, snapshot.observed_rps),
          budget);
      choice.t_max_ms =
          std::max({choice.t_max_ms, burst.t_max_ms,
                    std::isfinite(steady.latency_ms) ? steady.latency_ms : budget * 10});
      choice.feasible = choice.feasible && burst.feasible && steady.feasible;
      continue;
    }

    // GPU nodes: N_M is the demand that actually *coexists* on the device.
    // Under sustained rate lambda it is the backlog plus the arrivals of
    // one service generation (Little's law), so we iterate the fixed point
    //   N = backlog + lambda * T_max(N)
    // a few times, capping T_max at the SLO — if the fixed point does not
    // settle below the SLO the node cannot sustain the rate.
    const Rps lambda = snapshot.predicted_rps;
    const auto point_for = [&](int n) {
      const int bs = std::min(model.max_batch, std::max(1, n));
      const auto entry = profile_->lookup(model, node, bs);
      return perfmodel::WorkloadPoint{n, bs, entry.solo_ms, entry.fbr, budget,
                                      entry.compute};
    };
    const DurationMs solo_full =
        profile_->lookup(model, node, model.max_batch).solo_ms;
    int n = snapshot.backlog +
            static_cast<int>(std::ceil(lambda * solo_full / kMsPerSecond));
    if (n <= 0) continue;
    perfmodel::SharingDecision decision;
    for (int iteration = 0; iteration < 3; ++iteration) {
      decision = sweep(snapshot.model, node, point_for(n));
      const DurationMs horizon = std::min(decision.t_max_ms, model.slo_ms);
      const int next = snapshot.backlog +
                       static_cast<int>(std::ceil(lambda * horizon / kMsPerSecond));
      if (next == n) break;
      n = std::max(1, next);
    }
    choice.t_max_ms = std::max(choice.t_max_ms, decision.t_max_ms);
    // Beyond meeting T_max at the operating point, the node needs bulk
    // throughput headroom over the offered rate — probe an SLO-window's
    // worth of demand at once and measure how fast the best split drains
    // it. Running near that capacity leaves no room for arrival bursts
    // (the tail explodes just like a saturated CPU queue).
    const int n_sat = std::max(
        n, static_cast<int>(std::ceil(lambda * model.slo_ms / kMsPerSecond)));
    const auto saturated = sweep(snapshot.model, node, point_for(n_sat));
    const Rps capacity =
        saturated.t_max_ms > 0.0
            ? n_sat / (saturated.t_max_ms / kMsPerSecond)
            : std::numeric_limits<Rps>::infinity();
    const bool sustainable = capacity >= lambda * 1.15;
    choice.feasible = choice.feasible && decision.feasible && sustainable;
    choice.best_y = decision.y;  // last model wins; single-model runs only use this
  }
  return choice;
}

HardwareChoice HardwareSelection::choose(const std::vector<DemandSnapshot>& demand,
                                         SelectionSweep* sweep) const {
  // Pool: every node whose single-request latency fits the SLO for all
  // active models (profiling prunes hopeless hardware up front).
  std::vector<hw::NodeType> pool;
  for (hw::NodeType type : catalog_->by_cost_ascending()) {
    bool capable = true;
    for (const auto& snapshot : demand) {
      const auto& model = zoo_->spec(snapshot.model);
      if (profile_->lookup(model, type, 1).solo_ms > model.slo_ms) {
        capable = false;
        break;
      }
    }
    if (capable) pool.push_back(type);
  }
  if (pool.empty()) pool.push_back(catalog_->most_performant_gpu());

  // par_for over the pool (Algorithm 1); results land in fixed slots so the
  // outcome is independent of scheduling order.
  std::vector<HardwareChoice> choices(pool.size());
  auto evaluate_one = [&](std::size_t i) { choices[i] = evaluate(pool[i], demand); };
  if (pool_ != nullptr && pool.size() > 1) {
    pool_->parallel_for(pool.size(), evaluate_one);
  } else {
    for (std::size_t i = 0; i < pool.size(); ++i) evaluate_one(i);
  }

  if (sweep != nullptr) {
    sweep->candidates = choices;  // cost-ascending, same order as the pool
    sweep->band_ms = std::max(0.0, config_.performance_band_ms);
    sweep->best_feasible_gpu_t_max_ms = 0.0;
    sweep->cpu_short_circuit = false;
  }

  // Algorithm 1: walking the pool cheapest-first, the first *feasible CPU
  // node* short-circuits (the pseudocode's `break` after approx_T_max) —
  // CPU nodes handle low request rates whenever one suffices.
  for (const auto& choice : choices) {
    if (!catalog_->spec(choice.node).is_gpu() && choice.feasible) {
      if (sweep != nullptr) sweep->cpu_short_circuit = true;
      return choice;
    }
  }

  // choose_best_HW over the GPU candidates: among feasible ones, the
  // cheapest within performance_band of the most performant; otherwise
  // escalate to the most performant GPU (Section III's reattempt path).
  // A misconfigured negative band would disqualify even the best node
  // itself, so clamp it at zero (exact-best-only).
  const DurationMs band = std::max(0.0, config_.performance_band_ms);
  DurationMs best_t = std::numeric_limits<double>::infinity();
  for (const auto& choice : choices) {
    if (catalog_->spec(choice.node).is_gpu() && choice.feasible) {
      best_t = std::min(best_t, choice.t_max_ms);
    }
  }
  if (sweep != nullptr && std::isfinite(best_t)) {
    sweep->best_feasible_gpu_t_max_ms = best_t;
  }
  if (!std::isfinite(best_t)) {
    // No feasible node at all: use the most performant GPU, best split.
    const auto top = catalog_->most_performant_gpu();
    for (const auto& choice : choices) {
      if (choice.node == top) return choice;
    }
    auto escalated = evaluate(top, demand);
    // The escalation target was outside the capable pool; still surface it
    // in the sweep so the log shows every node that was actually evaluated.
    if (sweep != nullptr) sweep->candidates.push_back(escalated);
    return escalated;
  }
  const HardwareChoice* winner = nullptr;
  for (const auto& choice : choices) {  // pool is cost-ascending
    if (!choice.feasible || !catalog_->spec(choice.node).is_gpu()) continue;
    if (choice.t_max_ms <= best_t + band) {
      winner = &choice;
      break;
    }
    // Defensive fallback: the best_t node always satisfies the clamped band,
    // but track the best feasible choice so we can never dereference null.
    if (winner == nullptr || choice.t_max_ms < winner->t_max_ms) winner = &choice;
  }
  if (winner != nullptr) return *winner;
  return evaluate(catalog_->most_performant_gpu(), demand);
}

}  // namespace paldia::core
