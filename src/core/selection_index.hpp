// Precomputed pruning structures for the hardware-selection sweep.
//
// Algorithm 1 walks the whole catalog every monitor tick; on a generated
// fleet-scale catalog (catalog_gen.hpp) that linear sweep becomes the
// scheduler's hot path. Everything here is derived once, at construction,
// from the immutable (zoo, catalog, profile) triple:
//
//  * capability bitmasks — per model, which nodes can serve a single request
//    within the SLO (the pool filter as one AND per 64 nodes instead of a
//    profile lookup per node per tick);
//  * twin groups — nodes whose profile-relevant silicon is identical
//    (regional price variants: same speed/bandwidth for GPUs, same
//    vcpus/per-core speed for CPUs). HardwareSelection::evaluate() depends
//    on the node only through those parameters, so a twin's evaluation can
//    be copied from its representative verbatim. This is the provably-exact
//    form of dominance pruning: a twin at a higher price can never be
//    chosen over its representative, and its metrics are identical;
//  * cost ranks/buckets — each node's position in the catalog's cached
//    cost-ascending order and its price-band bucket, so the winner scan can
//    walk buckets cheapest-first and stop at the first in-band winner.
//
// None of this changes any choice: the pruned sweep must match the linear
// sweep bit-for-bit (CI byte-compares --no-prune runs; a randomized
// equivalence test sweeps generated catalogs).
#pragma once

#include <cstdint>
#include <vector>

#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"

namespace paldia::core {

class SelectionIndex {
 public:
  SelectionIndex() = default;
  SelectionIndex(const models::Zoo& zoo, const hw::Catalog& catalog,
                 const models::ProfileTable& profile);

  /// True when the node's single-request latency fits the model's SLO —
  /// identical to the linear pool filter's predicate.
  bool capable(models::ModelId model, hw::NodeType node) const {
    const auto bit = static_cast<std::size_t>(hw::node_index(node));
    return (capable_[static_cast<std::size_t>(model) * words_ + bit / 64] >>
            (bit % 64)) &
           1u;
  }

  /// Lowest catalog index whose profile-relevant silicon is identical to
  /// `node` (possibly node itself). Twins share evaluate() results exactly.
  hw::NodeType twin_representative(hw::NodeType node) const {
    return hw::make_node_type(twin_rep_[static_cast<std::size_t>(hw::node_index(node))]);
  }

  /// Position of the node in Catalog::by_cost_ascending().
  int cost_rank(hw::NodeType node) const {
    return cost_rank_[static_cast<std::size_t>(hw::node_index(node))];
  }

  /// Index into Catalog::cost_buckets() for the node's price band.
  int cost_bucket(hw::NodeType node) const {
    return bucket_of_rank_[static_cast<std::size_t>(cost_rank(node))];
  }

  /// Number of nodes that are a twin of a cheaper node (reporting only).
  int twin_count() const { return twin_count_; }

  bool empty() const { return capable_.empty(); }

 private:
  std::size_t words_ = 0;             // 64-bit words per model mask
  std::vector<std::uint64_t> capable_;  // [model * words_ + word]
  std::vector<int> twin_rep_;           // catalog index -> representative index
  std::vector<int> cost_rank_;          // catalog index -> cost position
  std::vector<int> bucket_of_rank_;     // cost position -> bucket id
  int twin_count_ = 0;
};

}  // namespace paldia::core
