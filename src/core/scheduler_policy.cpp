#include "src/core/scheduler_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace paldia::core {

hw::NodeType SchedulerPolicy::on_node_failure(hw::NodeType failed) {
  // "Switch to the more performant hardware with the least cost"; from the
  // most performant node, step down to the next best GPU (Section VI-B).
  const auto& catalog = this->catalog();
  const double failed_speed =
      catalog.spec(failed).is_gpu() ? catalog.spec(failed).gpu->speed : 0.0;

  hw::NodeType best = failed;
  double best_price = std::numeric_limits<double>::infinity();
  for (hw::NodeType type : catalog.gpus_by_capability_ascending()) {
    if (type == failed) continue;
    const auto& spec = catalog.spec(type);
    if (spec.gpu->speed > failed_speed && spec.price_per_hour < best_price) {
      best = type;
      best_price = spec.price_per_hour;
    }
  }
  if (best != failed) return best;

  // Already on the top GPU: fall back to the next most capable one.
  const auto gpus = catalog.gpus_by_capability_ascending();
  for (auto it = gpus.rbegin(); it != gpus.rend(); ++it) {
    if (*it != failed) return *it;
  }
  return failed;  // single-GPU catalog: nothing else to do
}

int SchedulerPolicy::desired_containers(const SplitPlan& plan) const {
  // n_c = ceil(n_spatial / batch_size); one extra warm container serves the
  // time-shared batches (reused, per Section IV-C).
  const int batch = std::max(1, plan.batch_size);
  int containers = (plan.spatial_requests + batch - 1) / batch;
  if (plan.temporal_requests > 0 || plan.use_cpu) {
    containers = std::max(containers, 1);
  }
  return containers;
}

}  // namespace paldia::core
