#include "src/core/fleet.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/rng.hpp"
#include "src/trace/trace.hpp"

namespace paldia::core {

std::vector<std::vector<int>> slice_catalog(const hw::Catalog& catalog,
                                            int endpoints) {
  assert(endpoints >= 1);
  std::vector<std::vector<int>> slices(static_cast<std::size_t>(endpoints));
  // Deal CPUs first so truncation to kNodeTypeCount can never evict a
  // slice's only CPU node (slices are started on their cheapest CPU).
  int dealt_cpu = 0;
  int dealt_gpu = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_gpu = pass == 1;
    for (int i = 0; i < static_cast<int>(catalog.size()); ++i) {
      if (catalog.spec(hw::NodeType(i)).is_gpu() != want_gpu) continue;
      int& dealt = want_gpu ? dealt_gpu : dealt_cpu;
      slices[static_cast<std::size_t>(dealt % endpoints)].push_back(i);
      ++dealt;
    }
  }
  for (auto& slice : slices) {
    if (static_cast<int>(slice.size()) > hw::kNodeTypeCount) {
      slice.resize(static_cast<std::size_t>(hw::kNodeTypeCount));
    }
    std::sort(slice.begin(), slice.end());
  }
  return slices;
}

int Fleet::route(std::uint64_t route_seed, std::uint64_t sequence,
                 int endpoints) {
  std::uint64_t state = route_seed ^ sequence;
  return static_cast<int>(splitmix64(state) %
                          static_cast<std::uint64_t>(endpoints));
}

Fleet::Fleet(sim::Simulator& simulator, Rng rng, const models::Zoo& zoo,
             const hw::Catalog& global_catalog, FleetConfig config,
             PolicyFactory make_policy, ConfigureFn configure)
    : simulator_(&simulator), config_(config) {
  assert(config.endpoints >= 1);
  assert(make_policy != nullptr);
  if (config_.framework.lookahead_ms <= 0.0) {
    // Fleet-scale epoch window: one epoch extracts a whole window of every
    // endpoint's timer population instead of rescanning the resident heaps
    // once per 20 ms dispatch tick. Purely a batching knob — stamps are
    // global, so exports are byte-identical at any value.
    config_.framework.lookahead_ms = kFleetLookaheadMs;
  }
  const auto slices = slice_catalog(global_catalog, config.endpoints);
  endpoints_.reserve(static_cast<std::size_t>(config.endpoints));
  obs::Profiler* sim_profiler = nullptr;
  for (int e = 0; e < config.endpoints; ++e) {
    Endpoint endpoint;
    endpoint.id = e;
    endpoint.shard = simulator.shard_of(e);
    endpoint.global_nodes = slices[static_cast<std::size_t>(e)];
    assert(!endpoint.global_nodes.empty() && "more endpoints than nodes");

    std::vector<hw::NodeSpec> specs;
    specs.reserve(endpoint.global_nodes.size());
    for (const int node : endpoint.global_nodes) {
      specs.push_back(global_catalog.spec(hw::NodeType(node)));
    }
    endpoint.catalog = std::make_unique<hw::Catalog>(std::move(specs));
    endpoint.profile = std::make_unique<models::ProfileTable>(*endpoint.catalog);

    cluster::ClusterConfig cluster_config = config_.cluster;
    cluster_config.shard = endpoint.shard;
    endpoint.cluster = std::make_unique<cluster::Cluster>(
        simulator, rng.fork("fleet-cluster-" + std::to_string(e)), zoo,
        *endpoint.catalog, cluster_config);

    FrameworkConfig framework_config = config_.framework;
    framework_config.endpoint_id = e;
    framework_config.shard = endpoint.shard;
    if (!framework_config.initial_node.has_value()) {
      // Cheapest node of the slice; the dealing order guarantees a CPU
      // node while the catalog has one per endpoint.
      framework_config.initial_node = endpoint.catalog->by_cost_ascending().front();
    }
    if (configure) configure(e, *endpoint.catalog, framework_config);
    if (sim_profiler == nullptr) sim_profiler = framework_config.profiler;

    endpoint.framework = std::make_unique<Framework>(
        simulator, *endpoint.cluster,
        make_policy(e, *endpoint.catalog, *endpoint.profile),
        rng.fork("fleet-framework-" + std::to_string(e)), zoo,
        framework_config);
    endpoints_.push_back(std::move(endpoint));
  }
  // Each Framework ctor re-points the shared simulator's drain-phase
  // profiler at its own slot (last endpoint wins); pin it to the first
  // endpoint that has one so the self-profile lands in one deterministic
  // place.
  simulator.set_profiler(sim_profiler);
}

Fleet::~Fleet() = default;

void Fleet::add_workload(models::ModelId model,
                         const trace::Trace& global_trace) {
  const int count = endpoint_count();
  // Per-endpoint arrival counts per epoch: route every arrival of the
  // global trace in sequence order. The sequence is per model and runs
  // across epochs, so the split is independent of epoch boundaries.
  std::vector<std::vector<std::uint32_t>> counts(
      static_cast<std::size_t>(count),
      std::vector<std::uint32_t>(global_trace.epoch_count(), 0));
  std::uint64_t state = config_.route_seed + static_cast<std::uint64_t>(model);
  const std::uint64_t model_seed = splitmix64(state);
  std::uint64_t sequence = 0;
  for (std::size_t epoch = 0; epoch < global_trace.epoch_count(); ++epoch) {
    for (std::uint32_t k = 0; k < global_trace.count_at(epoch); ++k) {
      const int target = route(model_seed, sequence++, count);
      ++counts[static_cast<std::size_t>(target)][epoch];
    }
  }
  for (int e = 0; e < count; ++e) {
    auto& endpoint = endpoints_[static_cast<std::size_t>(e)];
    trace::Trace sub(global_trace.name() + "-e" + std::to_string(e),
                     global_trace.epoch_ms(),
                     std::move(counts[static_cast<std::size_t>(e)]));
    endpoint.requests += sub.total_requests();
    total_requests_ += sub.total_requests();
    endpoint.framework->add_workload(model, std::move(sub));
  }
}

TimeMs Fleet::hard_end() const {
  TimeMs end = 0.0;
  for (const auto& endpoint : endpoints_) {
    end = std::max(end, endpoint.framework->hard_end());
  }
  return end;
}

TimeMs Fleet::run() {
  for (auto& endpoint : endpoints_) endpoint.framework->begin_run();
  const TimeMs end = simulator_->run_until(hard_end());
  for (auto& endpoint : endpoints_) endpoint.framework->finish_run(end);
  return end;
}

}  // namespace paldia::core
