#include "src/core/batcher.hpp"

#include <algorithm>

#include "src/obs/tracer.hpp"

namespace paldia::core {

bool Batcher::should_dispatch(int pending, int max_batch,
                              DurationMs oldest_age_ms) const {
  if (pending <= 0) return false;
  if (pending >= max_batch) return true;
  return oldest_age_ms >= config_.max_wait_ms;
}

void Batcher::chunk_into(const cluster::Request* requests, std::size_t count,
                         int batch_size, TimeMs now, cluster::IdAllocator& ids,
                         cluster::RequestArena& arena,
                         std::vector<cluster::Batch>* out) const {
  if (count == 0) return;
  batch_size = std::max(1, batch_size);
  std::size_t formed = 0;
  std::size_t begin = 0;
  while (begin < count) {
    const std::size_t end = std::min(count, begin + static_cast<std::size_t>(batch_size));
    cluster::Batch batch;
    batch.id = ids.next_batch();
    batch.model = requests[begin].model;
    batch.formed_ms = now;
    batch.requests = arena.acquire();
    batch.requests.append(requests + begin, end - begin);
    out->push_back(std::move(batch));
    ++formed;
    begin = end;
  }
  if (tracer_ != nullptr) {
    tracer_->count("batches_formed", static_cast<double>(formed));
    tracer_->count("batched_requests", static_cast<double>(count));
  }
}

std::vector<cluster::Batch> Batcher::chunk(cluster::RequestBlock requests,
                                           int batch_size, TimeMs now,
                                           cluster::IdAllocator& ids) const {
  std::vector<cluster::Batch> batches;
  if (requests.empty()) return batches;
  cluster::RequestArena* arena = requests.arena();
  batches.reserve((requests.size() + static_cast<std::size_t>(std::max(1, batch_size)) - 1) /
                  static_cast<std::size_t>(std::max(1, batch_size)));
  chunk_into(requests.data(), requests.size(), batch_size, now, ids, *arena, &batches);
  return batches;
}

}  // namespace paldia::core
