#include "src/core/batcher.hpp"

#include <algorithm>

#include "src/obs/tracer.hpp"

namespace paldia::core {

bool Batcher::should_dispatch(int pending, int max_batch,
                              DurationMs oldest_age_ms) const {
  if (pending <= 0) return false;
  if (pending >= max_batch) return true;
  return oldest_age_ms >= config_.max_wait_ms;
}

std::vector<cluster::Batch> Batcher::chunk(std::vector<cluster::Request> requests,
                                           int batch_size, TimeMs now,
                                           cluster::IdAllocator& ids) const {
  std::vector<cluster::Batch> batches;
  if (requests.empty()) return batches;
  batch_size = std::max(1, batch_size);
  const auto total = requests.size();
  batches.reserve((total + batch_size - 1) / batch_size);
  std::size_t begin = 0;
  while (begin < total) {
    const std::size_t end = std::min(total, begin + static_cast<std::size_t>(batch_size));
    cluster::Batch batch;
    batch.id = ids.next_batch();
    batch.model = requests[begin].model;
    batch.formed_ms = now;
    batch.requests.assign(requests.begin() + static_cast<std::ptrdiff_t>(begin),
                          requests.begin() + static_cast<std::ptrdiff_t>(end));
    batches.push_back(std::move(batch));
    begin = end;
  }
  if (tracer_ != nullptr) {
    tracer_->count("batches_formed", static_cast<double>(batches.size()));
    tracer_->count("batched_requests", static_cast<double>(total));
  }
  return batches;
}

}  // namespace paldia::core
