#include "src/core/paldia_policy.hpp"
#include <cstdlib>
#include <cstdio>

#include <algorithm>

#include "src/obs/tracer.hpp"

namespace paldia::core {

PaldiaPolicy::PaldiaPolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                           const models::ProfileTable& profile, ThreadPool* pool,
                           PaldiaPolicyConfig config)
    : SchedulerPolicy(catalog),
      zoo_(&zoo),
      profile_(&profile),
      optimizer_(perfmodel::TmaxModel(config.tmax_beta), pool),
      tmax_cache_(/*bypass=*/!config.tmax_cache),
      selection_(zoo, catalog, profile, optimizer_, pool, config.selection),
      config_(config) {
  selection_.set_tmax_cache(&tmax_cache_);
}

void PaldiaPolicy::sync_cache_counters() {
  if (tracer() == nullptr) return;
  const perfmodel::TmaxCacheStats stats = tmax_cache_.stats();
  // Deltas (not totals) because Tracer::count accumulates; a zero delta
  // still registers the counter, keeping the sampled stream's key set
  // identical whether or not any sweep ran this interval.
  tracer()->count("tmax_cache_hit",
                  static_cast<double>(stats.hits - synced_hits_));
  tracer()->count("tmax_cache_miss",
                  static_cast<double>(stats.misses - synced_misses_));
  synced_hits_ = stats.hits;
  synced_misses_ = stats.misses;
}

hw::NodeType PaldiaPolicy::select_hardware(const std::vector<DemandSnapshot>& demand,
                                           hw::NodeType current, TimeMs now) {
  // The framework opened the tick's decision record before calling us.
  obs::DecisionRecord* rec =
      tracer() != nullptr ? tracer()->current_decision() : nullptr;
  SelectionSweep sweep;
  // Collect the sweep whenever a tracer observes the run — not just while a
  // decision record is open. An observed choose() evaluates the full pool
  // in both prune modes, so the TmaxCache counters in the sampled metrics
  // stream cannot drift between --no-prune and the default even after the
  // decision log hits capacity mid-run.
  const bool observed = tracer() != nullptr;
  const HardwareChoice choice =
      selection_.choose(demand, observed ? &sweep : nullptr);
  const hw::NodeType decided = apply_hysteresis(choice, current, demand, now);
  // The monitor tick samples counters right after this call; flushing here
  // folds the interval's dispatch-round sweeps into the same sample.
  sync_cache_counters();
  if (rec != nullptr) {
    rec->raw_choice = choice.node;
    rec->raw_feasible = choice.feasible;
    rec->raw_t_max_ms = choice.t_max_ms;
    rec->has_sweep = true;
    rec->band_ms = sweep.band_ms;
    rec->best_t_max_ms = sweep.best_feasible_gpu_t_max_ms;
    rec->cpu_short_circuit = sweep.cpu_short_circuit;
    rec->pool_size = sweep.pool_size;
    rec->evaluated_candidates = sweep.evaluated;
    rec->pruned_candidates = sweep.pruned;
    rec->wait_ctr = wait_ctr_;  // counter state *after* the decision
    rec->downgrade_ctr = downgrade_ctr_;
    rec->emergency_ctr = emergency_ctr_;
    rec->candidates.reserve(sweep.candidates.size());
    for (const auto& candidate : sweep.candidates) {
      obs::CandidateEval eval;
      eval.node = candidate.node;
      eval.t_max_ms = candidate.t_max_ms;
      eval.feasible = candidate.feasible;
      eval.is_gpu = catalog().spec(candidate.node).is_gpu();
      eval.price_per_hour = catalog().spec(candidate.node).price_per_hour;
      eval.best_y = candidate.best_y;
      rec->candidates.push_back(eval);
    }
  }
  return decided;
}

hw::NodeType PaldiaPolicy::apply_hysteresis(const HardwareChoice& choice,
                                            hw::NodeType current,
                                            const std::vector<DemandSnapshot>& demand,
                                            TimeMs now) {
  if (std::getenv("PALDIA_TRACE_SELECT")) {
    std::fprintf(stderr,
                 "[select] t=%.0f cur=%s chosen=%s tmax=%.0f feas=%d ctr=%d "
                 "pred=%.1f backlog=%d\n",
                 now, std::string(hw::node_type_name(current)).c_str(),
                 std::string(hw::node_type_name(choice.node)).c_str(),
                 choice.t_max_ms, (int)choice.feasible, downgrade_ctr_,
                 demand.empty() ? 0.0 : demand[0].predicted_rps,
                 demand.empty() ? 0 : demand[0].backlog);
  }

  // Hysteresis (Algorithm 1 tail): only reconfigure after wait_limit
  // consecutive rounds prefer the same non-current node — repeated
  // mismatches reveal a trend rather than noise. The downgrade counter is
  // leaky rather than hard-reset: a single noisy round in which the
  // current node is preferred should not erase an established
  // cost-saving trend.
  if (choice.node == current) {
    wait_ctr_ = 0;
    has_last_choice_ = false;
    downgrade_ctr_ = std::max(0, downgrade_ctr_ - 1);
    return current;
  }
  // Emergency escalation: when the *current* node is predicted to violate
  // the SLO and the selector wants stronger hardware, waiting out the
  // hysteresis only deepens the backlog — reconfigure immediately. The
  // wait counter exists to confirm cost-saving trends, not to delay
  // SLO-preserving upgrades.
  const bool upgrade = catalog().spec(choice.node).price_per_hour >
                       catalog().spec(current).price_per_hour;
  if (upgrade && !selection_.evaluate(current, demand).feasible) {
    // Two consecutive confirming rounds filter out single-sample noise in
    // the rate prediction while still reacting within one monitor period.
    ++emergency_ctr_;
    if (emergency_ctr_ >= 2) {
      emergency_ctr_ = 0;
      wait_ctr_ = 0;
      has_last_choice_ = false;
      return choice.node;
    }
  } else {
    emergency_ctr_ = 0;
  }

  const bool downgrade = catalog().spec(choice.node).price_per_hour <
                         catalog().spec(current).price_per_hour;
  if (downgrade) {
    // Downgrades only require that *some* cheaper node keeps sufficing —
    // which cheap node wins may flutter with the rate.
    ++downgrade_ctr_;
    if (downgrade_ctr_ >= config_.downgrade_wait_limit) {
      downgrade_ctr_ = 0;
      wait_ctr_ = 0;
      has_last_choice_ = false;
      return choice.node;
    }
    return current;
  }

  // Upgrades require the *same* target repeatedly (a trend towards
  // specific stronger hardware).
  if (has_last_choice_ && last_choice_ == choice.node) {
    ++wait_ctr_;
  } else {
    wait_ctr_ = 1;
  }
  last_choice_ = choice.node;
  has_last_choice_ = true;
  if (wait_ctr_ >= config_.wait_limit) {
    wait_ctr_ = 0;
    has_last_choice_ = false;
    return choice.node;
  }
  return current;
}

SplitPlan PaldiaPolicy::plan_dispatch(const DemandSnapshot& demand, hw::NodeType node,
                                      TimeMs) {
  SplitPlan plan;
  const auto& model = zoo_->spec(demand.model);
  const int n = demand.backlog;
  if (n <= 0) return plan;

  if (!profile_->catalog().spec(node).is_gpu()) {
    const auto estimate = perfmodel::approx_cpu_t_max(
        model, *profile_, node, n, model.slo_ms * config_.selection.slo_headroom);
    plan.use_cpu = true;
    plan.batch_size = std::max(1, estimate.batch_size);
    plan.temporal_requests = n;  // CPU mode serves batches sequentially
    return plan;
  }

  const int bs = std::min(model.max_batch, std::max(1, n));
  const auto entry = profile_->lookup(model, node, bs);
  perfmodel::WorkloadPoint point{n, bs, entry.solo_ms, entry.fbr,
                                 model.slo_ms * config_.selection.slo_headroom,
                                 entry.compute};
  perfmodel::TmaxCache::Key key;
  key.model = static_cast<std::int16_t>(demand.model);
  key.node = static_cast<std::int16_t>(node);
  key.n_requests = n;
  key.slo_q = perfmodel::TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = config_.sweep_max_probes;
  const auto decision =
      tmax_cache_.best_split(optimizer_, key, point, config_.sweep_max_probes);
  plan.batch_size = bs;
  plan.temporal_requests = std::clamp(decision.y, 0, n);
  plan.spatial_requests = n - plan.temporal_requests;
  return plan;
}

}  // namespace paldia::core
