// The Job Distribution logic (paper component 6): turns a SplitPlan into
// batches and schedules them on the node — spatial portion via MPS, the
// remaining y requests on the time-shared lane, CPU plans via the batched
// CPU mode — and fans batch completions out to per-request outcomes.
#pragma once

#include <vector>

#include "src/cluster/node.hpp"
#include "src/common/inline_function.hpp"
#include "src/core/batcher.hpp"
#include "src/core/scheduler_policy.hpp"

namespace paldia::obs {
class AttributionEngine;
class CalibrationTracker;
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

class JobDistributor {
 public:
  /// Per-request completion. The node type is the one the batch actually
  /// executed on (captured at submit; the active node may have moved by the
  /// time the callback fires). InlineFunction (not std::function) so wiring
  /// the framework's callbacks never heap-allocates.
  using RequestCompleteFn = InlineFunction<void(
      const cluster::Request&, const cluster::ExecutionReport&, hw::NodeType)>;
  using RequeueFn = InlineFunction<void(models::ModelId, cluster::RequestBlock)>;

  JobDistributor(const Batcher& batcher, cluster::IdAllocator& ids,
                 RequestCompleteFn on_request_complete, RequeueFn on_requeue)
      : batcher_(&batcher),
        ids_(&ids),
        on_request_complete_(std::move(on_request_complete)),
        on_requeue_(std::move(on_requeue)) {}

  /// Execute the plan. `requests` are oldest-first; the spatial portion
  /// takes the oldest ones (they have the least SLO slack and spatial
  /// execution starts immediately). Returns the number of batches created.
  /// The block's buffer recycles into the arena on return; batches carve
  /// their own pooled blocks out of it.
  int dispatch(cluster::Node& node, const SplitPlan& plan,
               cluster::RequestBlock requests, TimeMs now);

  /// Batches submitted but not yet completed (successfully or not).
  int in_flight() const { return in_flight_; }

  /// Observability hook (null = tracing disabled; single-branch cost).
  /// Completed batches then emit per-request lifecycle spans and batch
  /// execution slices tagged with the round's spatial/temporal split.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attribution hook (null = disabled): failed batches mark their requests
  /// as retried before the requeue, so the eventual completions classify as
  /// failure_retry.
  void set_attribution(obs::AttributionEngine* attribution) {
    attribution_ = attribution;
  }

  /// Calibration hook (null = disabled): successful batches report their
  /// submit->completion time against the monitor tick's T_max prediction.
  void set_calibration(obs::CalibrationTracker* calibration) {
    calibration_ = calibration;
  }

 private:
  void submit_batch(cluster::Node& node, cluster::Batch batch, cluster::ShareMode mode,
                    int spatial, int temporal);

  const Batcher* batcher_;
  cluster::IdAllocator* ids_;
  RequestCompleteFn on_request_complete_;
  RequeueFn on_requeue_;
  obs::Tracer* tracer_ = nullptr;
  obs::AttributionEngine* attribution_ = nullptr;
  obs::CalibrationTracker* calibration_ = nullptr;
  int in_flight_ = 0;
  std::vector<cluster::Batch> batch_scratch_;  // reused across dispatches
};

}  // namespace paldia::core
