// PALDIA's scheduling policy: Algorithm 1 hardware selection with
// hysteresis, plus hybrid spatio-temporal dispatch planning (Section IV-D:
// the Job Distributor enacts the best y split computed by the model).
#pragma once

#include <cstdint>
#include <memory>

#include "src/core/hardware_selection.hpp"
#include "src/core/scheduler_policy.hpp"

namespace paldia::core {

struct PaldiaPolicyConfig {
  HardwareSelectionConfig selection;
  /// Consecutive mismatches before reconfiguring to a *more expensive*
  /// node (Algorithm 1's wait_limit).
  int wait_limit = 3;
  /// Mismatches required to move to a *cheaper* node. Deliberately much
  /// larger: downgrades save pennies but each transition risks SLO
  /// violations, the same conservatism as the delayed-termination
  /// keep-alive (Section IV-C).
  int downgrade_wait_limit = 24;
  double tmax_beta = 0.2;    // scheduler-side contention coefficient
  int sweep_max_probes = perfmodel::kDefaultSweepProbes;
  /// Memoize the Eq. 1 y-sweeps (exact — TmaxModel is deterministic).
  /// false = bypass mode: identical lookups and counters, always recompute
  /// (the --no-tmax-cache byte-identity reference).
  bool tmax_cache = true;
};

class PaldiaPolicy final : public SchedulerPolicy {
 public:
  PaldiaPolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
               const models::ProfileTable& profile, ThreadPool* pool = nullptr,
               PaldiaPolicyConfig config = {});

  std::string name() const override { return "Paldia"; }

  hw::NodeType select_hardware(const std::vector<DemandSnapshot>& demand,
                               hw::NodeType current, TimeMs now) override;

  SplitPlan plan_dispatch(const DemandSnapshot& demand, hw::NodeType node,
                          TimeMs now) override;

  const HardwareSelection& selection() const { return selection_; }
  int wait_counter() const { return wait_ctr_; }

  perfmodel::TmaxCacheStats tmax_cache_stats() const override {
    return tmax_cache_.stats();
  }
  const perfmodel::TmaxCache& tmax_cache() const { return tmax_cache_; }

 private:
  /// Algorithm 1's tail: wait/downgrade/emergency counters deciding when
  /// the raw choice actually triggers a reconfiguration.
  hw::NodeType apply_hysteresis(const HardwareChoice& choice, hw::NodeType current,
                                const std::vector<DemandSnapshot>& demand,
                                TimeMs now);

  /// Flush cache hit/miss deltas into the tracer's counter registry (the
  /// samples ride the monitor-tick counter dump). Identical in cached and
  /// bypass mode, so enabling the cache never perturbs exported bytes.
  void sync_cache_counters();

  const models::Zoo* zoo_;
  const models::ProfileTable* profile_;
  perfmodel::YOptimizer optimizer_;
  perfmodel::TmaxCache tmax_cache_;
  HardwareSelection selection_;
  PaldiaPolicyConfig config_;
  std::uint64_t synced_hits_ = 0;
  std::uint64_t synced_misses_ = 0;
  int wait_ctr_ = 0;
  hw::NodeType last_choice_{};
  bool has_last_choice_ = false;
  int downgrade_ctr_ = 0;
  int emergency_ctr_ = 0;
};

}  // namespace paldia::core
