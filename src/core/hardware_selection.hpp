// The Hardware Selection module (paper component 2, Algorithm 1).
//
// Every monitor interval: predict demand ~4 s ahead, build the pool of
// capable candidates from the profiles, sort by cost, evaluate each node's
// best achievable T_max in parallel (CPU nodes via approx_T_max, GPU nodes
// via the parallel y-sweep), then choose the cheapest node within ~50 ms of
// the most performant one. Hysteresis (wait_limit consecutive mismatches
// before reconfiguring) lives in PaldiaPolicy, which owns the wait counter.
#pragma once

#include <optional>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/core/selection_index.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/perfmodel/cpu_latency_model.hpp"
#include "src/perfmodel/tmax_cache.hpp"
#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::core {

struct HardwareSelectionConfig {
  /// choose_best_HW: cheapest node within this much of the best T_max.
  DurationMs performance_band_ms = 50.0;
  /// Prediction lookahead (matches the procurement delay).
  DurationMs horizon_ms = 4000.0;
  /// Headroom factor on the SLO when judging feasibility (leaves room for
  /// batching delay and model error).
  double slo_headroom = 0.85;
  /// Pruned candidate enumeration (capability bitmasks, twin-dominance
  /// dedup, T_max lower bounds, cost-bucket early exit). false is the
  /// --no-prune reference: the exhaustive linear sweep. Both settings
  /// return identical choices and byte-identical exports (CI-enforced);
  /// the flag only changes how much sweep work runs.
  bool prune = true;
};

struct HardwareChoice {
  hw::NodeType node{};
  int best_y = 0;              // for GPU nodes: the winning split
  DurationMs t_max_ms = 0.0;   // predicted worst-case latency on the node
  bool feasible = false;       // t_max within the (headroomed) SLO
};

/// Optional record of one choose() call: the full candidate sweep plus the
/// choose_best_HW inputs, for the observability decision log.
struct SelectionSweep {
  std::vector<HardwareChoice> candidates;  // capable pool, cost-ascending
  DurationMs band_ms = 0.0;                // clamped performance band
  /// Best feasible GPU T_max (the band anchor); 0 when none was feasible.
  DurationMs best_feasible_gpu_t_max_ms = 0.0;
  bool cpu_short_circuit = false;  // a feasible CPU node won outright
  /// Sweep-work accounting. The pruned walk touches `evaluated` of the
  /// `pool_size` capable candidates and proves the other `pruned` away
  /// (twin dedup, lower-bound skips, early exit); both counts are computed
  /// by replaying the pruned walk, so they are identical under --no-prune
  /// (the bypass changes work, never results — paldia-analyze reports the
  /// savings either way). Escalations outside the pool count as evaluated.
  int pool_size = 0;
  int evaluated = 0;
  int pruned = 0;
};

class HardwareSelection {
 public:
  HardwareSelection(const models::Zoo& zoo, const hw::Catalog& catalog,
                    const models::ProfileTable& profile,
                    const perfmodel::YOptimizer& optimizer, ThreadPool* pool = nullptr,
                    HardwareSelectionConfig config = {});

  /// Evaluate one candidate node against the demand (max T_max across
  /// models). Exposed for tests and for the Oracle's offline sweeps.
  HardwareChoice evaluate(hw::NodeType node,
                          const std::vector<DemandSnapshot>& demand) const;

  /// Full Algorithm 1 selection (pool, choose_best_HW). When no node is
  /// feasible the most performant GPU is returned (the escalation path of
  /// Section III); on a CPU-only catalog the least-bad CPU is returned
  /// instead of aborting. When `sweep` is non-null it receives the whole
  /// candidate evaluation (observability decision log) — every pool member
  /// is then evaluated regardless of the prune setting, so exported
  /// candidate tables and cache counters stay byte-identical across modes;
  /// the pruned walk is replayed over the results for the work counts (and,
  /// when pruning is on, the returned choice). With `sweep == nullptr` and
  /// pruning on, the walk evaluates candidates lazily — the fleet-scale
  /// fast path.
  HardwareChoice choose(const std::vector<DemandSnapshot>& demand,
                        SelectionSweep* sweep = nullptr) const;

  /// Requests that must coexist on the node: the current backlog plus the
  /// predicted arrivals of one SLO window.
  int coexisting_requests(const DemandSnapshot& demand, DurationMs slo_ms) const;

  const HardwareSelectionConfig& config() const { return config_; }

  /// Memoize the per-(model, node, N) y-sweeps through `cache` (owned by
  /// the policy; null disables memoization entirely). Because the sweep is
  /// deterministic over the immutable profile table, the cache only changes
  /// wall-clock time — choose()/evaluate() results are bit-identical.
  void set_tmax_cache(perfmodel::TmaxCache* cache) { cache_ = cache; }

  /// Analytic lower bound on evaluate(node).t_max_ms for a GPU node (two
  /// profile reads per model, no y-sweep). Sets *provably_infeasible when
  /// the bound alone already exceeds some model's headroomed SLO. Exposed
  /// for the equivalence tests.
  DurationMs gpu_t_max_lower_bound(hw::NodeType node,
                                   const std::vector<DemandSnapshot>& demand,
                                   bool* provably_infeasible) const;

  const SelectionIndex& index() const { return index_; }

 private:
  /// best_split through the cache when one is attached.
  perfmodel::SharingDecision sweep(models::ModelId model, hw::NodeType node,
                                   const perfmodel::WorkloadPoint& point) const;

  /// One pruned Algorithm 1 walk over the pool; see the .cpp for the
  /// exactness argument. `eval` maps a pool position to its evaluation
  /// (lazily computed or replayed from a recorded sweep).
  struct WalkOutcome {
    HardwareChoice choice;
    int evaluated = 0;               // distinct pool entries evaluated
    bool cpu_short_circuit = false;
    DurationMs best_feasible_gpu_t_max_ms = 0.0;  // 0 when none feasible
    bool escalated_outside_pool = false;  // caller must evaluate the top GPU
  };
  template <typename Evaluator>
  WalkOutcome pruned_walk(const std::vector<DemandSnapshot>& demand,
                          const std::vector<hw::NodeType>& pool,
                          Evaluator&& eval) const;

  std::vector<hw::NodeType> build_pool(const std::vector<DemandSnapshot>& demand,
                                       bool use_masks) const;

  const models::Zoo* zoo_;
  const hw::Catalog* catalog_;
  const models::ProfileTable* profile_;
  const perfmodel::YOptimizer* optimizer_;
  perfmodel::TmaxCache* cache_ = nullptr;
  ThreadPool* pool_;
  HardwareSelectionConfig config_;
  SelectionIndex index_;
};

}  // namespace paldia::core
