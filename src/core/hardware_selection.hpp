// The Hardware Selection module (paper component 2, Algorithm 1).
//
// Every monitor interval: predict demand ~4 s ahead, build the pool of
// capable candidates from the profiles, sort by cost, evaluate each node's
// best achievable T_max in parallel (CPU nodes via approx_T_max, GPU nodes
// via the parallel y-sweep), then choose the cheapest node within ~50 ms of
// the most performant one. Hysteresis (wait_limit consecutive mismatches
// before reconfiguring) lives in PaldiaPolicy, which owns the wait counter.
#pragma once

#include <optional>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/perfmodel/cpu_latency_model.hpp"
#include "src/perfmodel/tmax_cache.hpp"
#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::core {

struct HardwareSelectionConfig {
  /// choose_best_HW: cheapest node within this much of the best T_max.
  DurationMs performance_band_ms = 50.0;
  /// Prediction lookahead (matches the procurement delay).
  DurationMs horizon_ms = 4000.0;
  /// Headroom factor on the SLO when judging feasibility (leaves room for
  /// batching delay and model error).
  double slo_headroom = 0.85;
};

struct HardwareChoice {
  hw::NodeType node{};
  int best_y = 0;              // for GPU nodes: the winning split
  DurationMs t_max_ms = 0.0;   // predicted worst-case latency on the node
  bool feasible = false;       // t_max within the (headroomed) SLO
};

/// Optional record of one choose() call: the full candidate sweep plus the
/// choose_best_HW inputs, for the observability decision log.
struct SelectionSweep {
  std::vector<HardwareChoice> candidates;  // capable pool, cost-ascending
  DurationMs band_ms = 0.0;                // clamped performance band
  /// Best feasible GPU T_max (the band anchor); 0 when none was feasible.
  DurationMs best_feasible_gpu_t_max_ms = 0.0;
  bool cpu_short_circuit = false;  // a feasible CPU node won outright
};

class HardwareSelection {
 public:
  HardwareSelection(const models::Zoo& zoo, const hw::Catalog& catalog,
                    const models::ProfileTable& profile,
                    const perfmodel::YOptimizer& optimizer, ThreadPool* pool = nullptr,
                    HardwareSelectionConfig config = {});

  /// Evaluate one candidate node against the demand (max T_max across
  /// models). Exposed for tests and for the Oracle's offline sweeps.
  HardwareChoice evaluate(hw::NodeType node,
                          const std::vector<DemandSnapshot>& demand) const;

  /// Full Algorithm 1 selection (pool, par_for, choose_best_HW). When no
  /// node is feasible the most performant GPU is returned (the escalation
  /// path of Section III). When `sweep` is non-null it receives the whole
  /// candidate evaluation (observability decision log).
  HardwareChoice choose(const std::vector<DemandSnapshot>& demand,
                        SelectionSweep* sweep = nullptr) const;

  /// Requests that must coexist on the node: the current backlog plus the
  /// predicted arrivals of one SLO window.
  int coexisting_requests(const DemandSnapshot& demand, DurationMs slo_ms) const;

  const HardwareSelectionConfig& config() const { return config_; }

  /// Memoize the per-(model, node, N) y-sweeps through `cache` (owned by
  /// the policy; null disables memoization entirely). Because the sweep is
  /// deterministic over the immutable profile table, the cache only changes
  /// wall-clock time — choose()/evaluate() results are bit-identical.
  void set_tmax_cache(perfmodel::TmaxCache* cache) { cache_ = cache; }

 private:
  /// best_split through the cache when one is attached.
  perfmodel::SharingDecision sweep(models::ModelId model, hw::NodeType node,
                                   const perfmodel::WorkloadPoint& point) const;

  const models::Zoo* zoo_;
  const hw::Catalog* catalog_;
  const models::ProfileTable* profile_;
  const perfmodel::YOptimizer* optimizer_;
  perfmodel::TmaxCache* cache_ = nullptr;
  ThreadPool* pool_;
  HardwareSelectionConfig config_;
};

}  // namespace paldia::core
