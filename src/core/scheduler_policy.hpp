// The scheme interface: every evaluated system (Paldia, INFless/Llama $/P,
// Molecule beta $/P, Offline Hybrid, Oracle) implements this. The Framework
// calls select_hardware() every monitor interval and plan_dispatch() every
// dispatch round; everything else (batching mechanics, autoscaling,
// procurement, failover plumbing) is shared, mirroring the paper's setup
// where the baselines are "schemes which employ the request serving
// policies of" the respective frameworks (Section V) inside one harness.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/perfmodel/tmax_cache.hpp"
#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::obs {
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

/// Per-model demand snapshot handed to the policies.
struct DemandSnapshot {
  models::ModelId model{};
  Rps observed_rps = 0.0;   // trailing-window arrival rate
  /// Trend-boosted prediction at the procurement horizon. Reacts fast on
  /// surge fronts; noisy in steady state. Used for escalation decisions.
  Rps predicted_rps = 0.0;
  /// Smoothed EWMA level (no trend extrapolation). Stable in steady state;
  /// used to judge sustained feasibility of a node.
  Rps smoothed_rps = 0.0;
  int backlog = 0;          // requests pending at the gateway right now
};

/// How to serve one model's pending requests this dispatch round.
struct SplitPlan {
  int spatial_requests = 0;   // concurrent via MPS (one container per batch)
  int temporal_requests = 0;  // queued on the time-shared lane
  int batch_size = 1;         // chunk size for both portions
  bool use_cpu = false;       // serve with the framework's batched CPU mode
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string name() const = 0;

  /// Pick the node type to serve the coming interval. Called every monitor
  /// interval with the aggregate demand of every active model. Returning
  /// the current node keeps it; a different node triggers background
  /// procurement and reroute (subject to the policy's own hysteresis —
  /// implementations decide when to actually move).
  virtual hw::NodeType select_hardware(const std::vector<DemandSnapshot>& demand,
                                       hw::NodeType current, TimeMs now) = 0;

  /// Split one model's pending requests for this dispatch round on `node`.
  virtual SplitPlan plan_dispatch(const DemandSnapshot& demand, hw::NodeType node,
                                  TimeMs now) = 0;

  /// Failover target after `failed` went down (Fig. 13b: every scheme
  /// switches to "the more performant hardware with the least cost"; a
  /// scheme already on the most performant node steps down to the next
  /// best GPU). Default implements exactly that rule.
  virtual hw::NodeType on_node_failure(hw::NodeType failed);

  /// Containers the autoscaler should keep warm for the given demand
  /// (reactive/predictive scale-up both call this). Default: one container
  /// per spatially-shared batch, as in Section IV-C.
  virtual int desired_containers(const SplitPlan& plan) const;

  /// Observability hook (may be null — tracing disabled). Policies that
  /// record decision sweeps check tracer() inside select_hardware().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Hit/miss totals of the policy's Eq. 1 sweep memoization (all-zero for
  /// policies without a TmaxCache). Surfaced into RunMetrics by the runner.
  virtual perfmodel::TmaxCacheStats tmax_cache_stats() const { return {}; }

 protected:
  explicit SchedulerPolicy(const hw::Catalog& catalog) : catalog_(&catalog) {}
  const hw::Catalog& catalog() const { return *catalog_; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  const hw::Catalog* catalog_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paldia::core
