// The serverless framework harness (Figure 2): wires Gateway, Dispatcher,
// Hardware Selection (via the policy), Autoscaler, Batcher and Job
// Distribution into the simulator and runs one experiment: a set of
// (model, trace) workloads served by one SchedulerPolicy on the simulated
// cluster, with full telemetry.
//
// All schemes share this harness; they differ only in the policy object
// (Section V: the baselines are "schemes which employ the request serving
// policies of" INFless/Llama/Molecule).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/cluster.hpp"
#include "src/cluster/failure_injector.hpp"
#include "src/cluster/host_interference.hpp"
#include "src/core/autoscaler.hpp"
#include "src/core/batcher.hpp"
#include "src/core/gateway.hpp"
#include "src/core/job_distributor.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/telemetry/latency_recorder.hpp"
#include "src/telemetry/power_tracker.hpp"
#include "src/telemetry/slo_tracker.hpp"
#include "src/telemetry/util_tracker.hpp"
#include "src/trace/trace.hpp"

namespace paldia::obs {
class AttributionEngine;
class CalibrationTracker;
class HealthEngine;
class Profiler;
class RollupAggregator;
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

struct FrameworkConfig {
  DurationMs dispatch_interval_ms = 20.0;
  DurationMs monitor_interval_ms = 500.0;  // Algorithm 1's W
  BatcherConfig batcher;
  AutoscalerConfig autoscaler;
  /// Node to hold (warm) at t = 0. Policies that would pick a different
  /// node converge within a few monitor intervals.
  std::optional<hw::NodeType> initial_node;
  /// Containers pre-warmed per workload on the initial node.
  int initial_containers = 2;
  /// Old node keeps serving this long after a switch before release
  /// (in-flight batches drain; the paper charges transition overlap).
  DurationMs release_grace_ms = 3000.0;
  /// Hard cap on post-trace drain; requests still unserved then are counted
  /// as SLO violations.
  DurationMs max_drain_ms = minutes(2);
  /// Observability sink (null = tracing disabled). The framework wires it
  /// into every component; call sites pay a single branch when it is null.
  obs::Tracer* tracer = nullptr;
  /// SLO-violation attribution (null = disabled, single-branch cost). Works
  /// with or without a tracer; per-cause totals land in the per-model
  /// SloTrackers and the engine's own aggregates.
  obs::AttributionEngine* attribution = nullptr;
  /// Predicted-vs-observed T_max / demand-forecast calibration. Only fed
  /// when a tracer is present (the candidate sweep lives in its decision
  /// records).
  obs::CalibrationTracker* calibration = nullptr;
  /// Pool the request path's buffers in the per-repetition RequestArena
  /// (default). False = --no-request-pool bypass: same block API, but every
  /// buffer is dropped on release and re-allocated on acquire, giving a
  /// plain-vector reference run whose exports must stay byte-identical.
  bool request_pool = true;
  /// Windowed rollup aggregation (null = disabled, single-branch cost).
  /// Fed every completion — independent of trace sampling — plus monitor-
  /// tick gauges and unserved counts, so fleet runs export compliance and
  /// attribution in fixed memory without a full trace.
  obs::RollupAggregator* rollup = nullptr;
  /// Simulator self-profiling (null = disabled). The framework wires it
  /// into the simulator's drain phases and times its own dispatch/monitor
  /// ticks and the Algorithm 1 sweep.
  obs::Profiler* profiler = nullptr;
  /// Online SLO health engine (null = disabled, single-branch cost). Fed
  /// every completion (with the attribution verdict), monitor-tick gauges,
  /// and drain-cap unserved counts; evaluated once per monitor tick and
  /// finalized at the run end.
  obs::HealthEngine* health = nullptr;
  /// Fleet endpoint this serving loop belongs to. Tags every allocated id
  /// (requests, batches, containers) in the high bits so ids stay globally
  /// unique across gateways; 0 (standalone runs) is bit-identical to the
  /// untagged allocator.
  int endpoint_id = 0;
  /// Sharded-drain epoch window (simulated ms). 0 = conservative auto: the
  /// fastest control cadence (min of the dispatch/monitor/predictive
  /// intervals). Correctness never depends on this value — intra-window
  /// schedules are merged exactly and stamps are global — it only sizes how
  /// much queue work each barrier epoch batches. Fleets size it in hundreds
  /// of ms (Fleet defaults it to kFleetLookaheadMs) so one epoch extracts a
  /// whole timer population instead of rescanning the resident heap once
  /// per dispatch tick.
  DurationMs lookahead_ms = 0.0;
  /// Event shard all of this framework's timers (ticks, injections, tracker
  /// samples, switch warmups) land on. Fleets pin each endpoint to its own
  /// shard so steady-state serving never crosses the cross-shard mailbox;
  /// placement never changes event order (stamps are global).
  int shard = 0;
};

class Framework {
 public:
  Framework(sim::Simulator& simulator, cluster::Cluster& cluster,
            std::unique_ptr<SchedulerPolicy> policy, Rng rng,
            const models::Zoo& zoo = models::Zoo::instance(),
            FrameworkConfig config = {});

  /// Register a workload: the model served under the given arrival trace.
  /// The framework keeps its own copy of the trace (callers may pass
  /// temporaries).
  void add_workload(models::ModelId model, trace::Trace trace);

  /// Enable the Fig. 13b failure scenario.
  void enable_failures(cluster::FailureInjectorConfig config);

  /// Enable the Table III co-resident interference scenario.
  void enable_host_interference(std::vector<cluster::CoResident> coresidents);

  /// Run the experiment to completion (trace + drain). Returns the
  /// simulated end time. Equivalent to begin_run(); run_until(hard_end());
  /// finish_run(end) — fleets use the split form so many endpoints share
  /// one run_until.
  TimeMs run();

  /// Arm the experiment without advancing time: initial node + prewarm,
  /// trace injections, tracker/tick scheduling. The caller then drives the
  /// shared simulator (to at least hard_end()) and calls finish_run().
  void begin_run();

  /// Latest simulated time this run can produce events for (trace end plus
  /// the drain cap). Valid after add_workload().
  TimeMs hard_end() const { return trace_end_ms_ + config_.max_drain_ms; }

  /// Close out the run at simulated time `end`: count drain-cap leftovers
  /// as unserved violations, release held nodes, flush final counters,
  /// finalize health.
  void finish_run(TimeMs end);

  // --- Telemetry access (valid after run()) --------------------------------
  const telemetry::LatencyRecorder& latency(models::ModelId model) const;
  const telemetry::SloTracker& slo(models::ModelId model) const;
  /// The workload's arrival trace as registered (a fleet endpoint's is its
  /// routed sub-trace). Metric extraction reads it for the goodput window.
  const trace::Trace& workload_trace(models::ModelId model) const {
    return workload(model).trace;
  }
  const telemetry::PowerTracker& power() const { return *power_; }
  const telemetry::UtilTracker& util() const { return *util_; }
  std::uint64_t unserved_requests() const { return unserved_; }
  hw::NodeType active_node() const { return active_node_; }
  int hardware_switches() const { return hardware_switches_; }

  SchedulerPolicy& policy() { return *policy_; }
  cluster::Cluster& cluster() { return *cluster_; }

 private:
  struct Workload {
    models::ModelId model{};
    trace::Trace trace;
    std::unique_ptr<telemetry::LatencyRecorder> latency;
    std::unique_ptr<telemetry::SloTracker> slo;
  };

  // Covers procurement (~4 s) plus container warmup (~2.5 s) so capacity is
  // ready when the predicted demand arrives (Section IV-A).
  static constexpr DurationMs kPredictionHorizonMs = 7000.0;

  Workload& workload(models::ModelId model);
  const Workload& workload(models::ModelId model) const;

  DemandSnapshot snapshot(const Workload& workload, TimeMs now);
  void schedule_injections(const Workload& workload);
  /// Schedules the next non-zero trace epoch at or after `from_epoch`; the
  /// injection event re-invokes this for its successor (chained, so only
  /// one injection event per workload is ever resident).
  void schedule_injection_epoch(const Workload& workload,
                                std::size_t from_epoch);
  void dispatch_tick();
  void monitor_tick();
  void predictive_tick();
  void begin_switch(hw::NodeType target);
  void complete_request(const cluster::Request& request,
                        const cluster::ExecutionReport& report,
                        hw::NodeType node);
  void handle_failure();
  void handle_recovery();
  bool drained(TimeMs now) const;

  sim::Simulator* simulator_;
  cluster::Cluster* cluster_;
  std::unique_ptr<SchedulerPolicy> policy_;
  const models::Zoo* zoo_;
  FrameworkConfig config_;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::AttributionEngine* attribution_ = nullptr;
  obs::CalibrationTracker* calibration_ = nullptr;
  obs::RollupAggregator* rollup_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::HealthEngine* health_ = nullptr;

  cluster::RequestArena request_arena_;  // must outlive gateway_/distributor_
  Gateway gateway_;
  Batcher batcher_;
  Autoscaler autoscaler_;
  cluster::IdAllocator ids_;
  std::unique_ptr<JobDistributor> distributor_;

  std::vector<Workload> workloads_;
  std::unique_ptr<telemetry::PowerTracker> power_;
  std::unique_ptr<telemetry::UtilTracker> util_;

  hw::NodeType active_node_{};
  bool switch_in_progress_ = false;
  hw::NodeType pending_target_{};
  std::uint64_t switch_generation_ = 0;
  int hardware_switches_ = 0;
  TimeMs trace_end_ms_ = 0.0;
  std::uint64_t unserved_ = 0;

  std::optional<cluster::FailureInjectorConfig> failure_config_;
  std::unique_ptr<cluster::FailureInjector> failure_injector_;
  std::unique_ptr<cluster::HostInterference> host_interference_;
  std::vector<cluster::CoResident> coresidents_;
};

}  // namespace paldia::core
