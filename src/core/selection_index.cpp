#include "src/core/selection_index.hpp"

#include <cstddef>
#include <map>
#include <tuple>

namespace paldia::core {

namespace {

// The profile-relevant silicon parameters: ProfileTable::lookup reads
// exactly (speed, mem_bandwidth_gbps) for GPUs and (vcpus, per_core_speed)
// for CPUs, so two nodes agreeing on these produce identical evaluations
// for every model and batch size. Exact comparison is intentional — twins
// are copies by construction (regional price variants), not approximations.
using TwinKey = std::tuple<bool, double, double>;

TwinKey twin_key(const hw::NodeSpec& spec) {
  if (spec.is_gpu()) {
    return TwinKey{true, spec.gpu->speed, spec.gpu->mem_bandwidth_gbps};
  }
  return TwinKey{false, static_cast<double>(spec.cpu.vcpus), spec.cpu.per_core_speed};
}

}  // namespace

SelectionIndex::SelectionIndex(const models::Zoo& zoo, const hw::Catalog& catalog,
                               const models::ProfileTable& profile) {
  const std::size_t nodes = catalog.size();
  words_ = (nodes + 63) / 64;
  capable_.assign(static_cast<std::size_t>(models::kModelCount) * words_, 0);
  for (int m = 0; m < models::kModelCount; ++m) {
    const auto& model = zoo.spec(models::ModelId(m));
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto node = hw::make_node_type(static_cast<int>(i));
      if (profile.lookup(model, node, 1).solo_ms <= model.slo_ms) {
        capable_[static_cast<std::size_t>(m) * words_ + i / 64] |= 1ull << (i % 64);
      }
    }
  }

  twin_rep_.resize(nodes);
  std::map<TwinKey, int> seen;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto [it, inserted] =
        seen.emplace(twin_key(catalog.spec(hw::make_node_type(static_cast<int>(i)))),
                     static_cast<int>(i));
    twin_rep_[i] = it->second;
    if (!inserted) ++twin_count_;
  }

  cost_rank_.resize(nodes);
  const auto& order = catalog.by_cost_ascending();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    cost_rank_[static_cast<std::size_t>(hw::node_index(order[rank]))] =
        static_cast<int>(rank);
  }
  bucket_of_rank_.resize(nodes);
  const auto& buckets = catalog.cost_buckets();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    for (std::size_t rank = buckets[b].begin; rank < buckets[b].end; ++rank) {
      bucket_of_rank_[rank] = static_cast<int>(b);
    }
  }
}

}  // namespace paldia::core
