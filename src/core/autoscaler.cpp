#include "src/core/autoscaler.hpp"

#include <algorithm>

#include "src/obs/tracer.hpp"

namespace paldia::core {

int Autoscaler::ensure(cluster::Node& node, models::ModelId model, int desired) const {
  desired = std::max(desired, config_.min_containers);
  const int have = node.container_count(model);
  int spawned = 0;
  for (int i = have; i < desired; ++i) {
    node.spawn_container(model);
    ++spawned;
  }
  if (tracer_ != nullptr && spawned > 0) {
    tracer_->count("container_spawns", spawned);
  }
  return spawned;
}

int Autoscaler::reap(cluster::Node& node, models::ModelId model, int needed,
                     TimeMs now) const {
  needed = std::max(needed, config_.min_containers);
  const TimeMs cutoff = now - config_.keep_alive_ms;
  int surplus_idle = node.idle_since_count(model, cutoff);
  int reaped = 0;
  while (surplus_idle > 0 && node.container_count(model) > needed) {
    if (!node.terminate_idle_container(model)) break;
    --surplus_idle;
    ++reaped;
  }
  if (tracer_ != nullptr && reaped > 0) {
    tracer_->count("container_reaps", reaped);
  }
  return reaped;
}

}  // namespace paldia::core
