// Request Batching (Section IV-B): flexible batch sizes with an upper bound
// per (hardware, workload), and a dispatch-now rule that caps how long the
// oldest request may wait for its batch to fill — batch formation delay must
// never consume the SLO by itself.
#pragma once

#include <vector>

#include "src/cluster/request.hpp"
#include "src/common/units.hpp"
#include "src/models/model_spec.hpp"

namespace paldia::obs {
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

struct BatcherConfig {
  /// Dispatch a partial batch once the oldest pending request has waited
  /// this long (SLO/4 with the paper's 200 ms SLO).
  DurationMs max_wait_ms = 50.0;
};

class Batcher {
 public:
  explicit Batcher(BatcherConfig config = {}) : config_(config) {}

  /// Should this model's queue be dispatched now? True when a full batch is
  /// available or the oldest request has aged out.
  bool should_dispatch(int pending, int max_batch, DurationMs oldest_age_ms) const;

  /// Chunk requests into batches of at most batch_size (the last one may be
  /// smaller — flexible batching). Each batch carves its requests into a
  /// pooled block from `arena` with one bulk append; the appended batches
  /// land on `out`. No-op (and no tracer counts) when count == 0.
  void chunk_into(const cluster::Request* requests, std::size_t count,
                  int batch_size, TimeMs now, cluster::IdAllocator& ids,
                  cluster::RequestArena& arena,
                  std::vector<cluster::Batch>* out) const;

  /// Convenience wrapper over chunk_into: batches draw their blocks from
  /// the same arena that backs `requests` (the block is released on
  /// return, recycling its slab).
  std::vector<cluster::Batch> chunk(cluster::RequestBlock requests,
                                    int batch_size, TimeMs now,
                                    cluster::IdAllocator& ids) const;

  const BatcherConfig& config() const { return config_; }

  /// Observability hook (null = tracing disabled; single-branch cost).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  BatcherConfig config_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paldia::core
