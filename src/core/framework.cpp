#include "src/core/framework.hpp"
#include <cstdlib>

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/log.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/obs/health.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/rollup.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::core {

Framework::Framework(sim::Simulator& simulator, cluster::Cluster& cluster,
                     std::unique_ptr<SchedulerPolicy> policy, Rng rng,
                     const models::Zoo& zoo, FrameworkConfig config)
    : simulator_(&simulator),
      cluster_(&cluster),
      policy_(std::move(policy)),
      zoo_(&zoo),
      config_(config),
      rng_(rng),
      tracer_(config.tracer),
      attribution_(config.attribution),
      calibration_(config.calibration),
      rollup_(config.rollup),
      profiler_(config.profiler),
      health_(config.health),
      request_arena_(config.request_pool),
      gateway_(rng.fork("gateway"), &request_arena_, config.endpoint_id),
      batcher_(config.batcher),
      autoscaler_(config.autoscaler),
      ids_(config.endpoint_id) {
  if (simulator.shard_count() > 1) {
    // Epoch window for the sharded drain. Conservative auto: the fastest
    // cadence at which control-plane events reach node shards. Correctness
    // never depends on this value (intra-window schedules are merged
    // exactly); it only sizes how much queue work each barrier epoch
    // batches — fleet-scale runs override it upward so each epoch extracts
    // a whole window instead of rescanning the resident heap per tick.
    simulator.set_lookahead(
        config.lookahead_ms > 0.0
            ? config.lookahead_ms
            : std::max(1.0, std::min({config.dispatch_interval_ms,
                                      config.monitor_interval_ms,
                                      config.autoscaler.predictive_interval_ms})));
  }
  simulator.set_profiler(profiler_);
  gateway_.set_tracer(tracer_);
  batcher_.set_tracer(tracer_);
  autoscaler_.set_tracer(tracer_);
  policy_->set_tracer(tracer_);
  if (tracer_ != nullptr) {
    // SLOs drive the sampler's violator-retention; without them every
    // request classifies compliant and sampling degrades to plain 1-in-N.
    std::array<DurationMs, models::kModelCount> slos{};
    for (int m = 0; m < models::kModelCount; ++m) {
      slos[static_cast<std::size_t>(m)] =
          zoo.spec(static_cast<models::ModelId>(m)).slo_ms;
    }
    tracer_->set_model_slos(slos);
  }
  distributor_ = std::make_unique<JobDistributor>(
      batcher_, ids_,
      [this](const cluster::Request& request, const cluster::ExecutionReport& report,
             hw::NodeType node) { complete_request(request, report, node); },
      [this](models::ModelId model, cluster::RequestBlock requests) {
        gateway_.requeue(model, std::move(requests));
      });
  distributor_->set_tracer(tracer_);
  distributor_->set_attribution(attribution_);
  distributor_->set_calibration(calibration_);
  power_ = std::make_unique<telemetry::PowerTracker>(simulator, cluster);
  util_ = std::make_unique<telemetry::UtilTracker>(simulator, cluster);
  power_->set_shard(config_.shard);
  util_->set_shard(config_.shard);
}

void Framework::add_workload(models::ModelId model, trace::Trace trace) {
  Workload workload;
  workload.model = model;
  workload.trace = std::move(trace);
  workload.latency = std::make_unique<telemetry::LatencyRecorder>(
      200'000, rng_.fork("latency-" + std::string(models::model_id_name(model))).seed());
  workload.slo =
      std::make_unique<telemetry::SloTracker>(zoo_->spec(model).slo_ms);
  trace_end_ms_ = std::max(trace_end_ms_, workload.trace.duration_ms());
  workloads_.push_back(std::move(workload));
  gateway_.add_workload(model);
}

void Framework::enable_failures(cluster::FailureInjectorConfig config) {
  failure_config_ = config;
}

void Framework::enable_host_interference(std::vector<cluster::CoResident> coresidents) {
  coresidents_ = std::move(coresidents);
}

Framework::Workload& Framework::workload(models::ModelId model) {
  for (auto& workload : workloads_) {
    if (workload.model == model) return workload;
  }
  assert(false && "unknown workload");
  return workloads_.front();
}

const Framework::Workload& Framework::workload(models::ModelId model) const {
  for (const auto& workload : workloads_) {
    if (workload.model == model) return workload;
  }
  assert(false && "unknown workload");
  return workloads_.front();
}

const telemetry::LatencyRecorder& Framework::latency(models::ModelId model) const {
  return *workload(model).latency;
}

const telemetry::SloTracker& Framework::slo(models::ModelId model) const {
  return *workload(model).slo;
}

DemandSnapshot Framework::snapshot(const Workload& workload, TimeMs now) {
  DemandSnapshot snapshot;
  snapshot.model = workload.model;
  snapshot.observed_rps = gateway_.observed_rate(workload.model, now);
  // Predictor state is only updated at monitor ticks; between ticks predict
  // from the last level. The horizon matches the procurement delay
  // (Section IV-A: hardware for requests ~4 s ahead).
  snapshot.predicted_rps =
      gateway_.predictor(workload.model).predict(now, kPredictionHorizonMs);
  snapshot.predicted_rps = std::max(snapshot.predicted_rps, snapshot.observed_rps);
  snapshot.smoothed_rps = gateway_.predictor(workload.model).level();
  snapshot.backlog = gateway_.pending(workload.model, now);
  return snapshot;
}

void Framework::schedule_injections(const Workload& workload) {
  // Chained: only the next non-zero epoch's injection is resident at any
  // time, so the queues hold O(workloads) injection events instead of
  // O(trace epochs). Pre-scheduling the whole trace kept every far-future
  // epoch resident for the entire run — at fleet scale (hundreds of
  // endpoint sub-traces) that population dominated the sharded drain's
  // per-epoch extraction scan, which is linear in queue residency.
  schedule_injection_epoch(workload, 0);
}

void Framework::schedule_injection_epoch(const Workload& workload,
                                         std::size_t from_epoch) {
  const auto& trace = workload.trace;
  std::size_t epoch = from_epoch;
  while (epoch < trace.epoch_count() && trace.count_at(epoch) == 0) ++epoch;
  if (epoch >= trace.epoch_count()) return;
  const auto model = workload.model;
  const auto count = trace.count_at(epoch);
  const TimeMs start = static_cast<double>(epoch) * trace.epoch_ms();
  simulator_->schedule_at(
      start,
      [this, &workload, model, count, start, epoch] {
        // Stamp the successor before anything else this firing does, so the
        // chain's sequence numbers stay as small as this timestamp allows.
        schedule_injection_epoch(workload, epoch + 1);
        gateway_.inject(model, static_cast<int>(count), start,
                        workload.trace.epoch_ms());
        auto& slo = *this->workload(model).slo;
        // Arrival seconds are attributed per request for the goodput series.
        for (std::uint32_t i = 0; i < count; ++i) {
          slo.record_arrival(start +
                             workload.trace.epoch_ms() * (i + 0.5) / count);
        }
      },
      config_.shard);
}

void Framework::dispatch_tick() {
  obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kDispatchTick);
  const TimeMs now = simulator_->now();
  if (!cluster_->node(active_node_).is_up()) return;  // failover in flight
  for (auto& workload : workloads_) {
    const auto model_id = workload.model;
    const auto& model = zoo_->spec(model_id);
    const int pending = gateway_.pending(model_id, now);
    if (pending <= 0) continue;

    const DemandSnapshot demand = snapshot(workload, now);
    SplitPlan plan = policy_->plan_dispatch(demand, active_node_, now);
    const int max_batch = std::max(1, plan.batch_size);
    if (!batcher_.should_dispatch(pending, std::min(max_batch, model.max_batch),
                                  gateway_.oldest_age(model_id, now))) {
      continue;
    }

    auto& node = cluster_->node(active_node_);
    autoscaler_.ensure(node, model_id, policy_->desired_containers(plan));
    auto requests = gateway_.take(model_id, pending, now);
    if (std::getenv("PALDIA_TRACE_DISPATCH") && now < 30000) {
      std::fprintf(stderr,
                   "[dispatch] t=%.0f pending=%d taken=%zu bs=%d cpu=%d sp=%d tp=%d\n",
                   now, pending, requests.size(), plan.batch_size,
                   (int)plan.use_cpu, plan.spatial_requests, plan.temporal_requests);
    }
    distributor_->dispatch(node, plan, std::move(requests), now);
  }
}

void Framework::monitor_tick() {
  obs::ScopedPhase prof(profiler_, obs::ProfilePhase::kMonitorTick);
  const TimeMs now = simulator_->now();
  if (tracer_ != nullptr) tracer_->begin_span("monitor_tick", now);
  std::vector<DemandSnapshot> demand;
  demand.reserve(workloads_.size());
  for (auto& workload : workloads_) {
    // Feed the predictor with the trailing observed rate, then snapshot.
    gateway_.predictor(workload.model)
        .observe(now, gateway_.observed_rate(workload.model, now));
    demand.push_back(snapshot(workload, now));
  }
  // Open the tick's decision record before select_hardware so the policy can
  // enrich it with the candidate sweep; seal it once we know whether a
  // reconfiguration actually started.
  obs::DecisionRecord* record = nullptr;
  if (tracer_ != nullptr) {
    record = tracer_->begin_decision(now, active_node_);
    if (record != nullptr) {
      // Cluster-wide demand the decision was made against, for calibration
      // against the arrivals that actually materialize one horizon later.
      for (const auto& snapshot : demand) {
        record->predicted_rps += snapshot.predicted_rps;
        record->observed_rps += snapshot.observed_rps;
      }
    }
  }
  hw::NodeType chosen;
  {
    obs::ScopedPhase sweep(profiler_, obs::ProfilePhase::kSelectionSweep);
    chosen = policy_->select_hardware(demand, active_node_, now);
  }
  bool switch_begun = false;
  if (switch_in_progress_) {
    // A transition is underway; only interrupt it to escalate — a surge
    // front can outgrow the in-flight target before it even warms up.
    // "Stay on the current node" (chosen == active) is the policy's normal
    // hysteresis output, not an escalation — the pending transition
    // proceeds.
    if (chosen != pending_target_ && chosen != active_node_ &&
        cluster_->catalog().spec(chosen).price_per_hour >
            cluster_->catalog().spec(pending_target_).price_per_hour) {
      begin_switch(chosen);
      switch_begun = true;
    }
  } else if (chosen != active_node_) {
    begin_switch(chosen);
    switch_begun = true;
  }
  if (tracer_ != nullptr) {
    tracer_->end_decision(chosen, switch_begun);
    if (calibration_ != nullptr && record != nullptr && record->has_sweep) {
      // The final candidate's prediction is what the following interval
      // gets to answer; the sweep always contains the chosen node.
      for (const auto& candidate : record->candidates) {
        if (candidate.node != record->final_choice) continue;
        calibration_->on_decision(now, static_cast<int>(candidate.node),
                                  candidate.t_max_ms, candidate.best_y,
                                  candidate.feasible, record->predicted_rps,
                                  record->observed_rps);
        break;
      }
    }
    if (attribution_ != nullptr) attribution_->sample(*tracer_, now);
    // Gauge sweep: queue depths and container counts per model, plus the
    // cluster-wide saturation signals, then the cumulative counters.
    auto& node = cluster_->node(active_node_);
    std::uint64_t cold_starts = 0;
    // Every node the cluster actually has: generated catalogs run larger
    // than Table II and fleet slice catalogs smaller.
    for (int i = 0; i < static_cast<int>(cluster_->catalog().size()); ++i) {
      cold_starts += cluster_->node(hw::NodeType(i)).cold_starts();
    }
    for (const auto& workload : workloads_) {
      tracer_->gauge("queue_depth", now,
                     static_cast<double>(gateway_.pending(workload.model, now)),
                     static_cast<int>(workload.model));
      tracer_->gauge("containers", now,
                     static_cast<double>(node.container_count(workload.model)),
                     static_cast<int>(workload.model));
    }
    tracer_->gauge("in_flight_batches", now,
                   static_cast<double>(distributor_->in_flight()));
    tracer_->gauge("container_wait_queue", now,
                   static_cast<double>(node.container_wait_queue_length()));
    tracer_->gauge("cold_starts_total", now, static_cast<double>(cold_starts));
    tracer_->sample_counters(now);
    tracer_->end_span("monitor_tick", now);
  }
  if (rollup_ != nullptr) {
    // Same gauge sweep, folded into the windowed cells instead of the event
    // stream — independent of the tracer so rollup-only runs still see it.
    for (const auto& workload : workloads_) {
      rollup_->observe_queue_depth(
          now, static_cast<int>(workload.model), static_cast<int>(active_node_),
          static_cast<double>(gateway_.pending(workload.model, now)));
    }
    rollup_->observe_in_flight(now, static_cast<int>(active_node_),
                               static_cast<double>(distributor_->in_flight()));
  }
  if (health_ != nullptr) {
    // Detector input mirrors the rollup gauge sweep; the evaluation itself
    // runs on the same simulated-time cadence for every thread/shard count.
    for (const auto& workload : workloads_) {
      health_->observe_queue_depth(
          now, static_cast<int>(workload.model), static_cast<int>(active_node_),
          static_cast<double>(gateway_.pending(workload.model, now)));
    }
    health_->observe_in_flight(now, static_cast<int>(active_node_),
                               static_cast<double>(distributor_->in_flight()));
    health_->evaluate(now);
  }
}

void Framework::begin_switch(hw::NodeType target) {
  switch_in_progress_ = true;
  pending_target_ = target;
  const std::uint64_t generation = ++switch_generation_;
  if (tracer_ != nullptr) {
    tracer_->instant("switch_begin", simulator_->now(), target);
    tracer_->count("switches_initiated");
  }
  if (attribution_ != nullptr) attribution_->on_switch_begin(simulator_->now());
  if (std::getenv("PALDIA_TRACE_SWITCH")) {
    std::fprintf(stderr, "[switch] t=%.0f begin -> %s gen=%llu\n", simulator_->now(),
                 std::string(hw::node_type_name(target)).c_str(),
                 (unsigned long long)generation);
  }
  cluster_->acquire(target, [this, target, generation](cluster::Node& node) {
    if (generation != switch_generation_) {
      // Superseded by an escalation; drop the stale acquisition.
      if (target != active_node_ && target != pending_target_) {
        cluster_->release(target);
      }
      return;
    }
    if (!node.is_up()) {
      switch_in_progress_ = false;
      return;
    }
    // Spawn containers on the new node sized for the predicted load, then
    // reroute only once they are warm (reconfigure_HW: the current hardware
    // keeps serving during the transition).
    const TimeMs now = simulator_->now();
    for (auto& workload : workloads_) {
      DemandSnapshot demand = snapshot(workload, now);
      const auto& model = zoo_->spec(workload.model);
      demand.backlog = std::max(
          demand.backlog,
          static_cast<int>(std::ceil(demand.predicted_rps * model.slo_ms /
                                     kMsPerSecond)));
      const SplitPlan plan = policy_->plan_dispatch(demand, target, now);
      const int desired =
          std::max(config_.initial_containers, policy_->desired_containers(plan));
      autoscaler_.ensure(node, workload.model, desired);
    }
    const DurationMs warmup = cluster_->catalog().spec(target).is_gpu()
                                  ? cluster_->config().node.gpu_cold_start_ms
                                  : cluster_->config().node.cpu_cold_start_ms;
    simulator_->schedule_in(
        warmup,
        [this, target, generation] {
          if (generation != switch_generation_) {
            if (target != active_node_ && target != pending_target_) {
              cluster_->release(target);
            }
            return;
          }
          const hw::NodeType old_node = active_node_;
          active_node_ = target;
          ++hardware_switches_;
          switch_in_progress_ = false;
          if (tracer_ != nullptr) {
            tracer_->instant("switch_active", simulator_->now(), target);
            tracer_->count("hardware_switches");
          }
          if (attribution_ != nullptr) {
            attribution_->on_switch_active(simulator_->now());
          }
          if (std::getenv("PALDIA_TRACE_SWITCH")) {
            std::fprintf(stderr, "[switch] t=%.0f active -> %s gen=%llu\n",
                         simulator_->now(),
                         std::string(hw::node_type_name(target)).c_str(),
                         (unsigned long long)generation);
          }
          // Relinquish the old node after its in-flight work drains.
          simulator_->schedule_in(
              config_.release_grace_ms,
              [this, old_node] {
                if (old_node != active_node_) cluster_->release(old_node);
              },
              config_.shard);
        },
        config_.shard);
  });
}

void Framework::predictive_tick() {
  // Predictive scale-up + delayed termination (Section IV-C).
  const TimeMs now = simulator_->now();
  auto& node = cluster_->node(active_node_);
  if (!node.is_up()) return;
  for (auto& workload : workloads_) {
    DemandSnapshot demand = snapshot(workload, now);
    // Size for the predicted load over one SLO window.
    const auto& model = zoo_->spec(workload.model);
    const int predicted_n = static_cast<int>(
        std::ceil(demand.predicted_rps * model.slo_ms / kMsPerSecond));
    DemandSnapshot future = demand;
    future.backlog = predicted_n;
    const SplitPlan plan = policy_->plan_dispatch(future, active_node_, now);
    const int needed = policy_->desired_containers(plan);
    autoscaler_.ensure(node, workload.model, needed);
    autoscaler_.reap(node, workload.model, needed, now);
  }
}

void Framework::complete_request(const cluster::Request& request,
                                 const cluster::ExecutionReport& report,
                                 hw::NodeType node) {
  auto& workload = this->workload(request.model);
  telemetry::RequestOutcome outcome;
  outcome.latency_ms = report.end_ms - request.arrival_ms;
  outcome.solo_ms = report.solo_ms;
  outcome.cold_start_ms = report.cold_start_ms;
  outcome.interference_ms = std::max(0.0, report.interference_ms());
  outcome.queue_ms =
      std::max(0.0, outcome.latency_ms - outcome.solo_ms - outcome.interference_ms -
                        outcome.cold_start_ms);
  workload.latency->record(outcome);
  workload.slo->record_completion(request.arrival_ms, report.end_ms);
  std::optional<telemetry::ViolationCause> cause;
  if (attribution_ != nullptr || rollup_ != nullptr || health_ != nullptr) {
    obs::LifecycleSample sample;
    sample.request_id = request.id.value;
    sample.model = static_cast<int>(request.model);
    sample.node = static_cast<int>(node);
    sample.arrival_ms = request.arrival_ms;
    sample.submit_ms = report.submit_ms;
    sample.start_ms = report.start_ms;
    sample.end_ms = report.end_ms;
    sample.solo_ms = report.solo_ms;
    sample.interference_ms = std::max(0.0, report.interference_ms());
    sample.cold_ms = report.cold_start_ms;
    if (attribution_ != nullptr) {
      cause = attribution_->observe_request(sample);
      if (cause) workload.slo->record_violation_cause(*cause);
    } else if (outcome.latency_ms > zoo_->spec(request.model).slo_ms) {
      // Rollup without attribution: classify from the sample alone (the
      // retried/blackout flags the engine would supply default to false).
      cause = obs::classify_violation(sample);
    }
  }
  if (rollup_ != nullptr) {
    rollup_->observe_completion(report.end_ms, static_cast<int>(request.model),
                                static_cast<int>(node), outcome.latency_ms,
                                cause);
  }
  if (health_ != nullptr) {
    health_->observe_completion(report.end_ms, static_cast<int>(request.model),
                                static_cast<int>(node), outcome.latency_ms,
                                cause);
  }
}

void Framework::handle_failure() {
  const hw::NodeType failed = active_node_;
  if (tracer_ != nullptr) {
    tracer_->instant("node_failure", simulator_->now(), failed);
    tracer_->count("node_failures");
  }
  if (attribution_ != nullptr) attribution_->on_node_failure(simulator_->now());
  cluster_->fail_node(failed);
  cluster_->release(failed);
  const hw::NodeType fallback = policy_->on_node_failure(failed);
  if (fallback == failed) return;
  switch_in_progress_ = false;  // failover preempts any pending switch
  begin_switch(fallback);
}

void Framework::handle_recovery() {
  // Recovered node stays released; the policy re-selects it at the next
  // monitor tick if it is still the right choice.
  for (int i = 0; i < static_cast<int>(cluster_->catalog().size()); ++i) {
    auto& node = cluster_->node(hw::NodeType(i));
    if (!node.is_up()) {
      node.recover();
      if (tracer_ != nullptr) {
        tracer_->instant("node_recovered", simulator_->now(), hw::NodeType(i));
        tracer_->count("node_recoveries");
      }
    }
  }
}

bool Framework::drained(TimeMs now) const {
  if (distributor_->in_flight() > 0) return false;
  for (const auto& workload : workloads_) {
    if (gateway_.pending_total(workload.model) > 0) return false;
  }
  (void)now;
  return true;
}

void Framework::begin_run() {
  assert(!workloads_.empty());

  // Fresh slab state per repetition: any block leaked from a previous run
  // (none are expected) is invalidated rather than corrupting the free list.
  request_arena_.reset();

  // Initial hardware: warm node + containers at t = 0.
  active_node_ = config_.initial_node.value_or(hw::NodeType::kC6i_2xlarge);
  cluster_->acquire_immediately(active_node_);
  for (const auto& workload : workloads_) {
    auto& node = cluster_->node(active_node_);
    for (int i = 0; i < config_.initial_containers; ++i) {
      node.spawn_container(workload.model, /*prewarmed=*/true);
    }
  }

  for (const auto& workload : workloads_) schedule_injections(workload);

  power_->arm(hard_end());
  util_->arm(hard_end());

  if (failure_config_) {
    failure_injector_ = std::make_unique<cluster::FailureInjector>(
        *simulator_, *failure_config_, [this] { handle_failure(); },
        [this] { handle_recovery(); });
    failure_injector_->arm(trace_end_ms_);
  }
  if (!coresidents_.empty()) {
    host_interference_ = std::make_unique<cluster::HostInterference>(
        *simulator_, coresidents_, rng_.fork("host-interference"));
    for (int i = 0; i < static_cast<int>(cluster_->catalog().size()); ++i) {
      host_interference_->attach(cluster_->node(hw::NodeType(i)));
    }
    host_interference_->arm(trace_end_ms_);
  }

  // Repeating ticks (pooled slots, no per-firing allocation) that stop once
  // the trace ended and everything drained (or the hard drain cap is
  // reached). The re-arm is stamped after the tick body, so the event order
  // matches the old shared_ptr<std::function> self-rescheduling chains.
  const TimeMs cap = hard_end();
  simulator_->schedule_repeating(
      0.0, config_.dispatch_interval_ms,
      [this, cap] {
        dispatch_tick();
        const TimeMs now = simulator_->now();
        if (now >= cap) return false;
        return now < trace_end_ms_ || !drained(now);
      },
      config_.shard);
  simulator_->schedule_repeating(
      config_.monitor_interval_ms, config_.monitor_interval_ms,
      [this] {
        monitor_tick();
        return simulator_->now() + config_.monitor_interval_ms <= trace_end_ms_;
      },
      config_.shard);
  simulator_->schedule_repeating(
      config_.autoscaler.predictive_interval_ms,
      config_.autoscaler.predictive_interval_ms,
      [this] {
        predictive_tick();
        return simulator_->now() + config_.autoscaler.predictive_interval_ms <=
               trace_end_ms_;
      },
      config_.shard);
}

TimeMs Framework::run() {
  begin_run();
  const TimeMs end = simulator_->run_until(hard_end());
  finish_run(end);
  return end;
}

void Framework::finish_run(TimeMs end) {
  // Requests still unserved at the drain cap are SLO violations.
  for (auto& workload : workloads_) {
    const int leftover = gateway_.pending_total(workload.model);
    for (int i = 0; i < leftover; ++i) {
      workload.slo->record_completion(0.0, kTimeNever);
      workload.slo->record_violation_cause(telemetry::ViolationCause::kUnserved);
    }
    if (attribution_ != nullptr && leftover > 0) {
      attribution_->record_unserved(static_cast<int>(workload.model),
                                    static_cast<std::uint64_t>(leftover));
    }
    if (rollup_ != nullptr && leftover > 0) {
      rollup_->observe_unserved(end, static_cast<int>(workload.model),
                                static_cast<std::uint64_t>(leftover));
    }
    if (health_ != nullptr && leftover > 0) {
      health_->observe_unserved(end, static_cast<int>(workload.model),
                                static_cast<std::uint64_t>(leftover));
    }
    if (tracer_ != nullptr && leftover > 0) {
      // Per-model counter reaches the event stream via the final
      // sample_counters(end) below; the analyzer reads it back for the
      // unserved slice of the attribution report.
      const std::string key =
          "unserved:" + std::string(models::model_id_name(workload.model));
      tracer_->count(key.c_str(), static_cast<double>(leftover));
    }
    unserved_ += static_cast<std::uint64_t>(leftover);
    // Drop them so repeated run() calls (not supported anyway) don't leak.
    auto rest = gateway_.take(workload.model, leftover, end);
    (void)rest;
  }

  // Close hold intervals so cost reflects the experiment span.
  for (const auto type : cluster_->held_types()) cluster_->release(type);
  // Final counter snapshot: totals accumulated after the last monitor tick
  // (the drain phase) still reach the event stream.
  if (tracer_ != nullptr) tracer_->sample_counters(end);
  // One last detector pass over the drain tail, then close still-firing
  // incidents so every alert carries a resolve timestamp.
  if (health_ != nullptr) health_->finalize(end);
}

}  // namespace paldia::core
