// The Gateway (paper component 1): the entry point of user requests. One
// FIFO per model; trace epochs are injected as counts and spread uniformly
// inside the epoch. Tracks trailing arrival rates and feeds the demand
// predictors.
//
// Storage is allocation-free in the steady state: per-model queues are
// RequestRings over recycled buffers, take() hands back a pooled
// RequestBlock from the RequestArena, and per_model_ is a dense vector
// indexed by ModelId (the id space is small and known).
#pragma once

#include <memory>
#include <vector>

#include "src/cluster/request.hpp"
#include "src/cluster/request_pool.hpp"
#include "src/common/rng.hpp"
#include "src/predictor/ewma.hpp"
#include "src/predictor/window.hpp"

namespace paldia::obs {
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

class Gateway {
 public:
  /// `arena` supplies take()'s pooled blocks; when null (tests, benchmarks)
  /// the gateway owns a private always-pooling arena. `endpoint_tag` lands
  /// in the high bits of every request id this gateway mints (see
  /// cluster::IdAllocator), keeping ids globally unique across a fleet's
  /// gateways; tag 0 emits the classic single-gateway ids unchanged.
  explicit Gateway(Rng rng, cluster::RequestArena* arena = nullptr,
                   int endpoint_tag = 0);

  /// Observability hook (null = tracing disabled; single-branch cost).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  void add_workload(models::ModelId model);

  /// Inject `count` arrivals spread uniformly over [epoch_start,
  /// epoch_start + epoch_ms). Requests become visible to take() once their
  /// arrival time passes.
  void inject(models::ModelId model, int count, TimeMs epoch_start,
              DurationMs epoch_ms);

  /// Re-queue requests (node failure path); arrival times are preserved.
  void requeue(models::ModelId model, cluster::RequestBlock requests);

  /// Pop up to max_count requests whose arrival time is <= now, oldest
  /// first, into a pooled block.
  cluster::RequestBlock take(models::ModelId model, int max_count, TimeMs now);

  int pending(models::ModelId model, TimeMs now) const;
  int pending_total(models::ModelId model) const;  // including future arrivals

  /// Age of the oldest pending request, 0 when none.
  DurationMs oldest_age(models::ModelId model, TimeMs now) const;

  /// Trailing 1 s arrival rate.
  Rps observed_rate(models::ModelId model, TimeMs now) const;

  predictor::EwmaPredictor& predictor(models::ModelId model);

  const std::vector<models::ModelId>& workloads() const { return workloads_; }

 private:
  struct PerModel {
    cluster::RequestRing queue;  // sorted by arrival
    predictor::ArrivalWindow window{1000.0};
    predictor::EwmaPredictor predictor;
    bool registered = false;  // add_workload() seen for this ModelId
  };

  PerModel& state(models::ModelId model);
  const PerModel& state(models::ModelId model) const;

  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  cluster::IdAllocator ids_;
  std::vector<models::ModelId> workloads_;
  std::vector<PerModel> per_model_;  // dense, indexed by ModelId
  std::vector<double> offsets_scratch_;
  std::unique_ptr<cluster::RequestArena> owned_arena_;
  cluster::RequestArena* arena_;
};

}  // namespace paldia::core
