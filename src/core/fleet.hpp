// Multi-gateway fleet simulation: E independent serving loops (endpoints)
// over one shared simulator and one global node catalog. Each endpoint owns
// a gateway + scheduler policy + autoscaler + trackers over a small *slice*
// of the catalog (at most hw::kNodeTypeCount nodes, so every fixed-size
// telemetry path keeps working), and all endpoints advance in lockstep
// through the shared event queue — one run_until drives the whole fleet.
//
// Determinism contract:
//   * Request ids are globally unique across gateways: endpoint e's
//     IdAllocator tags every id with e in the high bits
//     (cluster::IdAllocator), so tracing, sampling and attribution never
//     alias across endpoints. Endpoint 0's ids are bit-identical to a
//     standalone Framework's.
//   * Routing is a pure function of (route_seed, model, arrival sequence):
//     request k of a model goes to endpoint splitmix64(seed ^ k) % E,
//     precomputed into per-endpoint sub-traces before the run. No event
//     ordering, thread count or shard count can change it.
//   * Shard affinity is purely a batching knob: endpoint e's events (ticks,
//     injections, device completions, tracker samples) all land on shard
//     1 + e % (shards - 1), but sequence stamps are global, so every export
//     is byte-identical across --threads and --shards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.hpp"
#include "src/core/framework.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"

namespace paldia::core {

/// Default sharded-drain epoch window for fleets (FrameworkConfig's
/// lookahead_ms when the caller leaves it 0). Sized so one barrier epoch
/// batches a whole lookahead window of every endpoint's timers.
inline constexpr DurationMs kFleetLookaheadMs = 200.0;

struct FleetConfig {
  /// Serving endpoints (gateways). Must be >= 1 and no larger than the
  /// number of CPU nodes in the global catalog (every slice needs a CPU
  /// node to start on).
  int endpoints = 4;
  /// Seed of the splitmix64 request router.
  std::uint64_t route_seed = 0x9a1d1a;
  /// Per-endpoint serving template. endpoint_id and shard are overwritten
  /// per endpoint; the observability pointers can be redirected per
  /// endpoint via the configure callback.
  FrameworkConfig framework;
  /// Per-endpoint cluster template. shard is overwritten per endpoint.
  cluster::ClusterConfig cluster;
};

class Fleet {
 public:
  /// Builds endpoint e's scheduler policy over its slice catalog/profile.
  using PolicyFactory = std::function<std::unique_ptr<SchedulerPolicy>(
      int endpoint, const hw::Catalog& slice,
      const models::ProfileTable& profile)>;
  /// Optional per-endpoint hook run before the endpoint's Framework is
  /// built — redirect tracer/rollup/health/profiler slots or pick a
  /// slice-aware initial node here.
  using ConfigureFn = std::function<void(int endpoint, const hw::Catalog& slice,
                                         FrameworkConfig&)>;

  Fleet(sim::Simulator& simulator, Rng rng, const models::Zoo& zoo,
        const hw::Catalog& global_catalog, FleetConfig config,
        PolicyFactory make_policy, ConfigureFn configure = nullptr);
  ~Fleet();

  /// Endpoint serving the k-th arrival of a model: splitmix64(seed ^ k) % E.
  static int route(std::uint64_t route_seed, std::uint64_t sequence,
                   int endpoints);

  /// Register a fleet-wide workload: the global trace is split into one
  /// sub-trace per endpoint by routing each arrival in sequence order.
  /// Every endpoint serves the model (possibly with an all-zero trace).
  void add_workload(models::ModelId model, const trace::Trace& global_trace);

  /// Run every endpoint to completion over the shared simulator; returns
  /// the simulated end time.
  TimeMs run();

  /// Latest hard drain deadline across endpoints. Valid after
  /// add_workload().
  TimeMs hard_end() const;

  int endpoint_count() const { return static_cast<int>(endpoints_.size()); }
  Framework& framework(int endpoint) { return *endpoints_[endpoint].framework; }
  const Framework& framework(int endpoint) const {
    return *endpoints_[endpoint].framework;
  }
  cluster::Cluster& cluster(int endpoint) { return *endpoints_[endpoint].cluster; }
  const hw::Catalog& slice(int endpoint) const {
    return *endpoints_[endpoint].catalog;
  }
  /// Global-catalog indices backing the endpoint's slice, ascending.
  const std::vector<int>& slice_nodes(int endpoint) const {
    return endpoints_[endpoint].global_nodes;
  }
  int shard_of_endpoint(int endpoint) const { return endpoints_[endpoint].shard; }

  /// Requests routed so far, fleet-wide and per endpoint.
  std::uint64_t total_requests() const { return total_requests_; }
  std::uint64_t endpoint_requests(int endpoint) const {
    return endpoints_[endpoint].requests;
  }

 private:
  struct Endpoint {
    int id = 0;
    int shard = 0;
    std::uint64_t requests = 0;
    std::vector<int> global_nodes;
    // unique_ptr keeps addresses stable: the profile, cluster and policies
    // hold pointers into the slice catalog. Declaration order matters for
    // teardown: the cluster must be destroyed BEFORE the framework, because
    // in-flight device jobs hold request blocks carved from the framework's
    // arena — so `cluster` is declared after `framework` (members are
    // destroyed in reverse declaration order). A run stopped before the
    // drain completes (benchmark stepping, hard caps) hits this.
    std::unique_ptr<hw::Catalog> catalog;
    std::unique_ptr<models::ProfileTable> profile;
    std::unique_ptr<Framework> framework;
    std::unique_ptr<cluster::Cluster> cluster;
  };

  sim::Simulator* simulator_;
  FleetConfig config_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t total_requests_ = 0;
};

/// Partition a catalog's node indices into `endpoints` slices of at most
/// hw::kNodeTypeCount nodes each: CPU nodes are dealt round-robin first
/// (so every slice gets one while supplies last), then GPU nodes; each
/// slice keeps its first hw::kNodeTypeCount cards and sorts them by global
/// index. Exposed for tests and for fleet drivers that report placement.
std::vector<std::vector<int>> slice_catalog(const hw::Catalog& catalog,
                                            int endpoints);

}  // namespace paldia::core
