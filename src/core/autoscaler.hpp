// Autoscaling (Section IV-C), re-purposed for inference apps:
//  * Reactive scale-up — one container per spatially-shared batch
//    (n_c = ceil(n_spatial / batch_size)); time-shared batches reuse a warm
//    container.
//  * Predictive scale-up — every ~10 s, pre-warm containers for the
//    EWMA-predicted future load so reactive cold starts are rare.
//  * Delayed termination — only terminate containers that have been surplus
//    for an extended keep-alive window (~10 min), which combined with
//    batching cuts cold starts by up to 98% (bench/ablation_design.cpp).
#pragma once

#include "src/cluster/node.hpp"
#include "src/common/units.hpp"

namespace paldia::obs {
class Tracer;
}  // namespace paldia::obs

namespace paldia::core {

struct AutoscalerConfig {
  DurationMs keep_alive_ms = minutes(10);
  DurationMs predictive_interval_ms = seconds(10);
  int min_containers = 1;  // never scale an active workload to zero
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig config = {}) : config_(config) {}

  /// Reactive + predictive entry point: make sure at least `desired`
  /// containers exist (cold-starting ones count — they are on the way).
  /// Returns how many were spawned.
  int ensure(cluster::Node& node, models::ModelId model, int desired) const;

  /// Delayed termination: terminate idle containers beyond `needed` that
  /// have been idle since before now - keep_alive.
  /// Returns how many were terminated.
  int reap(cluster::Node& node, models::ModelId model, int needed, TimeMs now) const;

  const AutoscalerConfig& config() const { return config_; }

  /// Observability hook (null = tracing disabled; single-branch cost).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  AutoscalerConfig config_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paldia::core
