#include "src/core/gateway.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/tracer.hpp"

namespace paldia::core {

void Gateway::add_workload(models::ModelId model) {
  if (per_model_.contains(model)) return;
  workloads_.push_back(model);
  per_model_[model];  // default-construct in place
}

Gateway::PerModel& Gateway::state(models::ModelId model) {
  auto it = per_model_.find(model);
  assert(it != per_model_.end());
  return it->second;
}

const Gateway::PerModel& Gateway::state(models::ModelId model) const {
  auto it = per_model_.find(model);
  assert(it != per_model_.end());
  return it->second;
}

void Gateway::inject(models::ModelId model, int count, TimeMs epoch_start,
                     DurationMs epoch_ms) {
  if (count <= 0) return;
  if (tracer_ != nullptr) tracer_->count("arrivals", count);
  auto& per_model = state(model);
  // Uniform offsets, sorted so the queue stays ordered by arrival.
  std::vector<double> offsets(static_cast<std::size_t>(count));
  for (auto& offset : offsets) offset = rng_.uniform(0.0, epoch_ms);
  std::sort(offsets.begin(), offsets.end());
  for (double offset : offsets) {
    cluster::Request request;
    request.id = ids_.next_request();
    request.model = model;
    request.arrival_ms = epoch_start + offset;
    per_model.queue.push_back(request);
    per_model.window.record(request.arrival_ms);
  }
}

void Gateway::requeue(models::ModelId model, std::vector<cluster::Request> requests) {
  if (requests.empty()) return;
  if (tracer_ != nullptr) {
    tracer_->count("requeues", static_cast<double>(requests.size()));
  }
  auto& per_model = state(model);
  for (auto& request : requests) per_model.queue.push_back(std::move(request));
  // Keep oldest-first ordering after mixing re-queued with fresh arrivals.
  std::sort(per_model.queue.begin(), per_model.queue.end(),
            [](const cluster::Request& a, const cluster::Request& b) {
              return a.arrival_ms < b.arrival_ms;
            });
}

std::vector<cluster::Request> Gateway::take(models::ModelId model, int max_count,
                                            TimeMs now) {
  auto& per_model = state(model);
  std::vector<cluster::Request> taken;
  while (!per_model.queue.empty() && static_cast<int>(taken.size()) < max_count &&
         per_model.queue.front().arrival_ms <= now) {
    taken.push_back(per_model.queue.front());
    per_model.queue.pop_front();
  }
  return taken;
}

int Gateway::pending(models::ModelId model, TimeMs now) const {
  const auto& queue = state(model).queue;
  // Queue is sorted by arrival; count the prefix that has arrived.
  auto it = std::upper_bound(queue.begin(), queue.end(), now,
                             [](TimeMs t, const cluster::Request& request) {
                               return t < request.arrival_ms;
                             });
  return static_cast<int>(it - queue.begin());
}

int Gateway::pending_total(models::ModelId model) const {
  return static_cast<int>(state(model).queue.size());
}

DurationMs Gateway::oldest_age(models::ModelId model, TimeMs now) const {
  const auto& queue = state(model).queue;
  if (queue.empty() || queue.front().arrival_ms > now) return 0.0;
  return now - queue.front().arrival_ms;
}

Rps Gateway::observed_rate(models::ModelId model, TimeMs now) const {
  return state(model).window.rate(now);
}

predictor::EwmaPredictor& Gateway::predictor(models::ModelId model) {
  return state(model).predictor;
}

}  // namespace paldia::core
