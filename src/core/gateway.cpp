#include "src/core/gateway.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/tracer.hpp"

namespace paldia::core {

Gateway::Gateway(Rng rng, cluster::RequestArena* arena, int endpoint_tag)
    : rng_(rng),
      ids_(endpoint_tag),
      per_model_(static_cast<std::size_t>(models::kModelCount)) {
  if (arena == nullptr) {
    owned_arena_ = std::make_unique<cluster::RequestArena>();
    arena_ = owned_arena_.get();
  } else {
    arena_ = arena;
  }
}

void Gateway::add_workload(models::ModelId model) {
  auto& per_model = per_model_[static_cast<std::size_t>(model)];
  if (per_model.registered) return;
  per_model.registered = true;
  workloads_.push_back(model);
}

Gateway::PerModel& Gateway::state(models::ModelId model) {
  auto& per_model = per_model_[static_cast<std::size_t>(model)];
  assert(per_model.registered);
  return per_model;
}

const Gateway::PerModel& Gateway::state(models::ModelId model) const {
  const auto& per_model = per_model_[static_cast<std::size_t>(model)];
  assert(per_model.registered);
  return per_model;
}

void Gateway::inject(models::ModelId model, int count, TimeMs epoch_start,
                     DurationMs epoch_ms) {
  if (count <= 0) return;
  if (tracer_ != nullptr) tracer_->count("arrivals", count);
  auto& per_model = state(model);
  // Uniform offsets, sorted so the queue stays ordered by arrival.
  auto& offsets = offsets_scratch_;
  offsets.resize(static_cast<std::size_t>(count));
  for (auto& offset : offsets) offset = rng_.uniform(0.0, epoch_ms);
  std::sort(offsets.begin(), offsets.end());
  for (double offset : offsets) {
    cluster::Request request;
    request.id = ids_.next_request();
    request.model = model;
    request.arrival_ms = epoch_start + offset;
    per_model.queue.push_back(request);
    per_model.window.record(request.arrival_ms);
  }
}

void Gateway::requeue(models::ModelId model, cluster::RequestBlock requests) {
  if (requests.empty()) return;
  if (tracer_ != nullptr) {
    tracer_->count("requeues", static_cast<double>(requests.size()));
  }
  // Keep oldest-first ordering after mixing re-queued with fresh arrivals:
  // the ring sorts the same element sequence the deque-based gateway did.
  state(model).queue.append_and_sort(requests.data(), requests.size());
}

cluster::RequestBlock Gateway::take(models::ModelId model, int max_count,
                                    TimeMs now) {
  auto& per_model = state(model);
  cluster::RequestBlock taken = arena_->acquire();
  const std::size_t arrived = per_model.queue.arrived_before(now);
  const std::size_t n =
      std::min(arrived, static_cast<std::size_t>(std::max(max_count, 0)));
  per_model.queue.pop_front_into(n, taken);
  return taken;
}

int Gateway::pending(models::ModelId model, TimeMs now) const {
  // Queue is sorted by arrival; count the prefix that has arrived.
  return static_cast<int>(state(model).queue.arrived_before(now));
}

int Gateway::pending_total(models::ModelId model) const {
  return static_cast<int>(state(model).queue.size());
}

DurationMs Gateway::oldest_age(models::ModelId model, TimeMs now) const {
  const auto& queue = state(model).queue;
  if (queue.empty() || queue.front().arrival_ms > now) return 0.0;
  return now - queue.front().arrival_ms;
}

Rps Gateway::observed_rate(models::ModelId model, TimeMs now) const {
  return state(model).window.rate(now);
}

predictor::EwmaPredictor& Gateway::predictor(models::ModelId model) {
  return state(model).predictor;
}

}  // namespace paldia::core
