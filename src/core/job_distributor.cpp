#include "src/core/job_distributor.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::core {

int JobDistributor::dispatch(cluster::Node& node, const SplitPlan& plan,
                             std::vector<cluster::Request> requests, TimeMs now) {
  if (requests.empty()) return 0;
  const int total = static_cast<int>(requests.size());
  const int spatial =
      plan.use_cpu ? 0 : std::clamp(plan.spatial_requests, 0, total);
  const int temporal = total - spatial;

  std::vector<cluster::Request> spatial_part(
      requests.begin(), requests.begin() + spatial);
  std::vector<cluster::Request> temporal_part(requests.begin() + spatial,
                                              requests.end());

  int batches = 0;
  for (auto& batch : batcher_->chunk(std::move(spatial_part), plan.batch_size, now, *ids_)) {
    submit_batch(node, std::move(batch), cluster::ShareMode::kSpatial, spatial,
                 temporal);
    ++batches;
  }
  const auto rest_mode =
      plan.use_cpu ? cluster::ShareMode::kCpu : cluster::ShareMode::kTemporal;
  for (auto& batch : batcher_->chunk(std::move(temporal_part), plan.batch_size, now, *ids_)) {
    submit_batch(node, std::move(batch), rest_mode, spatial, temporal);
    ++batches;
  }
  return batches;
}

void JobDistributor::submit_batch(cluster::Node& node, cluster::Batch batch,
                                  cluster::ShareMode mode, int spatial,
                                  int temporal) {
  ++in_flight_;
  cluster::ExecRequest exec;
  exec.batch = batch.id;
  exec.model = batch.model;
  exec.batch_size = batch.size();
  exec.mode = mode;
  // The node reference outlives the run but the callback may fire after a
  // reconfiguration; tag events with the node *type* captured now.
  const hw::NodeType node_type = node.type();
  exec.on_complete = [this, batch = std::move(batch), mode, spatial, temporal,
                      node_type](const cluster::ExecutionReport& report) {
    --in_flight_;
    if (report.failed) {
      if (tracer_ != nullptr) {
        tracer_->count("failed_batches");
        tracer_->instant("batch_failed", report.end_ms, node_type,
                         static_cast<double>(batch.size()));
        for (const auto& request : batch.requests) {
          tracer_->request_requeued(request.id.value, batch.model, report.end_ms,
                                    node_type);
        }
      }
      if (attribution_ != nullptr) {
        for (const auto& request : batch.requests) {
          attribution_->on_requeued(request.id.value);
        }
      }
      if (on_requeue_) on_requeue_(batch.model, batch.requests);
      return;
    }
    if (calibration_ != nullptr) {
      calibration_->observe_batch(static_cast<int>(node_type), report.submit_ms,
                                  report.end_ms);
    }
    if (tracer_ != nullptr) {
      tracer_->record_batch(batch.id.value, batch.model,
                            node_type, mode, batch.size(), report.submit_ms,
                            report.start_ms, report.end_ms, report.solo_ms,
                            report.cold_start_ms);
      const DurationMs interference = std::max(0.0, report.interference_ms());
      for (const auto& request : batch.requests) {
        tracer_->record_request_lifecycle(
            request.id.value, batch.model, node_type, mode,
            batch.size(), spatial, temporal, request.arrival_ms, report.submit_ms,
            report.start_ms, report.end_ms, report.solo_ms, interference,
            report.cold_start_ms);
      }
      if (report.cold_start_ms > 0.0) tracer_->count("cold_start_batches");
    }
    for (const auto& request : batch.requests) {
      on_request_complete_(request, report, node_type);
    }
  };
  node.execute(std::move(exec));
}

}  // namespace paldia::core
