#include "src/core/job_distributor.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::core {

int JobDistributor::dispatch(cluster::Node& node, const SplitPlan& plan,
                             cluster::RequestBlock requests, TimeMs now) {
  if (requests.empty()) return 0;
  const int total = static_cast<int>(requests.size());
  const int spatial =
      plan.use_cpu ? 0 : std::clamp(plan.spatial_requests, 0, total);
  const int temporal = total - spatial;
  cluster::RequestArena& arena = *requests.arena();

  // Carve the two portions straight out of the block — no intermediate
  // copies. Each portion is fully chunked (batch ids assigned in order)
  // before its batches are submitted, matching the original two-pass shape.
  int batches = 0;
  batch_scratch_.clear();
  batcher_->chunk_into(requests.data(), static_cast<std::size_t>(spatial),
                       plan.batch_size, now, *ids_, arena, &batch_scratch_);
  for (auto& batch : batch_scratch_) {
    submit_batch(node, std::move(batch), cluster::ShareMode::kSpatial, spatial,
                 temporal);
    ++batches;
  }
  const auto rest_mode =
      plan.use_cpu ? cluster::ShareMode::kCpu : cluster::ShareMode::kTemporal;
  batch_scratch_.clear();
  batcher_->chunk_into(requests.data() + spatial,
                       static_cast<std::size_t>(temporal), plan.batch_size, now,
                       *ids_, arena, &batch_scratch_);
  for (auto& batch : batch_scratch_) {
    submit_batch(node, std::move(batch), rest_mode, spatial, temporal);
    ++batches;
  }
  batch_scratch_.clear();
  return batches;
}

void JobDistributor::submit_batch(cluster::Node& node, cluster::Batch batch,
                                  cluster::ShareMode mode, int spatial,
                                  int temporal) {
  ++in_flight_;
  cluster::ExecRequest exec;
  exec.batch = batch.id;
  exec.model = batch.model;
  exec.batch_size = batch.size();
  exec.mode = mode;
  // The node reference outlives the run but the callback may fire after a
  // reconfiguration; tag events with the node *type* captured now.
  const hw::NodeType node_type = node.type();
  auto on_complete = [this, batch = std::move(batch), mode, spatial, temporal,
                      node_type](const cluster::ExecutionReport& report) mutable {
    --in_flight_;
    if (report.failed) {
      if (tracer_ != nullptr) {
        tracer_->count("failed_batches");
        tracer_->instant("batch_failed", report.end_ms, node_type,
                         static_cast<double>(batch.size()));
        for (const auto& request : batch.requests) {
          tracer_->request_requeued(request.id.value, batch.model, report.end_ms,
                                    node_type);
        }
      }
      if (attribution_ != nullptr) {
        for (const auto& request : batch.requests) {
          attribution_->on_requeued(request.id.value);
        }
      }
      if (on_requeue_) on_requeue_(batch.model, std::move(batch.requests));
      return;
    }
    if (calibration_ != nullptr) {
      calibration_->observe_batch(static_cast<int>(node_type), report.submit_ms,
                                  report.end_ms);
    }
    if (tracer_ != nullptr) {
      tracer_->record_batch(batch.id.value, batch.model,
                            node_type, mode, batch.size(), report.submit_ms,
                            report.start_ms, report.end_ms, report.solo_ms,
                            report.cold_start_ms);
      const DurationMs interference = std::max(0.0, report.interference_ms());
      tracer_->record_batch_lifecycles(
          batch.requests.data(), batch.size(), batch.model, node_type, mode,
          batch.size(), spatial, temporal, report.submit_ms, report.start_ms,
          report.end_ms, report.solo_ms, interference, report.cold_start_ms);
      if (report.cold_start_ms > 0.0) tracer_->count("cold_start_batches");
    }
    for (const auto& request : batch.requests) {
      on_request_complete_(request, report, node_type);
    }
  };
  // The capture block (this + a 48-byte Batch + four scalars) must stay
  // inside BatchCompletionFn's inline budget — no per-dispatch allocation.
  static_assert(sizeof(on_complete) <= 96);
  exec.on_complete = std::move(on_complete);
  node.execute(std::move(exec));
}

}  // namespace paldia::core
