#include "src/core/job_distributor.hpp"

#include <algorithm>
#include <cassert>

namespace paldia::core {

int JobDistributor::dispatch(cluster::Node& node, const SplitPlan& plan,
                             std::vector<cluster::Request> requests, TimeMs now) {
  if (requests.empty()) return 0;
  const int total = static_cast<int>(requests.size());
  const int spatial =
      plan.use_cpu ? 0 : std::clamp(plan.spatial_requests, 0, total);

  std::vector<cluster::Request> spatial_part(
      requests.begin(), requests.begin() + spatial);
  std::vector<cluster::Request> temporal_part(requests.begin() + spatial,
                                              requests.end());

  int batches = 0;
  for (auto& batch : batcher_->chunk(std::move(spatial_part), plan.batch_size, now, *ids_)) {
    submit_batch(node, std::move(batch), cluster::ShareMode::kSpatial);
    ++batches;
  }
  const auto rest_mode =
      plan.use_cpu ? cluster::ShareMode::kCpu : cluster::ShareMode::kTemporal;
  for (auto& batch : batcher_->chunk(std::move(temporal_part), plan.batch_size, now, *ids_)) {
    submit_batch(node, std::move(batch), rest_mode);
    ++batches;
  }
  return batches;
}

void JobDistributor::submit_batch(cluster::Node& node, cluster::Batch batch,
                                  cluster::ShareMode mode) {
  ++in_flight_;
  cluster::ExecRequest exec;
  exec.batch = batch.id;
  exec.model = batch.model;
  exec.batch_size = batch.size();
  exec.mode = mode;
  exec.on_complete = [this, batch = std::move(batch)](
                         const cluster::ExecutionReport& report) {
    --in_flight_;
    if (report.failed) {
      if (on_requeue_) on_requeue_(batch.model, batch.requests);
      return;
    }
    for (const auto& request : batch.requests) {
      on_request_complete_(request, report);
    }
  };
  node.execute(std::move(exec));
}

}  // namespace paldia::core
