#include "src/telemetry/latency_recorder.hpp"

#include <algorithm>

namespace paldia::telemetry {

LatencyRecorder::LatencyRecorder(std::size_t reservoir_capacity, std::uint64_t seed)
    : reservoir_capacity_(reservoir_capacity), rng_(seed) {
  reservoir_.reserve(std::min<std::size_t>(reservoir_capacity, 4096));
}

void LatencyRecorder::record(const RequestOutcome& outcome) {
  e2e_.add(outcome.latency_ms);
  ++seen_;
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.push_back(outcome);
  } else {
    // Vitter's algorithm R: keep each seen record with probability cap/seen.
    const auto slot = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
    if (slot < reservoir_capacity_) reservoir_[slot] = outcome;
  }
}

TailBreakdown LatencyRecorder::breakdown_at(double quantile, double half_band) const {
  TailBreakdown breakdown;
  if (reservoir_.empty()) return breakdown;
  // One bucket scan answers the band edges and the centre (the centre is
  // only needed by the narrow-band fallback below, but it rides along for
  // free in the same pass).
  const double band_qs[] = {std::clamp(quantile - half_band, 0.0, 1.0),
                            std::clamp(quantile + half_band, 0.0, 1.0), quantile};
  const auto band_values = e2e_.quantiles(band_qs);
  const double lo_value = band_values[0];
  const double hi_value = band_values[1];
  double latency = 0, solo = 0, queue = 0, interference = 0, cold = 0;
  std::size_t hits = 0;
  for (const auto& outcome : reservoir_) {
    if (outcome.latency_ms < lo_value || outcome.latency_ms > hi_value) continue;
    latency += outcome.latency_ms;
    solo += outcome.solo_ms;
    queue += outcome.queue_ms;
    interference += outcome.interference_ms;
    cold += outcome.cold_start_ms;
    ++hits;
  }
  if (hits == 0) {
    // Band too narrow for the reservoir; fall back to the nearest record.
    const double target = band_values[2];
    const auto* nearest = &reservoir_.front();
    for (const auto& outcome : reservoir_) {
      if (std::abs(outcome.latency_ms - target) <
          std::abs(nearest->latency_ms - target)) {
        nearest = &outcome;
      }
    }
    return TailBreakdown{nearest->latency_ms, nearest->solo_ms, nearest->queue_ms,
                         nearest->interference_ms, nearest->cold_start_ms, 1};
  }
  const auto n = static_cast<double>(hits);
  return TailBreakdown{latency / n, solo / n,         queue / n,
                       interference / n, cold / n, hits};
}

}  // namespace paldia::telemetry
