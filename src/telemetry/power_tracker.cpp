#include "src/telemetry/power_tracker.hpp"

#include <algorithm>

namespace paldia::telemetry {

PowerTracker::PowerTracker(sim::Simulator& simulator, const cluster::Cluster& cluster,
                           DurationMs sample_period_ms)
    : simulator_(&simulator), cluster_(&cluster), period_ms_(sample_period_ms) {}

int PowerTracker::tracked_types() const {
  return std::min(hw::kNodeTypeCount,
                  static_cast<int>(cluster_->catalog().size()));
}

void PowerTracker::arm(TimeMs end_ms) {
  end_ms_ = end_ms;
  started_ms_ = simulator_->now();
  last_sample_ms_ = started_ms_;
  for (int i = 0; i < tracked_types(); ++i) {
    last_busy_ms_[static_cast<std::size_t>(i)] =
        cluster_->node(hw::NodeType(i)).device_busy_time_ms();
  }
  simulator_->schedule_in(period_ms_, [this] { sample(); }, shard_);
}

void PowerTracker::sample() {
  const TimeMs now = simulator_->now();
  const DurationMs dt = now - last_sample_ms_;
  if (dt > 0.0) {
    for (int i = 0; i < tracked_types(); ++i) {
      const auto type = hw::NodeType(i);
      const auto& node = cluster_->node(type);
      const DurationMs busy = node.device_busy_time_ms();
      const double util =
          std::clamp((busy - last_busy_ms_[static_cast<std::size_t>(i)]) / dt, 0.0, 1.0);
      last_busy_ms_[static_cast<std::size_t>(i)] = busy;
      if (!cluster_->held(type)) continue;
      const hw::PowerModel model(node.spec());
      const Watts draw = node.is_gpu()
                             ? model.power(util * kHostCpuShareOfGpuWork, util)
                             : model.power(util, 0.0);
      energy_wms_ += draw * dt;
    }
  }
  last_sample_ms_ = now;
  if (now + period_ms_ <= end_ms_) {
    simulator_->schedule_in(period_ms_, [this] { sample(); }, shard_);
  }
}

Watts PowerTracker::average_power() const {
  const DurationMs elapsed = last_sample_ms_ - started_ms_;
  return elapsed <= 0.0 ? 0.0 : energy_wms_ / elapsed;
}

}  // namespace paldia::telemetry
