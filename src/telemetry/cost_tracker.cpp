#include "src/telemetry/cost_tracker.hpp"

namespace paldia::telemetry {

std::vector<CostBreakdownEntry> CostTracker::breakdown() const {
  std::vector<CostBreakdownEntry> entries;
  // Bounded by the catalog, not kNodeTypeCount: generated catalogs can be
  // larger than Table II and fleet slice catalogs smaller.
  for (int i = 0; i < static_cast<int>(cluster_->catalog().size()); ++i) {
    const auto type = hw::NodeType(i);
    const DurationMs held = cluster_->held_time_ms(type);
    if (held <= 0.0) continue;
    entries.push_back(CostBreakdownEntry{
        type, held,
        cluster_->catalog().spec(type).price_per_hour * (held / kMsPerHour)});
  }
  return entries;
}

}  // namespace paldia::telemetry
