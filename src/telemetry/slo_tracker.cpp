#include "src/telemetry/slo_tracker.hpp"

#include <algorithm>

namespace paldia::telemetry {

std::string_view violation_cause_name(ViolationCause cause) {
  switch (cause) {
    case ViolationCause::kColdStart: return "cold_start";
    case ViolationCause::kGatewayQueue: return "gateway_queue";
    case ViolationCause::kBatching: return "batching";
    case ViolationCause::kMpsInterference: return "mps_interference";
    case ViolationCause::kHardwareSwitch: return "hardware_switch";
    case ViolationCause::kFailureRetry: return "failure_retry";
    case ViolationCause::kExecution: return "execution";
    case ViolationCause::kUnserved: return "unserved";
  }
  return "unknown";
}

std::size_t SloTracker::bucket_of(TimeMs t) const {
  return static_cast<std::size_t>(std::max(0.0, t) / bucket_ms_);
}

void SloTracker::record_arrival(TimeMs arrival_ms) {
  const std::size_t bucket = bucket_of(arrival_ms);
  if (bucket >= arrivals_per_bucket_.size()) arrivals_per_bucket_.resize(bucket + 1, 0);
  ++arrivals_per_bucket_[bucket];
  ++arrivals_;
}

void SloTracker::record_completion(TimeMs arrival_ms, TimeMs completion_ms) {
  ++completed_;
  if (completion_ms - arrival_ms <= slo_ms_) {
    ++compliant_;
    const std::size_t bucket = bucket_of(arrival_ms);
    if (bucket >= goodput_per_bucket_.size()) goodput_per_bucket_.resize(bucket + 1, 0);
    ++goodput_per_bucket_[bucket];
  }
}

void SloTracker::record_violation_cause(ViolationCause cause) {
  ++causes_[static_cast<std::size_t>(cause)];
}

std::uint64_t SloTracker::classified_violations() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : causes_) total += n;
  return total;
}

double SloTracker::compliance() const {
  return completed_ == 0 ? 1.0 : static_cast<double>(compliant_) / completed_;
}

namespace {
Rps bucket_rate(const std::vector<std::uint32_t>& buckets, DurationMs bucket_ms,
                TimeMs start_ms, TimeMs end_ms) {
  if (end_ms <= start_ms) return 0.0;
  const auto first = static_cast<std::size_t>(std::max(0.0, start_ms) / bucket_ms);
  const auto last = static_cast<std::size_t>(std::max(0.0, end_ms) / bucket_ms);
  std::uint64_t total = 0;
  for (std::size_t i = first; i < last && i < buckets.size(); ++i) total += buckets[i];
  return static_cast<double>(total) / ((end_ms - start_ms) / kMsPerSecond);
}
}  // namespace

Rps SloTracker::goodput_rps(TimeMs start_ms, TimeMs end_ms) const {
  return bucket_rate(goodput_per_bucket_, bucket_ms_, start_ms, end_ms);
}

Rps SloTracker::arrival_rps(TimeMs start_ms, TimeMs end_ms) const {
  return bucket_rate(arrivals_per_bucket_, bucket_ms_, start_ms, end_ms);
}

}  // namespace paldia::telemetry
