// SLO compliance counting plus per-second goodput series (Fig. 7a: goodput
// = requests served within the SLO per second, compared to the incoming
// rate during the busiest traffic), and the violation root-cause taxonomy
// shared by the attribution engine (obs/attribution) and the metrics rows.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/units.hpp"

namespace paldia::telemetry {

/// Root causes an SLO-violating request can be attributed to. Every
/// violating request gets exactly one cause (see obs/attribution.hpp for
/// the classification cascade), so per-cause counts sum to the violation
/// total.
enum class ViolationCause : int {
  kColdStart = 0,       // container boot charged to the request dominated
  kGatewayQueue,        // gateway wait + batch formation dominated
  kBatching,            // lane/container wait after dispatch dominated
  kMpsInterference,     // Eq. 1 FBR contention stretch dominated
  kHardwareSwitch,      // waited through a switch/outage blackout window
  kFailureRetry,        // the request's batch failed and was re-queued
  kExecution,           // isolated execution alone blew the budget
  kUnserved,            // never completed before the drain cap
};

inline constexpr int kViolationCauseCount = 8;

/// Stable machine name ("cold_start", "gateway_queue", ...).
std::string_view violation_cause_name(ViolationCause cause);

/// Per-cause violation counters (sums to the violation total when every
/// violation is classified).
using ViolationCauseCounts = std::array<std::uint64_t, kViolationCauseCount>;

class SloTracker {
 public:
  explicit SloTracker(DurationMs slo_ms, DurationMs bucket_ms = 1000.0)
      : slo_ms_(slo_ms), bucket_ms_(bucket_ms) {}

  void record_arrival(TimeMs arrival_ms);
  void record_completion(TimeMs arrival_ms, TimeMs completion_ms);

  /// Attribute one SLO violation to a root cause (the attribution engine
  /// classifies; the framework records). Independent of record_completion —
  /// callers keep the invariant that each violating request is recorded
  /// exactly once.
  void record_violation_cause(ViolationCause cause);

  DurationMs slo_ms() const { return slo_ms_; }
  std::uint64_t total() const { return completed_; }
  std::uint64_t compliant() const { return compliant_; }
  std::uint64_t violations() const { return completed_ - compliant_; }
  std::uint64_t arrivals() const { return arrivals_; }
  double compliance() const;

  const ViolationCauseCounts& violation_causes() const { return causes_; }
  /// Sum of the per-cause counters (== violations() once every violation
  /// was classified).
  std::uint64_t classified_violations() const;

  /// Average goodput (SLO-compliant completions per second, attributed to
  /// the request's arrival second) over [start, end).
  Rps goodput_rps(TimeMs start_ms, TimeMs end_ms) const;

  /// Average arrival rate over [start, end).
  Rps arrival_rps(TimeMs start_ms, TimeMs end_ms) const;

 private:
  std::size_t bucket_of(TimeMs t) const;

  DurationMs slo_ms_;
  DurationMs bucket_ms_;
  std::uint64_t completed_ = 0;
  std::uint64_t compliant_ = 0;
  std::uint64_t arrivals_ = 0;
  ViolationCauseCounts causes_{};
  std::vector<std::uint32_t> arrivals_per_bucket_;
  std::vector<std::uint32_t> goodput_per_bucket_;
};

}  // namespace paldia::telemetry
