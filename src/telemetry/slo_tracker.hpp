// SLO compliance counting plus per-second goodput series (Fig. 7a: goodput
// = requests served within the SLO per second, compared to the incoming
// rate during the busiest traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/units.hpp"

namespace paldia::telemetry {

class SloTracker {
 public:
  explicit SloTracker(DurationMs slo_ms, DurationMs bucket_ms = 1000.0)
      : slo_ms_(slo_ms), bucket_ms_(bucket_ms) {}

  void record_arrival(TimeMs arrival_ms);
  void record_completion(TimeMs arrival_ms, TimeMs completion_ms);

  DurationMs slo_ms() const { return slo_ms_; }
  std::uint64_t total() const { return completed_; }
  std::uint64_t compliant() const { return compliant_; }
  double compliance() const;

  /// Average goodput (SLO-compliant completions per second, attributed to
  /// the request's arrival second) over [start, end).
  Rps goodput_rps(TimeMs start_ms, TimeMs end_ms) const;

  /// Average arrival rate over [start, end).
  Rps arrival_rps(TimeMs start_ms, TimeMs end_ms) const;

 private:
  std::size_t bucket_of(TimeMs t) const;

  DurationMs slo_ms_;
  DurationMs bucket_ms_;
  std::uint64_t completed_ = 0;
  std::uint64_t compliant_ = 0;
  std::vector<std::uint32_t> arrivals_per_bucket_;
  std::vector<std::uint32_t> goodput_per_bucket_;
};

}  // namespace paldia::telemetry
