// Aggregated per-run metrics handed from the experiment runner to the
// bench/figure printers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/telemetry/latency_recorder.hpp"

namespace paldia::telemetry {

struct RunMetrics {
  std::string scheme;
  std::string workload;
  std::string trace;

  std::uint64_t requests = 0;
  double slo_compliance = 0.0;  // fraction in [0, 1]
  DurationMs mean_latency_ms = 0.0;
  DurationMs p50_latency_ms = 0.0;
  DurationMs p95_latency_ms = 0.0;
  DurationMs p99_latency_ms = 0.0;
  TailBreakdown p99_breakdown;

  Dollars cost = 0.0;
  Watts average_power = 0.0;
  double gpu_utilization = 0.0;
  double cpu_utilization = 0.0;

  Rps goodput_rps = 0.0;        // during the busiest window
  Rps offered_rps = 0.0;        // arrival rate during the same window
  std::uint64_t cold_starts = 0;

  std::vector<std::pair<double, double>> latency_cdf;  // optional export

  /// One-line human-readable summary.
  std::string summary() const;
};

}  // namespace paldia::telemetry
