// Aggregated per-run metrics handed from the experiment runner to the
// bench/figure printers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/telemetry/latency_recorder.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::telemetry {

struct RunMetrics {
  std::string scheme;
  std::string workload;
  std::string trace;

  std::uint64_t requests = 0;
  double slo_compliance = 0.0;  // fraction in [0, 1]
  DurationMs mean_latency_ms = 0.0;
  DurationMs p50_latency_ms = 0.0;
  DurationMs p95_latency_ms = 0.0;
  DurationMs p99_latency_ms = 0.0;
  TailBreakdown p99_breakdown;

  Dollars cost = 0.0;
  Watts average_power = 0.0;
  double gpu_utilization = 0.0;
  double cpu_utilization = 0.0;

  Rps goodput_rps = 0.0;        // during the busiest window
  Rps offered_rps = 0.0;        // arrival rate during the same window
  std::uint64_t cold_starts = 0;

  /// SLO violations (completions past the SLO + unserved), attributed to
  /// root causes by the attribution engine. Doubles because aggregation
  /// across repetitions takes plain (unfiltered) means, which keeps the
  /// invariant sum(violations_by_cause) == slo_violations exactly.
  double slo_violations = 0.0;
  std::array<double, kViolationCauseCount> violations_by_cause{};

  /// Calibration of the analytical models (0 when no tracer captured the
  /// candidate sweeps): T_max prediction error / SLO-guarantee coverage and
  /// the EWMA demand-forecast error, over calib_intervals monitor ticks.
  double tmax_mape = 0.0;
  double tmax_coverage = 0.0;
  double rate_mape = 0.0;
  double calib_intervals = 0.0;

  /// Eq. 1 sweep memoization totals from the policy's TmaxCache (all-zero
  /// for policies without one). Doubles for the same plain-mean aggregation
  /// reason as the violation counts; the hit rate is aggregated directly
  /// rather than re-derived so the mean-of-rates stays well-defined when a
  /// repetition performed no sweeps.
  double tmax_cache_hits = 0.0;
  double tmax_cache_misses = 0.0;
  double tmax_cache_hit_rate = 0.0;

  std::vector<std::pair<double, double>> latency_cdf;  // optional export

  /// One-line human-readable summary.
  std::string summary() const;
};

}  // namespace paldia::telemetry
