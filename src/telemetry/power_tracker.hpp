// Power sampling (substitutes nvtop/powerstat, Section V): every sampling
// period, each held node's utilization since the previous sample feeds the
// linear power model; energy integrates over the run. Host CPU activity on
// GPU nodes is approximated as a fixed fraction of GPU activity (request
// plumbing scales with serving work).
#pragma once

#include <array>

#include "src/cluster/cluster.hpp"
#include "src/hw/power_model.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::telemetry {

class PowerTracker {
 public:
  PowerTracker(sim::Simulator& simulator, const cluster::Cluster& cluster,
               DurationMs sample_period_ms = 1000.0);

  /// Event shard the sampling timer lives on (default 0, the control
  /// plane). Fleets move each endpoint's trackers onto the endpoint's
  /// shard; placement never changes sample times or values.
  void set_shard(int shard) { shard_ = shard; }

  /// Begin sampling until end_ms.
  void arm(TimeMs end_ms);

  /// Average draw of all held nodes over the sampled interval, W.
  Watts average_power() const;

  /// Total energy, Watt-ms.
  double energy_wms() const { return energy_wms_; }

 private:
  void sample();

  /// Catalog prefix the fixed-size accumulators cover (slice catalogs are
  /// smaller than kNodeTypeCount; indexing past their nodes would be UB).
  int tracked_types() const;

  sim::Simulator* simulator_;
  const cluster::Cluster* cluster_;
  DurationMs period_ms_;
  int shard_ = 0;
  TimeMs end_ms_ = 0.0;
  TimeMs started_ms_ = 0.0;
  TimeMs last_sample_ms_ = 0.0;
  double energy_wms_ = 0.0;
  std::array<DurationMs, hw::kNodeTypeCount> last_busy_ms_{};

  static constexpr double kHostCpuShareOfGpuWork = 0.25;
};

}  // namespace paldia::telemetry
