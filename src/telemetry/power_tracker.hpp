// Power sampling (substitutes nvtop/powerstat, Section V): every sampling
// period, each held node's utilization since the previous sample feeds the
// linear power model; energy integrates over the run. Host CPU activity on
// GPU nodes is approximated as a fixed fraction of GPU activity (request
// plumbing scales with serving work).
#pragma once

#include <array>

#include "src/cluster/cluster.hpp"
#include "src/hw/power_model.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::telemetry {

class PowerTracker {
 public:
  PowerTracker(sim::Simulator& simulator, const cluster::Cluster& cluster,
               DurationMs sample_period_ms = 1000.0);

  /// Begin sampling until end_ms.
  void arm(TimeMs end_ms);

  /// Average draw of all held nodes over the sampled interval, W.
  Watts average_power() const;

  /// Total energy, Watt-ms.
  double energy_wms() const { return energy_wms_; }

 private:
  void sample();

  sim::Simulator* simulator_;
  const cluster::Cluster* cluster_;
  DurationMs period_ms_;
  TimeMs end_ms_ = 0.0;
  TimeMs started_ms_ = 0.0;
  TimeMs last_sample_ms_ = 0.0;
  double energy_wms_ = 0.0;
  std::array<DurationMs, hw::kNodeTypeCount> last_busy_ms_{};

  static constexpr double kHostCpuShareOfGpuWork = 0.25;
};

}  // namespace paldia::telemetry
