// Node utilization (Fig. 8): utilization = device non-idle time as a
// fraction of the time the node type was *held* by the scheme. Sampled so
// hold intervals and busy intervals line up.
#pragma once

#include <array>

#include "src/cluster/cluster.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::telemetry {

class UtilTracker {
 public:
  UtilTracker(sim::Simulator& simulator, const cluster::Cluster& cluster,
              DurationMs sample_period_ms = 500.0);

  /// Event shard the sampling timer lives on (default 0, the control
  /// plane). Fleets move each endpoint's trackers onto the endpoint's
  /// shard; placement never changes sample times or values.
  void set_shard(int shard) { shard_ = shard; }

  void arm(TimeMs end_ms);

  /// Busy fraction of the node type over the time it was held; 0 when the
  /// type was never held.
  double utilization(hw::NodeType type) const;

  /// Aggregate over all GPU (resp. CPU) node types, weighted by held time.
  double gpu_utilization() const;
  double cpu_utilization() const;

 private:
  void sample();

  /// Tracked node types: the catalog prefix the fixed-size accumulators
  /// cover. Slice catalogs (fleet endpoints) are smaller than
  /// kNodeTypeCount; indexing past their cluster's nodes would be UB.
  int tracked_types() const;

  sim::Simulator* simulator_;
  const cluster::Cluster* cluster_;
  DurationMs period_ms_;
  int shard_ = 0;
  TimeMs end_ms_ = 0.0;
  TimeMs last_sample_ms_ = 0.0;
  std::array<DurationMs, hw::kNodeTypeCount> busy_while_held_ms_{};
  std::array<DurationMs, hw::kNodeTypeCount> held_ms_{};
  std::array<DurationMs, hw::kNodeTypeCount> last_busy_ms_{};
};

}  // namespace paldia::telemetry
