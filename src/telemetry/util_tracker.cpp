#include "src/telemetry/util_tracker.hpp"

#include <algorithm>

namespace paldia::telemetry {

UtilTracker::UtilTracker(sim::Simulator& simulator, const cluster::Cluster& cluster,
                         DurationMs sample_period_ms)
    : simulator_(&simulator), cluster_(&cluster), period_ms_(sample_period_ms) {}

int UtilTracker::tracked_types() const {
  return std::min(hw::kNodeTypeCount,
                  static_cast<int>(cluster_->catalog().size()));
}

void UtilTracker::arm(TimeMs end_ms) {
  end_ms_ = end_ms;
  last_sample_ms_ = simulator_->now();
  for (int i = 0; i < tracked_types(); ++i) {
    last_busy_ms_[static_cast<std::size_t>(i)] =
        cluster_->node(hw::NodeType(i)).device_busy_time_ms();
  }
  simulator_->schedule_in(period_ms_, [this] { sample(); }, shard_);
}

void UtilTracker::sample() {
  const TimeMs now = simulator_->now();
  const DurationMs dt = now - last_sample_ms_;
  if (dt > 0.0) {
    for (int i = 0; i < tracked_types(); ++i) {
      const auto index = static_cast<std::size_t>(i);
      const auto type = hw::NodeType(i);
      const DurationMs busy = cluster_->node(type).device_busy_time_ms();
      const DurationMs delta = busy - last_busy_ms_[index];
      last_busy_ms_[index] = busy;
      if (!cluster_->held(type)) continue;
      held_ms_[index] += dt;
      busy_while_held_ms_[index] += std::clamp(delta, 0.0, dt);
    }
  }
  last_sample_ms_ = now;
  if (now + period_ms_ <= end_ms_) {
    simulator_->schedule_in(period_ms_, [this] { sample(); }, shard_);
  }
}

double UtilTracker::utilization(hw::NodeType type) const {
  const auto index = static_cast<std::size_t>(type);
  return held_ms_[index] <= 0.0 ? 0.0 : busy_while_held_ms_[index] / held_ms_[index];
}

double UtilTracker::gpu_utilization() const {
  DurationMs busy = 0.0, held = 0.0;
  for (int i = 0; i < tracked_types(); ++i) {
    if (!cluster_->catalog().spec(hw::NodeType(i)).is_gpu()) continue;
    busy += busy_while_held_ms_[static_cast<std::size_t>(i)];
    held += held_ms_[static_cast<std::size_t>(i)];
  }
  return held <= 0.0 ? 0.0 : busy / held;
}

double UtilTracker::cpu_utilization() const {
  DurationMs busy = 0.0, held = 0.0;
  for (int i = 0; i < tracked_types(); ++i) {
    if (cluster_->catalog().spec(hw::NodeType(i)).is_gpu()) continue;
    busy += busy_while_held_ms_[static_cast<std::size_t>(i)];
    held += held_ms_[static_cast<std::size_t>(i)];
  }
  return held <= 0.0 ? 0.0 : busy / held;
}

}  // namespace paldia::telemetry
