// Cost accounting view over the cluster (Section V methodology: total
// weighted cost = time holding each node type x its hourly price).
#pragma once

#include <vector>

#include "src/cluster/cluster.hpp"

namespace paldia::telemetry {

struct CostBreakdownEntry {
  hw::NodeType type{};
  DurationMs held_ms = 0.0;
  Dollars cost = 0.0;
};

class CostTracker {
 public:
  explicit CostTracker(const cluster::Cluster& cluster) : cluster_(&cluster) {}

  Dollars total() const { return cluster_->total_cost(); }
  std::vector<CostBreakdownEntry> breakdown() const;

 private:
  const cluster::Cluster* cluster_;
};

}  // namespace paldia::telemetry
