#include "src/telemetry/metrics.hpp"

#include <cstdio>

namespace paldia::telemetry {

std::string RunMetrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-22s slo=%6.2f%% p99=%7.1fms mean=%6.1fms cost=$%.4f power=%.0fW",
                scheme.c_str(), slo_compliance * 100.0, p99_latency_ms,
                mean_latency_ms, cost, average_power);
  return buf;
}

}  // namespace paldia::telemetry
