// Per-request latency recording with component attribution.
//
// Each completed request carries an end-to-end latency plus a breakdown
// into: isolated execution ("min possible time" in Figs. 1/4), queueing
// (batch formation + lane/container waits), interference (execution stretch
// under MPS contention), and cold start. Full distributions go into
// bounded-memory histograms; a reservoir sample additionally retains whole
// records so the tail (P99) breakdown plots can be reconstructed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/histogram.hpp"
#include "src/common/rng.hpp"
#include "src/common/units.hpp"

namespace paldia::telemetry {

struct RequestOutcome {
  DurationMs latency_ms = 0.0;       // completion - arrival
  DurationMs solo_ms = 0.0;          // isolated execution component
  DurationMs queue_ms = 0.0;         // batching + lane + container waits
  DurationMs interference_ms = 0.0;  // MPS contention stretch
  DurationMs cold_start_ms = 0.0;    // container boot charged to the request
};

/// Mean component values of requests near a latency quantile.
struct TailBreakdown {
  DurationMs latency_ms = 0.0;
  DurationMs solo_ms = 0.0;
  DurationMs queue_ms = 0.0;
  DurationMs interference_ms = 0.0;
  DurationMs cold_start_ms = 0.0;
  std::size_t samples = 0;
};

class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t reservoir_capacity = 200'000,
                           std::uint64_t seed = 0xdead'beef);

  void record(const RequestOutcome& outcome);

  const Histogram& e2e() const { return e2e_; }
  std::uint64_t count() const { return e2e_.count(); }

  DurationMs p99_ms() const { return e2e_.quantile(0.99); }
  DurationMs mean_ms() const { return e2e_.mean(); }

  /// P50/P95/P99 in one histogram scan (three quantile() calls pay three).
  struct Percentiles {
    DurationMs p50_ms = 0.0;
    DurationMs p95_ms = 0.0;
    DurationMs p99_ms = 0.0;
  };
  Percentiles percentiles() const {
    const double qs[] = {0.5, 0.95, 0.99};
    const auto values = e2e_.quantiles(qs);
    return Percentiles{values[0], values[1], values[2]};
  }

  /// Component breakdown of requests whose latency falls within
  /// [quantile - half_band, quantile + half_band] of the distribution.
  TailBreakdown breakdown_at(double quantile, double half_band = 0.005) const;

  /// CDF points of the end-to-end latency (value, cumulative fraction).
  std::vector<std::pair<double, double>> cdf() const { return e2e_.cdf(); }

 private:
  Histogram e2e_;
  std::vector<RequestOutcome> reservoir_;
  std::size_t reservoir_capacity_;
  std::uint64_t seen_ = 0;
  Rng rng_;
};

}  // namespace paldia::telemetry
