#include "src/baselines/molecule.hpp"

#include <algorithm>

namespace paldia::baselines {

MoleculePolicy::MoleculePolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                               const models::ProfileTable& profile, Variant variant,
                               std::optional<hw::NodeType> pinned)
    : SchedulerPolicy(catalog),
      zoo_(&zoo),
      profile_(&profile),
      variant_(variant),
      pinned_(pinned) {}

std::string MoleculePolicy::name() const {
  if (pinned_.has_value()) {
    return std::string("Time Shared Only (") +
           (variant_ == Variant::kPerformance ? "P)" : "$)");
  }
  return variant_ == Variant::kPerformance ? "Molecule (beta) (P)"
                                           : "Molecule (beta) ($)";
}

hw::NodeType MoleculePolicy::select_hardware(
    const std::vector<core::DemandSnapshot>& demand, hw::NodeType /*current*/,
    TimeMs /*now*/) {
  if (pinned_.has_value()) return *pinned_;
  if (variant_ == Variant::kPerformance) {
    return catalog().most_performant_gpu().value_or(
        catalog().by_cost_ascending().back());
  }
  return cheapest_single_batch_node(*zoo_, catalog(), *profile_, demand);
}

core::SplitPlan MoleculePolicy::plan_dispatch(const core::DemandSnapshot& demand,
                                              hw::NodeType node, TimeMs /*now*/) {
  core::SplitPlan plan;
  const auto& model = zoo_->spec(demand.model);
  const int n = demand.backlog;
  if (n <= 0) return plan;

  const int fit = profile_->max_batch_within(model, node, model.slo_ms * 0.75);
  plan.batch_size = std::clamp(fit, 1, model.max_batch);
  plan.temporal_requests = n;  // every batch executes one at a time
  plan.use_cpu = !catalog().spec(node).is_gpu();
  return plan;
}

}  // namespace paldia::baselines
