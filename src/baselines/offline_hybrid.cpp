#include "src/baselines/offline_hybrid.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::baselines {

OfflineHybridPolicy::OfflineHybridPolicy(const models::Zoo& zoo,
                                         const hw::Catalog& catalog,
                                         const models::ProfileTable& profile,
                                         hw::NodeType pinned, double spatial_fraction)
    : SchedulerPolicy(catalog),
      zoo_(&zoo),
      profile_(&profile),
      pinned_(pinned),
      spatial_fraction_(std::clamp(spatial_fraction, 0.0, 1.0)) {}

hw::NodeType OfflineHybridPolicy::select_hardware(
    const std::vector<core::DemandSnapshot>& /*demand*/, hw::NodeType /*current*/,
    TimeMs /*now*/) {
  return pinned_;
}

core::SplitPlan OfflineHybridPolicy::plan_dispatch(const core::DemandSnapshot& demand,
                                                   hw::NodeType node,
                                                   TimeMs /*now*/) {
  core::SplitPlan plan;
  const auto& model = zoo_->spec(demand.model);
  const int n = demand.backlog;
  if (n <= 0) return plan;

  const int fit = profile_->max_batch_within(model, node, model.slo_ms * 0.75);
  plan.batch_size = std::clamp(fit, 1, model.max_batch);
  plan.use_cpu = !catalog().spec(node).is_gpu();
  if (plan.use_cpu) {
    plan.temporal_requests = n;
    return plan;
  }
  plan.spatial_requests =
      static_cast<int>(std::round(spatial_fraction_ * static_cast<double>(n)));
  plan.spatial_requests = std::clamp(plan.spatial_requests, 0, n);
  plan.temporal_requests = n - plan.spatial_requests;
  return plan;
}

}  // namespace paldia::baselines
