// Oracle (Section VI-B): an offline, clairvoyant scheme with all of
// Paldia's policies but perfect knowledge — it reads the *actual* future
// arrival rate straight from the trace instead of predicting it, and
// switches hardware without hysteresis (the ideal hardware timeline is
// "known beforehand" via offline sweeps).
#pragma once

#include <map>

#include "src/core/hardware_selection.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/trace/trace.hpp"

namespace paldia::baselines {

class OraclePolicy final : public core::SchedulerPolicy {
 public:
  OraclePolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
               const models::ProfileTable& profile, ThreadPool* pool = nullptr,
               double tmax_beta = 0.2, bool tmax_cache = true,
               core::HardwareSelectionConfig selection = {});

  /// Register the true trace of a workload (clairvoyance source).
  void reveal_trace(models::ModelId model, const trace::Trace& trace);

  std::string name() const override { return "Oracle"; }

  hw::NodeType select_hardware(const std::vector<core::DemandSnapshot>& demand,
                               hw::NodeType current, TimeMs now) override;

  core::SplitPlan plan_dispatch(const core::DemandSnapshot& demand,
                                hw::NodeType node, TimeMs now) override;

  perfmodel::TmaxCacheStats tmax_cache_stats() const override {
    return tmax_cache_.stats();
  }

 private:
  core::DemandSnapshot clairvoyant(const core::DemandSnapshot& demand,
                                   TimeMs now) const;

  const models::Zoo* zoo_;
  const models::ProfileTable* profile_;
  perfmodel::YOptimizer optimizer_;
  perfmodel::TmaxCache tmax_cache_;
  core::HardwareSelection selection_;
  std::map<models::ModelId, const trace::Trace*> traces_;
};

}  // namespace paldia::baselines
