// Offline Hybrid (Fig. 1 motivation scheme): a fixed node (the
// cost-effective M60 in the paper) with a *fixed* spatial fraction chosen
// by an offline sweep — both time and spatial sharing are used, but the
// split is a constant picked beforehand rather than predicted online.
// sweep_spatial_fraction() performs the offline sweep the paper describes
// ("a sweep of numerous possible combinations of workload occupancy on the
// GPU beforehand") by re-running a pilot experiment per candidate fraction.
#pragma once

#include "src/core/scheduler_policy.hpp"

namespace paldia::baselines {

class OfflineHybridPolicy final : public core::SchedulerPolicy {
 public:
  OfflineHybridPolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                      const models::ProfileTable& profile, hw::NodeType pinned,
                      double spatial_fraction);

  std::string name() const override { return "Offline Hybrid"; }

  hw::NodeType select_hardware(const std::vector<core::DemandSnapshot>& demand,
                               hw::NodeType current, TimeMs now) override;

  core::SplitPlan plan_dispatch(const core::DemandSnapshot& demand,
                                hw::NodeType node, TimeMs now) override;

  double spatial_fraction() const { return spatial_fraction_; }

 private:
  const models::Zoo* zoo_;
  const models::ProfileTable* profile_;
  hw::NodeType pinned_;
  double spatial_fraction_;
};

}  // namespace paldia::baselines
