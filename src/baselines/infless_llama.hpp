// INFless / Llama request-serving policy (Section V, "Evaluated schemes"):
// spatially shares the GPU among *all* incoming requests via MPS, agnostic
// of the resulting job interference.
//
//  * ($) variant — hardware selection picks the most cost-effective node
//    that can serve one batch of requests (for the current request rate)
//    within the SLO, judged *in isolation*. GPU throughput is assumed to
//    scale via MPS (interference-agnostic); CPU nodes are judged on their
//    sequential drain rate.
//  * (P) variant — always the most performant GPU (V100), regardless of
//    request rate.
//  * Pinned variant — a fixed node, used by the Fig. 1 motivation study
//    ("MPS Only (P)/($)").
#pragma once

#include <optional>

#include "src/core/scheduler_policy.hpp"

namespace paldia::baselines {

enum class Variant {
  kCostEffective,  // ($)
  kPerformance,    // (P)
};

class InflessLlamaPolicy final : public core::SchedulerPolicy {
 public:
  InflessLlamaPolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                     const models::ProfileTable& profile, Variant variant,
                     std::optional<hw::NodeType> pinned = std::nullopt);

  std::string name() const override;

  hw::NodeType select_hardware(const std::vector<core::DemandSnapshot>& demand,
                               hw::NodeType current, TimeMs now) override;

  core::SplitPlan plan_dispatch(const core::DemandSnapshot& demand,
                                hw::NodeType node, TimeMs now) override;

 private:
  const models::Zoo* zoo_;
  const models::ProfileTable* profile_;
  Variant variant_;
  std::optional<hw::NodeType> pinned_;
};

/// Shared by the cost-effective baselines: cheapest node that can serve one
/// current-rate batch within the SLO in isolation. GPU nodes qualify on
/// single-batch latency alone (MPS assumed to scale); CPU nodes must also
/// drain sequentially at the offered rate. Falls back to the most
/// performant GPU when nothing qualifies.
hw::NodeType cheapest_single_batch_node(
    const models::Zoo& zoo, const hw::Catalog& catalog,
    const models::ProfileTable& profile,
    const std::vector<core::DemandSnapshot>& demand);

}  // namespace paldia::baselines
