// Molecule (beta) request-serving policy (Section V): minimal GPU support —
// workload batches execute on the GPU one after another via time sharing
// only (no MPS). Hardware selection is borrowed from INFless/Llama since
// Molecule has none of its own:
//  * ($) — cheapest single-batch-capable node,
//  * (P) — always the most performant GPU,
//  * Pinned — fixed node ("Time Shared Only (P)/($)" in Fig. 1).
#pragma once

#include <optional>

#include "src/baselines/infless_llama.hpp"  // Variant, shared hardware rule
#include "src/core/scheduler_policy.hpp"

namespace paldia::baselines {

class MoleculePolicy final : public core::SchedulerPolicy {
 public:
  MoleculePolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                 const models::ProfileTable& profile, Variant variant,
                 std::optional<hw::NodeType> pinned = std::nullopt);

  std::string name() const override;

  hw::NodeType select_hardware(const std::vector<core::DemandSnapshot>& demand,
                               hw::NodeType current, TimeMs now) override;

  core::SplitPlan plan_dispatch(const core::DemandSnapshot& demand,
                                hw::NodeType node, TimeMs now) override;

 private:
  const models::Zoo* zoo_;
  const models::ProfileTable* profile_;
  Variant variant_;
  std::optional<hw::NodeType> pinned_;
};

}  // namespace paldia::baselines
