#include "src/baselines/infless_llama.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::baselines {

namespace {

/// Requests that accumulate into one batch at the offered rate within the
/// batching window (the batcher dispatches after ~SLO/4).
int current_rate_batch(const models::ModelSpec& model, Rps rate) {
  const double window_ms = model.slo_ms / 4.0;
  const int accumulated =
      static_cast<int>(std::ceil(rate * window_ms / kMsPerSecond));
  return std::clamp(accumulated, 1, model.max_batch);
}

}  // namespace

hw::NodeType cheapest_single_batch_node(
    const models::Zoo& zoo, const hw::Catalog& catalog,
    const models::ProfileTable& profile,
    const std::vector<core::DemandSnapshot>& demand) {
  for (hw::NodeType type : catalog.by_cost_ascending()) {
    bool capable = true;
    for (const auto& snapshot : demand) {
      const auto& model = zoo.spec(snapshot.model);
      const Rps rate = std::max(snapshot.observed_rps, snapshot.smoothed_rps);
      const int bs = current_rate_batch(model, rate);
      const auto entry = profile.lookup(model, type, bs);
      const DurationMs fill_ms = model.slo_ms / 4.0;
      if (entry.solo_ms + fill_ms > model.slo_ms) {
        capable = false;
        break;
      }
      if (!catalog.spec(type).is_gpu()) {
        // CPU batched mode is sequential: it must drain at the offered rate
        // with provisioning headroom (no headroom means a permanently
        // saturated queue).
        const Rps capacity = bs / (entry.solo_ms / kMsPerSecond);
        if (capacity < rate * 1.25) {
          capable = false;
          break;
        }
      }
    }
    if (capable) return type;
  }
  // Nothing fits: the most performant GPU, or on a CPU-only catalog the
  // most expensive (most capable) CPU tier.
  return catalog.most_performant_gpu().value_or(catalog.by_cost_ascending().back());
}

InflessLlamaPolicy::InflessLlamaPolicy(const models::Zoo& zoo,
                                       const hw::Catalog& catalog,
                                       const models::ProfileTable& profile,
                                       Variant variant,
                                       std::optional<hw::NodeType> pinned)
    : SchedulerPolicy(catalog),
      zoo_(&zoo),
      profile_(&profile),
      variant_(variant),
      pinned_(pinned) {}

std::string InflessLlamaPolicy::name() const {
  if (pinned_.has_value()) {
    return std::string("MPS Only (") +
           (variant_ == Variant::kPerformance ? "P)" : "$)");
  }
  return variant_ == Variant::kPerformance ? "INFless/Llama (P)"
                                           : "INFless/Llama ($)";
}

hw::NodeType InflessLlamaPolicy::select_hardware(
    const std::vector<core::DemandSnapshot>& demand, hw::NodeType /*current*/,
    TimeMs /*now*/) {
  if (pinned_.has_value()) return *pinned_;
  if (variant_ == Variant::kPerformance) {
    return catalog().most_performant_gpu().value_or(
        catalog().by_cost_ascending().back());
  }
  return cheapest_single_batch_node(*zoo_, catalog(), *profile_, demand);
}

core::SplitPlan InflessLlamaPolicy::plan_dispatch(
    const core::DemandSnapshot& demand, hw::NodeType node, TimeMs /*now*/) {
  core::SplitPlan plan;
  const auto& model = zoo_->spec(demand.model);
  const int n = demand.backlog;
  if (n <= 0) return plan;

  if (!catalog().spec(node).is_gpu()) {
    plan.use_cpu = true;
    plan.temporal_requests = n;
    plan.batch_size = std::max(
        1, std::min(model.max_batch,
                    profile_->max_batch_within(model, node, model.slo_ms * 0.75)));
    return plan;
  }

  // Everything is co-located via MPS; the batch size is the largest whose
  // *isolated* latency fits the SLO — the scheme's defining blindness to
  // interference.
  plan.spatial_requests = n;
  const int fit = profile_->max_batch_within(model, node, model.slo_ms * 0.75);
  plan.batch_size = std::clamp(fit, 1, model.max_batch);
  return plan;
}

}  // namespace paldia::baselines
