#include "src/baselines/oracle.hpp"

#include <algorithm>

namespace paldia::baselines {

OraclePolicy::OraclePolicy(const models::Zoo& zoo, const hw::Catalog& catalog,
                           const models::ProfileTable& profile, ThreadPool* pool,
                           double tmax_beta, bool tmax_cache,
                           core::HardwareSelectionConfig selection)
    : SchedulerPolicy(catalog),
      zoo_(&zoo),
      profile_(&profile),
      optimizer_(perfmodel::TmaxModel(tmax_beta), pool),
      tmax_cache_(/*bypass=*/!tmax_cache),
      selection_(zoo, catalog, profile, optimizer_, pool, selection) {
  selection_.set_tmax_cache(&tmax_cache_);
}

void OraclePolicy::reveal_trace(models::ModelId model, const trace::Trace& trace) {
  traces_[model] = &trace;
}

core::DemandSnapshot OraclePolicy::clairvoyant(const core::DemandSnapshot& demand,
                                               TimeMs now) const {
  core::DemandSnapshot revealed = demand;
  auto it = traces_.find(demand.model);
  if (it != traces_.end()) {
    // The worst upcoming 1 s rate over the procurement horizon — the oracle
    // provisions for what actually arrives, not a smoothed estimate.
    Rps worst = 0.0;
    for (DurationMs ahead = 0.0; ahead <= 4000.0; ahead += 1000.0) {
      worst = std::max(worst, it->second->rate_at(now + ahead, 1000.0));
    }
    revealed.predicted_rps = worst;
    // The oracle's knowledge *is* the smoothed truth — both signals carry
    // the actual upcoming rate (no prediction noise to damp).
    revealed.smoothed_rps = worst;
  }
  return revealed;
}

hw::NodeType OraclePolicy::select_hardware(
    const std::vector<core::DemandSnapshot>& demand, hw::NodeType /*current*/,
    TimeMs now) {
  std::vector<core::DemandSnapshot> revealed;
  revealed.reserve(demand.size());
  for (const auto& snapshot : demand) revealed.push_back(clairvoyant(snapshot, now));
  return selection_.choose(revealed).node;  // no hysteresis: switch at once
}

core::SplitPlan OraclePolicy::plan_dispatch(const core::DemandSnapshot& demand,
                                            hw::NodeType node, TimeMs /*now*/) {
  core::SplitPlan plan;
  const auto& model = zoo_->spec(demand.model);
  const int n = demand.backlog;
  if (n <= 0) return plan;

  if (!catalog().spec(node).is_gpu()) {
    const auto estimate = perfmodel::approx_cpu_t_max(model, *profile_, node, n,
                                                      model.slo_ms * 0.85);
    plan.use_cpu = true;
    plan.batch_size = std::max(1, estimate.batch_size);
    plan.temporal_requests = n;
    return plan;
  }

  const int bs = std::min(model.max_batch, std::max(1, n));
  const auto entry = profile_->lookup(model, node, bs);
  perfmodel::WorkloadPoint point{n, bs, entry.solo_ms, entry.fbr,
                                 model.slo_ms * 0.85, entry.compute};
  perfmodel::TmaxCache::Key key;
  key.model = static_cast<std::int16_t>(demand.model);
  key.node = static_cast<std::int16_t>(node);
  key.n_requests = n;
  key.slo_q = perfmodel::TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = perfmodel::kDefaultSweepProbes;
  const auto decision = tmax_cache_.best_split(optimizer_, key, point,
                                               perfmodel::kDefaultSweepProbes);
  plan.batch_size = bs;
  plan.temporal_requests = std::clamp(decision.y, 0, n);
  plan.spatial_requests = n - plan.temporal_requests;
  return plan;
}

}  // namespace paldia::baselines
