// End-to-end multi-gateway fleet experiment: a core::Fleet (E endpoints over
// a sliced catalog, one shared sharded simulator) driven by a Scenario's
// workloads, with the full per-endpoint observability stack and the same
// RunMetrics extraction as the per-scheme Runner.
//
// The obs::RunTrace slots are reused with one slot per *endpoint* (instead
// of per repetition): tracer/rollup/profiler/health slot e observes endpoint
// e, and the existing exporters walk the slots in endpoint order — so fleet
// exports are byte-identical across --threads and --shards exactly like
// per-rep exports.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/fleet.hpp"
#include "src/exp/runner.hpp"

namespace paldia::exp {

struct FleetSimResult {
  /// Endpoint-local metrics, endpoint order; rows are labelled
  /// "<scenario>-e<endpoint>".
  std::vector<RunResult> per_endpoint;
  /// Fleet-wide merged row ("<scenario>-fleet"): histograms merged across
  /// endpoints, cost / violations / cold starts summed, power and
  /// utilization averaged over endpoints.
  telemetry::RunMetrics combined;
  std::uint64_t total_requests = 0;  // arrivals routed across all gateways
  std::uint64_t unserved = 0;        // still pending at the drain cap
  std::uint64_t events_processed = 0;
  TimeMs end_ms = 0.0;
  int endpoints = 0;
  int nodes = 0;  // global catalog size
};

class FleetSim {
 public:
  /// `catalog` is the global fleet catalog (typically generated,
  /// hw::parse_catalog_spec). The pool parallelizes per-shard event
  /// extraction; exports are identical with or without it.
  FleetSim(const models::Zoo& zoo, const hw::Catalog& catalog,
           ThreadPool* pool = nullptr, SchemeFactoryOptions options = {});

  /// One fleet run: `endpoints` gateways serve the scenario's workloads,
  /// each global trace split per endpoint by the splitmix64 router seeded
  /// from scenario.base_seed. `trace` (optional) gets one observation slot
  /// per endpoint for each enabled stream. Supported schemes are
  /// main_schemes() — Paldia and the INFless/Llama / Molecule variants,
  /// which select hardware over whatever catalog they are given (perf
  /// variants start on the slice's best GPU when it has one). Oracle (trace
  /// reveal predates the routing split) and the Table II pinned-node
  /// figure-1 baselines (their pins name global indices) are rejected.
  FleetSimResult run(const Scenario& scenario, SchemeId scheme, int endpoints,
                     obs::RunTrace* trace = nullptr) const;

  const SchemeFactoryOptions& options() const { return options_; }

 private:
  const models::Zoo* zoo_;
  const hw::Catalog* catalog_;
  ThreadPool* pool_;
  SchemeFactoryOptions options_;
};

}  // namespace paldia::exp
