#include "src/exp/scheme_factory.hpp"

#include "src/baselines/infless_llama.hpp"
#include "src/baselines/molecule.hpp"
#include "src/baselines/offline_hybrid.hpp"
#include "src/baselines/oracle.hpp"
#include "src/core/paldia_policy.hpp"

namespace paldia::exp {

std::string scheme_name(SchemeId id) {
  switch (id) {
    case SchemeId::kPaldia: return "Paldia";
    case SchemeId::kInflessLlamaCost: return "INFless/Llama ($)";
    case SchemeId::kInflessLlamaPerf: return "INFless/Llama (P)";
    case SchemeId::kMoleculeCost: return "Molecule (beta) ($)";
    case SchemeId::kMoleculePerf: return "Molecule (beta) (P)";
    case SchemeId::kOracle: return "Oracle";
    case SchemeId::kOfflineHybrid: return "Offline Hybrid";
    case SchemeId::kMpsOnlyPerf: return "MPS Only (P)";
    case SchemeId::kMpsOnlyCost: return "MPS Only ($)";
    case SchemeId::kTimeSharedPerf: return "Time Shared Only (P)";
    case SchemeId::kTimeSharedCost: return "Time Shared Only ($)";
  }
  return "?";
}

std::vector<SchemeId> main_schemes() {
  return {SchemeId::kMoleculePerf, SchemeId::kInflessLlamaPerf,
          SchemeId::kMoleculeCost, SchemeId::kInflessLlamaCost, SchemeId::kPaldia};
}

SchemeFactory::SchemeFactory(const models::Zoo& zoo, const hw::Catalog& catalog,
                             const models::ProfileTable& profile, ThreadPool* pool,
                             SchemeFactoryOptions options)
    : zoo_(&zoo), catalog_(&catalog), profile_(&profile), pool_(pool),
      options_(options) {}

std::unique_ptr<core::SchedulerPolicy> SchemeFactory::make(SchemeId id) const {
  using baselines::InflessLlamaPolicy;
  using baselines::MoleculePolicy;
  using baselines::Variant;
  const hw::NodeType top_gpu =
      catalog_->most_performant_gpu().value_or(catalog_->by_cost_ascending().back());
  const hw::NodeType cheap_gpu = hw::NodeType::kG3s_xlarge;  // M60 in Table II

  switch (id) {
    case SchemeId::kPaldia: {
      core::PaldiaPolicyConfig config;
      config.tmax_beta = options_.tmax_beta;
      config.tmax_cache = options_.tmax_cache;
      config.selection.prune = options_.prune;
      return std::make_unique<core::PaldiaPolicy>(*zoo_, *catalog_, *profile_, pool_,
                                                  config);
    }
    case SchemeId::kInflessLlamaCost:
      return std::make_unique<InflessLlamaPolicy>(*zoo_, *catalog_, *profile_,
                                                  Variant::kCostEffective);
    case SchemeId::kInflessLlamaPerf:
      return std::make_unique<InflessLlamaPolicy>(*zoo_, *catalog_, *profile_,
                                                  Variant::kPerformance);
    case SchemeId::kMoleculeCost:
      return std::make_unique<MoleculePolicy>(*zoo_, *catalog_, *profile_,
                                              Variant::kCostEffective);
    case SchemeId::kMoleculePerf:
      return std::make_unique<MoleculePolicy>(*zoo_, *catalog_, *profile_,
                                              Variant::kPerformance);
    case SchemeId::kOracle: {
      core::HardwareSelectionConfig selection;
      selection.prune = options_.prune;
      return std::make_unique<baselines::OraclePolicy>(*zoo_, *catalog_, *profile_,
                                                       pool_, options_.tmax_beta,
                                                       options_.tmax_cache, selection);
    }
    case SchemeId::kOfflineHybrid:
      return std::make_unique<baselines::OfflineHybridPolicy>(
          *zoo_, *catalog_, *profile_, cheap_gpu, options_.offline_spatial_fraction);
    case SchemeId::kMpsOnlyPerf:
      return std::make_unique<InflessLlamaPolicy>(*zoo_, *catalog_, *profile_,
                                                  Variant::kPerformance, top_gpu);
    case SchemeId::kMpsOnlyCost:
      return std::make_unique<InflessLlamaPolicy>(*zoo_, *catalog_, *profile_,
                                                  Variant::kCostEffective, cheap_gpu);
    case SchemeId::kTimeSharedPerf:
      return std::make_unique<MoleculePolicy>(*zoo_, *catalog_, *profile_,
                                              Variant::kPerformance, top_gpu);
    case SchemeId::kTimeSharedCost:
      return std::make_unique<MoleculePolicy>(*zoo_, *catalog_, *profile_,
                                              Variant::kCostEffective, cheap_gpu);
  }
  return nullptr;
}

hw::NodeType SchemeFactory::initial_node(SchemeId id) const {
  switch (id) {
    case SchemeId::kInflessLlamaPerf:
    case SchemeId::kMoleculePerf:
    case SchemeId::kMpsOnlyPerf:
    case SchemeId::kTimeSharedPerf:
      return catalog_->most_performant_gpu().value_or(
          catalog_->by_cost_ascending().back());
    case SchemeId::kMpsOnlyCost:
    case SchemeId::kTimeSharedCost:
    case SchemeId::kOfflineHybrid:
      return hw::NodeType::kG3s_xlarge;
    default:
      return hw::NodeType::kC6i_2xlarge;  // cheapest broadly-capable CPU
  }
}

}  // namespace paldia::exp
