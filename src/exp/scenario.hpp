// Experiment descriptions: which workloads under which traces, with which
// adverse conditions, repeated how many times. One Scenario + one SchemeId
// = one set of runs = one bar/line of a paper figure.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/failure_injector.hpp"
#include "src/cluster/host_interference.hpp"
#include "src/core/framework.hpp"
#include "src/models/model_spec.hpp"
#include "src/trace/trace.hpp"

namespace paldia::exp {

struct WorkloadSpec {
  models::ModelId model{};
  trace::Trace trace;
};

struct Scenario {
  std::string name;
  std::vector<WorkloadSpec> workloads;
  core::FrameworkConfig framework;
  std::optional<cluster::FailureInjectorConfig> failures;
  std::vector<cluster::CoResident> coresidents;
  /// Window used for the goodput metric (Fig. 7a: busiest traffic period).
  DurationMs goodput_window_ms = seconds(30);
  int repetitions = 3;  // the paper uses 5; benches accept a flag
  std::uint64_t base_seed = 0x9a1d1a;
};

/// Convenience builders for the paper's standard scenarios.
Scenario azure_scenario(models::ModelId model, int repetitions = 3);
Scenario wiki_scenario(models::ModelId model, int repetitions = 3);
Scenario twitter_scenario(models::ModelId model, int repetitions = 3);
Scenario poisson_scenario(models::ModelId model, Rps mean_rps, int repetitions = 3);
Scenario llm_scenario(models::ModelId model, int repetitions = 3);

/// The paper's per-class peak scaling (Section V): high-FBR vision models
/// peak at 225 rps, the rest at 450 rps, language models at 8 rps.
Rps paper_peak_rps(models::ModelId model);

}  // namespace paldia::exp
