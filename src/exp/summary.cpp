#include "src/exp/summary.hpp"

#include <cassert>
#include <functional>
#include <ostream>

#include "src/common/stats.hpp"
#include "src/common/table.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::exp {

namespace {

double filtered(const std::vector<telemetry::RunMetrics>& runs,
                const std::function<double(const telemetry::RunMetrics&)>& get) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& run : runs) values.push_back(get(run));
  return outlier_filtered_mean(values);
}

// Plain (unfiltered) mean. The attribution fields must keep the invariant
// sum(violations_by_cause) == slo_violations after aggregation; a linear
// mean preserves it exactly, per-field outlier filtering would not.
double plain_mean(const std::vector<telemetry::RunMetrics>& runs,
                  const std::function<double(const telemetry::RunMetrics&)>& get) {
  double sum = 0.0;
  for (const auto& run : runs) sum += get(run);
  return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
}

}  // namespace

telemetry::RunMetrics aggregate_metrics(const std::vector<telemetry::RunMetrics>& runs) {
  assert(!runs.empty());
  telemetry::RunMetrics out = runs.front();
  using M = telemetry::RunMetrics;
  out.slo_compliance = filtered(runs, [](const M& m) { return m.slo_compliance; });
  out.mean_latency_ms = filtered(runs, [](const M& m) { return m.mean_latency_ms; });
  out.p50_latency_ms = filtered(runs, [](const M& m) { return m.p50_latency_ms; });
  out.p95_latency_ms = filtered(runs, [](const M& m) { return m.p95_latency_ms; });
  out.p99_latency_ms = filtered(runs, [](const M& m) { return m.p99_latency_ms; });
  out.cost = filtered(runs, [](const M& m) { return m.cost; });
  out.average_power = filtered(runs, [](const M& m) { return m.average_power; });
  out.gpu_utilization = filtered(runs, [](const M& m) { return m.gpu_utilization; });
  out.cpu_utilization = filtered(runs, [](const M& m) { return m.cpu_utilization; });
  out.goodput_rps = filtered(runs, [](const M& m) { return m.goodput_rps; });
  out.offered_rps = filtered(runs, [](const M& m) { return m.offered_rps; });
  out.requests = runs.front().requests;
  out.cold_starts = static_cast<std::uint64_t>(
      filtered(runs, [](const M& m) { return static_cast<double>(m.cold_starts); }));
  out.p99_breakdown.latency_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.latency_ms; });
  out.p99_breakdown.solo_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.solo_ms; });
  out.p99_breakdown.queue_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.queue_ms; });
  out.p99_breakdown.interference_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.interference_ms; });
  out.p99_breakdown.cold_start_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.cold_start_ms; });
  out.slo_violations = plain_mean(runs, [](const M& m) { return m.slo_violations; });
  for (std::size_t cause = 0; cause < out.violations_by_cause.size(); ++cause) {
    out.violations_by_cause[cause] =
        plain_mean(runs, [cause](const M& m) { return m.violations_by_cause[cause]; });
  }
  out.tmax_mape = plain_mean(runs, [](const M& m) { return m.tmax_mape; });
  out.tmax_coverage = plain_mean(runs, [](const M& m) { return m.tmax_coverage; });
  out.rate_mape = plain_mean(runs, [](const M& m) { return m.rate_mape; });
  out.calib_intervals = plain_mean(runs, [](const M& m) { return m.calib_intervals; });
  out.tmax_cache_hits =
      plain_mean(runs, [](const M& m) { return m.tmax_cache_hits; });
  out.tmax_cache_misses =
      plain_mean(runs, [](const M& m) { return m.tmax_cache_misses; });
  out.tmax_cache_hit_rate =
      plain_mean(runs, [](const M& m) { return m.tmax_cache_hit_rate; });
  return out;
}

RunResult aggregate_runs(const std::vector<RunResult>& repetitions) {
  assert(!repetitions.empty());
  RunResult out;
  std::vector<telemetry::RunMetrics> combined;
  combined.reserve(repetitions.size());
  for (const auto& repetition : repetitions) combined.push_back(repetition.combined);
  out.combined = aggregate_metrics(combined);

  const std::size_t workload_count = repetitions.front().per_workload.size();
  for (std::size_t w = 0; w < workload_count; ++w) {
    std::vector<telemetry::RunMetrics> slot;
    slot.reserve(repetitions.size());
    for (const auto& repetition : repetitions) {
      slot.push_back(repetition.per_workload[w]);
    }
    out.per_workload.push_back(aggregate_metrics(slot));
  }
  return out;
}

void print_compliance_summary(std::ostream& out, const RunResult& result) {
  Table table({"workload", "requests", "compliance", "violations", "top cause"});
  const auto top_cause = [](const telemetry::RunMetrics& metrics) -> std::string {
    if (metrics.slo_violations <= 0.0) return "-";
    std::size_t best = 0;
    for (std::size_t i = 1; i < metrics.violations_by_cause.size(); ++i) {
      if (metrics.violations_by_cause[i] > metrics.violations_by_cause[best]) {
        best = i;
      }
    }
    return std::string(telemetry::violation_cause_name(
        static_cast<telemetry::ViolationCause>(best)));
  };
  for (const auto& metrics : result.per_workload) {
    table.add_row({metrics.workload, std::to_string(metrics.requests),
                   Table::percent(metrics.slo_compliance),
                   Table::num(metrics.slo_violations, 1), top_cause(metrics)});
  }
  if (result.per_workload.size() > 1) {
    table.add_row({"(combined)", std::to_string(result.combined.requests),
                   Table::percent(result.combined.slo_compliance),
                   Table::num(result.combined.slo_violations, 1),
                   top_cause(result.combined)});
  }
  table.print(out);

  out << "violation causes:";
  bool any = false;
  for (std::size_t i = 0; i < result.combined.violations_by_cause.size(); ++i) {
    if (result.combined.violations_by_cause[i] <= 0.0) continue;
    any = true;
    out << " " << telemetry::violation_cause_name(
                      static_cast<telemetry::ViolationCause>(i))
        << "=" << Table::num(result.combined.violations_by_cause[i], 1);
  }
  if (!any) out << " none";
  out << "\n";
  if (result.combined.calib_intervals > 0.0) {
    out << "calibration: T_max MAPE " << Table::percent(result.combined.tmax_mape)
        << ", SLO coverage " << Table::percent(result.combined.tmax_coverage)
        << ", rate MAPE " << Table::percent(result.combined.rate_mape) << " over "
        << Table::num(result.combined.calib_intervals, 1) << " intervals/rep\n";
  }
}

}  // namespace paldia::exp
