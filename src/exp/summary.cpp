#include "src/exp/summary.hpp"

#include <cassert>
#include <functional>

#include "src/common/stats.hpp"

namespace paldia::exp {

namespace {

double filtered(const std::vector<telemetry::RunMetrics>& runs,
                const std::function<double(const telemetry::RunMetrics&)>& get) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& run : runs) values.push_back(get(run));
  return outlier_filtered_mean(values);
}

}  // namespace

telemetry::RunMetrics aggregate_metrics(const std::vector<telemetry::RunMetrics>& runs) {
  assert(!runs.empty());
  telemetry::RunMetrics out = runs.front();
  using M = telemetry::RunMetrics;
  out.slo_compliance = filtered(runs, [](const M& m) { return m.slo_compliance; });
  out.mean_latency_ms = filtered(runs, [](const M& m) { return m.mean_latency_ms; });
  out.p50_latency_ms = filtered(runs, [](const M& m) { return m.p50_latency_ms; });
  out.p95_latency_ms = filtered(runs, [](const M& m) { return m.p95_latency_ms; });
  out.p99_latency_ms = filtered(runs, [](const M& m) { return m.p99_latency_ms; });
  out.cost = filtered(runs, [](const M& m) { return m.cost; });
  out.average_power = filtered(runs, [](const M& m) { return m.average_power; });
  out.gpu_utilization = filtered(runs, [](const M& m) { return m.gpu_utilization; });
  out.cpu_utilization = filtered(runs, [](const M& m) { return m.cpu_utilization; });
  out.goodput_rps = filtered(runs, [](const M& m) { return m.goodput_rps; });
  out.offered_rps = filtered(runs, [](const M& m) { return m.offered_rps; });
  out.requests = runs.front().requests;
  out.cold_starts = static_cast<std::uint64_t>(
      filtered(runs, [](const M& m) { return static_cast<double>(m.cold_starts); }));
  out.p99_breakdown.latency_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.latency_ms; });
  out.p99_breakdown.solo_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.solo_ms; });
  out.p99_breakdown.queue_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.queue_ms; });
  out.p99_breakdown.interference_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.interference_ms; });
  out.p99_breakdown.cold_start_ms =
      filtered(runs, [](const M& m) { return m.p99_breakdown.cold_start_ms; });
  return out;
}

RunResult aggregate_runs(const std::vector<RunResult>& repetitions) {
  assert(!repetitions.empty());
  RunResult out;
  std::vector<telemetry::RunMetrics> combined;
  combined.reserve(repetitions.size());
  for (const auto& repetition : repetitions) combined.push_back(repetition.combined);
  out.combined = aggregate_metrics(combined);

  const std::size_t workload_count = repetitions.front().per_workload.size();
  for (std::size_t w = 0; w < workload_count; ++w) {
    std::vector<telemetry::RunMetrics> slot;
    slot.reserve(repetitions.size());
    for (const auto& repetition : repetitions) {
      slot.push_back(repetition.per_workload[w]);
    }
    out.per_workload.push_back(aggregate_metrics(slot));
  }
  return out;
}

}  // namespace paldia::exp
