// Runs (scenario x scheme) experiments and extracts RunMetrics.
#pragma once

#include <vector>

#include "src/exp/scenario.hpp"
#include "src/exp/scheme_factory.hpp"
#include "src/obs/tracer.hpp"
#include "src/telemetry/metrics.hpp"

namespace paldia::obs {
class CalibrationTracker;
}  // namespace paldia::obs

namespace paldia::exp {

struct RunResult {
  std::vector<telemetry::RunMetrics> per_workload;
  telemetry::RunMetrics combined;
};

/// Labels and knobs for extract_run_metrics.
struct ExtractOptions {
  std::string scheme;       // RunMetrics::scheme column
  std::string trace_label;  // RunMetrics::trace column (scenario name, or a
                            // fleet endpoint label like "azure-fleet-e003")
  DurationMs goodput_window_ms = 10'000.0;
  bool keep_cdf = false;    // retain the merged latency CDF per workload
};

/// Pull one completed Framework run into RunMetrics rows: one per workload
/// (model) plus the merged "combined" row with cluster-wide cost / power /
/// utilization / calibration columns. Shared by Runner::run_once and the
/// fleet driver (which calls it once per endpoint). `calibration` may be
/// null (fleet endpoints without decision sweeps); the tmax columns then
/// stay zero.
RunResult extract_run_metrics(core::Framework& framework,
                              cluster::Cluster& cluster,
                              const std::vector<models::ModelId>& workloads,
                              obs::CalibrationTracker* calibration,
                              const ExtractOptions& options);

class Runner {
 public:
  Runner(const models::Zoo& zoo, const hw::Catalog& catalog, ThreadPool* pool = nullptr,
         SchemeFactoryOptions options = {});

  /// One repetition with an explicit seed. `tracer` (optional) receives the
  /// repetition's lifecycle spans / decision log / counter samples; `rollup`
  /// (optional) folds every completion into windowed cells; `profiler`
  /// (optional) collects the simulator's self-profile; `health` (optional)
  /// evaluates the SLO health detectors every monitor tick.
  RunResult run_once(const Scenario& scenario, SchemeId scheme,
                     std::uint64_t seed, bool keep_cdf = false,
                     obs::Tracer* tracer = nullptr,
                     obs::RollupAggregator* rollup = nullptr,
                     obs::Profiler* profiler = nullptr,
                     obs::HealthEngine* health = nullptr) const;

  /// All repetitions, aggregated per the paper's rule (mean with >2.5 sigma
  /// outliers dropped). keep_cdf retains the latency CDF of the first rep.
  /// With a pool, repetitions run concurrently (each rep derives its seed
  /// independently and lands in a fixed slot before aggregation, so the
  /// metrics are bit-identical to the serial order).
  RunResult run(const Scenario& scenario, SchemeId scheme,
                bool keep_cdf = false) const;

  /// run() that also captures per-repetition observations. `trace` gets one
  /// slot per repetition for each enabled stream (tracers unless
  /// capture_events is false, rollup aggregators when collect_rollups,
  /// profilers when profile), allocated up front and filled in place —
  /// exporters walk the slots in repetition order, so serialized output is
  /// byte-identical however many pool threads ran the reps. The tracer
  /// configs take their sample_rate from SchemeFactoryOptions (the
  /// --sample-rate flag is the single knob).
  RunResult run(const Scenario& scenario, SchemeId scheme, obs::RunTrace& trace,
                bool keep_cdf = false) const;

  const SchemeFactory& factory() const { return factory_; }

 private:
  const models::Zoo* zoo_;
  const hw::Catalog* catalog_;
  models::ProfileTable profile_;
  SchemeFactory factory_;
  ThreadPool* pool_;
};

/// Offline sweep for the Offline Hybrid scheme (Fig. 1): run pilot
/// experiments across spatial fractions on the pinned node and return the
/// fraction with the highest overall SLO compliance.
double sweep_offline_spatial_fraction(const Scenario& scenario, int steps = 10);

}  // namespace paldia::exp
