// Fleet-scale hardware selection scenario (the large-catalog stress for
// Algorithm 1). A generated device catalog (hw/catalog_gen.hpp) is driven
// by 100+ model endpoints, each with a deterministic random-walk demand
// schedule, through HardwareSelection::choose directly — no Framework, no
// simulator, so the catalog is free to exceed kNodeTypeCount.
//
// Two outputs matter:
//   * a cost-vs-SLO frontier (fig. 5 style): sweep slo_headroom and report
//     fleet $/hour against SLO attainment at each point;
//   * sweep-work accounting: how many of the pool's candidates the pruned
//     walk actually evaluated, versus the exhaustive linear reference.
//
// Determinism contract: the demand schedule and every choice are pure
// functions of (FleetConfig, catalog) — choice_digest hashes the exact
// HardwareChoice stream, and the pruned and linear modes must produce the
// same digest (the fleet-scale face of the --no-prune byte-identity check).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"

namespace paldia::exp {

struct FleetConfig {
  int endpoints = 120;        // model endpoints (node groups) in the fleet
  int ticks = 40;             // monitor ticks simulated per endpoint
  std::uint64_t seed = 2026;  // demand random-walk seed
  double slo_headroom = 0.85; // HardwareSelectionConfig::slo_headroom
  bool prune = true;          // false = exhaustive linear reference
};

/// One endpoint's demand at one tick: the co-resident models' snapshots.
struct FleetDemand {
  std::vector<core::DemandSnapshot> models;
};

/// The full fleet demand schedule: schedule[endpoint][tick]. A pure function
/// of (config.seed, endpoints, ticks) — independent of headroom and prune
/// mode, so frontier points and prune modes see identical inputs.
std::vector<std::vector<FleetDemand>> build_fleet_schedule(
    const FleetConfig& config, const models::Zoo& zoo);

struct FleetResult {
  int endpoints = 0;
  int ticks = 0;
  int catalog_size = 0;
  long long choices = 0;        // endpoints * ticks
  long long feasible = 0;       // choices whose T_max met the headroomed SLO
  long long cpu_choices = 0;    // choices that landed on a CPU node
  long long pool_candidates = 0;  // summed capable-pool sizes
  long long evaluated = 0;        // summed candidates actually evaluated
  double fleet_cost_per_hour = 0.0;  // sum of chosen prices, averaged over ticks
  double slo_attainment = 0.0;       // feasible / choices
  double micros_per_choice = 0.0;    // wall-clock, excluded from the digest
  std::uint64_t choice_digest = 0;   // FNV-1a over the exact choice stream
};

/// Run the fleet scenario over a prebuilt schedule. `catalog` is typically
/// generated (hw::generate_catalog) but any catalog works; `profile` must be
/// built over the same catalog.
FleetResult run_fleet(const FleetConfig& config,
                      const std::vector<std::vector<FleetDemand>>& schedule,
                      const models::Zoo& zoo, const hw::Catalog& catalog,
                      const models::ProfileTable& profile,
                      ThreadPool* pool = nullptr);

/// Convenience: build the schedule internally and run.
FleetResult run_fleet(const FleetConfig& config, const models::Zoo& zoo,
                      const hw::Catalog& catalog,
                      const models::ProfileTable& profile,
                      ThreadPool* pool = nullptr);

}  // namespace paldia::exp
