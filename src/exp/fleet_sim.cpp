#include "src/exp/fleet_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/telemetry/cost_tracker.hpp"

namespace paldia::exp {

namespace {

bool is_perf_variant(SchemeId scheme) {
  return scheme == SchemeId::kInflessLlamaPerf ||
         scheme == SchemeId::kMoleculePerf;
}

bool fleet_supported(SchemeId scheme) {
  switch (scheme) {
    case SchemeId::kPaldia:
    case SchemeId::kInflessLlamaCost:
    case SchemeId::kInflessLlamaPerf:
    case SchemeId::kMoleculeCost:
    case SchemeId::kMoleculePerf:
      return true;
    default:
      return false;
  }
}

}  // namespace

FleetSim::FleetSim(const models::Zoo& zoo, const hw::Catalog& catalog,
                   ThreadPool* pool, SchemeFactoryOptions options)
    : zoo_(&zoo), catalog_(&catalog), pool_(pool), options_(options) {}

FleetSimResult FleetSim::run(const Scenario& scenario, SchemeId scheme,
                             int endpoints, obs::RunTrace* trace) const {
  if (!fleet_supported(scheme)) {
    std::fprintf(stderr, "FleetSim: scheme '%s' is not supported at fleet scale\n",
                 scheme_name(scheme).c_str());
    std::abort();
  }
  assert(endpoints >= 1);
  const auto slots = static_cast<std::size_t>(endpoints);

  sim::ShardOptions shard_options;
  shard_options.shards = options_.shards;
  shard_options.pool = pool_;
  sim::Simulator simulator(shard_options);
  Rng rng(scenario.base_seed);

  // Per-endpoint observation slots, endpoint order (mirrors Runner::run's
  // per-repetition slots — exporters walk them in slot order).
  if (trace != nullptr) {
    trace->config.sample_rate = options_.sample_rate;
    trace->health_config.slo_target = options_.slo_target;
    trace->health_config.fast_window_ms = options_.burn_fast_ms;
    trace->health_config.slow_window_ms = options_.burn_slow_ms;
    trace->reps.clear();
    trace->rollups.clear();
    trace->profiles.clear();
    trace->healths.clear();
    if (trace->capture_events) {
      trace->reps.reserve(slots);
      for (std::size_t e = 0; e < slots; ++e) {
        trace->reps.push_back(std::make_unique<obs::Tracer>(trace->config));
      }
    }
    if (trace->collect_rollups) {
      trace->rollups.reserve(slots);
      for (std::size_t e = 0; e < slots; ++e) {
        trace->rollups.push_back(
            std::make_unique<obs::RollupAggregator>(trace->rollup_config));
      }
    }
    if (trace->profile) {
      trace->profiles.reserve(slots);
      for (std::size_t e = 0; e < slots; ++e) {
        trace->profiles.push_back(std::make_unique<obs::Profiler>());
      }
    }
    if (trace->collect_health) {
      trace->healths.reserve(slots);
      for (std::size_t e = 0; e < slots; ++e) {
        trace->healths.push_back(
            std::make_unique<obs::HealthEngine>(trace->health_config));
      }
    }
  }

  // Per-endpoint attribution + calibration engines (the calibration only
  // fills when the endpoint has a tracer with decision sweeps).
  obs::CalibrationTracker::Config calibration_config;
  if (!scenario.workloads.empty()) {
    calibration_config.slo_ms = kTimeNever;
    for (const auto& workload : scenario.workloads) {
      calibration_config.slo_ms =
          std::min(calibration_config.slo_ms, zoo_->spec(workload.model).slo_ms);
    }
  }
  std::vector<std::unique_ptr<obs::AttributionEngine>> attributions;
  std::vector<std::unique_ptr<obs::CalibrationTracker>> calibrations;
  attributions.reserve(slots);
  calibrations.reserve(slots);
  for (std::size_t e = 0; e < slots; ++e) {
    attributions.push_back(std::make_unique<obs::AttributionEngine>(*zoo_));
    calibrations.push_back(
        std::make_unique<obs::CalibrationTracker>(calibration_config));
  }

  core::FleetConfig fleet_config;
  fleet_config.endpoints = endpoints;
  fleet_config.route_seed = scenario.base_seed;
  fleet_config.framework = scenario.framework;
  fleet_config.framework.request_pool = options_.request_pool;

  core::Fleet fleet(
      simulator, rng.fork("fleet"), *zoo_, *catalog_, fleet_config,
      [this, scheme](int, const hw::Catalog& slice,
                     const models::ProfileTable& profile) {
        // A slice-local factory: the policy holds pointers into the
        // endpoint-owned catalog/profile, which outlive it.
        SchemeFactory factory(*zoo_, slice, profile, pool_, options_);
        return factory.make(scheme);
      },
      [&](int e, const hw::Catalog& slice, core::FrameworkConfig& config) {
        const auto slot = static_cast<std::size_t>(e);
        config.attribution = attributions[slot].get();
        config.calibration = calibrations[slot].get();
        if (trace != nullptr) {
          if (trace->capture_events) config.tracer = trace->reps[slot].get();
          if (trace->collect_rollups) config.rollup = trace->rollups[slot].get();
          if (trace->profile) config.profiler = trace->profiles[slot].get();
          if (trace->collect_health) config.health = trace->healths[slot].get();
        }
        if (is_perf_variant(scheme) && slice.most_performant_gpu()) {
          config.initial_node = *slice.most_performant_gpu();
        }
      });

  for (const auto& workload : scenario.workloads) {
    fleet.add_workload(workload.model, workload.trace);
  }

  FleetSimResult result;
  result.end_ms = fleet.run();
  result.endpoints = endpoints;
  result.nodes = static_cast<int>(catalog_->size());
  result.total_requests = fleet.total_requests();
  result.events_processed = simulator.events_processed();

  std::vector<models::ModelId> workload_models;
  workload_models.reserve(scenario.workloads.size());
  for (const auto& workload : scenario.workloads) {
    workload_models.push_back(workload.model);
  }

  // Endpoint rows via the shared extractor, then the fleet-wide merge.
  Histogram merged_e2e;
  std::uint64_t total_completed = 0, total_compliant = 0, total_latencies = 0;
  double total_violations = 0.0;
  std::array<double, telemetry::kViolationCauseCount> causes{};
  double cost = 0.0, power = 0.0, gpu_util = 0.0, cpu_util = 0.0;
  std::uint64_t cold_starts = 0;
  result.per_endpoint.reserve(slots);
  for (int e = 0; e < endpoints; ++e) {
    ExtractOptions extract;
    extract.scheme = scheme_name(scheme);
    extract.trace_label = scenario.name + "-e" + std::to_string(e);
    extract.goodput_window_ms = scenario.goodput_window_ms;
    result.per_endpoint.push_back(extract_run_metrics(
        fleet.framework(e), fleet.cluster(e), workload_models,
        calibrations[static_cast<std::size_t>(e)].get(), extract));

    auto& framework = fleet.framework(e);
    result.unserved += framework.unserved_requests();
    for (const auto model : workload_models) {
      merged_e2e.merge(framework.latency(model).e2e());
      total_latencies += framework.latency(model).count();
      total_completed += framework.slo(model).total();
      total_compliant += framework.slo(model).compliant();
    }
    const auto& combined = result.per_endpoint.back().combined;
    total_violations += combined.slo_violations;
    for (std::size_t cause = 0; cause < causes.size(); ++cause) {
      causes[cause] += combined.violations_by_cause[cause];
    }
    cost += combined.cost;
    power += combined.average_power;
    gpu_util += combined.gpu_utilization;
    cpu_util += combined.cpu_utilization;
    cold_starts += combined.cold_starts;
  }

  telemetry::RunMetrics& fleet_row = result.combined;
  fleet_row.scheme = scheme_name(scheme);
  fleet_row.workload = "fleet";
  fleet_row.trace = scenario.name + "-fleet";
  fleet_row.requests = total_completed;
  fleet_row.slo_compliance =
      total_completed == 0 ? 1.0
                           : static_cast<double>(total_compliant) /
                                 static_cast<double>(total_completed);
  fleet_row.mean_latency_ms = merged_e2e.mean();
  const double merged_qs[] = {0.5, 0.95, 0.99};
  const auto merged_percentiles = merged_e2e.quantiles(merged_qs);
  fleet_row.p50_latency_ms = merged_percentiles[0];
  fleet_row.p95_latency_ms = merged_percentiles[1];
  fleet_row.p99_latency_ms = merged_percentiles[2];
  fleet_row.slo_violations = total_violations;
  fleet_row.violations_by_cause = causes;
  fleet_row.cost = cost;
  fleet_row.cold_starts = cold_starts;
  // Power sums across endpoints (they hold disjoint nodes); utilization is
  // the across-endpoint mean.
  fleet_row.average_power = power;
  fleet_row.gpu_utilization = endpoints == 0 ? 0.0 : gpu_util / endpoints;
  fleet_row.cpu_utilization = endpoints == 0 ? 0.0 : cpu_util / endpoints;
  (void)total_latencies;

  return result;
}

}  // namespace paldia::exp
