// Aggregation across repetitions, following the paper's Section VI rule:
// report means with samples beyond 2.5 standard deviations from the mean
// dropped. (The violation-attribution fields use a plain mean instead so
// per-cause counts keep summing to the violation total.)
#pragma once

#include <iosfwd>
#include <vector>

#include "src/exp/runner.hpp"

namespace paldia::exp {

/// Field-wise outlier-filtered mean of per-repetition metrics. String
/// fields and the CDF come from the first repetition.
telemetry::RunMetrics aggregate_metrics(const std::vector<telemetry::RunMetrics>& runs);

/// Aggregate whole results (combined + each workload slot).
RunResult aggregate_runs(const std::vector<RunResult>& repetitions);

/// Per-workload SLO-compliance table plus the violation-cause totals of the
/// combined row: one row per workload (requests, compliance, violations,
/// dominant causes), then a cause-total line. Counts are per-repetition
/// means, so fractional values are expected with --reps > 1.
void print_compliance_summary(std::ostream& out, const RunResult& result);

}  // namespace paldia::exp
