// Aggregation across repetitions, following the paper's Section VI rule:
// report means with samples beyond 2.5 standard deviations from the mean
// dropped.
#pragma once

#include <vector>

#include "src/exp/runner.hpp"

namespace paldia::exp {

/// Field-wise outlier-filtered mean of per-repetition metrics. String
/// fields and the CDF come from the first repetition.
telemetry::RunMetrics aggregate_metrics(const std::vector<telemetry::RunMetrics>& runs);

/// Aggregate whole results (combined + each workload slot).
RunResult aggregate_runs(const std::vector<RunResult>& repetitions);

}  // namespace paldia::exp
