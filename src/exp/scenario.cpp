#include "src/exp/scenario.hpp"

#include "src/models/zoo.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {

Rps paper_peak_rps(models::ModelId model) {
  const auto& spec = models::Zoo::instance().spec(model);
  if (spec.domain == models::Domain::kLanguage) return 8.0;
  return spec.high_fbr ? 225.0 : 450.0;
}

Scenario azure_scenario(models::ModelId model, int repetitions) {
  Scenario scenario;
  scenario.name = "azure";
  trace::AzureOptions options;
  options.peak_rps = paper_peak_rps(model);
  scenario.workloads.push_back(WorkloadSpec{model, trace::make_azure_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

Scenario wiki_scenario(models::ModelId model, int repetitions) {
  Scenario scenario;
  scenario.name = "wikipedia";
  trace::WikiOptions options;  // 170 rps peak, compressed days
  scenario.workloads.push_back(WorkloadSpec{model, trace::make_wiki_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

Scenario twitter_scenario(models::ModelId model, int repetitions) {
  Scenario scenario;
  scenario.name = "twitter";
  trace::TwitterOptions options;  // 5x the Azure mean, erratic
  scenario.workloads.push_back(WorkloadSpec{model, trace::make_twitter_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

Scenario poisson_scenario(models::ModelId model, Rps mean_rps, int repetitions) {
  Scenario scenario;
  scenario.name = "poisson";
  trace::PoissonOptions options;
  options.mean_rps = mean_rps;
  scenario.workloads.push_back(WorkloadSpec{model, trace::make_poisson_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

Scenario llm_scenario(models::ModelId model, int repetitions) {
  Scenario scenario;
  scenario.name = "azure-llm";
  trace::AzureOptions options;
  options.peak_rps = paper_peak_rps(model);  // 8 rps for language models
  scenario.workloads.push_back(WorkloadSpec{model, trace::make_azure_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

}  // namespace paldia::exp
