// Builds the evaluated schemes (Section V) as SchedulerPolicy objects.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/common/thread_pool.hpp"
#include "src/core/scheduler_policy.hpp"
#include "src/exp/scenario.hpp"

namespace paldia::exp {

enum class SchemeId {
  kPaldia,
  kInflessLlamaCost,   // INFless/Llama ($)
  kInflessLlamaPerf,   // INFless/Llama (P)
  kMoleculeCost,       // Molecule (beta) ($)
  kMoleculePerf,       // Molecule (beta) (P)
  kOracle,
  kOfflineHybrid,      // Fig. 1: fixed M60, offline-swept split
  kMpsOnlyPerf,        // Fig. 1: MPS Only (P) — pinned V100, all spatial
  kMpsOnlyCost,        // Fig. 1: MPS Only ($) — pinned M60, all spatial
  kTimeSharedPerf,     // Fig. 1: Time Shared Only (P)
  kTimeSharedCost,     // Fig. 1: Time Shared Only ($)
};

std::string scheme_name(SchemeId id);

/// The paper's five main-evaluation schemes in figure order.
std::vector<SchemeId> main_schemes();

struct SchemeFactoryOptions {
  /// Split for Offline Hybrid (determined by the offline sweep).
  double offline_spatial_fraction = 0.5;
  /// Scheduler-side contention coefficient for Paldia/Oracle.
  double tmax_beta = 0.2;
  /// Memoize Eq. 1 sweeps in Paldia/Oracle. false = bypass mode (identical
  /// lookups/counters, always recompute) — the --no-tmax-cache reference.
  bool tmax_cache = true;
  /// Pool request-path buffers in the per-repetition arena. false = the
  /// --no-request-pool reference: same block API, every buffer dropped on
  /// release — exports must stay byte-identical either way.
  bool request_pool = true;
  /// Event shards per simulation (--shards). 1 = serial drain; higher
  /// values shard node-group events under the conservative-lookahead epochs
  /// (see src/sim/simulator.hpp) — exports must stay byte-identical.
  int shards = 1;
  /// Lifecycle trace sampling (--sample-rate): keep every SLO-violating
  /// request plus a deterministic 1-in-N of compliant ones (1 = keep all).
  /// Report counts stay exact via sampled_out counters; the sampled exports
  /// stay byte-identical across --threads and --shards.
  std::uint32_t sample_rate = 1;
  /// SLO objective for the health engine's error budget (--slo-target):
  /// budget = 1 - slo_target; burn rate = violation fraction / budget.
  double slo_target = 0.999;
  /// Burn-rate alert windows (--burn-windows=fast,slow in ms): the SRE-style
  /// multi-window rule fires only when both breach the threshold.
  DurationMs burn_fast_ms = 60'000.0;
  DurationMs burn_slow_ms = 600'000.0;
  /// Pruned Algorithm 1 candidate sweep in Paldia/Oracle. false = the
  /// --no-prune reference: exhaustive linear enumeration — choices and
  /// exports must stay byte-identical either way.
  bool prune = true;
};

class SchemeFactory {
 public:
  SchemeFactory(const models::Zoo& zoo, const hw::Catalog& catalog,
                const models::ProfileTable& profile, ThreadPool* pool = nullptr,
                SchemeFactoryOptions options = {});

  std::unique_ptr<core::SchedulerPolicy> make(SchemeId id) const;

  /// Starting node for the scheme (P variants start on the V100; the rest
  /// on the cheapest CPU node, converging via their selection policy).
  hw::NodeType initial_node(SchemeId id) const;

  const SchemeFactoryOptions& options() const { return options_; }

 private:
  const models::Zoo* zoo_;
  const hw::Catalog* catalog_;
  const models::ProfileTable* profile_;
  ThreadPool* pool_;
  SchemeFactoryOptions options_;
};

}  // namespace paldia::exp
