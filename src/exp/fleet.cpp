#include "src/exp/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "src/common/rng.hpp"
#include "src/core/hardware_selection.hpp"
#include "src/perfmodel/tmax_cache.hpp"
#include "src/perfmodel/tmax_model.hpp"
#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::exp {

namespace {

void digest_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes; byte-exact, so any drift between the
  // pruned and linear modes (node, split, or even a t_max ulp) changes it.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

std::vector<std::vector<FleetDemand>> build_fleet_schedule(
    const FleetConfig& config, const models::Zoo& zoo) {
  const int endpoints = std::max(1, config.endpoints);
  const int ticks = std::max(1, config.ticks);
  const auto all_models = zoo.all();
  const int model_count = static_cast<int>(all_models.size());

  Rng root(config.seed);
  std::vector<std::vector<FleetDemand>> schedule(
      static_cast<std::size_t>(endpoints));
  for (int e = 0; e < endpoints; ++e) {
    Rng rng = root.fork("fleet-endpoint-" + std::to_string(e));
    // 1-3 co-resident models per endpoint; distinct model ids so the
    // selection's per-model max is meaningful.
    const int resident = static_cast<int>(rng.uniform_int(1, 3));
    std::vector<models::ModelId> residents;
    for (int m = 0; m < resident; ++m) {
      const auto id = static_cast<models::ModelId>(
          (e + m * 5) % model_count);  // stride keeps pairs varied
      residents.push_back(id);
    }
    // Multiplicative random-walk rate per model around a model-scaled base:
    // heavier models run at lower offered rates, like a production mix.
    std::vector<double> rate(residents.size());
    for (std::size_t m = 0; m < residents.size(); ++m) {
      const auto& spec = zoo.spec(residents[m]);
      const double base = 400.0 / std::max(1.0, spec.slo_ms / 50.0);
      rate[m] = base * rng.lognormal(0.0, 0.5);
    }
    auto& timeline = schedule[static_cast<std::size_t>(e)];
    timeline.resize(static_cast<std::size_t>(ticks));
    for (int t = 0; t < ticks; ++t) {
      auto& demand = timeline[static_cast<std::size_t>(t)].models;
      demand.reserve(residents.size());
      for (std::size_t m = 0; m < residents.size(); ++m) {
        rate[m] = std::clamp(rate[m] * std::exp(rng.normal(0.0, 0.18)),
                             0.25, 4000.0);
        core::DemandSnapshot snapshot;
        snapshot.model = residents[m];
        snapshot.observed_rps = rate[m];
        // Prediction wobbles around the walk (the fleet driver has no
        // predictor; the wobble stands in for its error).
        snapshot.predicted_rps = rate[m] * rng.lognormal(0.0, 0.10);
        snapshot.smoothed_rps = rate[m];
        const double burst = rng.uniform();
        snapshot.backlog = static_cast<int>(
            std::min(512.0, rate[m] * 0.05 * burst + (burst > 0.97 ? 32.0 : 0.0)));
        demand.push_back(snapshot);
      }
    }
  }
  return schedule;
}

FleetResult run_fleet(const FleetConfig& config,
                      const std::vector<std::vector<FleetDemand>>& schedule,
                      const models::Zoo& zoo, const hw::Catalog& catalog,
                      const models::ProfileTable& profile, ThreadPool* pool) {
  core::HardwareSelectionConfig selection_config;
  selection_config.slo_headroom = config.slo_headroom;
  selection_config.prune = config.prune;
  perfmodel::YOptimizer optimizer{perfmodel::TmaxModel{}, pool};
  core::HardwareSelection selection(zoo, catalog, profile, optimizer, pool,
                                    selection_config);
  // Same memoization the production policy attaches; the cache only changes
  // wall-clock time, never results, so the digest is cache-agnostic.
  perfmodel::TmaxCache cache;
  selection.set_tmax_cache(&cache);

  FleetResult result;
  result.endpoints = static_cast<int>(schedule.size());
  result.ticks = schedule.empty() ? 0 : static_cast<int>(schedule.front().size());
  result.catalog_size = static_cast<int>(catalog.size());
  result.choice_digest = 0xcbf29ce484222325ull;

  double cost_sum = 0.0;
  std::int64_t sweep_pool = 0;
  std::int64_t sweep_evaluated = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& timeline : schedule) {
    for (const auto& tick : timeline) {
      // No sweep record: the timed loop runs the lazy pruned walk (or the
      // plain linear sweep under --no-prune) — the production hot path.
      const core::HardwareChoice choice = selection.choose(tick.models, nullptr);
      ++result.choices;
      if (choice.feasible) ++result.feasible;
      const auto& spec = catalog.spec(choice.node);
      if (!spec.is_gpu()) ++result.cpu_choices;
      cost_sum += spec.price_per_hour;
      digest_mix(result.choice_digest,
                 static_cast<std::uint64_t>(hw::node_index(choice.node)));
      digest_mix(result.choice_digest, static_cast<std::uint64_t>(choice.best_y));
      digest_mix(result.choice_digest, double_bits(choice.t_max_ms));
      digest_mix(result.choice_digest, choice.feasible ? 1u : 0u);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Sweep-work accounting in a second pass over a sample of ticks (recorded
  // mode evaluates the full pool, so running it inside the timed loop would
  // both slow the fleet and measure the wrong thing). One tick per endpoint
  // keeps it cheap while covering every demand shape.
  for (const auto& timeline : schedule) {
    if (timeline.empty()) continue;
    core::SelectionSweep sweep;
    (void)selection.choose(timeline[timeline.size() / 2].models, &sweep);
    sweep_pool += sweep.pool_size;
    sweep_evaluated += sweep.evaluated;
  }
  result.pool_candidates = sweep_pool;
  result.evaluated = sweep_evaluated;

  if (result.ticks > 0) {
    result.fleet_cost_per_hour = cost_sum / result.ticks;
  }
  if (result.choices > 0) {
    result.slo_attainment =
        static_cast<double>(result.feasible) / static_cast<double>(result.choices);
    result.micros_per_choice =
        std::chrono::duration<double, std::micro>(elapsed).count() /
        static_cast<double>(result.choices);
  }
  return result;
}

FleetResult run_fleet(const FleetConfig& config, const models::Zoo& zoo,
                      const hw::Catalog& catalog,
                      const models::ProfileTable& profile, ThreadPool* pool) {
  return run_fleet(config, build_fleet_schedule(config, zoo), zoo, catalog,
                   profile, pool);
}

}  // namespace paldia::exp
