#include "src/exp/runner.hpp"

#include <algorithm>

#include "src/baselines/oracle.hpp"
#include "src/exp/summary.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/telemetry/cost_tracker.hpp"
#include "src/trace/trace_ops.hpp"

namespace paldia::exp {

Runner::Runner(const models::Zoo& zoo, const hw::Catalog& catalog, ThreadPool* pool,
               SchemeFactoryOptions options)
    : zoo_(&zoo),
      catalog_(&catalog),
      profile_(catalog),
      factory_(zoo, catalog, profile_, pool, options),
      pool_(pool) {}

RunResult Runner::run_once(const Scenario& scenario, SchemeId scheme,
                           std::uint64_t seed, bool keep_cdf,
                           obs::Tracer* tracer, obs::RollupAggregator* rollup,
                           obs::Profiler* profiler,
                           obs::HealthEngine* health) const {
  sim::ShardOptions shard_options;
  shard_options.shards = factory_.options().shards;
  // The task-group executor is nestable, so per-shard extraction may run
  // inside a rep-level parallel_for worker. Exports are identical with or
  // without the pool — the sharded drain is deterministic by design.
  shard_options.pool = pool_;
  sim::Simulator simulator(shard_options);
  Rng rng(seed);
  cluster::Cluster cluster(simulator, rng.fork("cluster"), *zoo_, *catalog_);

  auto policy = factory_.make(scheme);
  if (auto* oracle = dynamic_cast<baselines::OraclePolicy*>(policy.get())) {
    for (const auto& workload : scenario.workloads) {
      oracle->reveal_trace(workload.model, workload.trace);
    }
  }

  core::FrameworkConfig config = scenario.framework;
  if (!config.initial_node.has_value()) {
    config.initial_node = factory_.initial_node(scheme);
  }
  config.tracer = tracer;
  config.request_pool = factory_.options().request_pool;
  config.rollup = rollup;
  config.profiler = profiler;
  config.health = health;

  // Violation attribution runs on every repetition (it feeds the per-cause
  // RunMetrics); calibration needs the tracer's decision sweeps, but the
  // tracker itself is harmless without them.
  obs::AttributionEngine attribution(*zoo_);
  obs::CalibrationTracker::Config calibration_config;
  if (!scenario.workloads.empty()) {
    calibration_config.slo_ms = kTimeNever;
    for (const auto& workload : scenario.workloads) {
      calibration_config.slo_ms = std::min(calibration_config.slo_ms,
                                           zoo_->spec(workload.model).slo_ms);
    }
  }
  obs::CalibrationTracker calibration(calibration_config);
  config.attribution = &attribution;
  config.calibration = &calibration;
  core::Framework framework(simulator, cluster, std::move(policy),
                            rng.fork("framework"), *zoo_, config);
  for (const auto& workload : scenario.workloads) {
    framework.add_workload(workload.model, workload.trace);
  }
  if (scenario.failures) framework.enable_failures(*scenario.failures);
  if (!scenario.coresidents.empty()) {
    framework.enable_host_interference(scenario.coresidents);
  }

  framework.run();

  ExtractOptions extract;
  extract.scheme = scheme_name(scheme);
  extract.trace_label = scenario.name;
  extract.goodput_window_ms = scenario.goodput_window_ms;
  extract.keep_cdf = keep_cdf;
  std::vector<models::ModelId> workload_models;
  workload_models.reserve(scenario.workloads.size());
  for (const auto& workload : scenario.workloads) {
    workload_models.push_back(workload.model);
  }
  return extract_run_metrics(framework, cluster, workload_models, &calibration,
                             extract);
}

RunResult extract_run_metrics(core::Framework& framework,
                              cluster::Cluster& cluster,
                              const std::vector<models::ModelId>& workloads,
                              obs::CalibrationTracker* calibration,
                              const ExtractOptions& options) {
  RunResult result;
  Histogram merged_e2e;
  telemetry::TailBreakdown combined_breakdown;
  std::uint64_t total_requests = 0, total_compliant = 0, total_completed = 0;

  for (const auto model : workloads) {
    const auto& latency = framework.latency(model);
    const auto& slo = framework.slo(model);
    telemetry::RunMetrics metrics;
    metrics.scheme = options.scheme;
    metrics.workload = std::string(models::model_id_name(model));
    metrics.trace = options.trace_label;
    metrics.requests = slo.total();
    metrics.slo_compliance = slo.compliance();
    metrics.mean_latency_ms = latency.mean_ms();
    const auto percentiles = latency.percentiles();  // one histogram scan
    metrics.p50_latency_ms = percentiles.p50_ms;
    metrics.p95_latency_ms = percentiles.p95_ms;
    metrics.p99_latency_ms = percentiles.p99_ms;
    metrics.p99_breakdown = latency.breakdown_at(0.99);

    // The goodput window covers the busiest span *including its ramp* —
    // surge-onset violations land on the rising edge, just before the peak
    // itself (Fig. 7a measures "periods of highest request traffic").
    auto window = trace::busiest_window(framework.workload_trace(model),
                                        options.goodput_window_ms);
    window.start_ms = std::max(0.0, window.start_ms - options.goodput_window_ms);
    metrics.goodput_rps = slo.goodput_rps(window.start_ms, window.end_ms);
    metrics.offered_rps = slo.arrival_rps(window.start_ms, window.end_ms);
    metrics.slo_violations = static_cast<double>(slo.violations());
    for (int cause = 0; cause < telemetry::kViolationCauseCount; ++cause) {
      metrics.violations_by_cause[static_cast<std::size_t>(cause)] =
          static_cast<double>(
              slo.violation_causes()[static_cast<std::size_t>(cause)]);
    }
    if (options.keep_cdf) metrics.latency_cdf = latency.cdf();

    merged_e2e.merge(latency.e2e());
    const auto weight = static_cast<double>(latency.count());
    combined_breakdown.latency_ms += metrics.p99_breakdown.latency_ms * weight;
    combined_breakdown.solo_ms += metrics.p99_breakdown.solo_ms * weight;
    combined_breakdown.queue_ms += metrics.p99_breakdown.queue_ms * weight;
    combined_breakdown.interference_ms +=
        metrics.p99_breakdown.interference_ms * weight;
    combined_breakdown.cold_start_ms += metrics.p99_breakdown.cold_start_ms * weight;
    total_requests += latency.count();
    total_compliant += slo.compliant();
    total_completed += slo.total();

    result.per_workload.push_back(std::move(metrics));
  }

  telemetry::RunMetrics combined = result.per_workload.front();
  combined.workload = workloads.size() == 1
                          ? result.per_workload.front().workload
                          : "combined";
  combined.requests = total_completed;
  combined.slo_compliance =
      total_completed == 0
          ? 1.0
          : static_cast<double>(total_compliant) / static_cast<double>(total_completed);
  combined.mean_latency_ms = merged_e2e.mean();
  const double merged_qs[] = {0.5, 0.95, 0.99};
  const auto merged_percentiles = merged_e2e.quantiles(merged_qs);
  combined.p50_latency_ms = merged_percentiles[0];
  combined.p95_latency_ms = merged_percentiles[1];
  combined.p99_latency_ms = merged_percentiles[2];
  if (total_requests > 0) {
    const auto weight = static_cast<double>(total_requests);
    combined.p99_breakdown = telemetry::TailBreakdown{
        combined_breakdown.latency_ms / weight, combined_breakdown.solo_ms / weight,
        combined_breakdown.queue_ms / weight,
        combined_breakdown.interference_ms / weight,
        combined_breakdown.cold_start_ms / weight, total_requests};
  }

  telemetry::CostTracker cost(cluster);
  combined.cost = cost.total();
  combined.average_power = framework.power().average_power();
  combined.gpu_utilization = framework.util().gpu_utilization();
  combined.cpu_utilization = framework.util().cpu_utilization();
  combined.cold_starts = cluster.total_cold_starts();

  // Attribution/calibration roll-ups: the combined violation count is the
  // per-workload sum (classification is exhaustive, so the per-cause counts
  // sum back to it); calibration is framework-wide, mirrored into every
  // workload row like the other shared columns.
  combined.slo_violations = 0.0;
  combined.violations_by_cause.fill(0.0);
  for (const auto& per_workload : result.per_workload) {
    combined.slo_violations += per_workload.slo_violations;
    for (std::size_t cause = 0; cause < combined.violations_by_cause.size();
         ++cause) {
      combined.violations_by_cause[cause] += per_workload.violations_by_cause[cause];
    }
  }
  if (calibration != nullptr) {
    const obs::CalibrationSummary calibration_summary = calibration->finalize();
    combined.tmax_mape = calibration_summary.tmax_mape;
    combined.tmax_coverage = calibration_summary.tmax_coverage;
    combined.rate_mape = calibration_summary.rate.mape;
    combined.calib_intervals =
        static_cast<double>(calibration_summary.intervals_total);
  }

  // Sweep-memoization totals are policy-wide (the cache is shared across
  // workloads), mirrored into every row like the other shared columns.
  const perfmodel::TmaxCacheStats cache_stats =
      framework.policy().tmax_cache_stats();
  combined.tmax_cache_hits = static_cast<double>(cache_stats.hits);
  combined.tmax_cache_misses = static_cast<double>(cache_stats.misses);
  combined.tmax_cache_hit_rate = cache_stats.hit_rate();

  for (auto& per_workload : result.per_workload) {
    per_workload.cost = combined.cost;
    per_workload.average_power = combined.average_power;
    per_workload.gpu_utilization = combined.gpu_utilization;
    per_workload.cpu_utilization = combined.cpu_utilization;
    per_workload.cold_starts = combined.cold_starts;
    per_workload.tmax_mape = combined.tmax_mape;
    per_workload.tmax_coverage = combined.tmax_coverage;
    per_workload.rate_mape = combined.rate_mape;
    per_workload.calib_intervals = combined.calib_intervals;
    per_workload.tmax_cache_hits = combined.tmax_cache_hits;
    per_workload.tmax_cache_misses = combined.tmax_cache_misses;
    per_workload.tmax_cache_hit_rate = combined.tmax_cache_hit_rate;
  }
  result.combined = std::move(combined);
  return result;
}

RunResult Runner::run(const Scenario& scenario, SchemeId scheme, bool keep_cdf) const {
  std::vector<RunResult> repetitions(static_cast<std::size_t>(scenario.repetitions));
  auto run_rep = [&](std::size_t rep) {
    const std::uint64_t seed =
        scenario.base_seed + 0x9e3779b9ull * static_cast<std::uint64_t>(rep + 1) +
        static_cast<std::uint64_t>(scheme) * 0x51ull;
    repetitions[rep] = run_once(scenario, scheme, seed, keep_cdf && rep == 0);
  };
  // Repetitions are independent simulations (per-rep seed, all mutable state
  // local to run_once), so they can run concurrently. Each result lands in
  // its slot and the outlier-filtered aggregation sees the serial order —
  // the metrics are bit-identical with and without the pool.
  if (pool_ != nullptr && repetitions.size() > 1) {
    pool_->parallel_for(repetitions.size(), run_rep);
  } else {
    for (std::size_t rep = 0; rep < repetitions.size(); ++rep) run_rep(rep);
  }
  return aggregate_runs(repetitions);
}

RunResult Runner::run(const Scenario& scenario, SchemeId scheme, obs::RunTrace& trace,
                      bool keep_cdf) const {
  const auto reps = static_cast<std::size_t>(scenario.repetitions);
  std::vector<RunResult> repetitions(reps);
  // Observation slots are allocated up front, one per repetition, so
  // concurrent repetitions never share state and exporters can walk the
  // slots in repetition order regardless of which thread filled them.
  trace.config.sample_rate = factory_.options().sample_rate;
  // The health detectors take their SLO budget and burn windows from the
  // factory options (the --slo-target / --burn-windows flags are the single
  // knobs); the remaining HealthConfig fields keep the trace's values.
  trace.health_config.slo_target = factory_.options().slo_target;
  trace.health_config.fast_window_ms = factory_.options().burn_fast_ms;
  trace.health_config.slow_window_ms = factory_.options().burn_slow_ms;
  trace.reps.clear();
  trace.rollups.clear();
  trace.profiles.clear();
  trace.healths.clear();
  if (trace.capture_events) {
    trace.reps.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      trace.reps.push_back(std::make_unique<obs::Tracer>(trace.config));
    }
  }
  if (trace.collect_rollups) {
    trace.rollups.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      trace.rollups.push_back(
          std::make_unique<obs::RollupAggregator>(trace.rollup_config));
    }
  }
  if (trace.profile) {
    trace.profiles.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      trace.profiles.push_back(std::make_unique<obs::Profiler>());
    }
  }
  if (trace.collect_health) {
    trace.healths.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      trace.healths.push_back(
          std::make_unique<obs::HealthEngine>(trace.health_config));
    }
  }
  auto run_rep = [&](std::size_t rep) {
    const std::uint64_t seed =
        scenario.base_seed + 0x9e3779b9ull * static_cast<std::uint64_t>(rep + 1) +
        static_cast<std::uint64_t>(scheme) * 0x51ull;
    repetitions[rep] =
        run_once(scenario, scheme, seed, keep_cdf && rep == 0,
                 trace.capture_events ? trace.reps[rep].get() : nullptr,
                 trace.collect_rollups ? trace.rollups[rep].get() : nullptr,
                 trace.profile ? trace.profiles[rep].get() : nullptr,
                 trace.collect_health ? trace.healths[rep].get() : nullptr);
  };
  if (pool_ != nullptr && repetitions.size() > 1) {
    pool_->parallel_for(repetitions.size(), run_rep);
  } else {
    for (std::size_t rep = 0; rep < repetitions.size(); ++rep) run_rep(rep);
  }
  return aggregate_runs(repetitions);
}

double sweep_offline_spatial_fraction(const Scenario& scenario, int steps) {
  // Pilot sweep: evaluate each candidate split with a single repetition and
  // keep the one with the highest overall SLO compliance (ties -> lower
  // tail latency), exactly how the paper's Offline Hybrid was tuned.
  double best_fraction = 0.5;
  double best_compliance = -1.0;
  double best_p99 = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double fraction = static_cast<double>(i) / steps;
    SchemeFactoryOptions options;
    options.offline_spatial_fraction = fraction;
    Runner pilot(models::Zoo::instance(), hw::Catalog::instance(), nullptr, options);
    const auto result =
        pilot.run_once(scenario, SchemeId::kOfflineHybrid, scenario.base_seed);
    const double compliance = result.combined.slo_compliance;
    if (compliance > best_compliance ||
        (compliance == best_compliance && result.combined.p99_latency_ms < best_p99)) {
      best_compliance = compliance;
      best_p99 = result.combined.p99_latency_ms;
      best_fraction = fraction;
    }
  }
  return best_fraction;
}

}  // namespace paldia::exp
