// Request arrival traces.
//
// A Trace stores arrival *counts per fixed epoch* (default 100 ms) rather
// than individual timestamps: the simulator spreads each epoch's requests
// uniformly inside the epoch, which keeps 5-day traces tractable while
// preserving the arrival dynamics every scheduler in this repo reacts to
// (burstiness, diurnality, erraticness). See DESIGN.md section 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.hpp"

namespace paldia::trace {

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, DurationMs epoch_ms, std::vector<std::uint32_t> counts);

  const std::string& name() const { return name_; }
  DurationMs epoch_ms() const { return epoch_ms_; }
  std::size_t epoch_count() const { return counts_.size(); }
  const std::vector<std::uint32_t>& counts() const { return counts_; }

  std::uint32_t count_at(std::size_t epoch) const { return counts_[epoch]; }
  DurationMs duration_ms() const { return epoch_ms_ * static_cast<double>(counts_.size()); }
  std::uint64_t total_requests() const;

  /// Mean arrival rate over the whole trace, requests/s.
  Rps mean_rps() const;

  /// Peak arrival rate over a sliding window (default 1 s), requests/s.
  Rps peak_rps(DurationMs window_ms = 1000.0) const;

  /// Arrival rate of the window starting at `t`, requests/s.
  Rps rate_at(TimeMs t, DurationMs window_ms = 1000.0) const;

 private:
  std::string name_;
  DurationMs epoch_ms_ = 100.0;
  std::vector<std::uint32_t> counts_;
};

}  // namespace paldia::trace
