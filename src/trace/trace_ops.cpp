#include "src/trace/trace_ops.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::trace {

Trace from_rate_profile(std::string name, DurationMs epoch_ms,
                        const std::vector<double>& rates_rps, Rng& rng) {
  std::vector<std::uint32_t> counts(rates_rps.size());
  const double epoch_s = epoch_ms / kMsPerSecond;
  for (std::size_t i = 0; i < rates_rps.size(); ++i) {
    counts[i] = static_cast<std::uint32_t>(rng.poisson(std::max(0.0, rates_rps[i]) * epoch_s));
  }
  return Trace(std::move(name), epoch_ms, std::move(counts));
}

double profile_peak_rps(const std::vector<double>& rates_rps, DurationMs epoch_ms,
                        DurationMs window_ms) {
  const auto span =
      std::max<std::size_t>(1, static_cast<std::size_t>(window_ms / epoch_ms));
  if (rates_rps.empty()) return 0.0;
  double window_sum = 0.0;
  double best = 0.0;
  for (std::size_t i = 0; i < rates_rps.size(); ++i) {
    window_sum += rates_rps[i];
    if (i >= span) window_sum -= rates_rps[i - span];
    best = std::max(best, window_sum);
  }
  return best / static_cast<double>(std::min(span, rates_rps.size()));
}

void scale_rates_to_peak(std::vector<double>& rates_rps, DurationMs epoch_ms,
                         Rps target_peak_rps) {
  const double peak = profile_peak_rps(rates_rps, epoch_ms);
  if (peak <= 0.0) return;
  const double factor = target_peak_rps / peak;
  for (double& rate : rates_rps) rate *= factor;
}

void scale_rates_to_mean(std::vector<double>& rates_rps, Rps target_mean_rps) {
  if (rates_rps.empty()) return;
  double total = 0.0;
  for (double rate : rates_rps) total += rate;
  const double mean = total / static_cast<double>(rates_rps.size());
  if (mean <= 0.0) return;
  const double factor = target_mean_rps / mean;
  for (double& rate : rates_rps) rate *= factor;
}

Trace scale_counts(const Trace& input, double factor, Rng& rng) {
  std::vector<std::uint32_t> counts(input.epoch_count());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double scaled = input.count_at(i) * factor;
    const double floor_part = std::floor(scaled);
    double value = floor_part;
    if (rng.uniform() < scaled - floor_part) value += 1.0;
    counts[i] = static_cast<std::uint32_t>(value);
  }
  return Trace(input.name(), input.epoch_ms(), std::move(counts));
}

Trace scale_to_peak(const Trace& input, Rps target_peak_rps, Rng& rng) {
  const Rps current = input.peak_rps();
  if (current <= 0.0) return input;
  return scale_counts(input, target_peak_rps / current, rng);
}

Trace scale_to_mean(const Trace& input, Rps target_mean_rps, Rng& rng) {
  const Rps current = input.mean_rps();
  if (current <= 0.0) return input;
  return scale_counts(input, target_mean_rps / current, rng);
}

Window busiest_window(const Trace& input, DurationMs span_ms) {
  const auto span = std::max<std::size_t>(
      1, static_cast<std::size_t>(span_ms / input.epoch_ms()));
  const auto& counts = input.counts();
  if (counts.empty()) return Window{};
  std::uint64_t sum = 0;
  std::uint64_t best = 0;
  std::size_t best_end = std::min(span, counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    sum += counts[i];
    if (i >= span) sum -= counts[i - span];
    if (sum > best) {
      best = sum;
      best_end = i + 1;
    }
  }
  const std::size_t begin = best_end > span ? best_end - span : 0;
  return Window{begin * input.epoch_ms(), best_end * input.epoch_ms()};
}

Trace slice(const Trace& input, TimeMs start_ms, TimeMs end_ms) {
  const auto begin = static_cast<std::size_t>(std::max(0.0, start_ms) / input.epoch_ms());
  const auto end = std::min<std::size_t>(
      input.epoch_count(), static_cast<std::size_t>(std::max(0.0, end_ms) / input.epoch_ms()));
  std::vector<std::uint32_t> counts;
  counts.reserve(end > begin ? end - begin : 0);
  for (std::size_t i = begin; i < end; ++i) counts.push_back(input.count_at(i));
  return Trace(input.name() + "[slice]", input.epoch_ms(), std::move(counts));
}

}  // namespace paldia::trace
