#include "src/trace/csv_io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/common/csv.hpp"

namespace paldia::trace {

void write_csv(const Trace& trace, std::ostream& out) {
  CsvWriter writer(out);
  writer.header({"epoch_ms", "count"});
  for (std::size_t i = 0; i < trace.epoch_count(); ++i) {
    writer.row({CsvWriter::cell(static_cast<double>(i) * trace.epoch_ms()),
                CsvWriter::cell(static_cast<std::int64_t>(trace.count_at(i)))});
  }
}

void write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(trace, out);
}

Trace read_csv(std::string_view text, std::string name) {
  const CsvTable table = parse_csv(text);
  const std::size_t time_column = table.column_index("epoch_ms");
  const std::size_t count_column = table.column_index("count");
  if (time_column == static_cast<std::size_t>(-1) ||
      count_column == static_cast<std::size_t>(-1)) {
    throw std::runtime_error("trace CSV needs 'epoch_ms' and 'count' columns");
  }

  std::vector<double> times;
  std::vector<std::uint32_t> counts;
  for (const auto& row : table.rows) {
    if (row.size() <= std::max(time_column, count_column)) {
      throw std::runtime_error("trace CSV row too short");
    }
    std::size_t consumed = 0;
    double t = 0.0;
    long count = 0;
    try {
      t = std::stod(row[time_column], &consumed);
      if (consumed != row[time_column].size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric epoch_ms: " + row[time_column]);
    }
    try {
      count = std::stol(row[count_column], &consumed);
      if (consumed != row[count_column].size()) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::runtime_error("bad count: " + row[count_column]);
    }
    if (count < 0) throw std::runtime_error("bad count: " + row[count_column]);
    times.push_back(t);
    counts.push_back(static_cast<std::uint32_t>(count));
  }
  if (counts.empty()) return Trace(std::move(name), 100.0, {});

  double epoch_ms = 100.0;
  if (times.size() >= 2) {
    epoch_ms = times[1] - times[0];
    if (epoch_ms <= 0.0) throw std::runtime_error("epoch_ms must increase");
    for (std::size_t i = 2; i < times.size(); ++i) {
      const double spacing = times[i] - times[i - 1];
      if (std::abs(spacing - epoch_ms) > 0.01 * epoch_ms) {
        throw std::runtime_error("inconsistent epoch spacing in trace CSV");
      }
    }
  }
  return Trace(std::move(name), epoch_ms, std::move(counts));
}

Trace read_csv_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace CSV: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_csv(buffer.str(), path);
}

}  // namespace paldia::trace
