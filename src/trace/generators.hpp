// Synthetic trace generators reproducing the published statistics of the
// paper's four arrival patterns (Section V "Request Traces" and VI-B):
//
//  * Azure serverless sample — ~25 min, large peak-to-mean ratio (~673:55,
//    i.e. ~12.2x), sparse/stable traffic with occasional surges.
//  * Wikipedia — 5-day diurnal pattern with ~16 h/day of sustained high
//    traffic; peak scaled to ~170 rps. Compressible (same shape, shorter
//    days) to keep bench runtime sane.
//  * Twitter — 90 min, erratic (log-rate random walk with jumps), average
//    rate 5x the Azure sample's mean.
//  * Poisson — constant mean rate (the Fig. 13a resource-exhaustion study
//    uses mean ~700 rps).
//
// Every generator is deterministic in its seed.
#pragma once

#include "src/common/rng.hpp"
#include "src/trace/trace.hpp"

namespace paldia::trace {

struct AzureOptions {
  DurationMs duration_ms = minutes(25);
  DurationMs epoch_ms = 100.0;
  Rps peak_rps = 225.0;       // scaled per workload class (225 / 450)
  double peak_to_mean = 12.2; // the paper's ~673:55 ratio
  int surge_count = 4;        // occasional request surges
  std::uint64_t seed = 1;
};
Trace make_azure_trace(const AzureOptions& options);

struct WikiOptions {
  int days = 5;
  /// Simulated length of one "day". The real trace has 86,400 s days; the
  /// default compresses 100:1 (shape-preserving) so that benches finish.
  DurationMs day_length_ms = seconds(864);
  DurationMs epoch_ms = 100.0;
  Rps peak_rps = 170.0;
  double high_hours_per_day = 16.0;  // sustained high-traffic plateau
  double trough_fraction = 0.25;     // night traffic as a fraction of peak
  std::uint64_t seed = 2;
};
Trace make_wiki_trace(const WikiOptions& options);

struct TwitterOptions {
  DurationMs duration_ms = minutes(90);
  DurationMs epoch_ms = 100.0;
  Rps mean_rps = 275.0;  // 5x the Azure sample's mean
  double volatility = 0.45;
  double jump_probability = 0.004;  // per-second probability of a jump
  std::uint64_t seed = 3;
};
Trace make_twitter_trace(const TwitterOptions& options);

struct PoissonOptions {
  DurationMs duration_ms = minutes(5);
  DurationMs epoch_ms = 100.0;
  Rps mean_rps = 700.0;
  std::uint64_t seed = 4;
};
Trace make_poisson_trace(const PoissonOptions& options);

}  // namespace paldia::trace
