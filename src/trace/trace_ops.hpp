// Operations over traces: building from a rate profile, rescaling to hit a
// target peak/mean, slicing, and locating surge windows (used by the
// goodput study, Fig. 7a).
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/trace/trace.hpp"

namespace paldia::trace {

/// Sample a trace from a per-epoch rate profile (requests/s): counts are
/// Poisson(rate * epoch length).
Trace from_rate_profile(std::string name, DurationMs epoch_ms,
                        const std::vector<double>& rates_rps, Rng& rng);

/// Peak of a rate profile over a sliding window (requests/s).
double profile_peak_rps(const std::vector<double>& rates_rps, DurationMs epoch_ms,
                        DurationMs window_ms = 1000.0);

/// Scale a rate profile in place so its sliding-window peak (resp. mean)
/// hits the target. Generators scale *rates* before Poisson sampling —
/// scaling sampled counts instead would multiply the quantisation and turn
/// a smooth arrival process into pathological clumps.
void scale_rates_to_peak(std::vector<double>& rates_rps, DurationMs epoch_ms,
                         Rps target_peak_rps);
void scale_rates_to_mean(std::vector<double>& rates_rps, Rps target_mean_rps);

/// Multiply all counts by a factor, re-sampling fractional remainders so
/// the scaled trace stays integral and unbiased.
Trace scale_counts(const Trace& input, double factor, Rng& rng);

/// Scale so the sliding-1s peak equals target_peak_rps (approximately:
/// counts stay integral).
Trace scale_to_peak(const Trace& input, Rps target_peak_rps, Rng& rng);

/// Scale so the overall mean equals target_mean_rps.
Trace scale_to_mean(const Trace& input, Rps target_mean_rps, Rng& rng);

/// Contiguous [start, end) epoch range with the highest total arrivals over
/// the given span. Returns the time window in ms.
struct Window {
  TimeMs start_ms = 0;
  TimeMs end_ms = 0;
};
Window busiest_window(const Trace& input, DurationMs span_ms);

/// Copy of the [start_ms, end_ms) slice of the trace.
Trace slice(const Trace& input, TimeMs start_ms, TimeMs end_ms);

}  // namespace paldia::trace
