#include <algorithm>
#include <cmath>
#include <vector>

#include "src/trace/generators.hpp"
#include "src/trace/trace_ops.hpp"

namespace paldia::trace {

// Erratic and dense: log-rate follows a mean-reverting random walk with
// occasional multiplicative jumps (retweet cascades), then the whole trace
// is rescaled to the target mean (5x the Azure sample in the paper).
Trace make_twitter_trace(const TwitterOptions& options) {
  Rng rng(options.seed);
  const auto epochs =
      static_cast<std::size_t>(options.duration_ms / options.epoch_ms);
  std::vector<double> rates(epochs, 0.0);

  double log_rate = 0.0;  // log of rate relative to the (unit) mean
  const double reversion = 0.02;
  const double step_sigma = options.volatility * std::sqrt(options.epoch_ms / 1000.0);
  const double jump_per_epoch =
      options.jump_probability * options.epoch_ms / kMsPerSecond;

  for (std::size_t i = 0; i < epochs; ++i) {
    log_rate += -reversion * log_rate + rng.normal(0.0, step_sigma);
    if (rng.bernoulli(jump_per_epoch)) {
      log_rate += rng.uniform(0.5, 1.4) * (rng.bernoulli(0.6) ? 1.0 : -1.0);
    }
    log_rate = std::clamp(log_rate, -2.5, 2.0);
    rates[i] = std::exp(log_rate);
  }

  scale_rates_to_mean(rates, options.mean_rps);
  return from_rate_profile("twitter", options.epoch_ms, rates, rng);
}

}  // namespace paldia::trace
