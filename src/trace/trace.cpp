#include "src/trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paldia::trace {

Trace::Trace(std::string name, DurationMs epoch_ms, std::vector<std::uint32_t> counts)
    : name_(std::move(name)), epoch_ms_(epoch_ms), counts_(std::move(counts)) {
  if (epoch_ms_ <= 0.0) throw std::invalid_argument("epoch_ms must be positive");
}

std::uint64_t Trace::total_requests() const {
  std::uint64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

Rps Trace::mean_rps() const {
  const double duration_s = duration_ms() / kMsPerSecond;
  return duration_s <= 0.0 ? 0.0 : static_cast<double>(total_requests()) / duration_s;
}

Rps Trace::peak_rps(DurationMs window_ms) const {
  const auto window_epochs =
      std::max<std::size_t>(1, static_cast<std::size_t>(window_ms / epoch_ms_));
  if (counts_.empty()) return 0.0;
  std::uint64_t window_sum = 0;
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    window_sum += counts_[i];
    if (i >= window_epochs) window_sum -= counts_[i - window_epochs];
    best = std::max(best, window_sum);
  }
  const double window_s =
      static_cast<double>(std::min(window_epochs, counts_.size())) * epoch_ms_ /
      kMsPerSecond;
  return static_cast<double>(best) / window_s;
}

Rps Trace::rate_at(TimeMs t, DurationMs window_ms) const {
  if (counts_.empty()) return 0.0;
  const auto start = static_cast<std::size_t>(std::max(0.0, t) / epoch_ms_);
  const auto span =
      std::max<std::size_t>(1, static_cast<std::size_t>(window_ms / epoch_ms_));
  std::uint64_t sum = 0;
  std::size_t used = 0;
  for (std::size_t i = start; i < counts_.size() && used < span; ++i, ++used) {
    sum += counts_[i];
  }
  if (used == 0) return 0.0;
  const double window_s = static_cast<double>(used) * epoch_ms_ / kMsPerSecond;
  return static_cast<double>(sum) / window_s;
}

}  // namespace paldia::trace
