#include <vector>

#include "src/trace/generators.hpp"
#include "src/trace/trace_ops.hpp"

namespace paldia::trace {

Trace make_poisson_trace(const PoissonOptions& options) {
  Rng rng(options.seed);
  const auto epochs =
      static_cast<std::size_t>(options.duration_ms / options.epoch_ms);
  std::vector<double> rates(epochs, options.mean_rps);
  return from_rate_profile("poisson", options.epoch_ms, rates, rng);
}

}  // namespace paldia::trace
