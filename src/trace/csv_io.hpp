// Trace <-> CSV: export generated traces for plotting, and load externally
// captured arrival traces (e.g. per-epoch counts extracted from the real
// Azure Functions dataset) to drive experiments with production data.
//
// Format: header `epoch_ms,count` on the first data column pair; one row
// per epoch, in order. Extra columns are ignored on load.
#pragma once

#include <iosfwd>
#include <string>

#include "src/trace/trace.hpp"

namespace paldia::trace {

/// Write the trace as CSV (epoch start in ms + arrival count per epoch).
void write_csv(const Trace& trace, std::ostream& out);
void write_csv_file(const Trace& trace, const std::string& path);

/// Parse a trace from CSV text. The epoch length is inferred from the
/// first two rows' epoch_ms values (single-row traces default to 100 ms).
/// Throws std::runtime_error on malformed input (non-numeric cells,
/// inconsistent epoch spacing beyond 1%, missing columns).
Trace read_csv(std::string_view text, std::string name = "csv");
Trace read_csv_trace_file(const std::string& path);

}  // namespace paldia::trace
