#include <cmath>
#include <vector>

#include "src/trace/generators.hpp"
#include "src/trace/trace_ops.hpp"

namespace paldia::trace {

// Diurnal pattern: each "day" has a sustained high-traffic plateau covering
// `high_hours_per_day` of its length, with smooth raised-cosine ramps into a
// night trough at `trough_fraction` of the peak. Small multiplicative noise
// is layered on top. Matches the Wikipedia workload characterisation the
// paper cites (sustained ~16 h/day of high traffic).
Trace make_wiki_trace(const WikiOptions& options) {
  Rng rng(options.seed);
  const DurationMs total_ms = options.day_length_ms * options.days;
  const auto epochs = static_cast<std::size_t>(total_ms / options.epoch_ms);
  std::vector<double> rates(epochs, 0.0);

  const double high_frac = options.high_hours_per_day / 24.0;
  const double ramp_frac = 0.10;  // each ramp takes 10% of the day

  double noise = 1.0;
  for (std::size_t i = 0; i < epochs; ++i) {
    const double t = i * options.epoch_ms;
    const double day_pos = std::fmod(t, options.day_length_ms) / options.day_length_ms;

    // Plateau centred mid-day: [center - high/2, center + high/2].
    const double dist = std::abs(day_pos - 0.5);
    double level;
    if (dist <= high_frac / 2.0) {
      level = 1.0;
    } else if (dist <= high_frac / 2.0 + ramp_frac) {
      const double ramp_pos = (dist - high_frac / 2.0) / ramp_frac;  // 0..1
      level = options.trough_fraction +
              (1.0 - options.trough_fraction) * 0.5 * (1.0 + std::cos(ramp_pos * M_PI));
    } else {
      level = options.trough_fraction;
    }

    if (i % 30 == 0) {  // re-draw noise every 3 s
      noise = std::exp(rng.normal(0.0, 0.08));
    }
    rates[i] = level * noise;
  }

  scale_rates_to_peak(rates, options.epoch_ms, options.peak_rps);
  return from_rate_profile("wiki", options.epoch_ms, rates, rng);
}

}  // namespace paldia::trace
