#include <algorithm>
#include <cmath>
#include <vector>

#include "src/trace/generators.hpp"
#include "src/trace/trace_ops.hpp"

namespace paldia::trace {

// The Azure sample in the paper is mostly sparse/stable traffic with a few
// surges and a very large peak-to-mean ratio (~12.2x). We synthesise a
// baseline rate with mild lognormal variation plus `surge_count` smooth
// surges (one dominant), then rescale so the 1 s sliding peak matches
// `peak_rps` exactly. The relative surge height is solved so that the
// resulting mean hits peak/peak_to_mean.
Trace make_azure_trace(const AzureOptions& options) {
  Rng rng(options.seed);
  const auto epochs =
      static_cast<std::size_t>(options.duration_ms / options.epoch_ms);
  std::vector<double> rates(epochs, 0.0);

  // Baseline: stable traffic at rate 1 (arbitrary unit; rescaled later)
  // with slow lognormal modulation.
  double modulation = 1.0;
  for (std::size_t i = 0; i < epochs; ++i) {
    if (i % 50 == 0) {  // re-draw every 5 s for slow variation
      modulation = std::exp(rng.normal(0.0, 0.18));
    }
    rates[i] = modulation;
  }

  // Surges: raised-cosine bumps. The first is dominant (height h), the
  // rest are 35-60% of it. Width 20-45 s.
  struct Surge {
    double center_frac;
    double rel_height;
    double width_ms;
  };
  std::vector<Surge> surges;
  for (int s = 0; s < options.surge_count; ++s) {
    Surge surge;
    surge.center_frac = rng.uniform(0.12, 0.92);
    surge.rel_height = s == 0 ? 1.0 : rng.uniform(0.35, 0.6);
    surge.width_ms = rng.uniform(seconds(30), seconds(70));
    surges.push_back(surge);
  }

  // Solve for the dominant surge height h such that
  //   peak/mean = (1 + h) / (1 + surge_mass) == peak_to_mean,
  // where surge_mass is the duty-cycle-weighted mean contribution of all
  // surges (each raised cosine contributes rel_height * width / 2 / T).
  double duty = 0.0;
  for (const auto& surge : surges) {
    duty += surge.rel_height * surge.width_ms / 2.0 / options.duration_ms;
  }
  // (1 + h) = ptm * (1 + h * duty)  =>  h = (ptm - 1) / (1 - ptm * duty).
  const double ptm = options.peak_to_mean;
  const double denom = 1.0 - ptm * duty;
  const double h = denom > 0.05 ? (ptm - 1.0) / denom : (ptm - 1.0) / 0.05;

  for (const auto& surge : surges) {
    const double center = surge.center_frac * options.duration_ms;
    const double half_width = surge.width_ms / 2.0;
    const auto begin = static_cast<std::size_t>(
        std::max(0.0, center - half_width) / options.epoch_ms);
    const auto end = std::min<std::size_t>(
        epochs, static_cast<std::size_t>((center + half_width) / options.epoch_ms));
    for (std::size_t i = begin; i < end; ++i) {
      const double t = i * options.epoch_ms;
      const double phase = (t - center) / half_width;  // [-1, 1]
      const double bump = 0.5 * (1.0 + std::cos(phase * M_PI));
      rates[i] += h * surge.rel_height * bump;
    }
  }

  scale_rates_to_peak(rates, options.epoch_ms, options.peak_rps);
  return from_rate_profile("azure", options.epoch_ms, rates, rng);
}

}  // namespace paldia::trace
