#include "src/cluster/request_pool.hpp"

#include <algorithm>

namespace paldia::cluster {

void RequestRing::push_back(const Request& request) {
  if (count_ == buffer_.size()) grow(count_ + 1);
  buffer_[(head_ + count_) & mask()] = request;
  ++count_;
}

std::size_t RequestRing::arrived_before(TimeMs now) const {
  std::size_t lo = 0;
  std::size_t hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (at(mid).arrival_ms <= now) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void RequestRing::pop_front_into(std::size_t n, RequestBlock& out) {
  const std::size_t capacity = buffer_.size();
  const std::size_t first = std::min(n, capacity - head_);
  out.append(buffer_.data() + head_, first);
  out.append(buffer_.data(), n - first);
  head_ = (head_ + n) & mask();
  count_ -= n;
  if (count_ == 0) head_ = 0;
}

void RequestRing::append_and_sort(const Request* data, std::size_t n) {
  if (n == 0) return;
  linearize();
  if (count_ + n > buffer_.size()) grow(count_ + n);
  std::copy(data, data + n, buffer_.begin() + static_cast<std::ptrdiff_t>(count_));
  count_ += n;
  // Stable: requests sharing an arrival timestamp must keep their requeue
  // order, or pooled and bypass runs diverge on ties (the bit-identity
  // contract both the request-pool and sharding CI checks enforce).
  std::stable_sort(
      buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(count_),
      [](const Request& a, const Request& b) { return a.arrival_ms < b.arrival_ms; });
}

void RequestRing::grow(std::size_t min_capacity) {
  std::size_t capacity = buffer_.empty() ? 16 : buffer_.size() * 2;
  while (capacity < min_capacity) capacity *= 2;
  std::vector<Request> next(capacity);
  for (std::size_t i = 0; i < count_; ++i) next[i] = at(i);
  buffer_ = std::move(next);
  head_ = 0;
}

void RequestRing::linearize() {
  if (head_ == 0) return;
  std::rotate(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_),
              buffer_.end());
  head_ = 0;
}

}  // namespace paldia::cluster
