#include "src/cluster/host_interference.hpp"

#include "src/cluster/node.hpp"

namespace paldia::cluster {

std::vector<CoResident> sebs_coresidents() {
  return {
      CoResident{"file-compression", 0.85, 0.06, seconds(25), seconds(12)},
      CoResident{"dynamic-html", 0.45, 0.04, seconds(8), seconds(6)},
      CoResident{"image-thumbnail", 0.65, 0.05, seconds(15), seconds(10)},
  };
}

HostInterference::HostInterference(sim::Simulator& simulator,
                                   std::vector<CoResident> coresidents, Rng rng)
    : simulator_(&simulator),
      coresidents_(std::move(coresidents)),
      active_(coresidents_.size(), false),
      rng_(rng) {}

void HostInterference::attach(Node& node) {
  nodes_.push_back(&node);
  node.set_host_interference(current_cpu_factor(), current_gpu_factor());
}

void HostInterference::arm(TimeMs end_ms) {
  end_ms_ = end_ms;
  for (std::size_t i = 0; i < coresidents_.size(); ++i) {
    // Stagger starts so classes do not phase-lock.
    simulator_->schedule_in(rng_.exponential(1.0 / coresidents_[i].mean_idle_ms),
                            [this, i] { toggle(i); });
  }
}

void HostInterference::toggle(std::size_t index) {
  if (simulator_->now() >= end_ms_) return;
  active_[index] = !active_[index];
  push_factors();
  const auto& co = coresidents_[index];
  const DurationMs mean = active_[index] ? co.mean_active_ms : co.mean_idle_ms;
  simulator_->schedule_in(rng_.exponential(1.0 / mean), [this, index] { toggle(index); });
}

double HostInterference::current_cpu_factor() const {
  double load = 0.0;
  for (std::size_t i = 0; i < coresidents_.size(); ++i) {
    if (active_[i]) load += coresidents_[i].cpu_intensity;
  }
  return 1.0 + load;
}

double HostInterference::current_gpu_factor() const {
  double load = 0.0;
  for (std::size_t i = 0; i < coresidents_.size(); ++i) {
    if (active_[i]) load += coresidents_[i].gpu_intensity;
  }
  return 1.0 + load;
}

void HostInterference::push_factors() {
  const double cpu = current_cpu_factor();
  const double gpu = current_gpu_factor();
  for (Node* node : nodes_) node->set_host_interference(cpu, gpu);
}

}  // namespace paldia::cluster
