#include "src/cluster/node.hpp"

#include <cassert>

#include "src/common/log.hpp"

namespace paldia::cluster {

Node::Node(sim::Simulator& simulator, NodeId id, hw::NodeType type, Rng rng,
           const models::Zoo& zoo, const hw::Catalog& catalog, NodeConfig config)
    : simulator_(&simulator),
      id_(id),
      type_(type),
      spec_(&catalog.spec(type)),
      zoo_(&zoo),
      profile_(catalog),
      config_(config),
      rng_(rng) {
  if (spec_->is_gpu()) {
    gpu_device_ = std::make_unique<GpuDevice>(simulator, *spec_->gpu,
                                              rng_.fork("gpu"), config_.gpu);
  } else {
    cpu_executor_ =
        std::make_unique<CpuExecutor>(simulator, spec_->cpu, rng_.fork("cpu"));
  }
}

void Node::fail() {
  if (!up_) return;
  up_ = false;
  // Containers and the wait queue die first: the device's failure
  // callbacks pump the wait queue, and anything still in it would be
  // resubmitted to the dying device.
  containers_.clear();
  auto doomed = std::move(container_wait_queue_);
  container_wait_queue_.clear();
  if (gpu_device_) gpu_device_->fail_all();
  if (cpu_executor_) cpu_executor_->fail_all();
  for (auto& pending : doomed) {
    // Still waiting for a container — never started; the full wait is
    // queue time (start_ms == end_ms, no execution component).
    ExecutionReport report;
    report.submit_ms = pending.submitted_ms;
    report.start_ms = simulator_->now();
    report.end_ms = report.start_ms;
    report.failed = true;
    report.started = false;
    if (pending.request.on_complete) pending.request.on_complete(report);
  }
}

void Node::recover() { up_ = true; }

ContainerId Node::spawn_container(models::ModelId model, bool prewarmed) {
  assert(up_);
  Container container;
  container.id = ContainerId{next_container_id_++};
  container.model = model;
  container.spawned_ms = simulator_->now();
  container.last_used_ms = simulator_->now();
  const ContainerId id = container.id;
  if (prewarmed) {
    container.state = ContainerState::kWarm;
    container.ready_ms = simulator_->now();
    containers_.emplace(id, container);
    pump_wait_queue();
    return id;
  }
  container.state = ContainerState::kColdStarting;
  const DurationMs cold =
      spec_->is_gpu() ? config_.gpu_cold_start_ms : config_.cpu_cold_start_ms;
  container.ready_ms = simulator_->now() + cold;
  containers_.emplace(id, container);
  ++cold_starts_;
  simulator_->schedule_at(
      container.ready_ms,
      [this, id] {
        auto it = containers_.find(id);
        if (it == containers_.end()) return;  // terminated or node failed
        if (it->second.state == ContainerState::kColdStarting) {
          it->second.state = ContainerState::kWarm;
        }
        on_container_ready();
      },
      shard_);
  return id;
}

bool Node::terminate_idle_container(models::ModelId model) {
  for (auto& [id, container] : containers_) {
    if (container.model == model && container.state == ContainerState::kWarm) {
      containers_.erase(id);
      return true;
    }
  }
  return false;
}

int Node::container_count(models::ModelId model) const {
  int count = 0;
  for (const auto& [id, container] : containers_) {
    if (container.model == model && container.state != ContainerState::kTerminated) {
      ++count;
    }
  }
  return count;
}

int Node::warm_idle_container_count(models::ModelId model) const {
  int count = 0;
  for (const auto& [id, container] : containers_) {
    if (container.model == model && container.state == ContainerState::kWarm &&
        container.warm_at(simulator_->now())) {
      ++count;
    }
  }
  return count;
}

int Node::idle_since_count(models::ModelId model, TimeMs cutoff) const {
  int count = 0;
  for (const auto& [id, container] : containers_) {
    if (container.model == model && container.state == ContainerState::kWarm &&
        container.last_used_ms <= cutoff) {
      ++count;
    }
  }
  return count;
}

Container* Node::find_idle_container(models::ModelId model) {
  Container* best = nullptr;
  for (auto& [id, container] : containers_) {
    if (container.model != model) continue;
    if (container.state != ContainerState::kWarm) continue;
    if (best == nullptr || container.last_used_ms > best->last_used_ms) {
      best = &container;  // most-recently-used first keeps others cold-idle
    }
  }
  return best;
}

int Node::container_wait_queue_length() const {
  return static_cast<int>(container_wait_queue_.size());
}

void Node::execute(ExecRequest request) {
  assert(up_);
  PendingExec pending{std::move(request), simulator_->now()};

  if (pending.request.mode == ShareMode::kSpatial) {
    // Spatial batches each need their own container (paper Section IV-C).
    Container* container = find_idle_container(pending.request.model);
    if (container == nullptr) {
      container_wait_queue_.push_back(std::move(pending));
      return;
    }
    start_exec(std::move(pending), container);
    return;
  }

  // Temporal / CPU batches reuse a warm container when one exists; when the
  // model has no container at all, one must cold start first.
  Container* container = find_idle_container(pending.request.model);
  if (container == nullptr && container_count(pending.request.model) == 0) {
    spawn_container(pending.request.model);
  }
  if (container == nullptr) {
    container_wait_queue_.push_back(std::move(pending));
    return;
  }
  start_exec(std::move(pending), container);
}

void Node::start_exec(PendingExec pending, Container* container) {
  const TimeMs node_submit_ms = pending.submitted_ms;
  const DurationMs cold_wait =
      container->was_cold_when_assigned
          ? std::max(0.0, container->ready_ms - node_submit_ms)
          : 0.0;
  container->last_used_ms = simulator_->now();
  const ContainerId container_id = container->id;
  const bool spatial = pending.request.mode == ShareMode::kSpatial;
  if (spatial) container->state = ContainerState::kBusy;

  const auto& model = zoo_->spec(pending.request.model);
  const auto entry = profile_.lookup(model, type_, pending.request.batch_size);

  auto finalize = [this, node_submit_ms, cold_wait, container_id, spatial,
                   on_complete = std::move(pending.request.on_complete)](
                      const ExecutionReport& device_report) mutable {
    ExecutionReport report = device_report;
    report.submit_ms = node_submit_ms;  // queue time includes container wait
    report.cold_start_ms = cold_wait;
    if (spatial) {
      auto it = containers_.find(container_id);
      if (it != containers_.end() && it->second.state == ContainerState::kBusy) {
        it->second.state = ContainerState::kWarm;
        it->second.last_used_ms = simulator_->now();
      }
      pump_wait_queue();
    }
    if (on_complete) on_complete(report);
  };
  // this + 3 scalars + container id + the wrapped BatchCompletionFn must fit
  // DeviceCompletionFn's inline budget — no per-batch allocation.
  static_assert(sizeof(finalize) <= 160);

  if (spec_->is_gpu()) {
    GpuJob job;
    job.batch = pending.request.batch;
    job.solo_ms = entry.solo_ms * gpu_interference_factor_;
    job.fbr = entry.fbr;
    job.compute = entry.compute;
    job.on_complete = std::move(finalize);
    if (pending.request.mode == ShareMode::kSpatial) {
      gpu_device_->submit_spatial(std::move(job));
    } else {
      gpu_device_->submit_serial(std::move(job));
    }
  } else {
    CpuJob job;
    job.batch = pending.request.batch;
    job.solo_ms = entry.solo_ms;
    job.on_complete = std::move(finalize);
    cpu_executor_->submit(std::move(job));
  }
}

void Node::pump_wait_queue() {
  if (!up_) return;
  while (!container_wait_queue_.empty()) {
    auto& front = container_wait_queue_.front();
    Container* container = find_idle_container(front.request.model);
    if (container == nullptr) return;
    container->was_cold_when_assigned =
        simulator_->now() - container->spawned_ms <
        (spec_->is_gpu() ? config_.gpu_cold_start_ms : config_.cpu_cold_start_ms) + 1.0;
    PendingExec pending = std::move(front);
    container_wait_queue_.pop_front();
    start_exec(std::move(pending), container);
  }
}

void Node::on_container_ready() { pump_wait_queue(); }

DurationMs Node::device_busy_time_ms() const {
  if (gpu_device_) return gpu_device_->busy_time_ms();
  if (cpu_executor_) return cpu_executor_->busy_time_ms();
  return 0.0;
}

double Node::current_fbr_sum() const {
  return gpu_device_ ? gpu_device_->current_fbr_sum() : 0.0;
}

void Node::set_shard(int shard) {
  shard_ = shard;
  if (gpu_device_) gpu_device_->set_shard(shard);
  if (cpu_executor_) cpu_executor_->set_shard(shard);
}

void Node::set_host_interference(double cpu_factor, double gpu_factor) {
  if (cpu_executor_) cpu_executor_->set_interference_factor(cpu_factor);
  gpu_interference_factor_ = gpu_factor;
}

}  // namespace paldia::cluster
