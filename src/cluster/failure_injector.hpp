// Node failure injection for the Fig. 13b study: the node currently in use
// is made unavailable at a fixed period and stays down for a fixed hold
// time. The injector asks the framework which node is active via a callback
// and notifies it on failure/recovery so the scheme can fail over.
#pragma once

#include <functional>

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct FailureInjectorConfig {
  DurationMs period_ms = minutes(2);   // a failure starts every period
  DurationMs downtime_ms = minutes(1); // and lasts this long
  TimeMs first_failure_ms = minutes(1);
};

class FailureInjector {
 public:
  using FailFn = std::function<void()>;
  using RecoverFn = std::function<void()>;

  FailureInjector(sim::Simulator& simulator, FailureInjectorConfig config,
                  FailFn on_fail, RecoverFn on_recover);

  /// Arm the injector until `end_ms`.
  void arm(TimeMs end_ms);

  int failures_injected() const { return failures_; }

 private:
  void schedule_next(TimeMs at);

  sim::Simulator* simulator_;
  FailureInjectorConfig config_;
  FailFn on_fail_;
  RecoverFn on_recover_;
  TimeMs end_ms_ = 0.0;
  int failures_ = 0;
};

}  // namespace paldia::cluster
