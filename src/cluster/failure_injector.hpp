// Node failure injection for the Fig. 13b study: the node currently in use
// is made unavailable at a fixed period and stays down for a fixed hold
// time. The injector asks the framework which node is active via a callback
// and notifies it on failure/recovery so the scheme can fail over.
//
// Failure windows are tracked explicitly so adversarial configurations stay
// well-formed: when downtime_ms >= period_ms the next failure point lands
// inside the previous outage — the injector coalesces it into one longer
// window (extending the pending recovery) instead of emitting an
// out-of-order fail/recover pair that would revive a node mid-outage. A
// recovery that would land past the armed horizon is clamped to end_ms_, so
// the node never finishes the run down with no recovery on the books.
#pragma once

#include <functional>

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct FailureInjectorConfig {
  DurationMs period_ms = minutes(2);   // a failure starts every period
  DurationMs downtime_ms = minutes(1); // and lasts this long
  TimeMs first_failure_ms = minutes(1);
};

class FailureInjector {
 public:
  using FailFn = std::function<void()>;
  using RecoverFn = std::function<void()>;

  FailureInjector(sim::Simulator& simulator, FailureInjectorConfig config,
                  FailFn on_fail, RecoverFn on_recover);

  /// Arm the injector until `end_ms`.
  void arm(TimeMs end_ms);

  /// Distinct outage windows started (coalesced overlaps count once).
  int failures_injected() const { return failures_; }
  /// Recoveries delivered; equals failures_injected() once the run ends.
  int recoveries_delivered() const { return recoveries_; }
  /// True while inside an outage window.
  bool down() const { return down_; }

 private:
  void schedule_next(TimeMs at);
  void on_failure_point(TimeMs at);
  void schedule_recovery(TimeMs at);

  sim::Simulator* simulator_;
  FailureInjectorConfig config_;
  FailFn on_fail_;
  RecoverFn on_recover_;
  TimeMs end_ms_ = 0.0;
  int failures_ = 0;
  int recoveries_ = 0;
  bool down_ = false;
  TimeMs recover_at_ms_ = 0.0;
  sim::EventHandle recovery_event_;
};

}  // namespace paldia::cluster
