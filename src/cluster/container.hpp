// Serving containers. A container hosts one model on one node; spawning one
// incurs a cold-start delay (Section II-A: "up to multiple seconds").
// Spatial (MPS) execution requires a dedicated container per concurrent
// batch; time-shared and CPU batches may reuse a warm container
// (Section IV-C, Reactive scale-up).
#pragma once

#include "src/common/units.hpp"
#include "src/models/model_spec.hpp"

namespace paldia::cluster {

enum class ContainerState {
  kColdStarting,  // booting; becomes warm at ready_ms
  kWarm,          // ready and idle
  kBusy,          // executing a spatial batch
  kTerminated,
};

struct Container {
  ContainerId id;
  models::ModelId model{};
  ContainerState state = ContainerState::kColdStarting;
  TimeMs spawned_ms = 0.0;
  TimeMs ready_ms = 0.0;
  TimeMs last_used_ms = 0.0;
  bool was_cold_when_assigned = false;

  bool warm_at(TimeMs now) const {
    return state != ContainerState::kTerminated && ready_ms <= now;
  }
};

}  // namespace paldia::cluster
