#include "src/cluster/cluster.hpp"

#include <cassert>

namespace paldia::cluster {

Cluster::Cluster(sim::Simulator& simulator, Rng rng, const models::Zoo& zoo,
                 const hw::Catalog& catalog, ClusterConfig config)
    : simulator_(&simulator),
      catalog_(&catalog),
      config_(config),
      provisioner_(simulator, config.provisioner) {
  const auto count = catalog.all().size();
  nodes_.reserve(count);
  holdings_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes_.push_back(std::make_unique<Node>(simulator, NodeId{static_cast<std::int64_t>(i)},
                                            hw::NodeType(static_cast<int>(i)),
                                            rng.fork(catalog.spec(hw::NodeType(i)).instance),
                                            zoo, catalog, config.node));
    // Node-local events (device completions, cold-start timers) round-robin
    // over the worker shards; control-plane events stay on shard 0. A fleet
    // endpoint pins all of its nodes to the endpoint's shard instead.
    nodes_.back()->set_shard(config.shard >= 0
                                 ? config.shard
                                 : simulator.shard_of(static_cast<int>(i)));
  }
}

Node& Cluster::node(hw::NodeType type) { return *nodes_[static_cast<std::size_t>(type)]; }

const Node& Cluster::node(hw::NodeType type) const {
  return *nodes_[static_cast<std::size_t>(type)];
}

void Cluster::acquire(hw::NodeType type, std::function<void(Node&)> on_ready) {
  auto& holding = holdings_[static_cast<std::size_t>(type)];
  if (holding.held) {
    if (on_ready) on_ready(node(type));
    return;
  }
  if (on_ready) holding.waiters.push_back(std::move(on_ready));
  if (holding.procuring) return;
  holding.procuring = true;
  provisioner_.procure(
      type,
      [this](hw::NodeType ready_type) {
        auto& h = holdings_[static_cast<std::size_t>(ready_type)];
        h.procuring = false;
        if (h.held) return;  // raced with another path; already held
        h.held = true;
        h.held_since_ms = simulator_->now();
        auto waiters = std::move(h.waiters);
        h.waiters.clear();
        for (auto& waiter : waiters) waiter(node(ready_type));
      },
      node(type).shard());
}

void Cluster::acquire_immediately(hw::NodeType type) {
  auto& holding = holdings_[static_cast<std::size_t>(type)];
  if (holding.held) return;
  holding.held = true;
  holding.held_since_ms = simulator_->now();
  auto waiters = std::move(holding.waiters);
  holding.waiters.clear();
  for (auto& waiter : waiters) waiter(node(type));
}

void Cluster::release(hw::NodeType type) {
  auto& holding = holdings_[static_cast<std::size_t>(type)];
  if (!holding.held) return;
  holding.held = false;
  holding.accumulated_ms += simulator_->now() - holding.held_since_ms;
}

bool Cluster::held(hw::NodeType type) const {
  return holdings_[static_cast<std::size_t>(type)].held;
}

std::vector<hw::NodeType> Cluster::held_types() const {
  std::vector<hw::NodeType> types;
  for (std::size_t i = 0; i < holdings_.size(); ++i) {
    if (holdings_[i].held) types.push_back(hw::NodeType(static_cast<int>(i)));
  }
  return types;
}

DurationMs Cluster::held_time_ms(hw::NodeType type) const {
  const auto& holding = holdings_[static_cast<std::size_t>(type)];
  DurationMs total = holding.accumulated_ms;
  if (holding.held) total += simulator_->now() - holding.held_since_ms;
  return total;
}

Dollars Cluster::total_cost() const {
  Dollars total = 0.0;
  for (std::size_t i = 0; i < holdings_.size(); ++i) {
    const auto type = hw::NodeType(static_cast<int>(i));
    total += catalog_->spec(type).price_per_hour * (held_time_ms(type) / kMsPerHour);
  }
  return total;
}

void Cluster::fail_node(hw::NodeType type) { node(type).fail(); }

void Cluster::recover_node(hw::NodeType type) { node(type).recover(); }

std::uint64_t Cluster::total_cold_starts() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->cold_starts();
  return total;
}

}  // namespace paldia::cluster
