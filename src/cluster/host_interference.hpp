// Co-resident "regular" serverless workloads (Table III study): file
// compression, dynamic HTML generation and image thumbnailing from SeBS
// run on the host CPUs of every node and contend with inference serving.
//
// Modeled as a time-varying multiplicative slowdown: each co-resident class
// alternates between active and idle phases; while active it adds its
// intensity to the host load. CPU inference sees the full load (direct
// contention for cores); GPU serving only the host-side share (input
// staging, batching plumbing).
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

class Node;

struct CoResident {
  std::string name;
  double cpu_intensity = 0.5;   // added CPU slowdown while active
  double gpu_intensity = 0.05;  // added GPU-path slowdown while active
  DurationMs mean_active_ms = seconds(20);
  DurationMs mean_idle_ms = seconds(10);
};

/// The three SeBS workloads used in the paper's mixed-workload study.
std::vector<CoResident> sebs_coresidents();

class HostInterference {
 public:
  HostInterference(sim::Simulator& simulator, std::vector<CoResident> coresidents,
                   Rng rng);

  /// Attach a node whose executors will receive the interference factors.
  void attach(Node& node);

  /// Start the alternating phases until end_ms.
  void arm(TimeMs end_ms);

  double current_cpu_factor() const;
  double current_gpu_factor() const;

 private:
  void toggle(std::size_t index);
  void push_factors();

  sim::Simulator* simulator_;
  std::vector<CoResident> coresidents_;
  std::vector<bool> active_;
  std::vector<Node*> nodes_;
  Rng rng_;
  TimeMs end_ms_ = 0.0;
};

}  // namespace paldia::cluster
