#include "src/cluster/failure_injector.hpp"

#include <algorithm>

namespace paldia::cluster {

FailureInjector::FailureInjector(sim::Simulator& simulator, FailureInjectorConfig config,
                                 FailFn on_fail, RecoverFn on_recover)
    : simulator_(&simulator),
      config_(config),
      on_fail_(std::move(on_fail)),
      on_recover_(std::move(on_recover)) {}

void FailureInjector::arm(TimeMs end_ms) {
  end_ms_ = end_ms;
  schedule_next(config_.first_failure_ms);
}

void FailureInjector::schedule_next(TimeMs at) {
  if (at >= end_ms_) return;
  simulator_->schedule_at(at, [this, at] { on_failure_point(at); });
}

void FailureInjector::on_failure_point(TimeMs at) {
  // Any outage is forced to resolve inside the armed horizon: a recovery
  // scheduled past end_ms_ would never fire (the run drains before it),
  // leaving the node down in end-of-run metrics.
  const TimeMs recover_at = std::min(at + config_.downtime_ms, end_ms_);
  if (down_) {
    // downtime >= period: this failure point lands inside the previous
    // outage. Coalesce into one longer window — extend the pending
    // recovery instead of stacking a fail/recover pair that would fire out
    // of order and revive the node mid-outage.
    if (recover_at > recover_at_ms_) {
      recovery_event_.cancel();
      schedule_recovery(recover_at);
    }
  } else {
    down_ = true;
    ++failures_;
    on_fail_();
    schedule_recovery(recover_at);
  }
  schedule_next(at + config_.period_ms);
}

void FailureInjector::schedule_recovery(TimeMs at) {
  recover_at_ms_ = at;
  recovery_event_ = simulator_->schedule_at(at, [this] {
    down_ = false;
    ++recoveries_;
    on_recover_();
  });
}

}  // namespace paldia::cluster
