#include "src/cluster/failure_injector.hpp"

namespace paldia::cluster {

FailureInjector::FailureInjector(sim::Simulator& simulator, FailureInjectorConfig config,
                                 FailFn on_fail, RecoverFn on_recover)
    : simulator_(&simulator),
      config_(config),
      on_fail_(std::move(on_fail)),
      on_recover_(std::move(on_recover)) {}

void FailureInjector::arm(TimeMs end_ms) {
  end_ms_ = end_ms;
  schedule_next(config_.first_failure_ms);
}

void FailureInjector::schedule_next(TimeMs at) {
  if (at >= end_ms_) return;
  simulator_->schedule_at(at, [this, at] {
    ++failures_;
    on_fail_();
    simulator_->schedule_in(config_.downtime_ms, [this] { on_recover_(); });
    schedule_next(at + config_.period_ms);
  });
}

}  // namespace paldia::cluster
