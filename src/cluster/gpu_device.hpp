// Simulated GPU with hybrid sharing, substituting real MPS + time sharing
// (see DESIGN.md section 2).
//
// Two lanes:
//  * Spatial (MPS) lane — every submitted batch starts immediately and runs
//    concurrently. Progress follows a processor-sharing model derived from
//    Prophet's bandwidth-contention formulation: with total fractional
//    bandwidth demand S = sum of FBRs of all resident jobs, each spatial
//    job runs at speed 1 / slowdown(S), where
//        slowdown(S) = 1                          for S <= 1
//                    = S * (1 + beta * (S - 1))   for S  > 1.
//    The linear term is exactly the paper's Eq. 1 regime (k identical jobs
//    of FBR F finish in Solo * k * F when k*F > 1); the beta term adds the
//    superlinear cache/scheduling degradation that real MPS exhibits when
//    a GPU is grossly oversubscribed — Prophet's model is only validated
//    for small co-location degrees. beta defaults to 0.25.
//  * Serial (time-shared) lane — FIFO; one batch executes at a time at full
//    solo speed (its SM partition is dedicated), but its bandwidth demand
//    still counts towards S seen by spatial jobs.
//
// Whenever lane membership changes, remaining work is advanced and the
// earliest completion event is rescheduled. Per-batch launch overhead and
// a small lognormal execution jitter make the device a *ground truth* that
// the scheduler's closed-form model (perfmodel/) only approximates — the
// paper reports <4% model error, and tests/perfmodel_vs_device_test.cpp
// checks ours stays in that band.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/cluster/request.hpp"
#include "src/common/rng.hpp"
#include "src/hw/node_spec.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct GpuJob {
  BatchId batch;
  DurationMs solo_ms = 0.0;  // isolated execution time of this batch
  double fbr = 0.0;          // fractional bandwidth requirement
  /// Fraction of the device's compute (SMs) the batch occupies. When the
  /// co-located total exceeds 1, spatial jobs time-slice compute with the
  /// same superlinear overhead as bandwidth contention — this is what
  /// makes unbounded MPS co-location *lose* throughput (Fig. 13a) instead
  /// of merely stretching latencies. 0 preserves bandwidth-only behaviour.
  double compute = 0.0;
  DeviceCompletionFn on_complete;

  /// Set by the device at submission; carried so lane-queue waits are
  /// reported as queue time. Callers leave it alone.
  TimeMs submit_time_tag = 0.0;
};

struct GpuDeviceConfig {
  double beta = 0.25;            // superlinear contention coefficient
  DurationMs launch_overhead_ms = 1.5;
  double jitter_sigma = 0.02;    // lognormal sigma on per-batch work
  int max_spatial_jobs = 48;     // MPS client limit; beyond this, jobs queue
};

class GpuDevice {
 public:
  GpuDevice(sim::Simulator& simulator, const hw::GpuSpec& spec, Rng rng,
            GpuDeviceConfig config = {});

  /// Launch a batch under MPS (spatial sharing). Runs immediately unless the
  /// MPS client limit is reached, in which case it waits in a spatial queue.
  void submit_spatial(GpuJob job);

  /// Enqueue a batch on the time-shared lane (FIFO, exclusive execution).
  void submit_serial(GpuJob job);

  /// Abort everything in flight (node failure). Each job's callback fires
  /// with failed = true so the framework can re-queue the requests.
  void fail_all();

  int active_spatial_jobs() const { return static_cast<int>(spatial_.size()); }
  int queued_serial_jobs() const { return static_cast<int>(serial_queue_.size()); }
  bool busy() const { return !spatial_.empty() || serial_running_ != nullptr; }

  /// Total bandwidth demand of everything resident right now.
  double current_fbr_sum() const;

  /// Total compute (SM) demand of everything resident right now,
  /// including the serial-lane job.
  double current_compute_sum() const;

  /// Integral of non-idle time since construction, ms ("utilization" in the
  /// paper = non-idle fraction).
  DurationMs busy_time_ms() const;

  const hw::GpuSpec& spec() const { return *spec_; }
  const GpuDeviceConfig& config() const { return config_; }

  /// slowdown(S) as described above; exposed for the model-vs-device tests.
  static double slowdown(double fbr_sum, double beta);

  /// Event shard completion events land on (sharded simulation); set by the
  /// owning Node. The device only ever touches its own state from these
  /// events, so they belong with the node group, not the control plane.
  void set_shard(int shard) { shard_ = shard; }

 private:
  struct Resident {
    GpuJob job;
    TimeMs submit_ms = 0.0;
    TimeMs start_ms = 0.0;
    double remaining_work_ms = 0.0;  // in solo-speed ms
    double total_work_ms = 0.0;
    bool serial = false;
  };
  using ResidentPtr = std::shared_ptr<Resident>;

  void advance_to_now();
  void reschedule_completion();
  void on_completion_event();
  void start_next_serial();
  void start_queued_spatial();
  double speed_of(const Resident& resident) const;
  void finish(const ResidentPtr& resident, bool failed);
  void note_busy_transition();

  sim::Simulator* simulator_;
  const hw::GpuSpec* spec_;
  Rng rng_;
  GpuDeviceConfig config_;

  std::vector<ResidentPtr> spatial_;
  std::deque<GpuJob> spatial_wait_queue_;
  std::deque<GpuJob> serial_queue_;
  ResidentPtr serial_running_;

  TimeMs last_advance_ms_ = 0.0;
  sim::EventHandle completion_event_;
  int shard_ = 0;

  DurationMs busy_time_ms_ = 0.0;
  TimeMs busy_since_ms_ = 0.0;
  bool was_busy_ = false;
};

}  // namespace paldia::cluster
