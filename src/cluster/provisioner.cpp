#include "src/cluster/provisioner.hpp"

namespace paldia::cluster {

void Provisioner::procure(hw::NodeType type,
                          std::function<void(hw::NodeType)> on_ready,
                          int shard) {
  simulator_->schedule_in(
      config_.procurement_delay_ms,
      [type, on_ready = std::move(on_ready)] { on_ready(type); }, shard);
}

}  // namespace paldia::cluster
