// Ring-buffer request queue over pooled storage.
//
// Gateway's per-model queues used to be std::deque<Request>: every take()
// popped elements one by one and every inject() grew the deque's chunked
// node list. RequestRing is a power-of-two ring over one contiguous
// std::vector<Request> that supports the three queue operations the
// gateway actually performs:
//
//   - push_back        (inject: arrivals are generated already sorted)
//   - pop_front_into   (take: move a prefix into a pooled RequestBlock in
//                       at most two bulk appends)
//   - append_and_sort  (requeue after failure: linearize, append, re-sort
//                       by arrival — the exact sequence the deque-based
//                       gateway sorted, so exports stay byte-identical)
//
// The RequestBlock / RequestArena aliases themselves live in request.hpp
// (next to Request) so that cluster headers don't need this file just to
// name a block; this header is the queue built on top of them.
#pragma once

#include <cstddef>

#include "src/cluster/request.hpp"

namespace paldia::cluster {

class RequestRing {
 public:
  RequestRing() = default;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const Request& front() const { return buffer_[head_]; }

  /// Element at logical position i (0 = front).
  const Request& at(std::size_t i) const { return buffer_[(head_ + i) & mask()]; }

  void push_back(const Request& request);

  /// Number of leading requests with arrival_ms <= now. The ring is kept
  /// sorted by arrival, so this is a binary search over logical indices.
  std::size_t arrived_before(TimeMs now) const;

  /// Move the first n requests into `out` (at most two bulk appends — the
  /// ring wraps at one point) and advance the head.
  void pop_front_into(std::size_t n, RequestBlock& out);

  /// Requeue path: append n requests, then re-sort the whole queue by
  /// arrival time. Matches the old deque gateway byte for byte: the same
  /// element sequence is handed to the same std::sort.
  void append_and_sort(const Request* data, std::size_t n);

 private:
  std::size_t mask() const { return buffer_.size() - 1; }
  void grow(std::size_t min_capacity);
  /// Rotate storage so the live elements occupy [0, count_). Leaves the
  /// ring semantically unchanged (head_ becomes 0).
  void linearize();

  std::vector<Request> buffer_;  // capacity is always a power of two (or 0)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace paldia::cluster
