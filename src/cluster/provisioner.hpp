// VM/hardware procurement. Acquiring a node type launches a VM on it after
// a procurement delay (the paper sizes its prediction lookahead, ~4 s, "so
// as to allow enough time to acquire the hardware"). Acquisition happens in
// the background while current hardware keeps serving (Section IV-A).
#pragma once

#include <functional>

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct ProvisionerConfig {
  DurationMs procurement_delay_ms = 4000.0;
};

class Provisioner {
 public:
  Provisioner(sim::Simulator& simulator, ProvisionerConfig config = {})
      : simulator_(&simulator), config_(config) {}

  /// Begin procuring the node type; on_ready fires after the delay. The
  /// ready event lands on `shard` — the shard of the node being brought up,
  /// so procurement completions are shard-crossing messages like any other
  /// node event.
  void procure(hw::NodeType type, std::function<void(hw::NodeType)> on_ready,
               int shard = 0);

  DurationMs procurement_delay_ms() const { return config_.procurement_delay_ms; }

 private:
  sim::Simulator* simulator_;
  ProvisionerConfig config_;
};

}  // namespace paldia::cluster
