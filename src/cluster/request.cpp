#include "src/cluster/request.hpp"

#include <algorithm>

namespace paldia::cluster {

TimeMs Batch::oldest_arrival_ms() const {
  TimeMs oldest = kTimeNever;
  for (const auto& request : requests) {
    oldest = std::min(oldest, request.arrival_ms);
  }
  return requests.empty() ? formed_ms : oldest;
}

}  // namespace paldia::cluster
