// A worker node: one Table II instance with its compute device(s) and the
// containers currently resident on it.
//
// The node is mechanical — it executes what it is told and accounts for
// container cold starts; *policy* (how many containers, which node to use,
// spatial/temporal split) lives in src/core. Spatial batches each need a
// free container (paper: one container per concurrently-shared batch);
// temporal and CPU batches reuse any warm container of the model.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/container.hpp"
#include "src/cluster/cpu_executor.hpp"
#include "src/cluster/gpu_device.hpp"
#include "src/cluster/request.hpp"
#include "src/common/rng.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct NodeConfig {
  DurationMs gpu_cold_start_ms = 1500.0;  // image pre-pulled during VM procurement
  DurationMs cpu_cold_start_ms = 1000.0;
  GpuDeviceConfig gpu;
};

/// A request for the node to execute one batch.
struct ExecRequest {
  BatchId batch;
  models::ModelId model{};
  int batch_size = 0;
  ShareMode mode = ShareMode::kSpatial;
  BatchCompletionFn on_complete;
};

class Node {
 public:
  Node(sim::Simulator& simulator, NodeId id, hw::NodeType type, Rng rng,
       const models::Zoo& zoo = models::Zoo::instance(),
       const hw::Catalog& catalog = hw::Catalog::instance(), NodeConfig config = {});

  NodeId id() const { return id_; }
  hw::NodeType type() const { return type_; }
  const hw::NodeSpec& spec() const { return *spec_; }
  bool is_gpu() const { return spec_->is_gpu(); }

  // --- Lifecycle (failure injection) -------------------------------------
  bool is_up() const { return up_; }
  void fail();
  void recover();

  // --- Containers ---------------------------------------------------------
  /// Spawn a container for the model; it becomes warm after the cold-start
  /// delay. Returns its id. `prewarmed` skips the cold start (used to give
  /// schemes a provisioned starting state at t = 0, not counted as a cold
  /// start).
  ContainerId spawn_container(models::ModelId model, bool prewarmed = false);

  /// Terminate one idle container of the model (busy ones are left alone).
  /// Returns false when none was idle.
  bool terminate_idle_container(models::ModelId model);

  int container_count(models::ModelId model) const;
  int warm_idle_container_count(models::ModelId model) const;

  /// Containers of the model idle (warm, not busy) since before `cutoff`.
  int idle_since_count(models::ModelId model, TimeMs cutoff) const;

  std::uint64_t cold_starts() const { return cold_starts_; }

  // --- Execution ------------------------------------------------------------
  /// Execute a batch; completion (or failure) is reported via the request's
  /// callback. Never call on a downed node (checked).
  void execute(ExecRequest request);

  /// Number of batches waiting for a container (spatial gating).
  int container_wait_queue_length() const;

  // --- Introspection / telemetry -------------------------------------------
  /// Device busy fraction over [since, now] given the busy-ms reading taken
  /// at `since`. Utilization in the paper = non-idle time fraction.
  DurationMs device_busy_time_ms() const;
  double current_fbr_sum() const;
  GpuDevice* gpu_device() { return gpu_device_.get(); }
  CpuExecutor* cpu_executor() { return cpu_executor_.get(); }

  /// Host interference multiplier (Table III study). >= 1.
  void set_host_interference(double cpu_factor, double gpu_factor);

  /// Pin this node's self-contained events (container cold-start timers,
  /// device completions) to an event shard. Called by the Cluster right
  /// after construction; defaults to the control shard 0.
  void set_shard(int shard);
  int shard() const { return shard_; }

  const models::ProfileTable& profile() const { return profile_; }

 private:
  struct PendingExec {
    ExecRequest request;
    TimeMs submitted_ms = 0.0;
  };

  void start_exec(PendingExec pending, Container* container);
  Container* find_idle_container(models::ModelId model);
  void pump_wait_queue();
  void on_container_ready();

  sim::Simulator* simulator_;
  NodeId id_;
  hw::NodeType type_;
  const hw::NodeSpec* spec_;
  const models::Zoo* zoo_;
  models::ProfileTable profile_;
  NodeConfig config_;
  Rng rng_;

  bool up_ = true;
  std::unique_ptr<GpuDevice> gpu_device_;
  std::unique_ptr<CpuExecutor> cpu_executor_;

  std::map<ContainerId, Container> containers_;
  std::deque<PendingExec> container_wait_queue_;
  std::int64_t next_container_id_ = 0;
  std::uint64_t cold_starts_ = 0;
  double gpu_interference_factor_ = 1.0;
  int shard_ = 0;
};

}  // namespace paldia::cluster
