// Requests and batches flowing through the framework.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/arena.hpp"
#include "src/common/inline_function.hpp"
#include "src/common/units.hpp"
#include "src/models/model_spec.hpp"

namespace paldia::cluster {

/// One inference request. Kept tiny: millions of these exist per run.
struct Request {
  RequestId id;
  models::ModelId model{};
  TimeMs arrival_ms = 0.0;
};

/// Pooled request storage: a move-only vector-like view over a recycled
/// slab, and the per-repetition arena that owns the slabs. Requests are
/// carried in blocks through the whole take -> chunk -> dispatch -> report
/// path so the steady state allocates nothing. (The ring-buffer queue built
/// on top lives in request_pool.hpp.)
using RequestBlock = common::ArenaBlock<Request>;
using RequestArena = common::Arena<Request>;

/// How a batch is placed on a GPU.
enum class ShareMode {
  kSpatial,   // concurrent execution under MPS
  kTemporal,  // queued on the time-shared (serial) lane
  kCpu,       // framework batched CPU mode
};

/// A batch of requests for one model, formed by the Batcher and scheduled
/// by the Job Distributor. Move-only: `requests` is a pooled block whose
/// buffer returns to the arena when the batch dies.
struct Batch {
  BatchId id;
  models::ModelId model{};
  RequestBlock requests;
  TimeMs formed_ms = 0.0;  // when the batcher sealed the batch

  int size() const { return static_cast<int>(requests.size()); }
  bool empty() const { return requests.empty(); }

  /// Arrival time of the oldest member (its latency is the batch's worst).
  TimeMs oldest_arrival_ms() const;
};

/// Execution record the device hands back per batch; the framework fans it
/// out to per-request completions.
struct ExecutionReport {
  TimeMs submit_ms = 0.0;  // handed to the device
  TimeMs start_ms = 0.0;   // execution actually began (after lane queueing)
  TimeMs end_ms = 0.0;
  DurationMs solo_ms = 0.0;       // isolated execution time for this batch
  DurationMs cold_start_ms = 0.0; // container boot time charged to the batch
  bool failed = false;            // node died mid-flight; requests re-queued
  /// False for batches that died while still queued (never reached a lane/
  /// executor). Such reports carry start_ms == end_ms and solo_ms == 0, so
  /// the whole wait lands in the queue component, not execution time.
  bool started = true;

  /// Queueing component: waiting for a lane/executor.
  DurationMs queue_ms() const { return start_ms - submit_ms; }
  /// Interference component: execution stretch beyond isolated time.
  DurationMs interference_ms() const { return (end_ms - start_ms) - solo_ms; }
};

/// Batch-completion callbacks along the execute path. Inline capacities are
/// sized for the actual closures (static_asserted at the capture sites) so
/// no dispatch ever heap-allocates a callback:
///  - BatchCompletionFn: JobDistributor's on_complete handed to Node
///    (captures this + a moved Batch + a few scalars).
///  - DeviceCompletionFn: Node's finalize handed to GpuJob/CpuJob — it
///    wraps a BatchCompletionFn, so it needs the larger budget.
using BatchCompletionFn = InlineFunction<void(const ExecutionReport&), 96>;
using DeviceCompletionFn = InlineFunction<void(const ExecutionReport&), 160>;

/// Monotonic id generators (one per run; not thread-safe by design — the
/// simulation loop is single-threaded).
///
/// A fleet runs one allocator per endpoint (each gateway mints its own
/// request ids), so ids carry the endpoint index in the high bits: tagged
/// allocators can never collide, and everything keyed by raw id value —
/// trace sampling, lifecycle spans, attribution retry sets — stays exact
/// across gateways. Tag 0 (the default) emits the same ids as the untagged
/// allocator always did, bit for bit, so single-endpoint runs are unchanged.
class IdAllocator {
 public:
  /// Low bits per endpoint: 2^40 ids each, 2^23 endpoints, still positive
  /// int64. A single endpoint overflowing 2^40 requests would bleed into the
  /// next tag's range; no simulated workload gets within orders of magnitude.
  static constexpr int kEndpointShift = 40;

  IdAllocator() = default;
  explicit IdAllocator(int endpoint_tag)
      : base_(static_cast<std::int64_t>(endpoint_tag) << kEndpointShift) {}

  RequestId next_request() { return RequestId{base_ | next_request_++}; }
  BatchId next_batch() { return BatchId{base_ | next_batch_++}; }
  ContainerId next_container() { return ContainerId{base_ | next_container_++}; }
  NodeId next_node() { return NodeId{base_ | next_node_++}; }

  /// Endpoint tag carried by an id minted from a tagged allocator.
  static int endpoint_of(std::int64_t id) {
    return static_cast<int>(id >> kEndpointShift);
  }

 private:
  std::int64_t base_ = 0;
  std::int64_t next_request_ = 0;
  std::int64_t next_batch_ = 0;
  std::int64_t next_container_ = 0;
  std::int64_t next_node_ = 0;
};

}  // namespace paldia::cluster
