#include "src/cluster/gpu_device.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace paldia::cluster {

GpuDevice::GpuDevice(sim::Simulator& simulator, const hw::GpuSpec& spec, Rng rng,
                     GpuDeviceConfig config)
    : simulator_(&simulator), spec_(&spec), rng_(rng), config_(config) {
  last_advance_ms_ = simulator_->now();
}

double GpuDevice::slowdown(double fbr_sum, double beta) {
  if (fbr_sum <= 1.0) return 1.0;
  return fbr_sum * (1.0 + beta * (fbr_sum - 1.0));
}

double GpuDevice::current_fbr_sum() const {
  double sum = 0.0;
  for (const auto& resident : spatial_) sum += resident->job.fbr;
  if (serial_running_) sum += serial_running_->job.fbr;
  return sum;
}

double GpuDevice::current_compute_sum() const {
  double sum = 0.0;
  for (const auto& resident : spatial_) sum += resident->job.compute;
  if (serial_running_) sum += serial_running_->job.compute;
  return sum;
}

double GpuDevice::speed_of(const Resident& resident) const {
  const double compute_stretch = slowdown(current_compute_sum(), config_.beta);
  if (resident.serial) {
    // The time-shared lane has scheduling priority for bandwidth (it runs
    // "exclusively" in the Eq. 1 sense) but cannot escape SM contention:
    // compute is one physical pool.
    return 1.0 / compute_stretch;
  }
  const double bandwidth_stretch = slowdown(current_fbr_sum(), config_.beta);
  return 1.0 / std::max(compute_stretch, bandwidth_stretch);
}

void GpuDevice::note_busy_transition() {
  const bool now_busy = busy();
  const TimeMs now = simulator_->now();
  if (now_busy && !was_busy_) {
    busy_since_ms_ = now;
  } else if (!now_busy && was_busy_) {
    busy_time_ms_ += now - busy_since_ms_;
  }
  was_busy_ = now_busy;
}

DurationMs GpuDevice::busy_time_ms() const {
  if (was_busy_) return busy_time_ms_ + (simulator_->now() - busy_since_ms_);
  return busy_time_ms_;
}

void GpuDevice::advance_to_now() {
  const TimeMs now = simulator_->now();
  const DurationMs elapsed = now - last_advance_ms_;
  if (elapsed > 0.0) {
    // Speeds were constant since the last membership change, so one linear
    // step is exact. speed_of() reads the *current* membership, which has
    // not changed since last_advance_ms_.
    for (auto& resident : spatial_) {
      resident->remaining_work_ms -= elapsed * speed_of(*resident);
    }
    if (serial_running_) {
      serial_running_->remaining_work_ms -= elapsed * speed_of(*serial_running_);
    }
  }
  last_advance_ms_ = now;
}

void GpuDevice::reschedule_completion() {
  completion_event_.cancel();
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& resident : spatial_) {
    const double speed = speed_of(*resident);
    earliest = std::min(earliest, resident->remaining_work_ms / speed);
  }
  if (serial_running_) {
    earliest = std::min(earliest, serial_running_->remaining_work_ms /
                                      speed_of(*serial_running_));
  }
  if (!std::isfinite(earliest)) return;
  earliest = std::max(earliest, 0.0);
  completion_event_ = simulator_->schedule_in(
      earliest, [this] { on_completion_event(); }, shard_);
}

void GpuDevice::on_completion_event() {
  advance_to_now();
  // Collect all jobs whose work is (numerically) done. Several can finish at
  // the same instant.
  constexpr double kEpsilon = 1e-6;
  std::vector<ResidentPtr> done;
  for (const auto& resident : spatial_) {
    if (resident->remaining_work_ms <= kEpsilon) done.push_back(resident);
  }
  std::erase_if(spatial_, [&](const ResidentPtr& resident) {
    return resident->remaining_work_ms <= kEpsilon;
  });
  if (serial_running_ && serial_running_->remaining_work_ms <= kEpsilon) {
    done.push_back(serial_running_);
    serial_running_.reset();
  }
  for (const auto& resident : done) finish(resident, /*failed=*/false);

  start_next_serial();
  start_queued_spatial();
  note_busy_transition();
  reschedule_completion();
}

void GpuDevice::finish(const ResidentPtr& resident, bool failed) {
  ExecutionReport report;
  report.submit_ms = resident->submit_ms;
  report.start_ms = resident->start_ms;
  report.end_ms = simulator_->now();
  report.solo_ms = resident->total_work_ms;
  report.failed = failed;
  if (resident->job.on_complete) resident->job.on_complete(report);
}

void GpuDevice::start_next_serial() {
  if (serial_running_ || serial_queue_.empty()) return;
  GpuJob job = std::move(serial_queue_.front());
  serial_queue_.pop_front();
  auto resident = std::make_shared<Resident>();
  const double jitter = std::exp(rng_.normal(0.0, config_.jitter_sigma));
  resident->submit_ms = job.submit_time_tag;
  resident->start_ms = simulator_->now();
  resident->total_work_ms = job.solo_ms * jitter + config_.launch_overhead_ms;
  resident->remaining_work_ms = resident->total_work_ms;
  resident->serial = true;
  resident->job = std::move(job);
  serial_running_ = std::move(resident);
}

void GpuDevice::start_queued_spatial() {
  while (static_cast<int>(spatial_.size()) < config_.max_spatial_jobs &&
         !spatial_wait_queue_.empty()) {
    GpuJob job = std::move(spatial_wait_queue_.front());
    spatial_wait_queue_.pop_front();
    auto resident = std::make_shared<Resident>();
    const double jitter = std::exp(rng_.normal(0.0, config_.jitter_sigma));
    resident->submit_ms = job.submit_time_tag;
    resident->start_ms = simulator_->now();
    resident->total_work_ms = job.solo_ms * jitter + config_.launch_overhead_ms;
    resident->remaining_work_ms = resident->total_work_ms;
    resident->serial = false;
    resident->job = std::move(job);
    spatial_.push_back(std::move(resident));
  }
}

void GpuDevice::submit_spatial(GpuJob job) {
  advance_to_now();
  job.submit_time_tag = simulator_->now();
  spatial_wait_queue_.push_back(std::move(job));
  start_queued_spatial();
  note_busy_transition();
  reschedule_completion();
}

void GpuDevice::submit_serial(GpuJob job) {
  advance_to_now();
  job.submit_time_tag = simulator_->now();
  serial_queue_.push_back(std::move(job));
  start_next_serial();
  note_busy_transition();
  reschedule_completion();
}

void GpuDevice::fail_all() {
  advance_to_now();
  std::vector<ResidentPtr> doomed = spatial_;
  spatial_.clear();
  if (serial_running_) {
    doomed.push_back(serial_running_);
    serial_running_.reset();
  }
  for (const auto& resident : doomed) finish(resident, /*failed=*/true);

  auto fail_queued = [this](std::deque<GpuJob>& queue) {
    for (auto& job : queue) {
      // These batches never reached a lane: start_ms == end_ms keeps their
      // execution time at zero and attributes the entire wait since
      // submission to the queue component.
      ExecutionReport report;
      report.submit_ms = job.submit_time_tag;
      report.start_ms = simulator_->now();
      report.end_ms = report.start_ms;
      report.solo_ms = 0.0;
      report.failed = true;
      report.started = false;
      if (job.on_complete) job.on_complete(report);
    }
    queue.clear();
  };
  fail_queued(spatial_wait_queue_);
  fail_queued(serial_queue_);

  note_busy_transition();
  reschedule_completion();
}

}  // namespace paldia::cluster
