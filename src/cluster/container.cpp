#include "src/cluster/container.hpp"

// Container is a plain record; behaviour lives in Node (assignment, cold
// start accounting) and in the core Autoscaler (scale-up/-down policy).
