// The 6-worker heterogeneous testbed: one node of each Table II type, with
// procurement, hold-time cost accounting and failure injection hooks.
//
// "Cost" follows the paper's methodology (Section V): the total weighted
// cost of a scheme is the time spent *holding* each node type multiplied by
// its hourly price. Holding starts when procurement completes and ends at
// release.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/node.hpp"
#include "src/cluster/provisioner.hpp"
#include "src/common/rng.hpp"
#include "src/hw/catalog.hpp"

namespace paldia::cluster {

struct ClusterConfig {
  NodeConfig node;
  ProvisionerConfig provisioner;
  /// Event shard for node-local timers (device completions, cold starts,
  /// procurement). -1 (default) round-robins nodes over the simulator's
  /// worker shards; >= 0 pins every node of this cluster to that shard.
  /// Fleets pin each endpoint's cluster to the endpoint's own shard so
  /// steady-state serving traffic never crosses the cross-shard mailbox.
  /// Purely a batching/affinity knob: shard placement never changes event
  /// order (stamps are global), so exports are identical either way.
  int shard = -1;
};

class Cluster {
 public:
  Cluster(sim::Simulator& simulator, Rng rng,
          const models::Zoo& zoo = models::Zoo::instance(),
          const hw::Catalog& catalog = hw::Catalog::instance(),
          ClusterConfig config = {});

  Node& node(hw::NodeType type);
  const Node& node(hw::NodeType type) const;

  /// Begin holding the node type. on_ready fires after the procurement
  /// delay (immediately when already held or still being procured by an
  /// earlier call — the callback then joins the pending procurement).
  void acquire(hw::NodeType type, std::function<void(Node&)> on_ready);

  /// Mark the node type held right now, skipping procurement. Used to give
  /// every scheme a warm initial node at t = 0 (the paper's experiments
  /// start from a provisioned cluster).
  void acquire_immediately(hw::NodeType type);

  /// Stop holding (and paying for) the node type.
  void release(hw::NodeType type);

  bool held(hw::NodeType type) const;
  std::vector<hw::NodeType> held_types() const;

  /// Accumulated cost so far, including open hold intervals.
  Dollars total_cost() const;

  /// Held duration per node type so far, ms.
  DurationMs held_time_ms(hw::NodeType type) const;

  /// Failure injection passthrough (Fig. 13b).
  void fail_node(hw::NodeType type);
  void recover_node(hw::NodeType type);

  std::uint64_t total_cold_starts() const;

  const hw::Catalog& catalog() const { return *catalog_; }
  const ClusterConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *simulator_; }

 private:
  struct Holding {
    bool held = false;
    bool procuring = false;
    TimeMs held_since_ms = 0.0;
    DurationMs accumulated_ms = 0.0;
    std::vector<std::function<void(Node&)>> waiters;
  };

  sim::Simulator* simulator_;
  const hw::Catalog* catalog_;
  ClusterConfig config_;
  Provisioner provisioner_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Holding> holdings_;
};

}  // namespace paldia::cluster
