#include "src/cluster/cpu_executor.hpp"

#include <cmath>
#include <utility>

namespace paldia::cluster {

CpuExecutor::CpuExecutor(sim::Simulator& simulator, const hw::CpuSpec& spec, Rng rng)
    : simulator_(&simulator), spec_(&spec), rng_(rng) {}

DurationMs CpuExecutor::busy_time_ms() const {
  if (running_) return busy_time_ms_ + (simulator_->now() - busy_since_ms_);
  return busy_time_ms_;
}

void CpuExecutor::submit(CpuJob job) {
  queue_.emplace_back(std::move(job), simulator_->now());
  start_next();
}

void CpuExecutor::start_next() {
  if (running_ || queue_.empty()) return;
  auto [job, submit_ms] = std::move(queue_.front());
  queue_.pop_front();

  auto running = std::make_unique<Running>();
  running->submit_ms = submit_ms;
  running->start_ms = simulator_->now();
  const double jitter = std::exp(rng_.normal(0.0, jitter_sigma_));
  running->work_ms = job.solo_ms * jitter * interference_factor_;
  running->job = std::move(job);
  running_ = std::move(running);
  busy_since_ms_ = simulator_->now();

  completion_event_ = simulator_->schedule_in(
      running_->work_ms, [this] { complete_running(); }, shard_);
}

void CpuExecutor::complete_running() {
  if (!running_) return;
  ExecutionReport report;
  report.submit_ms = running_->submit_ms;
  report.start_ms = running_->start_ms;
  report.end_ms = simulator_->now();
  // Isolated time excludes the co-resident interference stretch, so the
  // report's interference_ms() surfaces it.
  report.solo_ms = running_->work_ms / interference_factor_;
  auto job = std::move(running_->job);
  busy_time_ms_ += simulator_->now() - busy_since_ms_;
  running_.reset();
  if (job.on_complete) job.on_complete(report);
  start_next();
}

void CpuExecutor::fail_all() {
  completion_event_.cancel();
  auto fail_one = [this](CpuJob& job, TimeMs submit_ms, TimeMs start_ms,
                         bool started) {
    ExecutionReport report;
    report.submit_ms = submit_ms;
    report.start_ms = start_ms;
    report.end_ms = simulator_->now();
    report.failed = true;
    report.started = started;
    if (job.on_complete) job.on_complete(report);
  };
  if (running_) {
    busy_time_ms_ += simulator_->now() - busy_since_ms_;
    fail_one(running_->job, running_->submit_ms, running_->start_ms,
             /*started=*/true);
    running_.reset();
  }
  // Queued jobs never began: start_ms == end_ms, so the whole wait counts
  // as queue time and execution time stays zero.
  for (auto& [job, submit_ms] : queue_) {
    fail_one(job, submit_ms, simulator_->now(), /*started=*/false);
  }
  queue_.clear();
}

}  // namespace paldia::cluster
