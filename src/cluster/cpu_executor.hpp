// Simulated CPU batched-inference executor (the ML framework's native CPU
// mode, Section IV-D). One batch executes at a time using the whole host
// CPU; further batches queue FIFO. Host interference from co-resident
// "regular" serverless workloads (Table III study) inflates execution via a
// pluggable factor.
#pragma once

#include <deque>
#include <memory>

#include "src/cluster/request.hpp"
#include "src/common/rng.hpp"
#include "src/hw/node_spec.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::cluster {

struct CpuJob {
  BatchId batch;
  DurationMs solo_ms = 0.0;
  DeviceCompletionFn on_complete;
};

class CpuExecutor {
 public:
  CpuExecutor(sim::Simulator& simulator, const hw::CpuSpec& spec, Rng rng);

  void submit(CpuJob job);
  void fail_all();

  /// Multiplier (>= 1) applied to all executions; set by the host
  /// interference injector. 1 = no co-residents.
  void set_interference_factor(double factor) { interference_factor_ = factor; }
  double interference_factor() const { return interference_factor_; }

  bool busy() const { return running_ != nullptr; }
  int queued_jobs() const { return static_cast<int>(queue_.size()); }
  DurationMs busy_time_ms() const;

  /// Event shard completion events land on; set by the owning Node.
  void set_shard(int shard) { shard_ = shard; }

 private:
  struct Running {
    CpuJob job;
    TimeMs submit_ms = 0.0;
    TimeMs start_ms = 0.0;
    DurationMs work_ms = 0.0;
  };

  void start_next();
  void complete_running();

  sim::Simulator* simulator_;
  const hw::CpuSpec* spec_;
  Rng rng_;
  double interference_factor_ = 1.0;
  double jitter_sigma_ = 0.03;

  std::deque<std::pair<CpuJob, TimeMs>> queue_;  // (job, submit time)
  std::unique_ptr<Running> running_;
  sim::EventHandle completion_event_;
  int shard_ = 0;

  DurationMs busy_time_ms_ = 0.0;
  TimeMs busy_since_ms_ = 0.0;
};

}  // namespace paldia::cluster
