// Online SLO-violation attribution (Section VI diagnostics).
//
// The tracer records *what* happened to each request; this engine says *why*
// the slow ones were slow. Every completed request whose end-to-end latency
// exceeded its model's SLO is classified into exactly one root cause from
// telemetry::ViolationCause, so per-cause counts always sum to the violation
// total:
//
//   failure_retry     the request rode a batch that failed and was re-queued
//   hardware_switch   its wait overlapped a reconfiguration/outage blackout
//                     window (switch_begin -> switch_active, node_failure ->
//                     next switch_active) and waiting, not execution,
//                     dominated the latency
//   cold_start        container boot charged to the request dominated
//   mps_interference  the Eq. 1 FBR contention stretch dominated
//   batching          lane/container wait after dispatch dominated
//   gateway_queue     gateway wait + batch formation dominated
//   execution         isolated execution alone was the largest share
//   unserved          never completed before the drain cap (recorded
//                     separately via record_unserved)
//
// The classification cascade is a pure function (classify_violation) shared
// with the offline analyzer (obs/report.cpp), so `paldia-analyze` reproduces
// the online counts from the exported trace.
//
// Hot-path discipline matches the Tracer: the framework holds an
// AttributionEngine* that is nullptr when attribution is disabled, so the
// disabled cost is a single branch. One engine per repetition (the
// simulation loop is single-threaded); Runner owns it and folds the totals
// into RunMetrics.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/obs/sketch.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::models {
class Zoo;
}  // namespace paldia::models

namespace paldia::obs {

class Tracer;

/// Everything the classifier needs about one completed request. The obs
/// layer uses plain ints for model/node so the offline analyzer can build
/// samples straight from parsed trace files.
struct LifecycleSample {
  std::int64_t request_id = -1;
  int model = -1;  // models::ModelId
  int node = -1;   // hw::NodeType
  TimeMs arrival_ms = 0.0;
  TimeMs submit_ms = 0.0;  // gateway -> Job Distributor handoff
  TimeMs start_ms = 0.0;   // device execution start
  TimeMs end_ms = 0.0;
  DurationMs solo_ms = 0.0;
  DurationMs interference_ms = 0.0;
  DurationMs cold_ms = 0.0;
  bool retried = false;   // a batch carrying this request previously failed
  bool blackout = false;  // [arrival, start] overlapped a blackout window
};

/// Root cause of one SLO-violating request. Pure and deterministic: retry
/// wins outright; a blackout overlap wins when waiting (gateway + lane)
/// outweighed execution-side inflation (cold + interference); otherwise the
/// dominant latency component decides, ties broken in the fixed order
/// cold > interference > batching > gateway > execution.
telemetry::ViolationCause classify_violation(const LifecycleSample& sample);

/// Switch/outage blackout windows. switch_begin and node_failure open a
/// window; switch_active closes every open window (service is restored on
/// the new node). Windows that never close extend to the end of the run.
/// Shared by the online engine and the offline analyzer so both sides agree
/// on what counts as "waited through a switch".
class BlackoutWindows {
 public:
  void open(TimeMs now);
  void close_all(TimeMs now);
  /// Does [begin, end] intersect any window? Open windows count as
  /// extending to +infinity.
  bool overlaps(TimeMs begin_ms, TimeMs end_ms) const;
  std::size_t count() const { return windows_.size(); }

 private:
  struct Window {
    TimeMs begin_ms = 0.0;
    TimeMs end_ms = kTimeNever;
  };
  std::vector<Window> windows_;
};

/// Per-model / per-node aggregation cell: completion + violation counts by
/// cause plus a streaming latency sketch.
struct AttributionBucket {
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  telemetry::ViolationCauseCounts causes{};
  QuantileSketch latency;
};

class AttributionEngine {
 public:
  /// `zoo` supplies each model's SLO (snapshotted at construction).
  explicit AttributionEngine(const models::Zoo& zoo);

  /// One completed request. Fills the retried/blackout flags from engine
  /// state, aggregates, and returns the root cause when the request
  /// violated its SLO (nullopt = compliant).
  std::optional<telemetry::ViolationCause> observe_request(LifecycleSample sample);

  /// A failed batch re-queued this request (its eventual completion is a
  /// retry, whatever its latency decomposition says).
  void on_requeued(std::int64_t request_id) { retried_.insert(request_id); }

  // Blackout-window notifications, mirrored by the framework next to the
  // corresponding tracer instants so online and offline agree.
  void on_switch_begin(TimeMs now) { blackouts_.open(now); }
  void on_switch_active(TimeMs now) { blackouts_.close_all(now); }
  void on_node_failure(TimeMs now) { blackouts_.open(now); }

  /// Requests still pending at the drain cap: counted as violations with
  /// cause kUnserved (no latency sample, no node).
  void record_unserved(int model, std::uint64_t count);

  /// Monitor-tick sampling into the metrics stream: cumulative violation
  /// total, per-cause counts that moved since the last sample, and the
  /// current p50/p95/p99 of the streaming latency sketch.
  void sample(Tracer& tracer, TimeMs now);

  // --- Aggregates ----------------------------------------------------------
  std::uint64_t completed() const { return total_.completed; }
  std::uint64_t violations() const { return total_.violations; }
  const telemetry::ViolationCauseCounts& causes() const { return total_.causes; }
  const AttributionBucket& total() const { return total_; }
  const AttributionBucket& per_model(int model) const { return per_model_[model]; }
  const AttributionBucket& per_node(int node) const { return per_node_[node]; }
  const BlackoutWindows& blackouts() const { return blackouts_; }

 private:
  std::array<DurationMs, models::kModelCount> slo_ms_{};
  BlackoutWindows blackouts_;
  std::unordered_set<std::int64_t> retried_;
  AttributionBucket total_;
  std::array<AttributionBucket, models::kModelCount> per_model_;
  std::array<AttributionBucket, hw::kNodeTypeCount> per_node_;
  telemetry::ViolationCauseCounts window_{};  // since the last sample()
};

}  // namespace paldia::obs
