// Request-lifecycle tracing + scheduler decision log (simulated clock).
//
// One Tracer per repetition: the simulation loop is single-threaded, so the
// tracer needs no locking, and parallel repetitions each write their own
// tracer slot — the exporters (chrome_trace.hpp, export.hpp) merge slots in
// repetition order, which makes the serialized output byte-identical
// regardless of how many worker threads ran the repetitions.
//
// Three record families:
//  (a) per-request lifecycle spans — arrival -> gateway queue -> dispatch
//      (lane/container/cold-start waits) -> execution -> completion, tagged
//      with model, node, batch size and the spatial/temporal split the Job
//      Distributor enacted;
//  (b) scheduler decision records — one per monitor tick: the candidate
//      sweep of Algorithm 1 (per-node best T_max, feasibility, price), the
//      winner, hysteresis counter state, and whether a reconfiguration was
//      started;
//  (c) a counter/gauge registry (cold starts, requeues, batch sizes, queue
//      depths) sampled into the event stream on monitor ticks.
//
// Hot-path discipline matches log.hpp: call sites hold a Tracer* that is
// nullptr when tracing is disabled, so the disabled cost is a single branch.
// Memory is bounded: events land in a fixed-capacity buffer with a drop
// counter (drop-newest keeps the retained prefix deterministic), decision
// records have their own cap.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/cluster/request.hpp"
#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/obs/health.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/rollup.hpp"
#include "src/obs/sampler.hpp"

namespace paldia::obs {

struct TracerConfig {
  /// Event-buffer capacity (events beyond it are counted, not stored).
  std::size_t event_capacity = 262'144;
  /// Decision-record capacity (one record per monitor tick; generous).
  std::size_t decision_capacity = 65'536;
  /// Lifecycle sample rate: keep every SLO-violating request plus a
  /// deterministic 1-in-sample_rate of compliant ones (1 = keep all).
  /// Sampled-out completions are tallied per (model, node) and surfaced as
  /// "sampled_out:<model>:<node>" counters so report counts stay exact.
  std::uint32_t sample_rate = 1;
  /// Seed for the sampler's request-id hash (see obs/sampler.hpp).
  std::uint64_t sampler_seed = kDefaultSamplerSeed;
};

struct TraceEvent {
  enum class Type : std::uint8_t {
    kRequest,    // parent request span: arrival -> completion
    kPhase,      // lifecycle phase of a request (queue / dispatch / execute)
    kBatch,      // one batch execution on a device lane
    kInstant,    // point event (hardware switches, failures, ...)
    kCounter,    // counter/gauge sample
    kSpanBegin,  // explicit nested span (framework-internal phases)
    kSpanEnd,
  };

  Type type{};
  cluster::ShareMode mode{};    // lane for kBatch / kRequest / kPhase
  std::int16_t model = -1;      // models::ModelId, -1 = not applicable
  std::int16_t node = -1;       // hw::NodeType, -1 = not applicable
  std::int32_t batch_size = 0;
  std::int32_t spatial = 0;     // the Job Distributor's y split for the round
  std::int32_t temporal = 0;
  std::int64_t id = -1;         // request id (kRequest/kPhase) or batch id
  const char* name = nullptr;   // static string literal
  /// Counter samples emitted by sample_counters() carry the registry key
  /// here (points into the tracer's registry; valid while it lives).
  const char* counter_name = nullptr;
  TimeMs start_ms = 0.0;
  TimeMs end_ms = 0.0;
  double value = 0.0;           // counter/gauge value
  DurationMs solo_ms = 0.0;
  DurationMs interference_ms = 0.0;
  DurationMs cold_ms = 0.0;
};

/// One candidate of Algorithm 1's per-tick sweep.
struct CandidateEval {
  hw::NodeType node{};
  DurationMs t_max_ms = 0.0;
  bool feasible = false;
  bool is_gpu = false;
  Dollars price_per_hour = 0.0;
  int best_y = 0;
};

/// One monitor tick's hardware-selection decision.
struct DecisionRecord {
  TimeMs t_ms = 0.0;
  hw::NodeType current{};       // node serving when the tick fired
  hw::NodeType raw_choice{};    // HardwareSelection::choose winner
  hw::NodeType final_choice{};  // post-hysteresis node the policy returned
  bool switch_begun = false;    // the framework started reconfiguring
  bool has_sweep = false;       // candidate sweep populated (Paldia policy)
  bool raw_feasible = false;
  bool cpu_short_circuit = false;  // a feasible CPU node won outright
  DurationMs raw_t_max_ms = 0.0;
  DurationMs best_t_max_ms = 0.0;  // most performant feasible GPU's T_max
  DurationMs band_ms = 0.0;        // the cheapest-within-band tolerance
  int wait_ctr = 0;                // hysteresis state after the decision
  int downgrade_ctr = 0;
  int emergency_ctr = 0;
  /// Sweep-work accounting (SelectionSweep): the capable pool size, how many
  /// candidates the pruned walk evaluates, and how many it proves away.
  /// Identical under --no-prune (the counts replay the pruned walk either
  /// way); paldia-analyze reports the sweep work saved from these.
  int pool_size = 0;
  int evaluated_candidates = 0;
  int pruned_candidates = 0;
  /// EWMA horizon forecast and trailing observed rate at the tick, summed
  /// over workloads — the calibration layer pairs these with what actually
  /// happened in the following interval.
  double predicted_rps = 0.0;
  double observed_rps = 0.0;
  std::vector<CandidateEval> candidates;  // catalog cost-ascending order
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {})
      : config_(config), sampler_(config.sample_rate, config.sampler_seed) {
    slo_ms_.fill(kTimeNever);
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Per-model SLOs the sampler classifies against (violators are always
  /// retained). Defaults to kTimeNever, i.e. nothing counts as violating —
  /// plain 1-in-N sampling until the framework installs the zoo's SLOs.
  void set_model_slos(const std::array<DurationMs, models::kModelCount>& slos) {
    slo_ms_ = slos;
  }

  // --- Request lifecycle ---------------------------------------------------
  /// Record one completed request: emits a parent kRequest span plus three
  /// contiguous kPhase children (queue: arrival->submit, dispatch:
  /// submit->start, execute: start->end) whose durations sum exactly to the
  /// end-to-end latency. Atomic against the capacity cap: either all four
  /// events are stored or all four are dropped.
  void record_request_lifecycle(std::int64_t request_id, models::ModelId model,
                                hw::NodeType node, cluster::ShareMode mode,
                                int batch_size, int spatial, int temporal,
                                TimeMs arrival_ms, TimeMs submit_ms, TimeMs start_ms,
                                TimeMs end_ms, DurationMs solo_ms,
                                DurationMs interference_ms, DurationMs cold_ms);

  /// Bulk lifecycle path: one call per *batch* completion instead of one
  /// per request. Composes all 4*count lifecycle events into a scratch
  /// buffer and lands them with a single capacity check + bulk insert
  /// (groups of 4 stay atomic: a request's span quartet is either stored
  /// whole or dropped whole, exactly like the per-request path).
  void record_batch_lifecycles(const cluster::Request* requests, int count,
                               models::ModelId model, hw::NodeType node,
                               cluster::ShareMode mode, int batch_size, int spatial,
                               int temporal, TimeMs submit_ms, TimeMs start_ms,
                               TimeMs end_ms, DurationMs solo_ms,
                               DurationMs interference_ms, DurationMs cold_ms);

  /// Append pre-composed events in one capacity check + one insert. When
  /// group_size > 1, only a leading whole number of groups is accepted
  /// (atomicity unit); whatever does not fit is counted dropped. Returns
  /// the number of events stored.
  std::size_t append_batch(std::span<const TraceEvent> events,
                           std::size_t group_size = 0);

  /// Record one batch execution on a device lane.
  void record_batch(std::int64_t batch_id, models::ModelId model, hw::NodeType node,
                    cluster::ShareMode mode, int batch_size, TimeMs submit_ms,
                    TimeMs start_ms, TimeMs end_ms, DurationMs solo_ms,
                    DurationMs cold_ms);

  /// Point event (hardware switch milestones, failures, ...).
  void instant(const char* name, TimeMs now, hw::NodeType node, double value = 0.0);
  void instant(const char* name, TimeMs now, double value = 0.0);

  /// A failed batch sent this request back to the gateway: emits a
  /// "request_requeued" instant carrying the request id, so the offline
  /// analyzer can rebuild the retried-request set the attribution engine
  /// tracks online.
  void request_requeued(std::int64_t request_id, models::ModelId model, TimeMs now,
                        hw::NodeType node);

  // --- Explicit nested spans ----------------------------------------------
  /// Open/close a named span on the framework track. Properly nested
  /// (LIFO); an end that does not match the innermost open span is counted
  /// in unbalanced_spans() and otherwise ignored.
  void begin_span(const char* name, TimeMs now);
  void end_span(const char* name, TimeMs now);
  int open_spans() const { return static_cast<int>(span_stack_.size()); }
  std::uint64_t unbalanced_spans() const { return unbalanced_; }

  // --- Counter/gauge registry ----------------------------------------------
  /// Accumulate a named counter (no event emitted; sample_counters() dumps
  /// the totals). The registry keys by copied string, so dynamic names
  /// (e.g. "unserved:<model>") are safe here, unlike gauge().
  void count(const char* name, double delta = 1.0);
  /// Emit one gauge sample event. model_tag tags the sample with a model
  /// (e.g. per-model queue depth); -1 = untagged.
  void gauge(const char* name, TimeMs now, double value, int model_tag = -1);
  /// Emit a kCounter event per registered counter, in name order.
  void sample_counters(TimeMs now);
  double counter_value(const std::string& name) const;
  const std::map<std::string, double>& counters() const { return counters_; }

  // --- Scheduler decisions -------------------------------------------------
  /// Open the decision record for the current monitor tick. Returns nullptr
  /// when the decision log is full (the tick is then counted as dropped).
  DecisionRecord* begin_decision(TimeMs now, hw::NodeType current);
  /// The record opened by begin_decision (policies enrich it mid-tick).
  DecisionRecord* current_decision() { return open_decision_; }
  /// Seal the record with the post-hysteresis choice.
  void end_decision(hw::NodeType final_choice, bool switch_begun);

  // --- Introspection / export ----------------------------------------------
  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  std::uint64_t dropped_events() const { return dropped_events_; }
  std::uint64_t dropped_decisions() const { return dropped_decisions_; }
  const TracerConfig& config() const { return config_; }
  const TraceSampler& sampler() const { return sampler_; }
  /// Compliant lifecycles the sampler dropped (not stored, not counted as
  /// dropped_events — the per-(model, node) totals live in the counter
  /// registry as "sampled_out:<model>:<node>" after sample_counters()).
  std::uint64_t sampled_out_total() const { return sampled_out_total_; }

 private:
  bool reserve(std::size_t n);
  void push(const TraceEvent& event);
  /// Sampling decision for one completed request; tallies the drop when it
  /// says no. Pure in (request_id, SLO verdict) — see obs/sampler.hpp.
  bool sample_keep(std::int64_t request_id, models::ModelId model,
                   hw::NodeType node, TimeMs arrival_ms, TimeMs end_ms);
  /// Fold the sampled-out tallies into the counter registry so the next
  /// sample_counters() emits them in sorted-key order with everything else.
  void flush_sampled_out_counters();

  TracerConfig config_;
  TraceSampler sampler_;
  std::array<DurationMs, models::kModelCount> slo_ms_{};
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> scratch_;  // bulk-lifecycle staging, reused
  std::vector<DecisionRecord> decisions_;
  DecisionRecord* open_decision_ = nullptr;
  std::vector<const char*> span_stack_;
  std::map<std::string, double> counters_;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_decisions_ = 0;
  std::uint64_t unbalanced_ = 0;
  std::array<std::uint64_t,
             static_cast<std::size_t>(models::kModelCount) * hw::kNodeTypeCount>
      sampled_out_{};
  std::uint64_t sampled_out_total_ = 0;
};

/// Per-repetition observation slots for one Runner::run call. Slots are
/// created up front (rep order) and filled concurrently; exporters read them
/// in slot order, so the serialized output is independent of thread count.
struct RunTrace {
  /// Tracer slot configuration. Runner::run overwrites sample_rate from
  /// SchemeFactoryOptions so the --sample-rate flag is the single knob.
  TracerConfig config;
  /// When false, no tracer slots are allocated: a rollup- or profile-only
  /// run observes every completion in fixed memory with no event buffers.
  bool capture_events = true;
  /// Allocate one RollupAggregator per repetition (--rollup-out).
  bool collect_rollups = false;
  /// Allocate one Profiler per repetition (--profile).
  bool profile = false;
  /// Allocate one HealthEngine per repetition (--alerts-out). Runner::run
  /// overwrites health_config's slo_target / burn windows from
  /// SchemeFactoryOptions so the CLI flags are the single knob.
  bool collect_health = false;
  RollupConfig rollup_config;
  HealthConfig health_config;
  std::vector<std::unique_ptr<Tracer>> reps;
  std::vector<std::unique_ptr<RollupAggregator>> rollups;
  std::vector<std::unique_ptr<Profiler>> profiles;
  std::vector<std::unique_ptr<HealthEngine>> healths;

  /// Total dropped events across repetitions.
  std::uint64_t dropped_events() const;
  /// Total dropped decision records across repetitions.
  std::uint64_t dropped_decisions() const;
  /// Total sampler-dropped compliant lifecycles across repetitions.
  std::uint64_t sampled_out() const;
};

}  // namespace paldia::obs
