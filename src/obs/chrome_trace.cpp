#include "src/obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>

#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"

namespace paldia::obs {
namespace {

// Process-id block per repetition: pid 0 = framework, 1..kNodeTypeCount =
// one process per hardware node type.
constexpr int kPidsPerRep = 1 + hw::kNodeTypeCount;

// Fixed-precision microsecond timestamp: deterministic bytes for a given
// double, enough resolution for sub-ms simulated times.
std::string us(TimeMs ms) {
  char buf[48];
  const double value = std::isfinite(ms) ? ms * 1000.0 : 0.0;
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* lane_name(cluster::ShareMode mode) {
  switch (mode) {
    case cluster::ShareMode::kSpatial: return "mps";
    case cluster::ShareMode::kTemporal: return "time-shared";
    case cluster::ShareMode::kCpu: return "cpu";
  }
  return "?";
}

int lane_tid(cluster::ShareMode mode) { return static_cast<int>(mode); }

std::string model_name(std::int16_t tag) {
  if (tag < 0 || tag >= models::kModelCount) return "";
  return std::string(models::model_id_name(models::ModelId(tag)));
}

std::string node_name(std::int16_t tag) {
  if (tag < 0 || tag >= hw::kNodeTypeCount) return "";
  return std::string(hw::node_type_name(hw::NodeType(tag)));
}

class EventStream {
 public:
  explicit EventStream(std::ostream& out) : out_(out) {}

  /// Emit one raw JSON object (the caller supplies the braces' contents).
  void emit(const std::string& body) {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "{" << body << "}";
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

std::string common_fields(const char* ph, int pid, int tid, TimeMs ts) {
  std::string body = "\"ph\":\"";
  body += ph;
  body += "\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + us(ts);
  return body;
}

void emit_metadata(EventStream& stream, int pid, int tid, const char* kind,
                   const std::string& name) {
  stream.emit("\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(tid) + ",\"ts\":0,\"name\":\"" + kind +
              "\",\"args\":{\"name\":\"" + json_escape(name) + "\"}");
}

void emit_request_async(EventStream& stream, int pid, const TraceEvent& event,
                        const char* ph, TimeMs ts, const std::string& args) {
  std::string body = common_fields(ph, pid, /*tid=*/0, ts);
  body += ",\"cat\":\"request\",\"id\":" + std::to_string(event.id);
  body += ",\"name\":\"";
  body += event.name;
  body += "\"";
  if (!args.empty()) body += ",\"args\":{" + args + "}";
  stream.emit(body);
}

std::string request_args(const TraceEvent& event, bool with_components) {
  std::string args = "\"model\":\"" + json_escape(model_name(event.model)) +
                     "\",\"node\":\"" + json_escape(node_name(event.node)) +
                     "\",\"lane\":\"" + lane_name(event.mode) +
                     "\",\"batch_size\":" + std::to_string(event.batch_size) +
                     ",\"spatial\":" + std::to_string(event.spatial) +
                     ",\"temporal\":" + std::to_string(event.temporal);
  if (with_components) {
    args += ",\"latency_ms\":" + num(event.end_ms - event.start_ms) +
            ",\"solo_ms\":" + num(event.solo_ms) +
            ",\"interference_ms\":" + num(event.interference_ms) +
            ",\"cold_start_ms\":" + num(event.cold_ms);
  }
  return args;
}

void emit_decision(EventStream& stream, int pid, const DecisionRecord& record) {
  std::string args =
      "\"current\":\"" +
      json_escape(std::string(hw::node_type_name(record.current))) +
      "\",\"chosen\":\"" +
      json_escape(std::string(hw::node_type_name(record.raw_choice))) +
      "\",\"final\":\"" +
      json_escape(std::string(hw::node_type_name(record.final_choice))) +
      "\",\"switch_begun\":" + (record.switch_begun ? "true" : "false") +
      ",\"feasible\":" + (record.raw_feasible ? "true" : "false") +
      ",\"t_max_ms\":" + num(record.raw_t_max_ms) +
      ",\"best_t_max_ms\":" + num(record.best_t_max_ms) +
      ",\"band_ms\":" + num(record.band_ms) +
      ",\"wait_ctr\":" + std::to_string(record.wait_ctr) +
      ",\"downgrade_ctr\":" + std::to_string(record.downgrade_ctr) +
      ",\"emergency_ctr\":" + std::to_string(record.emergency_ctr) +
      ",\"predicted_rps\":" + num(record.predicted_rps) +
      ",\"observed_rps\":" + num(record.observed_rps);
  if (record.has_sweep) {
    args += ",\"cpu_short_circuit\":";
    args += record.cpu_short_circuit ? "true" : "false";
    args += ",\"candidates\":[";
    bool first = true;
    for (const auto& candidate : record.candidates) {
      if (!first) args += ",";
      first = false;
      args += "{\"node\":\"" +
              json_escape(std::string(hw::node_type_name(candidate.node))) +
              "\",\"t_max_ms\":" + num(candidate.t_max_ms) +
              ",\"feasible\":" + (candidate.feasible ? "true" : "false") +
              ",\"price_per_hour\":" + num(candidate.price_per_hour) +
              ",\"best_y\":" + std::to_string(candidate.best_y) + "}";
    }
    args += "]";
  }
  std::string body = common_fields("i", pid, /*tid=*/1, record.t_ms);
  body += ",\"s\":\"p\",\"name\":\"hardware_selection\",\"args\":{" + args + "}";
  stream.emit(body);
}

void emit_rep(EventStream& stream, const Tracer& tracer, int rep,
              const std::string& label) {
  const int base = rep * kPidsPerRep;
  const std::string suffix =
      (label.empty() ? std::string() : label + " ") + "rep " + std::to_string(rep);

  emit_metadata(stream, base, 0, "process_name", "paldia framework (" + suffix + ")");
  emit_metadata(stream, base, 0, "thread_name", "requests/framework");
  emit_metadata(stream, base, 1, "thread_name", "scheduler decisions");

  // Name only node processes that actually carry events (deterministic:
  // derived from the recorded event sequence).
  std::set<int> used_nodes;
  for (const auto& event : tracer.events()) {
    if (event.type == TraceEvent::Type::kBatch && event.node >= 0) {
      used_nodes.insert(event.node);
    }
  }
  for (const int node : used_nodes) {
    const int pid = base + 1 + node;
    emit_metadata(stream, pid, 0, "process_name",
                  std::string(hw::node_type_name(hw::NodeType(node))) + " (" +
                      suffix + ")");
    for (const auto mode : {cluster::ShareMode::kSpatial, cluster::ShareMode::kTemporal,
                            cluster::ShareMode::kCpu}) {
      emit_metadata(stream, pid, lane_tid(mode), "thread_name", lane_name(mode));
    }
  }

  for (const auto& event : tracer.events()) {
    switch (event.type) {
      case TraceEvent::Type::kRequest:
        emit_request_async(stream, base, event, "b", event.start_ms,
                           request_args(event, /*with_components=*/true));
        break;
      case TraceEvent::Type::kPhase: {
        emit_request_async(stream, base, event, "b", event.start_ms, "");
        TraceEvent end = event;
        std::string args = "\"dur_ms\":" + num(event.end_ms - event.start_ms);
        emit_request_async(stream, base, end, "e", event.end_ms, args);
        // The parent kRequest "e" is emitted when its last phase closes:
        // record_request_lifecycle orders phases queue/dispatch/execute, so
        // "execute" is always the closer.
        if (std::string_view(event.name) == "execute") {
          TraceEvent parent = event;
          parent.name = "request";
          emit_request_async(stream, base, parent, "e", event.end_ms, "");
        }
        break;
      }
      case TraceEvent::Type::kBatch: {
        std::string body = common_fields("X", base + 1 + std::max<int>(0, event.node),
                                         lane_tid(event.mode), event.start_ms);
        body += ",\"dur\":" + us(event.end_ms - event.start_ms);
        body += ",\"name\":\"batch " + json_escape(model_name(event.model)) + " x" +
                std::to_string(event.batch_size) + "\"";
        // submit/e2e are reconstructed from start - lane_wait so the inline
        // report extraction can quantize through the exact same arithmetic.
        const double submit_ms = event.start_ms - event.value;
        body += ",\"args\":{\"batch_id\":" + std::to_string(event.id) +
                ",\"lane\":\"" + lane_name(event.mode) +
                "\",\"solo_ms\":" + num(event.solo_ms) +
                ",\"cold_start_ms\":" + num(event.cold_ms) +
                ",\"lane_wait_ms\":" + num(event.value) +
                ",\"submit_ms\":" + num(submit_ms) +
                ",\"e2e_ms\":" + num(event.end_ms - submit_ms) + "}";
        stream.emit(body);
        break;
      }
      case TraceEvent::Type::kInstant: {
        std::string body = common_fields("i", base, /*tid=*/0, event.start_ms);
        body += ",\"s\":\"p\",\"name\":\"";
        body += event.name;
        body += "\",\"args\":{\"value\":" + num(event.value);
        if (event.node >= 0) {
          body += ",\"node\":\"" + json_escape(node_name(event.node)) + "\"";
        }
        if (event.id >= 0) body += ",\"id\":" + std::to_string(event.id);
        if (event.model >= 0) {
          body += ",\"model\":\"" + json_escape(model_name(event.model)) + "\"";
        }
        body += "}";
        stream.emit(body);
        break;
      }
      case TraceEvent::Type::kCounter: {
        std::string name = event.counter_name != nullptr
                               ? std::string(event.counter_name)
                               : std::string(event.name);
        if (event.model >= 0) name += ":" + model_name(event.model);
        std::string body = common_fields("C", base, /*tid=*/0, event.start_ms);
        body += ",\"name\":\"" + json_escape(name) +
                "\",\"args\":{\"value\":" + num(event.value) + "}";
        stream.emit(body);
        break;
      }
      case TraceEvent::Type::kSpanBegin:
      case TraceEvent::Type::kSpanEnd: {
        std::string body = common_fields(
            event.type == TraceEvent::Type::kSpanBegin ? "B" : "E", base,
            /*tid=*/0, event.start_ms);
        body += ",\"name\":\"";
        body += event.name;
        body += "\"";
        stream.emit(body);
        break;
      }
    }
  }

  for (const auto& record : tracer.decisions()) emit_decision(stream, base, record);

  if (tracer.dropped_events() > 0 || tracer.dropped_decisions() > 0) {
    std::string body = common_fields("i", base, /*tid=*/0, 0.0);
    body += ",\"s\":\"p\",\"name\":\"dropped_records\",\"args\":{\"events\":" +
            std::to_string(tracer.dropped_events()) +
            ",\"decisions\":" + std::to_string(tracer.dropped_decisions()) + "}";
    stream.emit(body);
  }
}

// Self-profile lane (--profile): one "X" slice per instrumented phase on
// the framework process, tid 2, laid out back-to-back so relative phase
// costs read directly off the lane. These are host wall-clock aggregates —
// nondeterministic, and deliberately emitted without "batch_id" so the
// report extractor's batch parser skips them.
void emit_profile_lane(EventStream& stream, const Profiler& profiler, int rep) {
  const int pid = rep * kPidsPerRep;
  emit_metadata(stream, pid, 2, "thread_name", "self-profile");
  double cursor_ms = 0.0;
  for (int i = 0; i < kProfilePhaseCount; ++i) {
    const PhaseStats& stats = profiler.phases()[static_cast<std::size_t>(i)];
    if (stats.calls == 0) continue;
    const double total_ms = static_cast<double>(stats.total_ns) / 1e6;
    std::string body = common_fields("X", pid, /*tid=*/2, cursor_ms);
    body += ",\"dur\":" + us(total_ms);
    body += ",\"name\":\"";
    body += profile_phase_name(static_cast<ProfilePhase>(i));
    body += "\",\"args\":{\"calls\":" + std::to_string(stats.calls) +
            ",\"mean_us\":" +
            num(static_cast<double>(stats.total_ns) /
                (1e3 * static_cast<double>(stats.calls))) +
            ",\"max_us\":" + num(static_cast<double>(stats.max_ns) / 1e3) + "}";
    stream.emit(body);
    cursor_ms += total_ms;
  }
}

// Health lane (--alerts-out): one "X" slice per resolved incident on the
// framework process, tid 3, spanning open -> resolve. Fully deterministic
// (simulated time), but deliberately emitted without "batch_id" so the
// report extractor's batch parser skips the lane, like the profile lane.
void emit_health_lane(EventStream& stream, const HealthEngine& engine, int rep) {
  const int pid = rep * kPidsPerRep;
  emit_metadata(stream, pid, 3, "thread_name", "health");
  for (const AlertRecord& record : engine.alerts()) {
    std::string body = common_fields("X", pid, /*tid=*/3, record.open_ms);
    body += ",\"dur\":" + us(record.resolve_ms - record.open_ms);
    body += ",\"name\":\"";
    body += health_detector_name(record.detector);
    body += "\",\"args\":{\"detector\":\"";
    body += health_detector_name(record.detector);
    body += "\",\"model\":\"" + json_escape(model_name(record.model)) +
            "\",\"node\":\"" + json_escape(node_name(record.node)) +
            "\",\"fire_ms\":" + num(record.fire_ms) +
            ",\"resolved_at_end\":" + (record.resolved_at_end ? "true" : "false") +
            ",\"peak_severity\":" + num(record.peak_severity) +
            ",\"ticks_breached\":" + std::to_string(record.ticks_breached) +
            ",\"blame\":\"" +
            std::string(telemetry::violation_cause_name(record.blame)) +
            "\",\"violations\":" + std::to_string(record.violations) +
            ",\"completed\":" + std::to_string(record.completed) + "}";
    stream.emit(body);
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const RunTrace& trace,
                        const std::string& label) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventStream stream(out);
  for (std::size_t rep = 0; rep < trace.reps.size(); ++rep) {
    if (trace.reps[rep] == nullptr) continue;
    emit_rep(stream, *trace.reps[rep], static_cast<int>(rep), label);
  }
  for (std::size_t rep = 0; rep < trace.profiles.size(); ++rep) {
    const Profiler* profiler = trace.profiles[rep].get();
    if (profiler == nullptr || profiler->empty()) continue;
    emit_profile_lane(stream, *profiler, static_cast<int>(rep));
  }
  for (std::size_t rep = 0; rep < trace.healths.size(); ++rep) {
    const HealthEngine* engine = trace.healths[rep].get();
    if (engine == nullptr || engine->alerts().empty()) continue;
    emit_health_lane(stream, *engine, static_cast<int>(rep));
  }
  // Truncation is surfaced in machine-readable form: an analyzer must be
  // able to tell a complete trace from one whose ring buffers overflowed.
  out << "\n],\"metadata\":{\"reps\":" << trace.reps.size()
      << ",\"dropped_events\":" << trace.dropped_events()
      << ",\"dropped_decisions\":" << trace.dropped_decisions() << "}}\n";
}

bool write_chrome_trace_file(const std::string& path, const RunTrace& trace,
                             const std::string& label, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  write_chrome_trace(out, trace, label);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace paldia::obs
