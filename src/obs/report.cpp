#include "src/obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <unordered_map>

#include "src/common/table.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/models/zoo.hpp"

namespace paldia::obs {
namespace {

using telemetry::ViolationCause;

constexpr int kPidsPerRep = 1 + hw::kNodeTypeCount;  // chrome_trace layout
constexpr std::string_view kUnservedPrefix = "unserved:";
constexpr std::string_view kSampledOutPrefix = "sampled_out:";

std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int model_index(std::string_view name) {
  for (int i = 0; i < models::kModelCount; ++i) {
    if (models::model_id_name(models::ModelId(i)) == name) return i;
  }
  return -1;
}

int node_index(std::string_view name) {
  for (int i = 0; i < hw::kNodeTypeCount; ++i) {
    if (hw::node_type_name(hw::NodeType(i)) == name) return i;
  }
  return -1;
}

bool is_blackout_open(std::string_view name) {
  return name == "switch_begin" || name == "node_failure";
}

bool is_timeline_event(std::string_view name) {
  return name == "switch_begin" || name == "switch_active" ||
         name == "node_failure" || name == "node_recovered";
}

/// One repetition's ingestion state, shared verbatim between the inline
/// (RunTrace) and offline (parsed file) producers so both yield identical
/// RepData for the same underlying run.
class RepBuilder {
 public:
  explicit RepBuilder(RepData& out) : out_(out) {}

  void on_request_begin(std::int64_t id, TimeMs arrival_ms, int model, int node,
                        DurationMs solo_ms, DurationMs interference_ms,
                        DurationMs cold_ms) {
    LifecycleSample& sample = pending_[id];
    sample.request_id = id;
    sample.arrival_ms = arrival_ms;
    sample.model = model;
    sample.node = node;
    sample.solo_ms = solo_ms;
    sample.interference_ms = interference_ms;
    sample.cold_ms = cold_ms;
  }

  /// Phase close at `t`; "execute" completes the sample.
  void on_phase_end(std::int64_t id, std::string_view phase, TimeMs t_ms) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // lifecycle head was dropped
    if (phase == "queue") {
      it->second.submit_ms = t_ms;
    } else if (phase == "dispatch") {
      it->second.start_ms = t_ms;
    } else if (phase == "execute") {
      it->second.end_ms = t_ms;
      out_.requests.push_back(it->second);
      pending_.erase(it);
    }
  }

  void on_batch(int node, TimeMs start_ms, DurationMs dur_ms, TimeMs submit_ms,
                DurationMs e2e_ms) {
    RepData::BatchObs obs;
    obs.node = node;
    obs.start_ms = start_ms;
    obs.dur_ms = dur_ms;
    obs.submit_ms = submit_ms;
    obs.end_ms = submit_ms + e2e_ms;
    out_.batches.push_back(obs);
  }

  void on_decision(TimeMs t_ms, int node, DurationMs t_max_ms, int best_y,
                   bool feasible, double predicted_rps, double observed_rps) {
    CalibrationInterval interval;
    interval.t_ms = t_ms;
    interval.node = node;
    interval.predicted_tmax_ms = t_max_ms;
    interval.best_y = best_y;
    interval.predicted_feasible = feasible;
    interval.predicted_rps = predicted_rps;
    interval.observed_rps = observed_rps;
    out_.ticks.push_back(interval);
  }

  void on_instant(std::string_view name, TimeMs t_ms, std::string node,
                  std::int64_t id) {
    if (name == "request_requeued") {
      if (id >= 0) out_.retried.insert(id);
      return;
    }
    if (!is_timeline_event(name)) return;
    if (is_blackout_open(name)) {
      out_.blackouts.open(t_ms);
    } else if (name == "switch_active") {
      out_.blackouts.close_all(t_ms);
    }
    RepData::SwitchEvent event;
    event.t_ms = t_ms;
    event.event = std::string(name);
    event.node = std::move(node);
    out_.switches.push_back(std::move(event));
  }

  /// Counter sample; only the last value per counter survives (counters are
  /// cumulative, so the final sample is the run total).
  void on_counter(std::string_view name, double value) {
    if (name.substr(0, kUnservedPrefix.size()) == kUnservedPrefix) {
      const int model = model_index(name.substr(kUnservedPrefix.size()));
      if (model >= 0) unserved_last_[model] = value;
      return;
    }
    if (name.substr(0, kSampledOutPrefix.size()) == kSampledOutPrefix) {
      const std::string_view rest = name.substr(kSampledOutPrefix.size());
      const std::size_t sep = rest.find(':');
      if (sep == std::string_view::npos) return;
      const int model = model_index(rest.substr(0, sep));
      const int node = node_index(rest.substr(sep + 1));
      if (model < 0 || node < 0) return;
      sampled_out_last_[{model, node}] = value;
    }
  }

  void finish() {
    for (const auto& [model, value] : unserved_last_) {
      const auto count = static_cast<std::uint64_t>(std::llround(value));
      if (count > 0) out_.unserved[model] = count;
    }
    for (const auto& [key, value] : sampled_out_last_) {
      const auto count = static_cast<std::uint64_t>(std::llround(value));
      if (count > 0) out_.sampled_out[key] = count;
    }
  }

 private:
  RepData& out_;
  std::unordered_map<std::int64_t, LifecycleSample> pending_;
  std::map<int, double> unserved_last_;
  std::map<std::pair<int, int>, double> sampled_out_last_;
};

}  // namespace

double quantize_timestamp(TimeMs ms) {
  char buf[48];
  const double value = std::isfinite(ms) ? ms * 1000.0 : 0.0;
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return std::strtod(buf, nullptr) / 1000.0;
}

double quantize_number(double value) {
  if (!std::isfinite(value)) return 0.0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return std::strtod(buf, nullptr);
}

// --- Inline producer --------------------------------------------------------

RunData extract_run_data(const RunTrace& trace, const std::string& label) {
  RunData out;
  out.label = label;
  out.reps_declared = static_cast<int>(trace.reps.size());
  out.dropped_events = trace.dropped_events();
  out.dropped_decisions = trace.dropped_decisions();
  out.reps.resize(trace.reps.size());

  for (std::size_t rep = 0; rep < trace.reps.size(); ++rep) {
    const Tracer* tracer = trace.reps[rep].get();
    if (tracer == nullptr) continue;
    RepBuilder builder(out.reps[rep]);

    for (const TraceEvent& event : tracer->events()) {
      switch (event.type) {
        case TraceEvent::Type::kRequest:
          builder.on_request_begin(event.id, quantize_timestamp(event.start_ms),
                                   event.model, event.node,
                                   quantize_number(event.solo_ms),
                                   quantize_number(event.interference_ms),
                                   quantize_number(event.cold_ms));
          break;
        case TraceEvent::Type::kPhase:
          builder.on_phase_end(event.id, event.name,
                               quantize_timestamp(event.end_ms));
          break;
        case TraceEvent::Type::kBatch: {
          // Mirror chrome_trace.cpp's field arithmetic exactly, then
          // quantize through the same formats a file reader sees.
          const double submit_ms = event.start_ms - event.value;
          builder.on_batch(event.node, quantize_timestamp(event.start_ms),
                           quantize_timestamp(event.end_ms - event.start_ms),
                           quantize_number(submit_ms),
                           quantize_number(event.end_ms - submit_ms));
          break;
        }
        case TraceEvent::Type::kInstant:
          builder.on_instant(
              event.name, quantize_timestamp(event.start_ms),
              event.node >= 0
                  ? std::string(hw::node_type_name(hw::NodeType(event.node)))
                  : std::string(),
              event.id);
          break;
        case TraceEvent::Type::kCounter: {
          const char* name =
              event.counter_name != nullptr ? event.counter_name : event.name;
          if (name != nullptr) builder.on_counter(name, quantize_number(event.value));
          break;
        }
        case TraceEvent::Type::kSpanBegin:
        case TraceEvent::Type::kSpanEnd:
          break;
      }
    }

    for (const DecisionRecord& record : tracer->decisions()) {
      if (!record.has_sweep) continue;
      for (const CandidateEval& candidate : record.candidates) {
        if (candidate.node != record.final_choice) continue;
        builder.on_decision(quantize_timestamp(record.t_ms),
                            static_cast<int>(record.final_choice),
                            quantize_number(candidate.t_max_ms), candidate.best_y,
                            candidate.feasible,
                            quantize_number(record.predicted_rps),
                            quantize_number(record.observed_rps));
        break;
      }
    }
    builder.finish();
  }
  return out;
}

// --- Offline producer -------------------------------------------------------

bool parse_chrome_trace(const common::JsonValue& root, const std::string& label,
                        RunData* out, std::string* error) {
  *out = RunData{};
  out->label = label;
  const common::JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error != nullptr) *error = "no traceEvents array (not a trace export?)";
    return false;
  }
  if (const common::JsonValue* meta = root.find("metadata")) {
    out->reps_declared = static_cast<int>(meta->number_or("reps", 0));
    out->dropped_events =
        static_cast<std::uint64_t>(meta->number_or("dropped_events", 0));
    out->dropped_decisions =
        static_cast<std::uint64_t>(meta->number_or("dropped_decisions", 0));
  }
  out->reps.resize(static_cast<std::size_t>(std::max(0, out->reps_declared)));

  // Builders are created on demand per repetition; events within a rep
  // appear in recording order (the exporter writes rep blocks sequentially).
  std::vector<std::unique_ptr<RepBuilder>> builders;
  const auto builder_for = [&](int rep) -> RepBuilder& {
    if (static_cast<std::size_t>(rep) >= out->reps.size()) {
      out->reps.resize(static_cast<std::size_t>(rep) + 1);
    }
    if (static_cast<std::size_t>(rep) >= builders.size()) {
      builders.resize(static_cast<std::size_t>(rep) + 1);
    }
    if (builders[static_cast<std::size_t>(rep)] == nullptr) {
      builders[static_cast<std::size_t>(rep)] =
          std::make_unique<RepBuilder>(out->reps[static_cast<std::size_t>(rep)]);
    }
    return *builders[static_cast<std::size_t>(rep)];
  };

  for (const common::JsonValue& event : events->as_array()) {
    const std::string ph = event.string_or("ph", "");
    if (ph.empty() || ph == "M") continue;
    const int pid = static_cast<int>(event.number_or("pid", 0));
    const int rep = pid / kPidsPerRep;
    if (rep < 0) continue;
    const TimeMs t_ms = event.number_or("ts", 0.0) / 1000.0;
    const std::string name = event.string_or("name", "");
    const common::JsonValue* args = event.find("args");

    if (ph == "b" && name == "request") {
      if (args == nullptr) continue;
      builder_for(rep).on_request_begin(
          static_cast<std::int64_t>(event.number_or("id", -1)), t_ms,
          model_index(args->string_or("model", "")),
          node_index(args->string_or("node", "")), args->number_or("solo_ms", 0.0),
          args->number_or("interference_ms", 0.0),
          args->number_or("cold_start_ms", 0.0));
    } else if (ph == "e") {
      builder_for(rep).on_phase_end(
          static_cast<std::int64_t>(event.number_or("id", -1)), name, t_ms);
    } else if (ph == "X") {
      // The self-profile lane (--profile) also emits "X" slices; only batch
      // slices carry batch_id, and profile timings must never reach the
      // deterministic report path.
      if (args == nullptr || args->find("batch_id") == nullptr) continue;
      builder_for(rep).on_batch(pid % kPidsPerRep - 1, t_ms,
                                event.number_or("dur", 0.0) / 1000.0,
                                args->number_or("submit_ms", 0.0),
                                args->number_or("e2e_ms", 0.0));
    } else if (ph == "i") {
      if (name == "hardware_selection") {
        if (args == nullptr) continue;
        const common::JsonValue* candidates = args->find("candidates");
        if (candidates == nullptr || !candidates->is_array()) continue;
        const std::string final_node = args->string_or("final", "");
        for (const common::JsonValue& candidate : candidates->as_array()) {
          if (candidate.string_or("node", "") != final_node) continue;
          builder_for(rep).on_decision(
              t_ms, node_index(final_node), candidate.number_or("t_max_ms", 0.0),
              static_cast<int>(candidate.number_or("best_y", 0)),
              candidate.bool_or("feasible", false),
              args->number_or("predicted_rps", 0.0),
              args->number_or("observed_rps", 0.0));
          break;
        }
      } else {
        std::string node;
        std::int64_t id = -1;
        if (args != nullptr) {
          node = args->string_or("node", "");
          id = static_cast<std::int64_t>(args->number_or("id", -1));
        }
        builder_for(rep).on_instant(name, t_ms, std::move(node), id);
      }
    } else if (ph == "C") {
      if (args != nullptr) builder_for(rep).on_counter(name, args->number_or("value", 0.0));
    }
  }
  for (const auto& builder : builders) {
    if (builder != nullptr) builder->finish();
  }
  return true;
}

// --- Shared analysis --------------------------------------------------------

AnalysisReport analyze(
    const RunData& data,
    const std::array<DurationMs, models::kModelCount>& slo_by_model,
    DurationMs slo_ms, DurationMs rate_horizon_ms) {
  AnalysisReport report;
  report.label = data.label;
  report.reps = static_cast<int>(
      std::max<std::size_t>(data.reps.size(),
                            static_cast<std::size_t>(std::max(0, data.reps_declared))));
  report.dropped_events = data.dropped_events;
  report.dropped_decisions = data.dropped_decisions;
  report.total.label = "total";

  std::array<ReportBucket, models::kModelCount> per_model;
  std::array<ReportBucket, hw::kNodeTypeCount> per_node;
  struct UsageAcc {
    std::uint64_t batches = 0;
    DurationMs busy_ms = 0.0;
  };
  std::array<UsageAcc, hw::kNodeTypeCount> usage{};
  DurationMs span_sum_ms = 0.0;
  std::vector<std::vector<CalibrationInterval>> all_ticks;
  all_ticks.reserve(data.reps.size());

  for (std::size_t rep = 0; rep < data.reps.size(); ++rep) {
    const RepData& rd = data.reps[rep];
    TimeMs span_ms = 0.0;

    for (LifecycleSample sample : rd.requests) {
      // Mirror AttributionEngine::observe_request exactly.
      const bool model_ok = sample.model >= 0 && sample.model < models::kModelCount;
      const bool node_ok = sample.node >= 0 && sample.node < hw::kNodeTypeCount;
      sample.retried = rd.retried.count(sample.request_id) > 0;
      sample.blackout = rd.blackouts.overlaps(sample.arrival_ms, sample.start_ms);
      const DurationMs latency = sample.end_ms - sample.arrival_ms;
      span_ms = std::max(span_ms, sample.end_ms);

      ++report.total.completed;
      report.total.latency.insert(latency);
      if (model_ok) {
        ++per_model[sample.model].completed;
        per_model[sample.model].latency.insert(latency);
      }
      if (node_ok) {
        ++per_node[sample.node].completed;
        per_node[sample.node].latency.insert(latency);
      }
      if (!model_ok || latency <= slo_by_model[sample.model]) continue;

      const ViolationCause cause = classify_violation(sample);
      const auto index = static_cast<std::size_t>(cause);
      ++report.total.violations;
      ++report.total.causes[index];
      ++per_model[sample.model].violations;
      ++per_model[sample.model].causes[index];
      if (node_ok) {
        ++per_node[sample.node].violations;
        ++per_node[sample.node].causes[index];
      }
    }

    for (const auto& [model, count] : rd.unserved) {
      const auto index = static_cast<std::size_t>(ViolationCause::kUnserved);
      report.total.completed += count;
      report.total.violations += count;
      report.total.causes[index] += count;
      report.unserved += count;
      if (model >= 0 && model < models::kModelCount) {
        per_model[model].completed += count;
        per_model[model].violations += count;
        per_model[model].causes[index] += count;
      }
    }

    // Sampled-out lifecycles were SLO-compliant by construction (the sampler
    // keeps every violator), so they restore completed counts only — never
    // violations. Latency sketches stay sample-only.
    for (const auto& [key, count] : rd.sampled_out) {
      const auto& [model, node] = key;
      report.total.completed += count;
      report.sampled_out += count;
      if (model >= 0 && model < models::kModelCount) {
        per_model[model].completed += count;
      }
      if (node >= 0 && node < hw::kNodeTypeCount) {
        per_node[node].completed += count;
      }
    }

    // Calibration: fold batch observations into their decision interval
    // (same arithmetic as CalibrationTracker::observe_batch).
    std::vector<CalibrationInterval> ticks = rd.ticks;
    for (const RepData::BatchObs& batch : rd.batches) {
      span_ms = std::max(span_ms, batch.start_ms + batch.dur_ms);
      if (batch.node >= 0 && batch.node < hw::kNodeTypeCount) {
        usage[batch.node].batches += 1;
        usage[batch.node].busy_ms += batch.dur_ms;
      }
      const int index = interval_containing(ticks, batch.submit_ms);
      if (index < 0) continue;
      CalibrationInterval& interval = ticks[static_cast<std::size_t>(index)];
      if (interval.node != batch.node) continue;
      interval.observed = true;
      interval.observed_max_e2e_ms = std::max(interval.observed_max_e2e_ms,
                                              batch.end_ms - batch.submit_ms);
    }
    for (const CalibrationInterval& tick : ticks) {
      span_ms = std::max(span_ms, tick.t_ms);
    }
    all_ticks.push_back(std::move(ticks));

    for (const RepData::SwitchEvent& sw : rd.switches) {
      span_ms = std::max(span_ms, sw.t_ms);
      TimelineEntry entry;
      entry.rep = static_cast<int>(rep);
      entry.t_ms = sw.t_ms;
      entry.event = sw.event;
      entry.node = sw.node;
      report.switch_timeline.push_back(std::move(entry));
    }
    span_sum_ms += span_ms;
  }

  report.compliance =
      report.total.completed > 0
          ? 1.0 - static_cast<double>(report.total.violations) /
                      static_cast<double>(report.total.completed)
          : 1.0;
  report.total.index = -1;
  report.calibration = summarize_calibration(all_ticks, slo_ms, rate_horizon_ms);

  for (int i = 0; i < models::kModelCount; ++i) {
    if (per_model[i].completed == 0) continue;
    per_model[i].index = i;
    per_model[i].label = std::string(models::model_id_name(models::ModelId(i)));
    report.per_model.push_back(std::move(per_model[i]));
  }
  for (int i = 0; i < hw::kNodeTypeCount; ++i) {
    if (per_node[i].completed == 0) continue;
    per_node[i].index = i;
    per_node[i].label = std::string(hw::node_type_name(hw::NodeType(i)));
    report.per_node.push_back(std::move(per_node[i]));
  }
  for (int i = 0; i < hw::kNodeTypeCount; ++i) {
    if (usage[i].batches == 0) continue;
    NodeUsage row;
    row.node = i;
    row.label = std::string(hw::node_type_name(hw::NodeType(i)));
    row.batches = usage[i].batches;
    row.busy_ms = usage[i].busy_ms;
    row.occupancy = span_sum_ms > 0.0 ? usage[i].busy_ms / span_sum_ms : 0.0;
    report.node_usage.push_back(std::move(row));
  }
  return report;
}

AnalysisReport analyze_with_zoo(const RunData& data) {
  const models::Zoo& zoo = models::Zoo::instance();
  std::array<DurationMs, models::kModelCount> slo_by_model{};
  DurationMs min_slo = kTimeNever;
  for (int i = 0; i < models::kModelCount; ++i) {
    slo_by_model[i] = zoo.spec(models::ModelId(i)).slo_ms;
    min_slo = std::min(min_slo, slo_by_model[i]);
  }
  const CalibrationTracker::Config defaults;
  if (!std::isfinite(min_slo)) min_slo = defaults.slo_ms;
  return analyze(data, slo_by_model, min_slo, defaults.rate_horizon_ms);
}

// --- Self-profile summary ---------------------------------------------------

std::vector<PhaseProfile> summarize_profile(const RunTrace& trace) {
  Profiler merged;
  for (const auto& profiler : trace.profiles) {
    if (profiler != nullptr) merged.merge(*profiler);
  }
  std::vector<PhaseProfile> rows;
  if (merged.empty()) return rows;
  for (int i = 0; i < kProfilePhaseCount; ++i) {
    const PhaseStats& stats = merged.phases()[static_cast<std::size_t>(i)];
    if (stats.calls == 0) continue;
    PhaseProfile row;
    row.phase = std::string(profile_phase_name(static_cast<ProfilePhase>(i)));
    row.calls = stats.calls;
    row.total_ms = static_cast<double>(stats.total_ns) / 1e6;
    row.mean_us = static_cast<double>(stats.total_ns) /
                  (1e3 * static_cast<double>(stats.calls));
    row.max_us = static_cast<double>(stats.max_ns) / 1e3;
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- Health section ---------------------------------------------------------

namespace {

/// Detection-quality derivations shared by the inline and offline health
/// producers, so both compute MTTD / false-positive rate from identical
/// inputs (quantized or parsed — the same doubles either way).
void finish_health(HealthReport& health) {
  health.first_fire_ms = -1.0;
  health.false_positives = 0;
  for (const HealthAlert& alert : health.alerts) {
    if (health.first_fire_ms < 0.0 || alert.fire_ms < health.first_fire_ms) {
      health.first_fire_ms = alert.fire_ms;
    }
    if (alert.violations == 0) ++health.false_positives;
  }
  health.false_positive_rate =
      health.alerts.empty()
          ? 0.0
          : static_cast<double>(health.false_positives) /
                static_cast<double>(health.alerts.size());
  health.mttd_ms =
      health.first_fire_ms >= 0.0 && health.first_violation_ms >= 0.0
          ? health.first_fire_ms - health.first_violation_ms
          : -1.0;
}

}  // namespace

HealthReport summarize_health(const RunTrace& trace) {
  HealthReport health;
  for (std::size_t rep = 0; rep < trace.healths.size(); ++rep) {
    const HealthEngine* engine = trace.healths[rep].get();
    if (engine == nullptr) continue;
    health.enabled = true;
    health.completed += engine->completions();
    health.violations += engine->violations();
    health.evaluations += engine->evaluations();
    const double first = quantize_number(engine->first_violation_ms());
    if (first >= 0.0 &&
        (health.first_violation_ms < 0.0 || first < health.first_violation_ms)) {
      health.first_violation_ms = first;
    }
    for (const AlertRecord& record : engine->alerts()) {
      HealthAlert alert;
      alert.rep = static_cast<int>(rep);
      alert.detector = health_detector_name(record.detector);
      alert.model =
          record.model >= 0 && record.model < models::kModelCount
              ? std::string(models::model_id_name(models::ModelId(record.model)))
              : std::string();
      alert.node = record.node >= 0 && record.node < hw::kNodeTypeCount
                       ? std::string(hw::node_type_name(hw::NodeType(record.node)))
                       : std::string();
      alert.open_ms = quantize_number(record.open_ms);
      alert.fire_ms = quantize_number(record.fire_ms);
      alert.resolve_ms = quantize_number(record.resolve_ms);
      alert.resolved_at_end = record.resolved_at_end;
      alert.peak_severity = quantize_number(record.peak_severity);
      alert.ticks_breached = record.ticks_breached;
      alert.blame = telemetry::violation_cause_name(record.blame);
      alert.violations = record.violations;
      alert.completed = record.completed;
      health.alerts.push_back(std::move(alert));
    }
  }
  finish_health(health);
  return health;
}

bool analyze_alert_stream(const std::string& text,
                          std::vector<AnalysisReport>* out,
                          std::string* error) {
  out->clear();
  const common::JsonLinesResult parsed = common::parse_json_lines(text);
  if (!parsed.ok) {
    if (error != nullptr) *error = parsed.error;
    return false;
  }

  struct RunAcc {
    AnalysisReport report;
    int max_rep = -1;
  };
  std::vector<RunAcc> runs;
  std::unordered_map<std::string, std::size_t> run_index;

  for (const common::JsonValue& row : parsed.rows) {
    if (!row.is_object()) {
      if (error != nullptr) *error = "alert row is not an object";
      return false;
    }
    const std::string label = row.string_or("run", "");
    auto [it, inserted] = run_index.emplace(label, runs.size());
    if (inserted) {
      runs.emplace_back();
      runs.back().report.label = label;
      runs.back().report.total.label = "total";
      runs.back().report.health.enabled = true;
    }
    RunAcc& acc = runs[it->second];
    HealthReport& health = acc.report.health;
    const int rep = static_cast<int>(row.number_or("rep", 0.0));
    acc.max_rep = std::max(acc.max_rep, rep);

    const std::string kind = row.string_or("row", "");
    if (kind == "alert") {
      HealthAlert alert;
      alert.rep = rep;
      alert.detector = row.string_or("detector", "");
      alert.model = row.string_or("model", "");
      alert.node = row.string_or("node", "");
      alert.open_ms = row.number_or("open_ms", 0.0);
      alert.fire_ms = row.number_or("fire_ms", 0.0);
      alert.resolve_ms = row.number_or("resolve_ms", 0.0);
      alert.resolved_at_end = row.bool_or("resolved_at_end", false);
      alert.peak_severity = row.number_or("peak_severity", 0.0);
      alert.ticks_breached =
          static_cast<std::uint64_t>(row.number_or("ticks_breached", 0.0));
      alert.blame = row.string_or("blame", "");
      alert.violations =
          static_cast<std::uint64_t>(row.number_or("violations", 0.0));
      alert.completed =
          static_cast<std::uint64_t>(row.number_or("completed", 0.0));
      health.alerts.push_back(std::move(alert));
    } else if (kind == "summary") {
      health.completed +=
          static_cast<std::uint64_t>(row.number_or("completed", 0.0));
      health.violations +=
          static_cast<std::uint64_t>(row.number_or("violations", 0.0));
      health.evaluations +=
          static_cast<std::uint64_t>(row.number_or("evaluations", 0.0));
      const double first = row.number_or("first_violation_ms", -1.0);
      if (first >= 0.0 && (health.first_violation_ms < 0.0 ||
                           first < health.first_violation_ms)) {
        health.first_violation_ms = first;
      }
    } else {
      if (error != nullptr) {
        *error = "alert row kind '" + kind + "' is neither alert nor summary";
      }
      return false;
    }
  }

  for (RunAcc& acc : runs) {
    acc.report.reps = acc.max_rep + 1;
    acc.report.total.index = -1;
    finish_health(acc.report.health);
    out->push_back(std::move(acc.report));
  }
  return true;
}

// --- Rollup-only consumer ---------------------------------------------------

bool analyze_rollup_stream(const std::string& text,
                           std::vector<AnalysisReport>* out,
                           std::string* error) {
  out->clear();
  const common::JsonLinesResult parsed = common::parse_json_lines(text);
  if (!parsed.ok) {
    if (error != nullptr) *error = parsed.error;
    return false;
  }

  // Per-run accumulation in first-appearance order; dense per-model /
  // per-node arrays compact into the report at the end, like analyze().
  struct RunAcc {
    AnalysisReport report;
    std::array<ReportBucket, models::kModelCount> per_model{};
    std::array<ReportBucket, hw::kNodeTypeCount> per_node{};
    int max_rep = -1;
  };
  std::vector<RunAcc> runs;
  std::unordered_map<std::string, std::size_t> run_index;

  for (const common::JsonValue& row : parsed.rows) {
    if (!row.is_object()) {
      if (error != nullptr) *error = "rollup row is not an object";
      return false;
    }
    const std::string label = row.string_or("run", "");
    auto [it, inserted] = run_index.emplace(label, runs.size());
    if (inserted) {
      runs.emplace_back();
      runs.back().report.label = label;
      runs.back().report.total.label = "total";
    }
    RunAcc& acc = runs[it->second];
    acc.max_rep = std::max(acc.max_rep,
                           static_cast<int>(row.number_or("rep", 0.0)));

    const int model = model_index(row.string_or("model", ""));
    const int node = node_index(row.string_or("node", ""));
    const auto completed =
        static_cast<std::uint64_t>(row.number_or("completed", 0.0));
    const auto violations =
        static_cast<std::uint64_t>(row.number_or("violations", 0.0));
    const auto unserved =
        static_cast<std::uint64_t>(row.number_or("unserved", 0.0));

    // A completion row carries completed/violations; an unserved row (node
    // = -1) carries unserved, which counts as completed + violated with
    // cause kUnserved — both already folded into the row's causes object.
    acc.report.total.completed += completed + unserved;
    acc.report.total.violations += violations + unserved;
    acc.report.unserved += unserved;
    if (model >= 0) {
      acc.per_model[model].completed += completed + unserved;
      acc.per_model[model].violations += violations + unserved;
    }
    if (node >= 0) {
      acc.per_node[node].completed += completed;
      acc.per_node[node].violations += violations;
    }

    if (const common::JsonValue* causes = row.find("causes");
        causes != nullptr && causes->is_object()) {
      for (int i = 0; i < telemetry::kViolationCauseCount; ++i) {
        const auto count = static_cast<std::uint64_t>(causes->number_or(
            telemetry::violation_cause_name(static_cast<ViolationCause>(i)),
            0.0));
        if (count == 0) continue;
        const auto index = static_cast<std::size_t>(i);
        acc.report.total.causes[index] += count;
        if (model >= 0) acc.per_model[model].causes[index] += count;
        if (node >= 0) acc.per_node[node].causes[index] += count;
      }
    }

    // The sparse histogram round-trips the cell's QuantileSketch exactly:
    // bucket representatives map back into the bucket that produced them.
    if (const common::JsonValue* hist = row.find("hist");
        hist != nullptr && hist->is_array()) {
      for (const common::JsonValue& pair : hist->as_array()) {
        if (!pair.is_array() || pair.as_array().size() != 2) continue;
        const double value = pair.as_array()[0].as_number();
        const auto count =
            static_cast<std::uint64_t>(pair.as_array()[1].as_number());
        if (count == 0) continue;
        acc.report.total.latency.add(value, count);
        if (model >= 0) acc.per_model[model].latency.add(value, count);
        if (node >= 0) acc.per_node[node].latency.add(value, count);
      }
    }
  }

  for (RunAcc& acc : runs) {
    AnalysisReport& report = acc.report;
    report.reps = acc.max_rep + 1;
    report.total.index = -1;
    report.compliance =
        report.total.completed > 0
            ? 1.0 - static_cast<double>(report.total.violations) /
                        static_cast<double>(report.total.completed)
            : 1.0;
    for (int i = 0; i < models::kModelCount; ++i) {
      if (acc.per_model[i].completed == 0) continue;
      acc.per_model[i].index = i;
      acc.per_model[i].label =
          std::string(models::model_id_name(models::ModelId(i)));
      report.per_model.push_back(std::move(acc.per_model[i]));
    }
    for (int i = 0; i < hw::kNodeTypeCount; ++i) {
      if (acc.per_node[i].completed == 0) continue;
      acc.per_node[i].index = i;
      acc.per_node[i].label = std::string(hw::node_type_name(hw::NodeType(i)));
      report.per_node.push_back(std::move(acc.per_node[i]));
    }
    out->push_back(std::move(report));
  }
  return true;
}

// --- Text rendering ---------------------------------------------------------

namespace {

std::string top_cause(const ReportBucket& bucket) {
  if (bucket.violations == 0) return "-";
  std::size_t best = 0;
  for (std::size_t i = 1; i < bucket.causes.size(); ++i) {
    if (bucket.causes[i] > bucket.causes[best]) best = i;
  }
  return std::string(
      telemetry::violation_cause_name(static_cast<ViolationCause>(best)));
}

constexpr std::size_t kTimelineRows = 40;  // text report cap; JSON keeps all

}  // namespace

void render_report_text(std::ostream& out,
                        const std::vector<AnalysisReport>& runs) {
  for (const AnalysisReport& report : runs) {
    out << "=== " << report.label << " (" << report.reps << " rep"
        << (report.reps == 1 ? "" : "s") << ") ===\n";
    out << "requests " << report.total.completed << " | violations "
        << report.total.violations << " (" << Table::percent(report.compliance)
        << " compliant) | unserved " << report.unserved;
    if (report.sampled_out > 0) {
      out << " | sampled out " << report.sampled_out << " (counts exact)";
    }
    out << "\n";
    if (report.dropped_events > 0 || report.dropped_decisions > 0) {
      out << "WARNING: trace truncated (" << report.dropped_events
          << " events, " << report.dropped_decisions
          << " decisions dropped) — counts below undercount\n";
    }

    out << "\nViolation attribution:\n";
    {
      Table table({"cause", "count", "share"});
      for (std::size_t i = 0; i < report.total.causes.size(); ++i) {
        if (report.total.causes[i] == 0) continue;
        const double share =
            report.total.violations > 0
                ? static_cast<double>(report.total.causes[i]) /
                      static_cast<double>(report.total.violations)
                : 0.0;
        table.add_row({std::string(telemetry::violation_cause_name(
                           static_cast<ViolationCause>(i))),
                       std::to_string(report.total.causes[i]),
                       Table::percent(share)});
      }
      if (report.total.violations == 0) table.add_row({"(none)", "0", "-"});
      table.print(out);
    }

    if (!report.per_model.empty()) {
      out << "\nPer-model:\n";
      Table table({"model", "completed", "violations", "p50 ms", "p95 ms",
                   "p99 ms", "top cause"});
      for (const ReportBucket& bucket : report.per_model) {
        const SketchSummary latency = bucket.latency.summary();
        table.add_row({bucket.label, std::to_string(bucket.completed),
                       std::to_string(bucket.violations), Table::num(latency.p50_ms),
                       Table::num(latency.p95_ms), Table::num(latency.p99_ms),
                       top_cause(bucket)});
      }
      table.print(out);
    }

    if (!report.per_node.empty() || !report.node_usage.empty()) {
      out << "\nPer-node:\n";
      Table table({"node", "completed", "violations", "p99 ms", "batches",
                   "busy s", "occupancy"});
      for (const ReportBucket& bucket : report.per_node) {
        const NodeUsage* usage = nullptr;
        for (const NodeUsage& row : report.node_usage) {
          if (row.node == bucket.index) usage = &row;
        }
        table.add_row(
            {bucket.label, std::to_string(bucket.completed),
             std::to_string(bucket.violations),
             Table::num(bucket.latency.summary().p99_ms),
             usage != nullptr ? std::to_string(usage->batches) : "0",
             usage != nullptr ? Table::num(usage->busy_ms / 1000.0) : "0",
             usage != nullptr ? Table::num(usage->occupancy) : "0"});
      }
      table.print(out);
    }

    const CalibrationSummary& calibration = report.calibration;
    out << "\nCalibration: " << calibration.intervals_observed << "/"
        << calibration.intervals_total << " intervals observed | T_max MAPE "
        << Table::percent(calibration.tmax_mape) << " | SLO coverage "
        << Table::percent(calibration.tmax_coverage) << " | rate MAPE "
        << Table::percent(calibration.rate.mape) << " ("
        << calibration.rate.pairs << " pairs)\n";
    if (!calibration.per_node.empty()) {
      Table table({"node", "intervals", "MAPE", "coverage", "mean pred ms",
                   "mean obs ms"});
      for (const NodeCalibration& row : calibration.per_node) {
        table.add_row({row.node >= 0 && row.node < hw::kNodeTypeCount
                           ? std::string(hw::node_type_name(hw::NodeType(row.node)))
                           : std::to_string(row.node),
                       std::to_string(row.intervals), Table::percent(row.mape),
                       Table::percent(row.coverage),
                       Table::num(row.mean_predicted_ms),
                       Table::num(row.mean_observed_ms)});
      }
      table.print(out);
    }
    if (!calibration.per_y_split.empty()) {
      Table table({"y split", "intervals", "MAPE"});
      for (const YSplitCalibration& row : calibration.per_y_split) {
        table.add_row({std::to_string(row.best_y), std::to_string(row.intervals),
                       Table::percent(row.mape)});
      }
      table.print(out);
    }

    if (report.health.enabled) {
      const HealthReport& health = report.health;
      out << "\nSLO health: " << health.alerts.size() << " alerts ("
          << health.false_positives << " false positives, "
          << Table::percent(health.false_positive_rate) << ") | "
          << health.evaluations << " evaluations | first violation ";
      if (health.first_violation_ms >= 0.0) {
        out << "t=" << Table::num(health.first_violation_ms / 1000.0, 3) << "s";
      } else {
        out << "none";
      }
      out << " | MTTD ";
      if (health.mttd_ms >= 0.0) {
        out << Table::num(health.mttd_ms) << " ms";
      } else {
        out << "-";
      }
      out << "\n";
      if (!health.alerts.empty()) {
        Table table({"rep", "detector", "model", "node", "open s", "fire s",
                     "resolve s", "peak", "blame", "violations"});
        bool any_at_end = false;
        for (const HealthAlert& alert : health.alerts) {
          any_at_end = any_at_end || alert.resolved_at_end;
          table.add_row(
              {std::to_string(alert.rep), alert.detector,
               alert.model.empty() ? "-" : alert.model,
               alert.node.empty() ? "-" : alert.node,
               Table::num(alert.open_ms / 1000.0, 3),
               Table::num(alert.fire_ms / 1000.0, 3),
               Table::num(alert.resolve_ms / 1000.0, 3) +
                   (alert.resolved_at_end ? "*" : ""),
               Table::num(alert.peak_severity), alert.blame,
               std::to_string(alert.violations)});
        }
        table.print(out);
        if (any_at_end) out << "  * still firing at run end\n";
      }
    }

    if (!report.profile.empty()) {
      out << "\nSelf-profile (host wall clock, nondeterministic):\n";
      Table table({"phase", "calls", "total ms", "mean us", "max us"});
      for (const PhaseProfile& row : report.profile) {
        table.add_row({row.phase, std::to_string(row.calls),
                       Table::num(row.total_ms), Table::num(row.mean_us),
                       Table::num(row.max_us)});
      }
      table.print(out);
    }

    if (!report.switch_timeline.empty()) {
      out << "\nSwitch timeline (" << report.switch_timeline.size()
          << " events):\n";
      std::size_t shown = 0;
      for (const TimelineEntry& entry : report.switch_timeline) {
        if (shown++ >= kTimelineRows) {
          out << "  ... (" << report.switch_timeline.size() - kTimelineRows
              << " more in the JSON report)\n";
          break;
        }
        out << "  rep " << entry.rep << "  t=" << Table::num(entry.t_ms / 1000.0, 3)
            << "s  " << entry.event;
        if (!entry.node.empty()) out << " -> " << entry.node;
        out << "\n";
      }
    }
    out << "\n";
  }
}

// --- JSON rendering ---------------------------------------------------------

namespace {

void write_causes(std::ostream& out, const telemetry::ViolationCauseCounts& causes) {
  out << "{";
  for (int i = 0; i < telemetry::kViolationCauseCount; ++i) {
    if (i > 0) out << ",";
    out << "\"" << telemetry::violation_cause_name(static_cast<ViolationCause>(i))
        << "\":" << causes[static_cast<std::size_t>(i)];
  }
  out << "}";
}

void write_latency(std::ostream& out, const QuantileSketch& sketch) {
  const SketchSummary summary = sketch.summary();
  out << "{\"count\":" << summary.count << ",\"mean_ms\":" << num(summary.mean_ms)
      << ",\"p50_ms\":" << num(summary.p50_ms)
      << ",\"p95_ms\":" << num(summary.p95_ms)
      << ",\"p99_ms\":" << num(summary.p99_ms)
      << ",\"max_ms\":" << num(summary.max_ms) << "}";
}

void write_bucket(std::ostream& out, const char* key, const ReportBucket& bucket) {
  out << "{\"" << key << "\":\"" << json_escape(bucket.label)
      << "\",\"completed\":" << bucket.completed
      << ",\"violations\":" << bucket.violations << ",\"causes\":";
  write_causes(out, bucket.causes);
  out << ",\"latency\":";
  write_latency(out, bucket.latency);
  out << "}";
}

}  // namespace

void write_report_json(std::ostream& out, const std::vector<AnalysisReport>& runs) {
  out << "{\"runs\":[";
  bool first_run = true;
  for (const AnalysisReport& report : runs) {
    if (!first_run) out << ",\n";
    first_run = false;
    out << "{\"label\":\"" << json_escape(report.label)
        << "\",\"reps\":" << report.reps
        << ",\"meta\":{\"dropped_events\":" << report.dropped_events
        << ",\"dropped_decisions\":" << report.dropped_decisions << "}";

    out << ",\"attribution\":{\"requests\":" << report.total.completed
        << ",\"violations\":" << report.total.violations
        << ",\"unserved\":" << report.unserved
        << ",\"sampled_out\":" << report.sampled_out
        << ",\"compliance\":" << num(report.compliance) << ",\"causes\":";
    write_causes(out, report.total.causes);
    out << ",\"latency\":";
    write_latency(out, report.total.latency);
    out << ",\"per_model\":[";
    for (std::size_t i = 0; i < report.per_model.size(); ++i) {
      if (i > 0) out << ",";
      write_bucket(out, "model", report.per_model[i]);
    }
    out << "],\"per_node\":[";
    for (std::size_t i = 0; i < report.per_node.size(); ++i) {
      if (i > 0) out << ",";
      write_bucket(out, "node", report.per_node[i]);
    }
    out << "]}";

    const CalibrationSummary& calibration = report.calibration;
    out << ",\"calibration\":{\"intervals\":" << calibration.intervals_total
        << ",\"observed\":" << calibration.intervals_observed
        << ",\"tmax_mape\":" << num(calibration.tmax_mape)
        << ",\"tmax_coverage\":" << num(calibration.tmax_coverage)
        << ",\"per_node\":[";
    for (std::size_t i = 0; i < calibration.per_node.size(); ++i) {
      const NodeCalibration& row = calibration.per_node[i];
      if (i > 0) out << ",";
      out << "{\"node\":\""
          << json_escape(row.node >= 0 && row.node < hw::kNodeTypeCount
                             ? std::string(hw::node_type_name(hw::NodeType(row.node)))
                             : std::to_string(row.node))
          << "\",\"intervals\":" << row.intervals << ",\"mape\":" << num(row.mape)
          << ",\"feasible_intervals\":" << row.feasible_intervals
          << ",\"coverage\":" << num(row.coverage)
          << ",\"mean_predicted_ms\":" << num(row.mean_predicted_ms)
          << ",\"mean_observed_ms\":" << num(row.mean_observed_ms) << "}";
    }
    out << "],\"per_y_split\":[";
    for (std::size_t i = 0; i < calibration.per_y_split.size(); ++i) {
      const YSplitCalibration& row = calibration.per_y_split[i];
      if (i > 0) out << ",";
      out << "{\"best_y\":" << row.best_y << ",\"intervals\":" << row.intervals
          << ",\"mape\":" << num(row.mape) << "}";
    }
    out << "],\"rate\":{\"pairs\":" << calibration.rate.pairs
        << ",\"mape\":" << num(calibration.rate.mape)
        << ",\"mean_predicted_rps\":" << num(calibration.rate.mean_predicted_rps)
        << ",\"mean_observed_rps\":" << num(calibration.rate.mean_observed_rps)
        << "}}";

    out << ",\"node_usage\":[";
    for (std::size_t i = 0; i < report.node_usage.size(); ++i) {
      const NodeUsage& row = report.node_usage[i];
      if (i > 0) out << ",";
      out << "{\"node\":\"" << json_escape(row.label)
          << "\",\"batches\":" << row.batches << ",\"busy_ms\":" << num(row.busy_ms)
          << ",\"occupancy\":" << num(row.occupancy) << "}";
    }
    out << "],\"switch_timeline\":[";
    for (std::size_t i = 0; i < report.switch_timeline.size(); ++i) {
      const TimelineEntry& entry = report.switch_timeline[i];
      if (i > 0) out << ",";
      out << "{\"rep\":" << entry.rep << ",\"t_ms\":" << num(entry.t_ms)
          << ",\"event\":\"" << json_escape(entry.event) << "\",\"node\":\""
          << json_escape(entry.node) << "\"}";
    }
    out << "]";
    // Like the profile key: only present when a health engine ran, so
    // non-health reports keep byte identity.
    if (report.health.enabled) {
      const HealthReport& health = report.health;
      out << ",\"health\":{\"alerts\":" << health.alerts.size()
          << ",\"false_positives\":" << health.false_positives
          << ",\"false_positive_rate\":" << num(health.false_positive_rate)
          << ",\"evaluations\":" << health.evaluations
          << ",\"completed\":" << health.completed
          << ",\"violations\":" << health.violations
          << ",\"first_violation_ms\":" << num(health.first_violation_ms)
          << ",\"first_fire_ms\":" << num(health.first_fire_ms)
          << ",\"mttd_ms\":" << num(health.mttd_ms) << ",\"incidents\":[";
      for (std::size_t i = 0; i < health.alerts.size(); ++i) {
        const HealthAlert& alert = health.alerts[i];
        if (i > 0) out << ",";
        out << "{\"rep\":" << alert.rep << ",\"detector\":\""
            << json_escape(alert.detector) << "\",\"model\":\""
            << json_escape(alert.model) << "\",\"node\":\""
            << json_escape(alert.node)
            << "\",\"open_ms\":" << num(alert.open_ms)
            << ",\"fire_ms\":" << num(alert.fire_ms)
            << ",\"resolve_ms\":" << num(alert.resolve_ms)
            << ",\"resolved_at_end\":"
            << (alert.resolved_at_end ? "true" : "false")
            << ",\"peak_severity\":" << num(alert.peak_severity)
            << ",\"ticks_breached\":" << alert.ticks_breached
            << ",\"blame\":\"" << json_escape(alert.blame)
            << "\",\"violations\":" << alert.violations
            << ",\"completed\":" << alert.completed << "}";
      }
      out << "]}";
    }
    // Wall-clock timings are nondeterministic; the key only appears when a
    // profiler ran, so non-profile reports keep byte identity.
    if (!report.profile.empty()) {
      out << ",\"profile\":[";
      for (std::size_t i = 0; i < report.profile.size(); ++i) {
        const PhaseProfile& row = report.profile[i];
        if (i > 0) out << ",";
        out << "{\"phase\":\"" << json_escape(row.phase)
            << "\",\"calls\":" << row.calls
            << ",\"total_ms\":" << num(row.total_ms)
            << ",\"mean_us\":" << num(row.mean_us)
            << ",\"max_us\":" << num(row.max_us) << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "]}\n";
}

bool write_report_json_file(const std::string& path,
                            const std::vector<AnalysisReport>& runs,
                            std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  write_report_json(out, runs);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace paldia::obs
