#include "src/obs/profiler.hpp"

namespace paldia::obs {

std::string_view profile_phase_name(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kEpochExtract: return "epoch_extract";
    case ProfilePhase::kEpochMerge: return "epoch_merge";
    case ProfilePhase::kSerialDrain: return "serial_drain";
    case ProfilePhase::kSelectionSweep: return "selection_sweep";
    case ProfilePhase::kDispatchTick: return "dispatch_tick";
    case ProfilePhase::kMonitorTick: return "monitor_tick";
    case ProfilePhase::kExportFlush: return "export_flush";
  }
  return "unknown";
}

void Profiler::merge(const Profiler& other) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    phases_[i].calls += other.phases_[i].calls;
    phases_[i].total_ns += other.phases_[i].total_ns;
    if (other.phases_[i].max_ns > phases_[i].max_ns) {
      phases_[i].max_ns = other.phases_[i].max_ns;
    }
  }
}

bool Profiler::empty() const {
  for (const PhaseStats& stats : phases_) {
    if (stats.calls != 0) return false;
  }
  return true;
}

}  // namespace paldia::obs
