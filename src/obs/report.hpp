// Offline/inline analysis of exported observability data: SLO-violation
// attribution breakdown, analytical-model calibration, per-node occupancy,
// and the hardware-switch timeline — one AnalysisReport per (scenario,
// scheme) run, rendered as a human-readable text report and/or JSON.
//
// Two producers, one consumer:
//   - extract_run_data(RunTrace)  — inline, at the end of a run (the
//     bench drivers' --report-out flag);
//   - parse_chrome_trace(json)    — offline, from an exported trace file
//     (the `paldia-analyze` tool).
// Both produce the same RunData and share analyze(), so the offline report
// reproduces the inline numbers exactly. To make that parity *byte*-exact,
// the inline extractor quantizes every value through the exporter's textual
// formats (quantize_timestamp / quantize_number below) — the same
// snprintf/strtod round trip a file read performs.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/units.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/calibration.hpp"
#include "src/obs/sketch.hpp"
#include "src/obs/tracer.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::obs {

/// ms value -> the double a reader recovers from the trace file's "%.3f"
/// microsecond timestamp field.
double quantize_timestamp(TimeMs ms);
/// value -> the double a reader recovers from a "%.10g" numeric field.
double quantize_number(double value);

/// Everything analyze() needs about one repetition, in exporter-quantized
/// form (see header comment).
struct RepData {
  std::vector<LifecycleSample> requests;  // retried/blackout flags unset
  std::unordered_set<std::int64_t> retried;
  BlackoutWindows blackouts;
  /// Monitor ticks that carried a candidate sweep (observation fields are
  /// filled by analyze() from `batches`).
  std::vector<CalibrationInterval> ticks;
  struct BatchObs {
    int node = -1;
    TimeMs submit_ms = 0.0;
    TimeMs end_ms = 0.0;    // submit + e2e, both exporter-quantized
    TimeMs start_ms = 0.0;  // device execution start
    DurationMs dur_ms = 0.0;
  };
  std::vector<BatchObs> batches;
  std::map<int, std::uint64_t> unserved;  // model -> drain-cap leftovers
  /// (model, node) -> lifecycles the sampler dropped from the trace. The
  /// tracer exports these as cumulative "sampled_out:<model>:<node>"
  /// counters so attribution totals stay exact under --sample-rate > 1.
  std::map<std::pair<int, int>, std::uint64_t> sampled_out;
  struct SwitchEvent {
    TimeMs t_ms = 0.0;
    std::string event;  // switch_begin / switch_active / node_failure / ...
    std::string node;
  };
  std::vector<SwitchEvent> switches;
};

struct RunData {
  std::string label;
  int reps_declared = 0;  // slot count (file metadata / RunTrace size)
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_decisions = 0;
  std::vector<RepData> reps;
};

/// Attribution cell for one model or node (or the run total).
struct ReportBucket {
  std::string label;
  int index = -1;  // model/node index; -1 for the total
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  telemetry::ViolationCauseCounts causes{};
  QuantileSketch latency;
};

struct NodeUsage {
  int node = -1;
  std::string label;
  std::uint64_t batches = 0;
  DurationMs busy_ms = 0.0;
  /// Lane-busy time over summed rep spans; > 1 means lanes ran in parallel.
  double occupancy = 0.0;
};

struct TimelineEntry {
  int rep = 0;
  TimeMs t_ms = 0.0;
  std::string event;
  std::string node;
};

/// One row of the simulator self-profile (--profile): wall-clock totals for
/// a hot-path phase, merged across repetitions. Wall-clock values are
/// nondeterministic by nature, so this section never participates in the
/// byte-identity contract — it is emitted only when non-empty.
struct PhaseProfile {
  std::string phase;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// One incident row of the "health" section, in exporter-quantized textual
/// form — built inline from a HealthEngine's AlertRecords or parsed back
/// from an AlertWriter JSONL stream, so both producers are byte-identical.
struct HealthAlert {
  int rep = 0;
  std::string detector;  // health_detector_name
  std::string model;     // "" = cluster-wide
  std::string node;
  TimeMs open_ms = 0.0;
  TimeMs fire_ms = 0.0;
  TimeMs resolve_ms = 0.0;
  bool resolved_at_end = false;
  double peak_severity = 0.0;
  std::uint64_t ticks_breached = 0;
  std::string blame;  // violation_cause_name
  std::uint64_t violations = 0;  // ground truth over [open, resolve]
  std::uint64_t completed = 0;
};

/// "health" report section: the incident timeline plus detection quality
/// against the engine's ground truth. Emitted only when a health engine ran
/// (enabled), so non-health reports keep byte identity.
struct HealthReport {
  bool enabled = false;
  std::vector<HealthAlert> alerts;  // rep order, then resolution order
  std::uint64_t completed = 0;      // summed across repetitions
  std::uint64_t violations = 0;
  std::uint64_t evaluations = 0;
  double first_violation_ms = -1.0;  // min across reps; -1 = compliant run
  double first_fire_ms = -1.0;       // earliest alert fire; -1 = no alerts
  /// Mean-time-to-detect proxy: first_fire_ms - first_violation_ms, or -1
  /// when either side is undefined.
  double mttd_ms = -1.0;
  std::uint64_t false_positives = 0;  // alerts with zero in-window violations
  double false_positive_rate = 0.0;   // false_positives / alerts (0 if none)
};

struct AnalysisReport {
  std::string label;
  int reps = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_decisions = 0;

  ReportBucket total;                    // completed includes unserved
  std::uint64_t unserved = 0;
  /// Lifecycles dropped by trace sampling; already added back into the
  /// completed counts above (latency sketches cover kept samples only).
  std::uint64_t sampled_out = 0;
  double compliance = 1.0;               // 1 - violations / completed
  std::vector<ReportBucket> per_model;   // model index ascending, non-empty
  std::vector<ReportBucket> per_node;    // node index ascending, non-empty

  CalibrationSummary calibration;
  std::vector<NodeUsage> node_usage;     // node index ascending, non-empty
  std::vector<TimelineEntry> switch_timeline;  // rep order, then time order
  std::vector<PhaseProfile> profile;     // --profile only; else empty
  HealthReport health;                   // --alerts-out only; else disabled
};

/// Inline producer: quantized RunData straight from the tracer slots
/// (iterated in repetition order — identical bytes for any thread count).
RunData extract_run_data(const RunTrace& trace, const std::string& label);

/// Offline producer: RunData from a parsed Chrome-trace JSON document
/// (write_chrome_trace output). Returns false and sets `error` when the
/// document is not a trace export.
bool parse_chrome_trace(const common::JsonValue& root, const std::string& label,
                        RunData* out, std::string* error);

/// Shared consumer. `slo_by_model[m]` gates violations; `slo_ms` is the
/// calibration guarantee threshold and `rate_horizon_ms` the EWMA forecast
/// horizon (framework defaults: min model SLO, 7 s).
AnalysisReport analyze(const RunData& data,
                       const std::array<DurationMs, models::kModelCount>& slo_by_model,
                       DurationMs slo_ms, DurationMs rate_horizon_ms);

/// analyze() with the model zoo's SLOs and framework-default horizon.
AnalysisReport analyze_with_zoo(const RunData& data);

/// Merge the RunTrace's per-repetition Profilers into report rows, in
/// ProfilePhase order, skipping phases that never ran. Empty when --profile
/// was off (no profiler slots) or nothing was recorded.
std::vector<PhaseProfile> summarize_profile(const RunTrace& trace);

/// Inline producer for the "health" section: quantized incident rows and
/// ground truth straight from the RunTrace's HealthEngine slots (repetition
/// order). enabled stays false when no health engines ran.
HealthReport summarize_health(const RunTrace& trace);

/// Alert-stream consumer (`paldia-analyze --alerts`): rebuild per-run
/// AnalysisReports from an AlertWriter JSONL stream (rows group by their
/// "run" label in first-appearance order). Only the "health" section is
/// recoverable; it matches the inline section byte for byte. Returns false
/// and sets `error` on malformed input.
bool analyze_alert_stream(const std::string& text,
                          std::vector<AnalysisReport>* out,
                          std::string* error);

/// Rollup-only consumer: rebuild per-run AnalysisReports from a rollup
/// JSONL stream (RollupWriter output) without any full trace. Rows group by
/// their "run" label in first-appearance order. Only the attribution
/// sections are recoverable — compliance, violation/cause counts, and
/// latency sketches (rebuilt exactly from each row's sparse histogram);
/// calibration / node usage / switch timeline need the full trace and stay
/// empty. Returns false and sets `error` on malformed input.
bool analyze_rollup_stream(const std::string& text,
                           std::vector<AnalysisReport>* out,
                           std::string* error);

/// Human-readable multi-section report (tables + timeline).
void render_report_text(std::ostream& out, const std::vector<AnalysisReport>& runs);

/// Machine-readable report: {"runs":[...]} with a fixed key order, numbers
/// formatted with "%.10g" — byte-identical for identical report structs.
void write_report_json(std::ostream& out, const std::vector<AnalysisReport>& runs);
bool write_report_json_file(const std::string& path,
                            const std::vector<AnalysisReport>& runs,
                            std::string* error);

}  // namespace paldia::obs
