// Prediction-vs-observation calibration of the two analytical models the
// scheduler leans on (so Eq. 1's validity is measured, not assumed):
//
//  (a) the per-decision T_max estimate — each monitor tick's winning
//      candidate predicts the worst-case batch latency on the chosen node;
//      we pair it with the largest observed batch submit->completion time
//      among batches submitted on that node during the following interval
//      [t_i, t_{i+1}), and report MAPE plus coverage of the "< SLO"
//      guarantee (fraction of predicted-feasible intervals whose observed
//      maximum actually stayed under the SLO);
//
//  (b) the EWMA demand forecast — predicted_rps at tick t_i targets demand
//      one prediction horizon ahead, so it is paired with the observed
//      trailing rate at the first tick >= t_i + horizon.
//
// The pairing and summary math live in free functions shared with the
// offline analyzer (obs/report.cpp), so `paldia-analyze` reproduces the
// same MAPE/coverage numbers from exported decision logs and batch events.
// One CalibrationTracker per repetition; memory is bounded by the decision
// count (batch observations fold into their interval in place).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/units.hpp"

namespace paldia::obs {

/// One monitor tick's predictions plus the observation that answers them.
struct CalibrationInterval {
  TimeMs t_ms = 0.0;
  int node = -1;  // hw::NodeType finally chosen at the tick
  DurationMs predicted_tmax_ms = 0.0;
  int best_y = 0;               // spatial split behind the prediction
  bool predicted_feasible = false;
  double predicted_rps = 0.0;   // horizon forecast, summed over workloads
  double observed_rps = 0.0;    // trailing observed rate at the tick
  DurationMs observed_max_e2e_ms = 0.0;  // max batch submit->end in the interval
  bool observed = false;        // >= 1 batch landed on the chosen node
};

struct NodeCalibration {
  int node = -1;
  int intervals = 0;  // observed intervals with this node chosen
  double mape = 0.0;  // mean |observed - predicted| / predicted
  int feasible_intervals = 0;
  double coverage = 1.0;  // feasible intervals with observed max <= SLO
  DurationMs mean_predicted_ms = 0.0;
  DurationMs mean_observed_ms = 0.0;
};

struct YSplitCalibration {
  int best_y = 0;
  int intervals = 0;
  double mape = 0.0;
};

struct RateCalibration {
  int pairs = 0;
  double mape = 0.0;
  double mean_predicted_rps = 0.0;
  double mean_observed_rps = 0.0;
};

struct CalibrationSummary {
  int intervals_total = 0;     // ticks that carried a T_max prediction
  int intervals_observed = 0;  // ... answered by at least one batch
  double tmax_mape = 0.0;
  double tmax_coverage = 1.0;  // across all feasible observed intervals
  std::vector<NodeCalibration> per_node;       // node index ascending
  std::vector<YSplitCalibration> per_y_split;  // best_y ascending
  RateCalibration rate;
};

/// Index of the interval whose [t_i, t_{i+1}) contains `t` (the last one is
/// open-ended), or -1 when `t` precedes every interval. `intervals` must be
/// sorted by t_ms (they are appended in tick order).
int interval_containing(const std::vector<CalibrationInterval>& intervals,
                        TimeMs t_ms);

/// Shared summary math over one interval sequence per repetition. Rate
/// pairing never crosses repetition boundaries.
CalibrationSummary summarize_calibration(
    const std::vector<std::vector<CalibrationInterval>>& runs, DurationMs slo_ms,
    DurationMs rate_horizon_ms);

class CalibrationTracker {
 public:
  struct Config {
    DurationMs slo_ms = 200.0;
    /// Matches the framework's prediction horizon: predicted_rps at t is a
    /// forecast for t + horizon.
    DurationMs rate_horizon_ms = 7000.0;
  };

  CalibrationTracker() = default;
  explicit CalibrationTracker(Config config) : config_(config) {}

  /// One monitor tick's predictions (the final candidate's numbers).
  void on_decision(TimeMs t_ms, int node, DurationMs predicted_tmax_ms, int best_y,
                   bool feasible, double predicted_rps, double observed_rps);

  /// One completed batch: folds into the interval containing its submit
  /// time when the node matches that interval's choice.
  void observe_batch(int node, TimeMs submit_ms, TimeMs end_ms);

  CalibrationSummary finalize() const {
    return summarize_calibration({intervals_}, config_.slo_ms,
                                 config_.rate_horizon_ms);
  }

  const std::vector<CalibrationInterval>& intervals() const { return intervals_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<CalibrationInterval> intervals_;
};

}  // namespace paldia::obs
