// Online SLO health engine (active observability tier 3).
//
// Everything the telemetry layer built so far — violation counters,
// attribution, rollups — is post-hoc: the numbers exist, but only a human
// reading a report after the run notices that an SLO was burning. This
// engine closes that loop. It watches the exact streams the rollup
// aggregator already sees (completions with attribution verdicts, unserved
// counts, monitor-tick gauges) and raises alerts *while the run happens*:
//
//   burn_rate      SRE-style multi-window error-budget burn. The budget is
//                  1 - slo_target; burn = windowed violation fraction /
//                  budget. An alert needs BOTH a fast (default 1 min) and a
//                  slow (default 10 min) trailing window above the burn
//                  threshold, so blips don't page but sustained burn does.
//   latency_cusum  One-sided CUSUM over the per-tick latency p99 against an
//                  EWMA baseline: S+ = max(0, S+ + z - k), alert at S+ >= h.
//                  Catches slow drifts a single-threshold check misses.
//   queue_zscore   EWMA z-score over monitor-tick queue-depth / in-flight
//                  gauges; alerts on sustained positive deviations (queues
//                  growing), never on draining.
//
// Detectors run per (model, node) key plus a cluster-wide key (-1, -1) that
// also absorbs unserved requests and the in-flight gauge. Each (key,
// detector) pair owns a lifecycle state machine with hysteresis:
//
//   idle -> pending   first breaching evaluation (open_ms stamped)
//   pending -> firing after pending_ticks consecutive breaches (fire_ms)
//   pending -> idle   a single clear evaluation (dropped silently — never
//                     exported, which is what keeps the false-positive rate
//                     honest)
//   firing -> resolved after resolve_ticks consecutive clears (resolve_ms);
//                     the finished AlertRecord is appended to alerts()
//
// Determinism contract: one engine per repetition, driven only from the
// single-threaded simulation loop in simulated time; keys live in a
// std::map so every iteration is sorted. Alert streams are therefore
// byte-identical across --threads and --shards, like every other export.
//
// Hot-path discipline matches the Tracer/RollupAggregator: the framework
// holds a HealthEngine* that is nullptr when health is disabled, so the
// disabled cost is a single branch (BM_HealthDisabledHook).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/common/units.hpp"
#include "src/obs/sketch.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::obs {

struct HealthConfig {
  /// Compliance goal; the error budget is 1 - slo_target. Must be in (0,1).
  double slo_target = 0.999;
  /// Fast / slow trailing burn-rate windows. Both must be > 0 and the fast
  /// window strictly shorter than the slow one (validated at construction —
  /// the silent-fixup era ended with RollupConfig's).
  DurationMs fast_window_ms = 60'000.0;
  DurationMs slow_window_ms = 600'000.0;
  /// Burn multiple both windows must reach to breach. 14.4 is the classic
  /// SRE fast-page number: the budget would be gone in 1/14.4 of the SLO
  /// period, and stray single violations in a healthy run stay far below it.
  double burn_threshold = 14.4;
  /// A window with fewer completions than this never breaches (warmup gate:
  /// one early violation out of three requests is not a 33% burn signal).
  std::uint64_t min_window_samples = 20;
  /// Hysteresis: consecutive breaching evaluations before pending -> firing,
  /// and consecutive clear evaluations before firing -> resolved.
  int pending_ticks = 2;
  int resolve_ticks = 3;
  /// CUSUM slack and decision threshold, in baseline-sigma units.
  double cusum_k = 0.5;
  double cusum_h = 8.0;
  /// EWMA smoothing for the latency/gauge baselines, and the gauge z-score
  /// threshold.
  double ewma_alpha = 0.2;
  double z_threshold = 6.0;
  /// Baseline samples a CUSUM/z-score detector needs before it arms.
  int warmup_ticks = 8;
};

/// Detector identity, stable across exports.
enum class HealthDetector : std::uint8_t {
  kBurnRate = 0,
  kLatencyCusum,
  kQueueZScore,
};
inline constexpr int kHealthDetectorCount = 3;
const char* health_detector_name(HealthDetector detector);

/// One finished (or end-of-run truncated) incident.
struct AlertRecord {
  std::int16_t model = -1;  // models::ModelId, -1 = cluster-wide
  std::int16_t node = -1;   // hw::NodeType, -1 = cluster-wide
  HealthDetector detector = HealthDetector::kBurnRate;
  TimeMs open_ms = 0.0;     // first breaching evaluation (pending)
  TimeMs fire_ms = 0.0;     // pending -> firing transition
  TimeMs resolve_ms = 0.0;  // firing -> resolved (or the run end)
  bool resolved_at_end = false;
  /// Max detector statistic seen while the alert was open (burn multiple,
  /// CUSUM S+, or z-score, per the detector).
  double peak_severity = 0.0;
  std::uint64_t ticks_breached = 0;
  /// Attribution cause that moved the most on this key while the alert was
  /// open; falls back to the cumulative argmax, then kExecution.
  telemetry::ViolationCause blame = telemetry::ViolationCause::kExecution;
  /// Ground truth on this key over (open - one tick, resolve]: the interval
  /// whose completions triggered the opening breach ends *at* open_ms, so
  /// the incident window starts one evaluation earlier to contain it.
  /// violations == 0 marks the alert as a false positive in the report.
  std::uint64_t violations = 0;
  std::uint64_t completed = 0;
};

class HealthEngine {
 public:
  /// Throws std::invalid_argument on out-of-range config (window widths,
  /// slo_target, hysteresis counts, detector parameters).
  explicit HealthEngine(HealthConfig config = {});

  /// One completed request; `cause` is engaged exactly when it violated its
  /// SLO (the attribution verdict, same contract as RollupAggregator).
  void observe_completion(TimeMs end_ms, int model, int node,
                          DurationMs latency_ms,
                          const std::optional<telemetry::ViolationCause>& cause);

  /// Requests still pending at the drain cap: cluster-wide violations with
  /// cause kUnserved. finalize() runs a last evaluation, so drain-phase
  /// bursts are still detectable.
  void observe_unserved(TimeMs now, int model, std::uint64_t count);

  /// Monitor-tick gauges (same call sites as the rollup aggregator).
  void observe_queue_depth(TimeMs now, int model, int node, double depth);
  void observe_in_flight(TimeMs now, int node, double batches);

  /// One detector evaluation pass; call on every monitor tick.
  void evaluate(TimeMs now);

  /// End of run: a final evaluation, then every still-firing alert is
  /// closed with resolve_ms = end and resolved_at_end = true. Pending
  /// alerts that never fired are dropped.
  void finalize(TimeMs end_ms);

  const HealthConfig& config() const { return config_; }
  /// Resolved incidents in resolution order (deterministic: appends happen
  /// in evaluation order over the sorted key map).
  const std::vector<AlertRecord>& alerts() const { return alerts_; }

  // --- Ground truth for the health report ---------------------------------
  std::uint64_t completions() const { return completions_; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t evaluations() const { return evaluations_; }
  /// Simulated time of the first violating completion (or unserved batch);
  /// -1 when the run was fully compliant.
  TimeMs first_violation_ms() const { return first_violation_ms_; }

 private:
  struct TickSample {
    TimeMs t_ms = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    telemetry::ViolationCauseCounts causes{};
  };

  struct DetectorState {
    enum class Phase : std::uint8_t { kIdle, kPending, kFiring };
    Phase phase = Phase::kIdle;
    int breach_streak = 0;
    int clear_streak = 0;
    TimeMs open_ms = 0.0;
    TimeMs fire_ms = 0.0;
    double peak_severity = 0.0;
    std::uint64_t ticks_breached = 0;
    // Cumulative-counter snapshots from the tick *before* open (so the
    // interval that produced the opening breach is inside the incident
    // window), for the alert's ground truth and blame delta.
    std::uint64_t open_requests = 0;
    std::uint64_t open_violations = 0;
    telemetry::ViolationCauseCounts open_causes{};
  };

  struct Key {
    std::int16_t model = -1;
    std::int16_t node = -1;
    bool operator<(const Key& other) const {
      if (model != other.model) return model < other.model;
      return node < other.node;
    }
  };

  struct KeyState {
    std::uint64_t requests = 0;  // completions (+ unserved on the cluster key)
    std::uint64_t violations = 0;
    telemetry::ViolationCauseCounts causes{};
    std::deque<TickSample> ticks;  // cumulative counters, one per evaluation
    QuantileSketch tick_latency;   // cleared after every evaluation
    double latency_mean = 0.0;
    double latency_var = 0.0;
    int latency_samples = 0;
    double cusum = 0.0;
    double gauge = 0.0;
    bool gauge_fresh = false;  // a gauge arrived since the last evaluation
    double gauge_mean = 0.0;
    double gauge_var = 0.0;
    int gauge_samples = 0;
    std::array<DetectorState, kHealthDetectorCount> detectors{};
  };

  KeyState& state(int model, int node);
  void touch(KeyState& cluster, KeyState& keyed, TimeMs now,
             DurationMs latency_ms,
             const std::optional<telemetry::ViolationCause>& cause);
  void evaluate_key(const Key& key, KeyState& state, TimeMs now);
  void step_lifecycle(const Key& key, KeyState& state, HealthDetector detector,
                      TimeMs now, bool has_signal, bool breach,
                      double severity);
  void close_alert(const Key& key, KeyState& state, HealthDetector detector,
                   TimeMs resolve_ms, bool at_end);
  telemetry::ViolationCause blame_hint(const KeyState& state,
                                       const DetectorState& detector) const;

  HealthConfig config_;
  std::map<Key, KeyState> keys_;
  std::vector<AlertRecord> alerts_;
  std::uint64_t completions_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t evaluations_ = 0;
  TimeMs first_violation_ms_ = -1.0;
};

}  // namespace paldia::obs
