// Deterministic SLO-aware trace sampling (fleet-scale telemetry tier 1).
//
// At fleet scale the full per-request lifecycle span set either drops its
// tail silently or eats gigabytes. The sampler keeps 100% of SLO-violating
// request lifecycles (they are the interesting exemplars and the attribution
// input) and a deterministic 1-in-N of compliant ones.
//
// The keep/drop decision is a pure function of (request id, seed) — never
// wall clock, thread id, or arrival order — so the sampled trace is
// byte-identical across --threads and --shards, exactly like the unsampled
// exports. Exact request counts are preserved out-of-band: the Tracer tallies
// every sampled-out completion per (model, node) and flushes the tallies into
// its counter registry as "sampled_out:<model>:<node>", which the report
// analyzer adds back so attribution/compliance/calibration stay exact while
// span volume drops by the sample rate.
#pragma once

#include <cstdint>

namespace paldia::obs {

/// Fixed default hash seed. Changing it reshuffles which compliant requests
/// are retained (every choice is equally representative); runs comparing
/// sampled exports byte-for-byte must share it.
inline constexpr std::uint64_t kDefaultSamplerSeed = 0x5ca1ab1e0ddba11ull;

class TraceSampler {
 public:
  TraceSampler() = default;
  explicit TraceSampler(std::uint32_t sample_rate,
                        std::uint64_t seed = kDefaultSamplerSeed)
      : rate_(sample_rate == 0 ? 1 : sample_rate), seed_(seed) {}

  /// 1 = keep everything (sampling disabled).
  std::uint32_t rate() const { return rate_; }
  std::uint64_t seed() const { return seed_; }
  bool pass_through() const { return rate_ <= 1; }

  /// splitmix64 finalizer: full-avalanche integer mix, so consecutive
  /// request ids land uniformly across the modulus classes.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Deterministic 1-in-rate decision for a compliant request.
  bool keep_compliant(std::int64_t request_id) const {
    if (rate_ <= 1) return true;
    return mix(static_cast<std::uint64_t>(request_id) ^ seed_) % rate_ == 0;
  }

  /// The sampling policy: violators always, compliant 1-in-rate.
  bool keep(std::int64_t request_id, bool violated) const {
    if (rate_ <= 1 || violated) return true;
    return keep_compliant(request_id);
  }

 private:
  std::uint32_t rate_ = 1;
  std::uint64_t seed_ = kDefaultSamplerSeed;
};

}  // namespace paldia::obs
