#include "src/obs/tracer.hpp"

#include <cstring>

namespace paldia::obs {

bool Tracer::reserve(std::size_t n) {
  if (events_.size() + n > config_.event_capacity) {
    dropped_events_ += n;
    return false;
  }
  return true;
}

void Tracer::push(const TraceEvent& event) { events_.push_back(event); }

namespace {

/// Compose the 4-event decomposition of one completed request (parent
/// kRequest span + queue / dispatch / execute kPhase children) into out[0..3].
/// Shared by the per-request and bulk lifecycle paths so they stay
/// event-for-event identical.
void compose_lifecycle(TraceEvent* out, std::int64_t request_id,
                       models::ModelId model, hw::NodeType node,
                       cluster::ShareMode mode, int batch_size, int spatial,
                       int temporal, TimeMs arrival_ms, TimeMs submit_ms,
                       TimeMs start_ms, TimeMs end_ms, DurationMs solo_ms,
                       DurationMs interference_ms, DurationMs cold_ms) {
  TraceEvent event;
  event.mode = mode;
  event.model = static_cast<std::int16_t>(model);
  event.node = static_cast<std::int16_t>(node);
  event.batch_size = batch_size;
  event.spatial = spatial;
  event.temporal = temporal;
  event.id = request_id;

  event.type = TraceEvent::Type::kRequest;
  event.name = "request";
  event.start_ms = arrival_ms;
  event.end_ms = end_ms;
  event.solo_ms = solo_ms;
  event.interference_ms = interference_ms;
  event.cold_ms = cold_ms;
  out[0] = event;

  event.type = TraceEvent::Type::kPhase;
  event.solo_ms = 0.0;
  event.interference_ms = 0.0;
  event.cold_ms = 0.0;

  event.name = "queue";  // gateway wait + batch formation
  event.start_ms = arrival_ms;
  event.end_ms = submit_ms;
  out[1] = event;

  event.name = "dispatch";  // lane / container / cold-start waits on the node
  event.start_ms = submit_ms;
  event.end_ms = start_ms;
  event.cold_ms = cold_ms;
  out[2] = event;

  event.name = "execute";  // device execution (solo + interference stretch)
  event.start_ms = start_ms;
  event.end_ms = end_ms;
  event.solo_ms = solo_ms;
  event.interference_ms = interference_ms;
  event.cold_ms = 0.0;
  out[3] = event;
}

}  // namespace

bool Tracer::sample_keep(std::int64_t request_id, models::ModelId model,
                         hw::NodeType node, TimeMs arrival_ms, TimeMs end_ms) {
  if (sampler_.pass_through()) return true;
  const auto m = static_cast<int>(model);
  const DurationMs slo =
      (m >= 0 && m < models::kModelCount) ? slo_ms_[static_cast<std::size_t>(m)]
                                          : kTimeNever;
  const bool violated = end_ms - arrival_ms > slo;
  if (sampler_.keep(request_id, violated)) return true;
  const auto n = static_cast<int>(node);
  if (m >= 0 && m < models::kModelCount && n >= 0 && n < hw::kNodeTypeCount) {
    ++sampled_out_[static_cast<std::size_t>(m) * hw::kNodeTypeCount +
                   static_cast<std::size_t>(n)];
  }
  ++sampled_out_total_;
  return false;
}

void Tracer::record_request_lifecycle(std::int64_t request_id, models::ModelId model,
                                      hw::NodeType node, cluster::ShareMode mode,
                                      int batch_size, int spatial, int temporal,
                                      TimeMs arrival_ms, TimeMs submit_ms,
                                      TimeMs start_ms, TimeMs end_ms,
                                      DurationMs solo_ms, DurationMs interference_ms,
                                      DurationMs cold_ms) {
  if (!sample_keep(request_id, model, node, arrival_ms, end_ms)) return;
  // Parent + 3 phases are stored atomically so every retained request has a
  // complete, contiguous decomposition (phases sum to end - arrival).
  TraceEvent events[4];
  compose_lifecycle(events, request_id, model, node, mode, batch_size, spatial,
                    temporal, arrival_ms, submit_ms, start_ms, end_ms, solo_ms,
                    interference_ms, cold_ms);
  append_batch(std::span<const TraceEvent>(events, 4), 4);
}

void Tracer::record_batch_lifecycles(const cluster::Request* requests, int count,
                                     models::ModelId model, hw::NodeType node,
                                     cluster::ShareMode mode, int batch_size,
                                     int spatial, int temporal, TimeMs submit_ms,
                                     TimeMs start_ms, TimeMs end_ms,
                                     DurationMs solo_ms, DurationMs interference_ms,
                                     DurationMs cold_ms) {
  if (count <= 0) return;
  scratch_.resize(static_cast<std::size_t>(count) * 4);
  std::size_t kept = 0;
  for (int i = 0; i < count; ++i) {
    if (!sample_keep(requests[i].id.value, model, node, requests[i].arrival_ms,
                     end_ms)) {
      continue;
    }
    compose_lifecycle(scratch_.data() + kept * 4, requests[i].id.value, model,
                      node, mode, batch_size, spatial, temporal,
                      requests[i].arrival_ms, submit_ms, start_ms, end_ms,
                      solo_ms, interference_ms, cold_ms);
    ++kept;
  }
  if (kept == 0) return;
  append_batch(std::span<const TraceEvent>(scratch_.data(), kept * 4), 4);
}

std::size_t Tracer::append_batch(std::span<const TraceEvent> events,
                                 std::size_t group_size) {
  if (events.empty()) return 0;
  if (group_size == 0) group_size = 1;
  const std::size_t room = events_.size() >= config_.event_capacity
                               ? 0
                               : config_.event_capacity - events_.size();
  // Accept only a leading whole number of groups: byte-for-byte the same
  // retained prefix as per-group reserve() calls hitting the cap in order.
  const std::size_t accepted = std::min(events.size(), room) / group_size * group_size;
  dropped_events_ += events.size() - accepted;
  if (accepted == 0) return 0;
  events_.insert(events_.end(), events.begin(),
                 events.begin() + static_cast<std::ptrdiff_t>(accepted));
  return accepted;
}

void Tracer::record_batch(std::int64_t batch_id, models::ModelId model,
                          hw::NodeType node, cluster::ShareMode mode, int batch_size,
                          TimeMs submit_ms, TimeMs start_ms, TimeMs end_ms,
                          DurationMs solo_ms, DurationMs cold_ms) {
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kBatch;
  event.mode = mode;
  event.model = static_cast<std::int16_t>(model);
  event.node = static_cast<std::int16_t>(node);
  event.batch_size = batch_size;
  event.id = batch_id;
  event.name = "batch";
  event.start_ms = start_ms;
  event.end_ms = end_ms;
  event.solo_ms = solo_ms;
  event.cold_ms = cold_ms;
  event.value = start_ms - submit_ms;  // lane/container wait
  push(event);
}

void Tracer::instant(const char* name, TimeMs now, hw::NodeType node, double value) {
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kInstant;
  event.name = name;
  event.node = static_cast<std::int16_t>(node);
  event.start_ms = event.end_ms = now;
  event.value = value;
  push(event);
}

void Tracer::instant(const char* name, TimeMs now, double value) {
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kInstant;
  event.name = name;
  event.start_ms = event.end_ms = now;
  event.value = value;
  push(event);
}

void Tracer::request_requeued(std::int64_t request_id, models::ModelId model,
                              TimeMs now, hw::NodeType node) {
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kInstant;
  event.name = "request_requeued";
  event.id = request_id;
  event.model = static_cast<std::int16_t>(model);
  event.node = static_cast<std::int16_t>(node);
  event.start_ms = event.end_ms = now;
  push(event);
}

void Tracer::begin_span(const char* name, TimeMs now) {
  span_stack_.push_back(name);
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kSpanBegin;
  event.name = name;
  event.start_ms = event.end_ms = now;
  push(event);
}

void Tracer::end_span(const char* name, TimeMs now) {
  if (span_stack_.empty() || std::strcmp(span_stack_.back(), name) != 0) {
    ++unbalanced_;
    return;
  }
  span_stack_.pop_back();
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kSpanEnd;
  event.name = name;
  event.start_ms = event.end_ms = now;
  push(event);
}

void Tracer::count(const char* name, double delta) { counters_[name] += delta; }

void Tracer::gauge(const char* name, TimeMs now, double value, int model_tag) {
  if (!reserve(1)) return;
  TraceEvent event;
  event.type = TraceEvent::Type::kCounter;
  event.name = name;
  event.model = static_cast<std::int16_t>(model_tag);
  event.start_ms = event.end_ms = now;
  event.value = value;
  push(event);
}

void Tracer::flush_sampled_out_counters() {
  if (sampled_out_total_ == 0) return;
  for (int m = 0; m < models::kModelCount; ++m) {
    for (int n = 0; n < hw::kNodeTypeCount; ++n) {
      const std::uint64_t dropped =
          sampled_out_[static_cast<std::size_t>(m) * hw::kNodeTypeCount +
                       static_cast<std::size_t>(n)];
      if (dropped == 0) continue;
      std::string key = "sampled_out:";
      key += models::model_id_name(static_cast<models::ModelId>(m));
      key += ':';
      key += hw::node_type_name(static_cast<hw::NodeType>(n));
      counters_[key] = static_cast<double>(dropped);  // cumulative, not +=
    }
  }
}

void Tracer::sample_counters(TimeMs now) {
  flush_sampled_out_counters();
  for (const auto& [name, value] : counters_) {  // map order: deterministic
    if (!reserve(1)) return;
    TraceEvent event;
    event.type = TraceEvent::Type::kCounter;
    event.name = nullptr;  // dynamic name: exporters read counter_name
    event.counter_name = name.c_str();
    event.start_ms = event.end_ms = now;
    event.value = value;
    push(event);
  }
}

double Tracer::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

DecisionRecord* Tracer::begin_decision(TimeMs now, hw::NodeType current) {
  if (decisions_.size() >= config_.decision_capacity) {
    ++dropped_decisions_;
    open_decision_ = nullptr;
    return nullptr;
  }
  decisions_.emplace_back();
  open_decision_ = &decisions_.back();
  open_decision_->t_ms = now;
  open_decision_->current = current;
  open_decision_->final_choice = current;
  return open_decision_;
}

void Tracer::end_decision(hw::NodeType final_choice, bool switch_begun) {
  if (open_decision_ == nullptr) return;
  open_decision_->final_choice = final_choice;
  open_decision_->switch_begun = switch_begun;
  open_decision_ = nullptr;
}

std::uint64_t RunTrace::dropped_events() const {
  std::uint64_t total = 0;
  for (const auto& rep : reps) {
    if (rep) total += rep->dropped_events();
  }
  return total;
}

std::uint64_t RunTrace::dropped_decisions() const {
  std::uint64_t total = 0;
  for (const auto& rep : reps) {
    if (rep) total += rep->dropped_decisions();
  }
  return total;
}

std::uint64_t RunTrace::sampled_out() const {
  std::uint64_t total = 0;
  for (const auto& rep : reps) {
    if (rep) total += rep->sampled_out_total();
  }
  return total;
}

}  // namespace paldia::obs
