// Streaming JSONL/CSV export of RunMetrics rows and scheduler decision
// logs, so fig sweeps can run unattended and leave machine-readable
// results behind (ROADMAP "metrics export path").
//
// Format is inferred from the file extension: ".csv" writes CSV with a
// header row, anything else writes JSON Lines (one object per line). Rows
// are flushed as they are written, so a killed sweep still leaves the
// completed rows on disk.
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/obs/tracer.hpp"
#include "src/telemetry/metrics.hpp"

namespace paldia::obs {

enum class ExportFormat { kJsonl, kCsv };

/// ".csv" -> CSV, everything else -> JSONL.
ExportFormat format_for_path(const std::string& path);

/// Streaming RunMetrics writer (one row per completed scheme run).
class MetricsWriter {
 public:
  /// Write to an already-open stream (testing / composition).
  MetricsWriter(std::ostream& out, ExportFormat format);
  /// Open `path` (truncating) and infer the format from its extension.
  explicit MetricsWriter(const std::string& path);

  bool ok() const;
  const std::string& error() const { return error_; }

  /// Append one row. `figure` tags the row with the emitting driver so
  /// multi-figure sweeps can share one output file.
  void write(const telemetry::RunMetrics& metrics, const std::string& figure = "");

 private:
  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_ = nullptr;
  ExportFormat format_ = ExportFormat::kJsonl;
  bool header_written_ = false;
  std::string error_;
};

/// Streaming scheduler-decision-log writer: one row per monitor tick per
/// repetition, in repetition order (deterministic across thread counts).
class DecisionLogWriter {
 public:
  DecisionLogWriter(std::ostream& out, ExportFormat format);
  explicit DecisionLogWriter(const std::string& path);

  bool ok() const;
  const std::string& error() const { return error_; }

  /// Append all decision records of a completed run.
  void write(const RunTrace& trace, const std::string& scheme,
             const std::string& scenario);

 private:
  void write_record(const DecisionRecord& record, int rep, const std::string& scheme,
                    const std::string& scenario);

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_ = nullptr;
  ExportFormat format_ = ExportFormat::kJsonl;
  bool header_written_ = false;
  std::string error_;
};

/// Streaming rollup writer (--rollup-out): one row per (repetition, window,
/// model, node) cell, walked in repetition order then sorted key order —
/// byte-identical however many pool threads or event shards ran the reps.
/// JSONL rows are what `paldia-analyze --rollup` consumes; the sparse
/// "hist" bucket pairs round-trip each cell's latency sketch exactly.
class RollupWriter {
 public:
  RollupWriter(std::ostream& out, ExportFormat format);
  explicit RollupWriter(const std::string& path);

  bool ok() const;
  const std::string& error() const { return error_; }

  /// Append all rollup cells of a completed run. `run` is the report label
  /// ("scenario / scheme") that rollup-only analysis groups rows by.
  void write(const RunTrace& trace, const std::string& run);

 private:
  void write_cell(const RollupKey& key, const RollupCell& cell,
                  const RollupConfig& config, int rep, const std::string& run);

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_ = nullptr;
  ExportFormat format_ = ExportFormat::kJsonl;
  bool header_written_ = false;
  std::string error_;
};

/// Streaming alert/incident writer (--alerts-out): per repetition, every
/// resolved incident in resolution order, then one "summary" row carrying
/// the rep's ground truth (completions, violations, first-violation time,
/// evaluation count) — everything `paldia-analyze --alerts` needs to
/// rebuild the report's "health" section offline, byte for byte.
class AlertWriter {
 public:
  AlertWriter(std::ostream& out, ExportFormat format);
  explicit AlertWriter(const std::string& path);

  bool ok() const;
  const std::string& error() const { return error_; }

  /// Append all incidents of a completed run. `run` is the report label
  /// ("scenario / scheme") that alert-stream analysis groups rows by.
  void write(const RunTrace& trace, const std::string& run);

 private:
  void write_header();
  void write_alert(const AlertRecord& record, int rep, const std::string& run);
  void write_summary(const HealthEngine& engine, int rep, const std::string& run);

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_ = nullptr;
  ExportFormat format_ = ExportFormat::kJsonl;
  bool header_written_ = false;
  std::string error_;
};

/// "out.json" + ("azure", "Paldia") -> "out.azure_Paldia.json": one trace
/// file per (scenario, scheme) run when a driver sweeps several.
std::string derive_trace_path(const std::string& base, const std::string& scenario,
                              const std::string& scheme);

/// One-shot WARN when the trace's ring buffers overflowed: an attribution
/// or calibration report over a truncated trace is quietly wrong, so
/// truncation must never be silent. Returns true when drops occurred.
/// `context` names the export ("fig13 azure/Paldia", a file path, ...).
bool warn_if_truncated(const RunTrace& trace, const std::string& context);

}  // namespace paldia::obs
