#include "src/obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paldia::obs {
namespace {

/// Variance floor so a flat baseline (sigma = 0) yields a huge-but-finite
/// z-score instead of an inf/NaN that would poison the CUSUM accumulator.
constexpr double kVarianceFloor = 1e-12;

/// One EWMA step for a (mean, variance) baseline pair. The first sample
/// seeds the mean exactly; variance stays 0 until deviations arrive.
void ewma_update(double alpha, double x, double& mean, double& var,
                 int& samples) {
  if (samples == 0) {
    mean = x;
    var = 0.0;
  } else {
    const double delta = x - mean;
    mean += alpha * delta;
    var = (1.0 - alpha) * (var + alpha * delta * delta);
  }
  ++samples;
}

}  // namespace

const char* health_detector_name(HealthDetector detector) {
  switch (detector) {
    case HealthDetector::kBurnRate:
      return "burn_rate";
    case HealthDetector::kLatencyCusum:
      return "latency_cusum";
    case HealthDetector::kQueueZScore:
      return "queue_zscore";
  }
  return "unknown";
}

HealthEngine::HealthEngine(HealthConfig config) : config_(config) {
  if (!(config_.slo_target > 0.0) || !(config_.slo_target < 1.0)) {
    throw std::invalid_argument("HealthConfig: slo_target must be in (0, 1)");
  }
  if (!(config_.fast_window_ms > 0.0) || !(config_.slow_window_ms > 0.0)) {
    throw std::invalid_argument("HealthConfig: burn windows must be > 0");
  }
  if (!(config_.fast_window_ms < config_.slow_window_ms)) {
    throw std::invalid_argument(
        "HealthConfig: fast burn window must be shorter than the slow one");
  }
  if (!(config_.burn_threshold > 0.0)) {
    throw std::invalid_argument("HealthConfig: burn_threshold must be > 0");
  }
  if (config_.pending_ticks < 1 || config_.resolve_ticks < 1) {
    throw std::invalid_argument(
        "HealthConfig: pending_ticks and resolve_ticks must be >= 1");
  }
  if (!(config_.cusum_k >= 0.0) || !(config_.cusum_h > 0.0)) {
    throw std::invalid_argument(
        "HealthConfig: cusum_k must be >= 0 and cusum_h > 0");
  }
  if (!(config_.ewma_alpha > 0.0) || !(config_.ewma_alpha <= 1.0)) {
    throw std::invalid_argument("HealthConfig: ewma_alpha must be in (0, 1]");
  }
  if (!(config_.z_threshold > 0.0)) {
    throw std::invalid_argument("HealthConfig: z_threshold must be > 0");
  }
  if (config_.warmup_ticks < 1) {
    throw std::invalid_argument("HealthConfig: warmup_ticks must be >= 1");
  }
}

HealthEngine::KeyState& HealthEngine::state(int model, int node) {
  return keys_[Key{static_cast<std::int16_t>(model),
                   static_cast<std::int16_t>(node)}];
}

void HealthEngine::touch(KeyState& cluster, KeyState& keyed, TimeMs now,
                         DurationMs latency_ms,
                         const std::optional<telemetry::ViolationCause>& cause) {
  for (KeyState* s : {&cluster, &keyed}) {
    ++s->requests;
    s->tick_latency.insert(latency_ms);
    if (cause.has_value()) {
      ++s->violations;
      ++s->causes[static_cast<std::size_t>(*cause)];
    }
  }
  if (cause.has_value() && first_violation_ms_ < 0.0) {
    first_violation_ms_ = now;
  }
}

void HealthEngine::observe_completion(
    TimeMs end_ms, int model, int node, DurationMs latency_ms,
    const std::optional<telemetry::ViolationCause>& cause) {
  ++completions_;
  if (cause.has_value()) ++violations_;
  touch(state(-1, -1), state(model, node), end_ms, latency_ms, cause);
}

void HealthEngine::observe_unserved(TimeMs now, int model, std::uint64_t count) {
  (void)model;  // unserved requests never reached a node: cluster-wide only
  if (count == 0) return;
  violations_ += count;
  KeyState& cluster = state(-1, -1);
  cluster.requests += count;
  cluster.violations += count;
  cluster.causes[static_cast<std::size_t>(
      telemetry::ViolationCause::kUnserved)] += count;
  if (first_violation_ms_ < 0.0) first_violation_ms_ = now;
}

void HealthEngine::observe_queue_depth(TimeMs now, int model, int node,
                                       double depth) {
  (void)now;
  KeyState& s = state(model, node);
  s.gauge = depth;
  s.gauge_fresh = true;
}

void HealthEngine::observe_in_flight(TimeMs now, int node, double batches) {
  (void)now;
  (void)node;  // the in-flight gauge is a cluster-wide signal
  KeyState& cluster = state(-1, -1);
  cluster.gauge = batches;
  cluster.gauge_fresh = true;
}

void HealthEngine::evaluate(TimeMs now) {
  ++evaluations_;
  for (auto& [key, st] : keys_) {
    evaluate_key(key, st, now);
  }
}

void HealthEngine::evaluate_key(const Key& key, KeyState& st, TimeMs now) {
  st.ticks.push_back(TickSample{now, st.requests, st.violations, st.causes});
  // Prune to the slow window, keeping one sample at or before the boundary
  // so window deltas stay exact.
  const TimeMs horizon = now - config_.slow_window_ms;
  while (st.ticks.size() >= 2 && st.ticks[1].t_ms <= horizon) {
    st.ticks.pop_front();
  }

  // --- burn_rate -----------------------------------------------------------
  const double budget = 1.0 - config_.slo_target;
  const TickSample& cur = st.ticks.back();
  auto burn_of = [&](DurationMs window_ms, bool& enough) {
    const TimeMs start = now - window_ms;
    // Latest sample with t <= start; zeros when the run is younger than the
    // window (the window then covers the whole run).
    auto it = std::upper_bound(
        st.ticks.begin(), st.ticks.end(), start,
        [](TimeMs t, const TickSample& s) { return t < s.t_ms; });
    TickSample base;
    if (it != st.ticks.begin()) base = *std::prev(it);
    const std::uint64_t requests = cur.requests - base.requests;
    const std::uint64_t violations = cur.violations - base.violations;
    enough = requests >= config_.min_window_samples;
    if (requests == 0) return 0.0;
    return (static_cast<double>(violations) / static_cast<double>(requests)) /
           budget;
  };
  bool fast_enough = false;
  bool slow_enough = false;
  const double fast_burn = burn_of(config_.fast_window_ms, fast_enough);
  const double slow_burn = burn_of(config_.slow_window_ms, slow_enough);
  const double burn = std::min(fast_burn, slow_burn);
  const bool burn_breach = fast_enough && slow_enough &&
                           fast_burn >= config_.burn_threshold &&
                           slow_burn >= config_.burn_threshold;
  step_lifecycle(key, st, HealthDetector::kBurnRate, now, true, burn_breach,
                 burn);

  // --- latency_cusum -------------------------------------------------------
  const bool has_latency = !st.tick_latency.empty();
  if (has_latency) {
    const double x = st.tick_latency.summary().p99_ms;
    if (st.latency_samples >= config_.warmup_ticks) {
      const double sigma = std::sqrt(std::max(st.latency_var, kVarianceFloor));
      const double z = (x - st.latency_mean) / sigma;
      st.cusum = std::max(0.0, st.cusum + z - config_.cusum_k);
    }
    ewma_update(config_.ewma_alpha, x, st.latency_mean, st.latency_var,
                st.latency_samples);
    st.tick_latency.clear();
  }
  // Ticks without completions freeze the accumulator (no signal either way).
  step_lifecycle(key, st, HealthDetector::kLatencyCusum, now, has_latency,
                 st.cusum >= config_.cusum_h, st.cusum);

  // --- queue_zscore --------------------------------------------------------
  if (st.gauge_fresh) {
    double z = 0.0;
    bool armed = st.gauge_samples >= config_.warmup_ticks;
    if (armed) {
      const double sigma = std::sqrt(std::max(st.gauge_var, kVarianceFloor));
      z = (st.gauge - st.gauge_mean) / sigma;
    }
    // Only growth alerts: a draining queue is recovery, not an incident.
    step_lifecycle(key, st, HealthDetector::kQueueZScore, now, armed,
                   z >= config_.z_threshold, z);
    ewma_update(config_.ewma_alpha, st.gauge, st.gauge_mean, st.gauge_var,
                st.gauge_samples);
    st.gauge_fresh = false;
  } else {
    step_lifecycle(key, st, HealthDetector::kQueueZScore, now, false, false,
                   0.0);
  }
}

void HealthEngine::step_lifecycle(const Key& key, KeyState& st,
                                  HealthDetector detector, TimeMs now,
                                  bool has_signal, bool breach,
                                  double severity) {
  DetectorState& d = st.detectors[static_cast<std::size_t>(detector)];
  if (!has_signal) return;  // frozen: neither a breach nor a clear
  using Phase = DetectorState::Phase;
  if (breach) {
    d.clear_streak = 0;
    ++d.ticks_breached;
    if (d.phase == Phase::kIdle) {
      d.phase = Phase::kPending;
      d.breach_streak = 1;
      d.open_ms = now;
      d.peak_severity = severity;
      d.ticks_breached = 1;
      // The completions that produced this breach arrived in the interval
      // ending at `now`, before this evaluation ran — snapshot one tick
      // back so they land inside the incident's ground truth.
      if (st.ticks.size() >= 2) {
        const TickSample& before = st.ticks[st.ticks.size() - 2];
        d.open_requests = before.requests;
        d.open_violations = before.violations;
        d.open_causes = before.causes;
      } else {
        d.open_requests = 0;
        d.open_violations = 0;
        d.open_causes = telemetry::ViolationCauseCounts{};
      }
    } else {
      ++d.breach_streak;
      d.peak_severity = std::max(d.peak_severity, severity);
    }
    if (d.phase == Phase::kPending &&
        d.breach_streak >= config_.pending_ticks) {
      d.phase = Phase::kFiring;
      d.fire_ms = now;
    }
  } else {
    d.breach_streak = 0;
    if (d.phase == Phase::kPending) {
      // Never fired: dropped silently, nothing exported.
      d.phase = Phase::kIdle;
      d.ticks_breached = 0;
    } else if (d.phase == Phase::kFiring) {
      ++d.clear_streak;
      if (d.clear_streak >= config_.resolve_ticks) {
        close_alert(key, st, detector, now, /*at_end=*/false);
      }
    }
  }
}

void HealthEngine::close_alert(const Key& key, KeyState& st,
                               HealthDetector detector, TimeMs resolve_ms,
                               bool at_end) {
  DetectorState& d = st.detectors[static_cast<std::size_t>(detector)];
  AlertRecord record;
  record.model = key.model;
  record.node = key.node;
  record.detector = detector;
  record.open_ms = d.open_ms;
  record.fire_ms = d.fire_ms;
  record.resolve_ms = resolve_ms;
  record.resolved_at_end = at_end;
  record.peak_severity = d.peak_severity;
  record.ticks_breached = d.ticks_breached;
  record.blame = blame_hint(st, d);
  record.violations = st.violations - d.open_violations;
  record.completed = st.requests - d.open_requests;
  alerts_.push_back(record);
  d = DetectorState{};
}

telemetry::ViolationCause HealthEngine::blame_hint(
    const KeyState& st, const DetectorState& d) const {
  // Cause whose count moved the most while the alert was open; ties break
  // toward the lower enum index (the taxonomy's fixed order).
  std::size_t best = 0;
  std::uint64_t best_delta = 0;
  for (std::size_t i = 0; i < telemetry::kViolationCauseCount; ++i) {
    const std::uint64_t delta = st.causes[i] - d.open_causes[i];
    if (delta > best_delta) {
      best = i;
      best_delta = delta;
    }
  }
  if (best_delta > 0) return static_cast<telemetry::ViolationCause>(best);
  // Nothing moved (anomaly without attributed violations): fall back to the
  // key's cumulative mix, then to plain execution.
  best_delta = 0;
  for (std::size_t i = 0; i < telemetry::kViolationCauseCount; ++i) {
    if (st.causes[i] > best_delta) {
      best = i;
      best_delta = st.causes[i];
    }
  }
  if (best_delta > 0) return static_cast<telemetry::ViolationCause>(best);
  return telemetry::ViolationCause::kExecution;
}

void HealthEngine::finalize(TimeMs end_ms) {
  evaluate(end_ms);
  for (auto& [key, st] : keys_) {
    for (int i = 0; i < kHealthDetectorCount; ++i) {
      const auto detector = static_cast<HealthDetector>(i);
      DetectorState& d = st.detectors[static_cast<std::size_t>(i)];
      if (d.phase == DetectorState::Phase::kFiring) {
        close_alert(key, st, detector, end_ms, /*at_end=*/true);
      } else {
        d = DetectorState{};  // pendings that never fired are dropped
      }
    }
  }
}

}  // namespace paldia::obs
