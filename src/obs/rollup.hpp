// Windowed rollup aggregation (fleet-scale telemetry tier 2).
//
// The full trace answers "what happened to request 84117"; the rollup
// stream answers "how was resnet on the A10G doing between minute 4 and 5"
// in fixed memory. Every completion — sampled into the trace or not — folds
// into a per-(window, model, node) cell holding completion/violation counts,
// the per-cause violation breakdown, a streaming latency sketch (the same
// log-linear QuantileSketch attribution uses), and gauge accumulators for
// queue depth and in-flight batches sampled on monitor ticks.
//
// Memory is bounded by windows x (models+1) x (nodes+1) regardless of
// request count or sample rate, which is what lets a fleet run export
// compliance and attribution without any full trace on disk:
// `paldia-analyze --rollup` rebuilds the report's compliance/attribution
// sections from this stream alone (obs/report.hpp).
//
// Determinism: cells live in a std::map keyed (window, model, node), so
// export iteration order is sorted and independent of completion order;
// all values derive from simulated time and counts, never wall clock.
//
// Hot-path discipline matches the Tracer: the framework holds a
// RollupAggregator* that is nullptr when rollups are disabled (single
// branch); the enabled path is a one-entry cell cache in front of a map
// lookup (completions cluster heavily within a window/model/node).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/obs/sketch.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::obs {

struct RollupConfig {
  /// Window width. Completions at t land in window floor(t / window_ms).
  /// Must be positive; the aggregator's constructor throws otherwise.
  DurationMs window_ms = 60'000.0;
};

/// Cell key. model/node are plain ints (models::ModelId / hw::NodeType);
/// -1 marks cluster-wide rows: unserved requests carry node = -1 (they
/// never reached a node), in-flight gauge samples carry model = -1.
struct RollupKey {
  std::int32_t window = 0;
  std::int16_t model = -1;
  std::int16_t node = -1;

  bool operator<(const RollupKey& other) const {
    if (window != other.window) return window < other.window;
    if (model != other.model) return model < other.model;
    return node < other.node;
  }
  bool operator==(const RollupKey& other) const {
    return window == other.window && model == other.model && node == other.node;
  }
};

struct RollupCell {
  std::uint64_t completed = 0;   // completions observed in the window
  std::uint64_t violations = 0;  // of which SLO-violating
  std::uint64_t unserved = 0;    // never-completed requests (node = -1 rows)
  telemetry::ViolationCauseCounts causes{};
  QuantileSketch latency;
  double queue_depth_sum = 0.0;
  std::uint64_t queue_depth_samples = 0;
  double in_flight_sum = 0.0;
  std::uint64_t in_flight_samples = 0;
};

class RollupAggregator {
 public:
  explicit RollupAggregator(RollupConfig config = {});

  /// One completed request. `cause` is engaged exactly when the request
  /// violated its SLO (the attribution engine's verdict, so rollup-derived
  /// violation/cause counts match the full-trace report).
  void observe_completion(TimeMs end_ms, int model, int node,
                          DurationMs latency_ms,
                          const std::optional<telemetry::ViolationCause>& cause);

  /// Requests still pending at the drain cap. Aggregated under node = -1
  /// with cause kUnserved, mirroring AttributionEngine::record_unserved.
  void observe_unserved(TimeMs now, int model, std::uint64_t count);

  /// Monitor-tick gauges: per-model gateway queue depth on the active node,
  /// and cluster-wide in-flight batches (model = -1).
  void observe_queue_depth(TimeMs now, int model, int node, double depth);
  void observe_in_flight(TimeMs now, int node, double batches);

  const RollupConfig& config() const { return config_; }
  const std::map<RollupKey, RollupCell>& cells() const { return cells_; }
  /// Total observe_completion calls (every completion, sampled or not).
  std::uint64_t completions() const { return completions_; }

  std::int32_t window_of(TimeMs t_ms) const;

 private:
  RollupCell& cell(std::int32_t window, int model, int node);

  RollupConfig config_;
  std::map<RollupKey, RollupCell> cells_;
  std::uint64_t completions_ = 0;
  // One-entry lookup cache: consecutive completions overwhelmingly hit the
  // same (window, model, node) cell. Invalidated on map growth only by
  // being re-pointed (map nodes are stable, so stale is impossible).
  RollupKey last_key_{-1, -1, -1};
  RollupCell* last_cell_ = nullptr;
};

}  // namespace paldia::obs
