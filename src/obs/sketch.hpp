// Bounded-memory streaming quantile sketch for per-model / per-node latency
// distributions inside the attribution engine.
//
// The attribution engine keeps one sketch per (model) and per (node) bucket —
// up to kModelCount + kNodeTypeCount live sketches per repetition — so the
// memory bound matters more than ultimate precision. We reuse the log-linear
// Histogram (0.25 ms linear buckets below 512 ms, exponential above): its
// error is < 0.5 ms in the region a 200 ms SLO cares about, and merge() lets
// the per-rep sketches fold into one run-level distribution deterministically
// (bucket counts are order-independent).
#pragma once

#include <cstdint>

#include "src/common/histogram.hpp"

namespace paldia::obs {

/// Streaming percentile summary: (p50, p95, p99) extracted in one bucket
/// scan, plus count/mean/max passthroughs.
struct SketchSummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class QuantileSketch {
 public:
  void insert(double value_ms) { histogram_.add(value_ms); }
  /// Weighted insert — used to rebuild a sketch from a serialized
  /// Histogram::nonzero_buckets() stream (rollup ingestion).
  void add(double value_ms, std::uint64_t count) { histogram_.add(value_ms, count); }
  void merge(const QuantileSketch& other) { histogram_.merge(other.histogram_); }
  void clear() { histogram_.clear(); }

  std::uint64_t count() const { return histogram_.count(); }
  bool empty() const { return histogram_.count() == 0; }

  /// p50/p95/p99 + count/mean/max in a single pass over the buckets.
  SketchSummary summary() const;

  /// Fraction of inserted samples <= threshold (sketch-side SLO compliance).
  double fraction_at_or_below(double threshold_ms) const {
    return histogram_.fraction_at_or_below(threshold_ms);
  }

  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
};

}  // namespace paldia::obs
