// Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
//
// Layout: each repetition gets a block of process ids. Within a repetition,
// pid base+0 is the framework process — request lifecycle spans are nestable
// async events (cat "request", id = request id), scheduler decisions are
// instant events with the full candidate sweep in args, counters/gauges are
// "C" events — and pid base+1+node is one process per hardware node whose
// threads are the device lanes (MPS / time-shared / CPU), carrying the batch
// execution slices.
//
// Output is deterministic: events are serialized in repetition order, in
// each tracer's recording order, with fixed-precision timestamps — the
// bytes are identical however many threads ran the repetitions.
#pragma once

#include <iosfwd>
#include <string>

#include "src/obs/tracer.hpp"

namespace paldia::obs {

/// Serialize one run's repetition traces as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out, const RunTrace& trace,
                        const std::string& label = "");

/// write_chrome_trace to a file; false (with *error set) when unwritable.
bool write_chrome_trace_file(const std::string& path, const RunTrace& trace,
                             const std::string& label = "",
                             std::string* error = nullptr);

}  // namespace paldia::obs
