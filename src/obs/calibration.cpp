#include "src/obs/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace paldia::obs {

int interval_containing(const std::vector<CalibrationInterval>& intervals,
                        TimeMs t_ms) {
  if (intervals.empty() || t_ms < intervals.front().t_ms) return -1;
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t_ms,
      [](TimeMs t, const CalibrationInterval& interval) { return t < interval.t_ms; });
  return static_cast<int>(it - intervals.begin()) - 1;
}

void CalibrationTracker::on_decision(TimeMs t_ms, int node,
                                     DurationMs predicted_tmax_ms, int best_y,
                                     bool feasible, double predicted_rps,
                                     double observed_rps) {
  CalibrationInterval interval;
  interval.t_ms = t_ms;
  interval.node = node;
  interval.predicted_tmax_ms = predicted_tmax_ms;
  interval.best_y = best_y;
  interval.predicted_feasible = feasible;
  interval.predicted_rps = predicted_rps;
  interval.observed_rps = observed_rps;
  intervals_.push_back(interval);
}

void CalibrationTracker::observe_batch(int node, TimeMs submit_ms, TimeMs end_ms) {
  const int index = interval_containing(intervals_, submit_ms);
  if (index < 0) return;
  CalibrationInterval& interval = intervals_[static_cast<std::size_t>(index)];
  if (interval.node != node) return;  // served by the outgoing node mid-switch
  const DurationMs e2e = end_ms - submit_ms;
  interval.observed = true;
  interval.observed_max_e2e_ms = std::max(interval.observed_max_e2e_ms, e2e);
}

CalibrationSummary summarize_calibration(
    const std::vector<std::vector<CalibrationInterval>>& runs, DurationMs slo_ms,
    DurationMs rate_horizon_ms) {
  CalibrationSummary out;

  struct NodeAcc {
    int intervals = 0;
    double error_sum = 0.0;
    int feasible = 0;
    int covered = 0;
    double predicted_sum = 0.0;
    double observed_sum = 0.0;
  };
  struct YAcc {
    int intervals = 0;
    double error_sum = 0.0;
  };
  std::map<int, NodeAcc> nodes;
  std::map<int, YAcc> splits;
  double error_sum = 0.0;
  int error_count = 0;
  int feasible_total = 0;
  int covered_total = 0;

  double rate_error_sum = 0.0;
  double rate_predicted_sum = 0.0;
  double rate_observed_sum = 0.0;

  for (const auto& intervals : runs) {
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      const CalibrationInterval& interval = intervals[i];
      ++out.intervals_total;
      if (interval.observed && interval.predicted_tmax_ms > 0.0) {
        ++out.intervals_observed;
        const double error =
            std::abs(interval.observed_max_e2e_ms - interval.predicted_tmax_ms) /
            interval.predicted_tmax_ms;
        error_sum += error;
        ++error_count;
        NodeAcc& node = nodes[interval.node];
        ++node.intervals;
        node.error_sum += error;
        node.predicted_sum += interval.predicted_tmax_ms;
        node.observed_sum += interval.observed_max_e2e_ms;
        if (interval.predicted_feasible) {
          ++feasible_total;
          ++node.feasible;
          if (interval.observed_max_e2e_ms <= slo_ms) {
            ++covered_total;
            ++node.covered;
          }
        }
        YAcc& split = splits[interval.best_y];
        ++split.intervals;
        split.error_sum += error;
      }
      // Rate pairing: the forecast at t_i targets t_i + horizon; the first
      // tick at or past that answers it (within the same repetition).
      if (interval.predicted_rps > 0.0) {
        const TimeMs target = interval.t_ms + rate_horizon_ms;
        const auto it = std::lower_bound(
            intervals.begin() + static_cast<std::ptrdiff_t>(i), intervals.end(),
            target, [](const CalibrationInterval& candidate, TimeMs t) {
              return candidate.t_ms < t;
            });
        if (it == intervals.end()) continue;
        ++out.rate.pairs;
        rate_error_sum += std::abs(it->observed_rps - interval.predicted_rps) /
                          interval.predicted_rps;
        rate_predicted_sum += interval.predicted_rps;
        rate_observed_sum += it->observed_rps;
      }
    }
  }

  if (error_count > 0) out.tmax_mape = error_sum / error_count;
  if (feasible_total > 0) {
    out.tmax_coverage =
        static_cast<double>(covered_total) / static_cast<double>(feasible_total);
  }
  for (const auto& [node, acc] : nodes) {
    NodeCalibration row;
    row.node = node;
    row.intervals = acc.intervals;
    row.mape = acc.intervals > 0 ? acc.error_sum / acc.intervals : 0.0;
    row.feasible_intervals = acc.feasible;
    row.coverage = acc.feasible > 0
                       ? static_cast<double>(acc.covered) / acc.feasible
                       : 1.0;
    row.mean_predicted_ms =
        acc.intervals > 0 ? acc.predicted_sum / acc.intervals : 0.0;
    row.mean_observed_ms =
        acc.intervals > 0 ? acc.observed_sum / acc.intervals : 0.0;
    out.per_node.push_back(row);
  }
  for (const auto& [y, acc] : splits) {
    YSplitCalibration row;
    row.best_y = y;
    row.intervals = acc.intervals;
    row.mape = acc.intervals > 0 ? acc.error_sum / acc.intervals : 0.0;
    out.per_y_split.push_back(row);
  }
  if (out.rate.pairs > 0) {
    out.rate.mape = rate_error_sum / out.rate.pairs;
    out.rate.mean_predicted_rps = rate_predicted_sum / out.rate.pairs;
    out.rate.mean_observed_rps = rate_observed_sum / out.rate.pairs;
  }
  return out;
}

}  // namespace paldia::obs
