#include "src/obs/sketch.hpp"

#include <array>

namespace paldia::obs {

SketchSummary QuantileSketch::summary() const {
  SketchSummary s;
  s.count = histogram_.count();
  if (s.count == 0) return s;
  static constexpr std::array<double, 3> kQs = {0.50, 0.95, 0.99};
  const auto qs = histogram_.quantiles(kQs);
  s.mean_ms = histogram_.mean();
  s.p50_ms = qs[0];
  s.p95_ms = qs[1];
  s.p99_ms = qs[2];
  s.max_ms = histogram_.max();
  return s;
}

}  // namespace paldia::obs
