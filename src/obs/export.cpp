#include "src/obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/common/log.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::obs {
namespace {

std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& cell) {
  // \r must quote too: a bare CR inside a cell splits the row for any
  // reader that treats CRLF (or lone CR) as a record separator.
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += "\"";
  return out;
}

std::string sanitize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '-';
  }
  return out;
}

}  // namespace

ExportFormat format_for_path(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot != std::string::npos && path.substr(dot) == ".csv") {
    return ExportFormat::kCsv;
  }
  return ExportFormat::kJsonl;
}

bool warn_if_truncated(const RunTrace& trace, const std::string& context) {
  const std::uint64_t events = trace.dropped_events();
  const std::uint64_t decisions = trace.dropped_decisions();
  if (events == 0 && decisions == 0) return false;
  log_warn("trace export '", context, "' is truncated: ", events,
           " events and ", decisions,
           " decision records were dropped (raise TracerConfig capacities); "
           "attribution/calibration reports over this trace undercount");
  return true;
}

std::string derive_trace_path(const std::string& base, const std::string& scenario,
                              const std::string& scheme) {
  const std::string tag = sanitize(scenario) + "_" + sanitize(scheme);
  const auto dot = base.find_last_of('.');
  const auto slash = base.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + "." + tag + ".json";
  }
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

// --- MetricsWriter ----------------------------------------------------------

namespace {
const char* const kMetricsColumns[] = {
    "figure",         "scheme",          "workload",
    "trace",          "requests",        "slo_compliance",
    "mean_latency_ms", "p50_latency_ms", "p95_latency_ms",
    "p99_latency_ms", "p99_solo_ms",     "p99_queue_ms",
    "p99_interference_ms", "p99_cold_start_ms", "cost",
    "average_power",  "gpu_utilization", "cpu_utilization",
    "goodput_rps",    "offered_rps",     "cold_starts",
    "slo_violations",
    // One column per telemetry::ViolationCause, in enum order.
    "viol_cold_start", "viol_gateway_queue", "viol_batching",
    "viol_mps_interference", "viol_hardware_switch", "viol_failure_retry",
    "viol_execution", "viol_unserved",
    "tmax_mape", "tmax_coverage", "rate_mape", "calib_intervals",
    "tmax_cache_hits", "tmax_cache_misses", "tmax_cache_hit_rate",
};
}  // namespace

MetricsWriter::MetricsWriter(std::ostream& out, ExportFormat format)
    : out_(&out), format_(format) {}

MetricsWriter::MetricsWriter(const std::string& path)
    : file_(std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc)),
      format_(format_for_path(path)) {
  if (!*file_) {
    error_ = "cannot open " + path;
    file_.reset();
    return;
  }
  out_ = file_.get();
}

bool MetricsWriter::ok() const { return out_ != nullptr && error_.empty(); }

void MetricsWriter::write(const telemetry::RunMetrics& metrics,
                          const std::string& figure) {
  if (!ok()) return;
  const auto& breakdown = metrics.p99_breakdown;
  if (format_ == ExportFormat::kCsv) {
    if (!header_written_) {
      header_written_ = true;
      bool first = true;
      for (const char* column : kMetricsColumns) {
        if (!first) *out_ << ",";
        first = false;
        *out_ << column;
      }
      *out_ << "\n";
    }
    *out_ << csv_escape(figure) << "," << csv_escape(metrics.scheme) << ","
          << csv_escape(metrics.workload) << "," << csv_escape(metrics.trace) << ","
          << metrics.requests << "," << num(metrics.slo_compliance) << ","
          << num(metrics.mean_latency_ms) << "," << num(metrics.p50_latency_ms) << ","
          << num(metrics.p95_latency_ms) << "," << num(metrics.p99_latency_ms) << ","
          << num(breakdown.solo_ms) << "," << num(breakdown.queue_ms) << ","
          << num(breakdown.interference_ms) << "," << num(breakdown.cold_start_ms)
          << "," << num(metrics.cost) << "," << num(metrics.average_power) << ","
          << num(metrics.gpu_utilization) << "," << num(metrics.cpu_utilization)
          << "," << num(metrics.goodput_rps) << "," << num(metrics.offered_rps)
          << "," << metrics.cold_starts << "," << num(metrics.slo_violations);
    for (const double count : metrics.violations_by_cause) *out_ << "," << num(count);
    *out_ << "," << num(metrics.tmax_mape) << "," << num(metrics.tmax_coverage)
          << "," << num(metrics.rate_mape) << "," << num(metrics.calib_intervals)
          << "," << num(metrics.tmax_cache_hits) << ","
          << num(metrics.tmax_cache_misses) << ","
          << num(metrics.tmax_cache_hit_rate) << "\n";
  } else {
    *out_ << "{\"figure\":\"" << json_escape(figure) << "\",\"scheme\":\""
          << json_escape(metrics.scheme) << "\",\"workload\":\""
          << json_escape(metrics.workload) << "\",\"trace\":\""
          << json_escape(metrics.trace) << "\",\"requests\":" << metrics.requests
          << ",\"slo_compliance\":" << num(metrics.slo_compliance)
          << ",\"mean_latency_ms\":" << num(metrics.mean_latency_ms)
          << ",\"p50_latency_ms\":" << num(metrics.p50_latency_ms)
          << ",\"p95_latency_ms\":" << num(metrics.p95_latency_ms)
          << ",\"p99_latency_ms\":" << num(metrics.p99_latency_ms)
          << ",\"p99_breakdown\":{\"latency_ms\":" << num(breakdown.latency_ms)
          << ",\"solo_ms\":" << num(breakdown.solo_ms)
          << ",\"queue_ms\":" << num(breakdown.queue_ms)
          << ",\"interference_ms\":" << num(breakdown.interference_ms)
          << ",\"cold_start_ms\":" << num(breakdown.cold_start_ms)
          << ",\"samples\":" << breakdown.samples << "}"
          << ",\"cost\":" << num(metrics.cost)
          << ",\"average_power\":" << num(metrics.average_power)
          << ",\"gpu_utilization\":" << num(metrics.gpu_utilization)
          << ",\"cpu_utilization\":" << num(metrics.cpu_utilization)
          << ",\"goodput_rps\":" << num(metrics.goodput_rps)
          << ",\"offered_rps\":" << num(metrics.offered_rps)
          << ",\"cold_starts\":" << metrics.cold_starts
          << ",\"slo_violations\":" << num(metrics.slo_violations)
          << ",\"violation_causes\":{";
    for (int cause = 0; cause < telemetry::kViolationCauseCount; ++cause) {
      if (cause > 0) *out_ << ",";
      *out_ << "\"" << telemetry::violation_cause_name(
                           static_cast<telemetry::ViolationCause>(cause))
            << "\":" << num(metrics.violations_by_cause[cause]);
    }
    *out_ << "},\"calibration\":{\"tmax_mape\":" << num(metrics.tmax_mape)
          << ",\"tmax_coverage\":" << num(metrics.tmax_coverage)
          << ",\"rate_mape\":" << num(metrics.rate_mape)
          << ",\"intervals\":" << num(metrics.calib_intervals)
          << "},\"tmax_cache\":{\"hits\":" << num(metrics.tmax_cache_hits)
          << ",\"misses\":" << num(metrics.tmax_cache_misses)
          << ",\"hit_rate\":" << num(metrics.tmax_cache_hit_rate) << "}}\n";
  }
  out_->flush();
}

// --- DecisionLogWriter ------------------------------------------------------

DecisionLogWriter::DecisionLogWriter(std::ostream& out, ExportFormat format)
    : out_(&out), format_(format) {}

DecisionLogWriter::DecisionLogWriter(const std::string& path)
    : file_(std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc)),
      format_(format_for_path(path)) {
  if (!*file_) {
    error_ = "cannot open " + path;
    file_.reset();
    return;
  }
  out_ = file_.get();
}

bool DecisionLogWriter::ok() const { return out_ != nullptr && error_.empty(); }

void DecisionLogWriter::write(const RunTrace& trace, const std::string& scheme,
                              const std::string& scenario) {
  if (!ok()) return;
  for (std::size_t rep = 0; rep < trace.reps.size(); ++rep) {
    if (trace.reps[rep] == nullptr) continue;
    for (const auto& record : trace.reps[rep]->decisions()) {
      write_record(record, static_cast<int>(rep), scheme, scenario);
    }
  }
  out_->flush();
}

void DecisionLogWriter::write_record(const DecisionRecord& record, int rep,
                                     const std::string& scheme,
                                     const std::string& scenario) {
  const auto node = [](hw::NodeType type) {
    return std::string(hw::node_type_name(type));
  };
  if (format_ == ExportFormat::kCsv) {
    if (!header_written_) {
      header_written_ = true;
      *out_ << "scheme,scenario,rep,t_ms,current,chosen,final,switch_begun,"
               "feasible,t_max_ms,best_t_max_ms,band_ms,wait_ctr,downgrade_ctr,"
               "emergency_ctr,cpu_short_circuit,predicted_rps,observed_rps,"
               "pool_size,evaluated,pruned,candidates\n";
    }
    // Candidates as "node:t_max:feasible:price" joined with ';' — one cell,
    // still splittable without a CSV-in-CSV parser.
    std::string candidates;
    for (const auto& candidate : record.candidates) {
      if (!candidates.empty()) candidates += ";";
      candidates += node(candidate.node) + ":" + num(candidate.t_max_ms) + ":" +
                    (candidate.feasible ? "1" : "0") + ":" +
                    num(candidate.price_per_hour);
    }
    *out_ << csv_escape(scheme) << "," << csv_escape(scenario) << "," << rep << ","
          << num(record.t_ms) << "," << node(record.current) << ","
          << node(record.raw_choice) << "," << node(record.final_choice) << ","
          << (record.switch_begun ? 1 : 0) << "," << (record.raw_feasible ? 1 : 0)
          << "," << num(record.raw_t_max_ms) << "," << num(record.best_t_max_ms)
          << "," << num(record.band_ms) << "," << record.wait_ctr << ","
          << record.downgrade_ctr << "," << record.emergency_ctr << ","
          << (record.cpu_short_circuit ? 1 : 0) << "," << num(record.predicted_rps)
          << "," << num(record.observed_rps) << "," << record.pool_size << ","
          << record.evaluated_candidates << "," << record.pruned_candidates << ","
          << csv_escape(candidates) << "\n";
  } else {
    *out_ << "{\"scheme\":\"" << json_escape(scheme) << "\",\"scenario\":\""
          << json_escape(scenario) << "\",\"rep\":" << rep
          << ",\"t_ms\":" << num(record.t_ms) << ",\"current\":\""
          << node(record.current) << "\",\"chosen\":\"" << node(record.raw_choice)
          << "\",\"final\":\"" << node(record.final_choice)
          << "\",\"switch_begun\":" << (record.switch_begun ? "true" : "false")
          << ",\"feasible\":" << (record.raw_feasible ? "true" : "false")
          << ",\"t_max_ms\":" << num(record.raw_t_max_ms)
          << ",\"best_t_max_ms\":" << num(record.best_t_max_ms)
          << ",\"band_ms\":" << num(record.band_ms)
          << ",\"wait_ctr\":" << record.wait_ctr
          << ",\"downgrade_ctr\":" << record.downgrade_ctr
          << ",\"emergency_ctr\":" << record.emergency_ctr
          << ",\"cpu_short_circuit\":" << (record.cpu_short_circuit ? "true" : "false")
          << ",\"predicted_rps\":" << num(record.predicted_rps)
          << ",\"observed_rps\":" << num(record.observed_rps)
          << ",\"pool_size\":" << record.pool_size
          << ",\"evaluated\":" << record.evaluated_candidates
          << ",\"pruned\":" << record.pruned_candidates
          << ",\"candidates\":[";
    bool first = true;
    for (const auto& candidate : record.candidates) {
      if (!first) *out_ << ",";
      first = false;
      *out_ << "{\"node\":\"" << node(candidate.node)
            << "\",\"t_max_ms\":" << num(candidate.t_max_ms)
            << ",\"feasible\":" << (candidate.feasible ? "true" : "false")
            << ",\"price_per_hour\":" << num(candidate.price_per_hour)
            << ",\"best_y\":" << candidate.best_y << "}";
    }
    *out_ << "]}\n";
  }
}

// --- RollupWriter -----------------------------------------------------------

RollupWriter::RollupWriter(std::ostream& out, ExportFormat format)
    : out_(&out), format_(format) {}

RollupWriter::RollupWriter(const std::string& path)
    : file_(std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc)),
      format_(format_for_path(path)) {
  if (!*file_) {
    error_ = "cannot open " + path;
    file_.reset();
    return;
  }
  out_ = file_.get();
}

bool RollupWriter::ok() const { return out_ != nullptr && error_.empty(); }

void RollupWriter::write(const RunTrace& trace, const std::string& run) {
  if (!ok()) return;
  for (std::size_t rep = 0; rep < trace.rollups.size(); ++rep) {
    const RollupAggregator* rollup = trace.rollups[rep].get();
    if (rollup == nullptr) continue;
    for (const auto& [key, cell] : rollup->cells()) {
      write_cell(key, cell, rollup->config(), static_cast<int>(rep), run);
    }
  }
  out_->flush();
}

void RollupWriter::write_cell(const RollupKey& key, const RollupCell& cell,
                              const RollupConfig& config, int rep,
                              const std::string& run) {
  const std::string model =
      key.model >= 0 && key.model < models::kModelCount
          ? std::string(models::model_id_name(models::ModelId(key.model)))
          : std::string();
  const std::string node =
      key.node >= 0 && key.node < hw::kNodeTypeCount
          ? std::string(hw::node_type_name(hw::NodeType(key.node)))
          : std::string();
  const TimeMs window_start = key.window * config.window_ms;
  const SketchSummary latency = cell.latency.summary();
  const auto hist = cell.latency.histogram().nonzero_buckets();
  const double queue_mean =
      cell.queue_depth_samples > 0
          ? cell.queue_depth_sum / static_cast<double>(cell.queue_depth_samples)
          : 0.0;
  const double in_flight_mean =
      cell.in_flight_samples > 0
          ? cell.in_flight_sum / static_cast<double>(cell.in_flight_samples)
          : 0.0;

  if (format_ == ExportFormat::kCsv) {
    if (!header_written_) {
      header_written_ = true;
      *out_ << "run,rep,window,window_start_ms,window_end_ms,model,node,"
               "completed,violations,unserved,viol_cold_start,"
               "viol_gateway_queue,viol_batching,viol_mps_interference,"
               "viol_hardware_switch,viol_failure_retry,viol_execution,"
               "viol_unserved,latency_count,latency_mean_ms,latency_p50_ms,"
               "latency_p95_ms,latency_p99_ms,latency_max_ms,hist,"
               "queue_depth_mean,queue_depth_samples,in_flight_mean,"
               "in_flight_samples\n";
    }
    // Histogram as "value:count" pairs joined with ';' — one cell, still
    // splittable without a CSV-in-CSV parser (decision-log idiom).
    std::string pairs;
    for (const auto& [value, count] : hist) {
      if (!pairs.empty()) pairs += ";";
      pairs += num(value) + ":" + std::to_string(count);
    }
    *out_ << csv_escape(run) << "," << rep << "," << key.window << ","
          << num(window_start) << "," << num(window_start + config.window_ms)
          << "," << csv_escape(model) << "," << csv_escape(node) << ","
          << cell.completed << "," << cell.violations << "," << cell.unserved;
    for (const std::uint64_t count : cell.causes) *out_ << "," << count;
    *out_ << "," << latency.count << "," << num(latency.mean_ms) << ","
          << num(latency.p50_ms) << "," << num(latency.p95_ms) << ","
          << num(latency.p99_ms) << "," << num(latency.max_ms) << ","
          << csv_escape(pairs) << "," << num(queue_mean) << ","
          << cell.queue_depth_samples << "," << num(in_flight_mean) << ","
          << cell.in_flight_samples << "\n";
  } else {
    *out_ << "{\"run\":\"" << json_escape(run) << "\",\"rep\":" << rep
          << ",\"window\":" << key.window
          << ",\"window_start_ms\":" << num(window_start)
          << ",\"window_end_ms\":" << num(window_start + config.window_ms)
          << ",\"model\":\"" << json_escape(model) << "\",\"node\":\""
          << json_escape(node) << "\",\"completed\":" << cell.completed
          << ",\"violations\":" << cell.violations
          << ",\"unserved\":" << cell.unserved << ",\"causes\":{";
    for (int cause = 0; cause < telemetry::kViolationCauseCount; ++cause) {
      if (cause > 0) *out_ << ",";
      *out_ << "\"" << telemetry::violation_cause_name(
                           static_cast<telemetry::ViolationCause>(cause))
            << "\":" << cell.causes[static_cast<std::size_t>(cause)];
    }
    *out_ << "},\"latency\":{\"count\":" << latency.count
          << ",\"mean_ms\":" << num(latency.mean_ms)
          << ",\"p50_ms\":" << num(latency.p50_ms)
          << ",\"p95_ms\":" << num(latency.p95_ms)
          << ",\"p99_ms\":" << num(latency.p99_ms)
          << ",\"max_ms\":" << num(latency.max_ms) << "},\"hist\":[";
    bool first = true;
    for (const auto& [value, count] : hist) {
      if (!first) *out_ << ",";
      first = false;
      *out_ << "[" << num(value) << "," << count << "]";
    }
    *out_ << "],\"queue_depth_mean\":" << num(queue_mean)
          << ",\"queue_depth_samples\":" << cell.queue_depth_samples
          << ",\"in_flight_mean\":" << num(in_flight_mean)
          << ",\"in_flight_samples\":" << cell.in_flight_samples << "}\n";
  }
  out_->flush();
}

// --- AlertWriter ------------------------------------------------------------

AlertWriter::AlertWriter(std::ostream& out, ExportFormat format)
    : out_(&out), format_(format) {}

AlertWriter::AlertWriter(const std::string& path)
    : file_(std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc)),
      format_(format_for_path(path)) {
  if (!*file_) {
    error_ = "cannot open " + path;
    file_.reset();
    return;
  }
  out_ = file_.get();
}

bool AlertWriter::ok() const { return out_ != nullptr && error_.empty(); }

void AlertWriter::write(const RunTrace& trace, const std::string& run) {
  if (!ok()) return;
  for (std::size_t rep = 0; rep < trace.healths.size(); ++rep) {
    const HealthEngine* engine = trace.healths[rep].get();
    if (engine == nullptr) continue;
    for (const AlertRecord& record : engine->alerts()) {
      write_alert(record, static_cast<int>(rep), run);
    }
    write_summary(*engine, static_cast<int>(rep), run);
  }
  out_->flush();
}

void AlertWriter::write_header() {
  if (header_written_) return;
  header_written_ = true;
  // One header for both row kinds; summary rows leave the alert-only
  // columns empty and vice versa.
  *out_ << "run,rep,row,detector,model,node,open_ms,fire_ms,resolve_ms,"
           "resolved_at_end,peak_severity,ticks_breached,blame,violations,"
           "completed,first_violation_ms,evaluations,alerts\n";
}

void AlertWriter::write_alert(const AlertRecord& record, int rep,
                              const std::string& run) {
  const std::string model =
      record.model >= 0 && record.model < models::kModelCount
          ? std::string(models::model_id_name(models::ModelId(record.model)))
          : std::string();
  const std::string node =
      record.node >= 0 && record.node < hw::kNodeTypeCount
          ? std::string(hw::node_type_name(hw::NodeType(record.node)))
          : std::string();
  const char* detector = health_detector_name(record.detector);
  const std::string_view blame = telemetry::violation_cause_name(record.blame);
  if (format_ == ExportFormat::kCsv) {
    write_header();
    *out_ << csv_escape(run) << "," << rep << ",alert," << detector << ","
          << csv_escape(model) << "," << csv_escape(node) << ","
          << num(record.open_ms) << "," << num(record.fire_ms) << ","
          << num(record.resolve_ms) << "," << (record.resolved_at_end ? 1 : 0)
          << "," << num(record.peak_severity) << "," << record.ticks_breached
          << "," << blame << "," << record.violations << "," << record.completed
          << ",,,\n";
  } else {
    *out_ << "{\"run\":\"" << json_escape(run) << "\",\"rep\":" << rep
          << ",\"row\":\"alert\",\"detector\":\"" << detector
          << "\",\"model\":\"" << json_escape(model) << "\",\"node\":\""
          << json_escape(node) << "\",\"open_ms\":" << num(record.open_ms)
          << ",\"fire_ms\":" << num(record.fire_ms)
          << ",\"resolve_ms\":" << num(record.resolve_ms)
          << ",\"resolved_at_end\":" << (record.resolved_at_end ? "true" : "false")
          << ",\"peak_severity\":" << num(record.peak_severity)
          << ",\"ticks_breached\":" << record.ticks_breached << ",\"blame\":\""
          << blame << "\",\"violations\":" << record.violations
          << ",\"completed\":" << record.completed << "}\n";
  }
  out_->flush();
}

void AlertWriter::write_summary(const HealthEngine& engine, int rep,
                                const std::string& run) {
  if (format_ == ExportFormat::kCsv) {
    write_header();
    *out_ << csv_escape(run) << "," << rep << ",summary,,,,,,,,,,,"
          << engine.violations() << "," << engine.completions() << ","
          << num(engine.first_violation_ms()) << "," << engine.evaluations()
          << "," << engine.alerts().size() << "\n";
  } else {
    *out_ << "{\"run\":\"" << json_escape(run) << "\",\"rep\":" << rep
          << ",\"row\":\"summary\",\"completed\":" << engine.completions()
          << ",\"violations\":" << engine.violations()
          << ",\"first_violation_ms\":" << num(engine.first_violation_ms())
          << ",\"evaluations\":" << engine.evaluations()
          << ",\"alerts\":" << engine.alerts().size() << "}\n";
  }
  out_->flush();
}

}  // namespace paldia::obs
