#include "src/obs/attribution.hpp"

#include <algorithm>

#include "src/models/zoo.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::obs {

using telemetry::ViolationCause;

telemetry::ViolationCause classify_violation(const LifecycleSample& sample) {
  if (sample.retried) return ViolationCause::kFailureRetry;

  const DurationMs gateway = std::max(0.0, sample.submit_ms - sample.arrival_ms);
  // Cold boot happens inside the dispatch window (submit -> start), so the
  // net lane/container wait excludes it.
  const DurationMs lane =
      std::max(0.0, sample.start_ms - sample.submit_ms - sample.cold_ms);
  const DurationMs cold = std::max(0.0, sample.cold_ms);
  const DurationMs interference = std::max(0.0, sample.interference_ms);
  const DurationMs solo = std::max(0.0, sample.solo_ms);

  // A blackout explains the violation only when waiting for hardware, not
  // execution-side inflation, carried the latency.
  if (sample.blackout && gateway + lane >= cold + interference) {
    return ViolationCause::kHardwareSwitch;
  }

  struct Part {
    DurationMs value;
    ViolationCause cause;
  };
  const Part parts[] = {
      {cold, ViolationCause::kColdStart},
      {interference, ViolationCause::kMpsInterference},
      {lane, ViolationCause::kBatching},
      {gateway, ViolationCause::kGatewayQueue},
      {solo, ViolationCause::kExecution},
  };
  Part best = parts[0];
  for (const Part& part : parts) {
    if (part.value > best.value) best = part;  // strict: ties keep the order
  }
  return best.cause;
}

void BlackoutWindows::open(TimeMs now) {
  windows_.push_back(Window{now, kTimeNever});
}

void BlackoutWindows::close_all(TimeMs now) {
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->end_ms != kTimeNever) break;  // older windows are all closed
    it->end_ms = now;
  }
}

bool BlackoutWindows::overlaps(TimeMs begin_ms, TimeMs end_ms) const {
  for (const Window& window : windows_) {
    if (begin_ms <= window.end_ms && end_ms >= window.begin_ms) return true;
  }
  return false;
}

AttributionEngine::AttributionEngine(const models::Zoo& zoo) {
  for (int i = 0; i < models::kModelCount; ++i) {
    slo_ms_[i] = zoo.spec(models::ModelId(i)).slo_ms;
  }
}

std::optional<telemetry::ViolationCause> AttributionEngine::observe_request(
    LifecycleSample sample) {
  const bool model_ok = sample.model >= 0 && sample.model < models::kModelCount;
  const bool node_ok = sample.node >= 0 && sample.node < hw::kNodeTypeCount;
  sample.retried = retried_.count(sample.request_id) > 0;
  sample.blackout = blackouts_.overlaps(sample.arrival_ms, sample.start_ms);

  const DurationMs latency = sample.end_ms - sample.arrival_ms;
  ++total_.completed;
  total_.latency.insert(latency);
  if (model_ok) {
    ++per_model_[sample.model].completed;
    per_model_[sample.model].latency.insert(latency);
  }
  if (node_ok) {
    ++per_node_[sample.node].completed;
    per_node_[sample.node].latency.insert(latency);
  }

  if (!model_ok || latency <= slo_ms_[sample.model]) return std::nullopt;

  const ViolationCause cause = classify_violation(sample);
  const auto index = static_cast<std::size_t>(cause);
  ++total_.violations;
  ++total_.causes[index];
  ++window_[index];
  ++per_model_[sample.model].violations;
  ++per_model_[sample.model].causes[index];
  if (node_ok) {
    ++per_node_[sample.node].violations;
    ++per_node_[sample.node].causes[index];
  }
  return cause;
}

void AttributionEngine::record_unserved(int model, std::uint64_t count) {
  if (count == 0) return;
  const auto index = static_cast<std::size_t>(ViolationCause::kUnserved);
  total_.completed += count;
  total_.violations += count;
  total_.causes[index] += count;
  window_[index] += count;
  if (model >= 0 && model < models::kModelCount) {
    per_model_[model].completed += count;
    per_model_[model].violations += count;
    per_model_[model].causes[index] += count;
  }
}

namespace {
// Gauge names must be static literals (tracer stores the pointer); index
// order matches telemetry::ViolationCause.
constexpr const char* kCauseGaugeNames[telemetry::kViolationCauseCount] = {
    "violations_cold_start",     "violations_gateway_queue",
    "violations_batching",       "violations_mps_interference",
    "violations_hardware_switch", "violations_failure_retry",
    "violations_execution",      "violations_unserved",
};
}  // namespace

void AttributionEngine::sample(Tracer& tracer, TimeMs now) {
  tracer.gauge("slo_violations_total", now,
               static_cast<double>(total_.violations));
  for (int i = 0; i < telemetry::kViolationCauseCount; ++i) {
    if (window_[i] == 0) continue;  // only causes that moved this window
    tracer.gauge(kCauseGaugeNames[i], now, static_cast<double>(window_[i]));
    window_[i] = 0;
  }
  if (!total_.latency.empty()) {
    const SketchSummary summary = total_.latency.summary();
    tracer.gauge("latency_sketch_p50_ms", now, summary.p50_ms);
    tracer.gauge("latency_sketch_p95_ms", now, summary.p95_ms);
    tracer.gauge("latency_sketch_p99_ms", now, summary.p99_ms);
  }
}

}  // namespace paldia::obs
