#include "src/obs/rollup.hpp"

#include <cmath>
#include <stdexcept>

namespace paldia::obs {

RollupAggregator::RollupAggregator(RollupConfig config) : config_(config) {
  // Reject the bad window up front: a silent fixup here would make
  // window_of() bucket against a width the caller never asked for.
  if (!(config_.window_ms > 0.0)) {
    throw std::invalid_argument(
        "RollupConfig: window_ms must be positive");
  }
}

std::int32_t RollupAggregator::window_of(TimeMs t_ms) const {
  return static_cast<std::int32_t>(std::floor(t_ms / config_.window_ms));
}

RollupCell& RollupAggregator::cell(std::int32_t window, int model, int node) {
  const RollupKey key{window, static_cast<std::int16_t>(model),
                      static_cast<std::int16_t>(node)};
  if (last_cell_ != nullptr && key == last_key_) return *last_cell_;
  RollupCell& found = cells_[key];
  last_key_ = key;
  last_cell_ = &found;
  return found;
}

void RollupAggregator::observe_completion(
    TimeMs end_ms, int model, int node, DurationMs latency_ms,
    const std::optional<telemetry::ViolationCause>& cause) {
  ++completions_;
  RollupCell& c = cell(window_of(end_ms), model, node);
  ++c.completed;
  c.latency.insert(latency_ms);
  if (cause.has_value()) {
    ++c.violations;
    ++c.causes[static_cast<std::size_t>(*cause)];
  }
}

void RollupAggregator::observe_unserved(TimeMs now, int model,
                                        std::uint64_t count) {
  if (count == 0) return;
  RollupCell& c = cell(window_of(now), model, /*node=*/-1);
  c.unserved += count;
  c.causes[static_cast<std::size_t>(telemetry::ViolationCause::kUnserved)] +=
      count;
}

void RollupAggregator::observe_queue_depth(TimeMs now, int model, int node,
                                           double depth) {
  RollupCell& c = cell(window_of(now), model, node);
  c.queue_depth_sum += depth;
  ++c.queue_depth_samples;
}

void RollupAggregator::observe_in_flight(TimeMs now, int node, double batches) {
  RollupCell& c = cell(window_of(now), /*model=*/-1, node);
  c.in_flight_sum += batches;
  ++c.in_flight_samples;
}

}  // namespace paldia::obs
