// Simulator self-profiling: scoped wall-clock timers over the simulator's
// own hot paths (epoch extract/merge, Algorithm 1 sweep, dispatch/monitor
// ticks, exporter flush), aggregated per phase.
//
// This measures the *host* cost of running the simulation, not simulated
// time — so unlike every other obs stream its numbers are nondeterministic
// by nature. To keep the byte-identity guarantees of the trace/metrics/
// rollup exports intact, profile data only ever reaches an export when the
// run opted in (--profile): the report gains a "profile" section and the
// chrome trace a dedicated self-profile lane, both emitted only when the
// profiler observed at least one phase.
//
// Hot-path discipline matches the Tracer: call sites hold a Profiler* that
// is nullptr when profiling is disabled; ScopedPhase on a nullptr profiler
// skips the clock reads entirely, so the disabled cost is a single branch.
// One Profiler per repetition; scopes are only ever opened on the thread
// driving that repetition (sharded epoch extraction is timed around the
// whole parallel_for, from the driver thread).
//
// Kept dependency-free (std only) so sim/ can include it without layering
// the simulator on the rest of the obs subsystem.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace paldia::obs {

/// The instrumented phases. Order is the report/export order.
enum class ProfilePhase : std::uint8_t {
  kEpochExtract = 0,  // sharded per-shard window extraction (whole fan-out)
  kEpochMerge,        // global (time, sequence) k-way merged execution
  kSerialDrain,       // single-shard pop loop (shards=1 runs)
  kSelectionSweep,    // Algorithm 1 hardware-selection sweep
  kDispatchTick,      // framework dispatch tick (batching + submission)
  kMonitorTick,       // framework monitor tick (selection + telemetry)
  kExportFlush,       // exporter flush (trace/decisions/rollup writes)
};

inline constexpr int kProfilePhaseCount = 7;

/// Stable machine name ("epoch_extract", "serial_drain", ...).
std::string_view profile_phase_name(ProfilePhase phase);

struct PhaseStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

class Profiler {
 public:
  void record(ProfilePhase phase, std::uint64_t elapsed_ns) {
    PhaseStats& stats = phases_[static_cast<std::size_t>(phase)];
    ++stats.calls;
    stats.total_ns += elapsed_ns;
    if (elapsed_ns > stats.max_ns) stats.max_ns = elapsed_ns;
  }

  const std::array<PhaseStats, kProfilePhaseCount>& phases() const {
    return phases_;
  }
  const PhaseStats& phase(ProfilePhase phase) const {
    return phases_[static_cast<std::size_t>(phase)];
  }

  /// Fold another repetition's profile into this one (max of maxes).
  void merge(const Profiler& other);

  /// True when no phase was ever recorded (suppresses export sections).
  bool empty() const;

 private:
  std::array<PhaseStats, kProfilePhaseCount> phases_{};
};

/// RAII phase timer tolerant of a disabled (nullptr) profiler.
class ScopedPhase {
 public:
  ScopedPhase(Profiler* profiler, ProfilePhase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profiler_->record(phase_, static_cast<std::uint64_t>(
                                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      elapsed)
                                      .count()));
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* profiler_;
  ProfilePhase phase_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace paldia::obs
