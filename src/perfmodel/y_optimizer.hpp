// The parallel y-sweep of Algorithm 1: probe candidate y values from the
// optimal range (plus the boundary splits) in parallel and pick the one
// minimising T_max. The paper reports < 3 ms wall-clock for this step
// (Section III); bench/micro_perf.cpp checks ours.
#pragma once

#include "src/common/thread_pool.hpp"
#include "src/perfmodel/tmax_model.hpp"

namespace paldia::perfmodel {

struct SharingDecision {
  int y = 0;                  // requests to queue (time share)
  DurationMs t_max_ms = 0.0;  // predicted worst-case completion
  bool feasible = false;      // t_max <= SLO
};

/// Default probe budget of the sweep. Named so cache keys built at the
/// call sites (TmaxCache) agree with the default-argument call paths.
inline constexpr int kDefaultSweepProbes = 256;

class YOptimizer {
 public:
  /// pool may be null: the sweep then runs on the calling thread (results
  /// are identical; the pool only changes wall-clock time).
  explicit YOptimizer(TmaxModel model, ThreadPool* pool = nullptr)
      : model_(model), pool_(pool) {}

  /// Best split for the operating point. Candidates: every y in the optimal
  /// range (strided down to <= max_probes points), plus y = N (pure time
  /// sharing) and y = 0 (pure spatial — covers the unsaturated case where
  /// the optimal range is empty). Deterministic regardless of the pool.
  SharingDecision best_split(const WorkloadPoint& point,
                             int max_probes = kDefaultSweepProbes) const;

  const TmaxModel& model() const { return model_; }

 private:
  TmaxModel model_;
  ThreadPool* pool_;
};

}  // namespace paldia::perfmodel
