// The paper's interference/queueing model (Section III, Eq. 1).
//
// Given N outstanding requests of one model on a GPU, y of them are queued
// (time-shared) and N - y run concurrently under MPS. The worst-case
// completion time is
//
//   T_max(y) = Solo * y / BS            (queued portion; the paper's
//                                        "proportionate fraction"
//                                        approximation, <4% error)
//            + Solo * stretch(S(y))     (concurrent portion)
//
// with S(y) = ((N - y) / BS) * FBR, the total fractional bandwidth demand
// of the concurrent set.
//
// The paper's literal Eq. 1 uses stretch(S) = S, valid only when S > 1
// (constraint (ii)). Taken literally over its whole feasible range that
// expression is monotone increasing in y whenever FBR < 1, i.e. all-spatial
// would always be "optimal" — which contradicts the paper's own motivation
// experiment (Fig. 1, where over-consolidation under MPS costs up to 2.2x).
// The missing piece is the superlinear degradation real MPS exhibits under
// gross oversubscription (Prophet's linear model is validated only for
// small co-location degrees). We therefore use
//
//   stretch(S) = max(1, S * (1 + beta * (S - 1)))
//
// the same form the simulated device exhibits; beta is a profiled hardware
// constant, exactly like Solo and FBR (the provider measures it alongside
// them). The *scheduler's* beta may deliberately differ from the device's
// (model error); tests pin the error band. Both the literal and calibrated
// forms are exposed.
#pragma once

#include <optional>
#include <utility>

#include "src/common/units.hpp"

namespace paldia::perfmodel {

/// One model's operating point on one GPU, the inputs of Eq. 1.
struct WorkloadPoint {
  int n_requests = 0;      // N_M: outstanding requests now
  int batch_size = 1;      // BS_M
  DurationMs solo_ms = 0;  // Solo_M on the candidate GPU at batch_size
  double fbr = 0.0;        // FBR_M on the candidate GPU
  DurationMs slo_ms = 200.0;
  /// Per-batch compute (SM) occupancy on the candidate GPU. The concurrent
  /// set's execution stretches by whichever resource saturates first —
  /// bandwidth (the paper's FBR term) or compute (MPS SM contention).
  /// 0 reproduces the bandwidth-only form.
  double compute = 0.0;
};

class TmaxModel {
 public:
  /// beta = 0 reproduces the paper's literal Eq. 1.
  explicit TmaxModel(double beta = 0.2) : beta_(beta) {}

  double beta() const { return beta_; }

  /// Bandwidth demand of the concurrent set for a given split.
  double fbr_sum(const WorkloadPoint& point, int y) const;

  /// Compute demand of the concurrent set for a given split.
  double compute_sum(const WorkloadPoint& point, int y) const;

  /// Execution stretch factor for one resource dimension's total demand.
  double stretch(double demand_sum) const;

  /// T_max for the split. y in [0, N]; y == N is pure time sharing
  /// (T_max = Solo * N / BS, no concurrent set).
  DurationMs t_max_ms(const WorkloadPoint& point, int y) const;

  /// Closed-form lower bound on min over y in [0, N] of t_max_ms(point, y):
  ///
  ///   LB = Solo * min(N / BS, max(1, (N / BS) * q)),  q = max(FBR, compute)
  ///
  /// Proof sketch: y = N gives Solo * N / BS. For y < N, stretch >= 1 and
  /// stretch(S) >= S bound the concurrent term, so T_max(y) >= Solo * (y/BS
  /// + max(1, ((N-y)/BS) q)); minimising that piecewise-linear function over
  /// y gives >= Solo * max(1, (N/BS) q) when the demand saturates and
  /// >= Solo otherwise, and N/BS caps both via the pure-time-share split.
  /// The bound needs no y-sweep (two profile reads), is 0 for N <= 0, and
  /// is monotone in N when BS = min(max_batch, N) — the pruned hardware
  /// sweep uses it to discard provably-infeasible or provably-worse
  /// candidates without running Algorithm 1's sweep on them.
  DurationMs t_max_lower_bound(const WorkloadPoint& point) const;

  /// The paper's 'optimal range' of y values: those satisfying constraint
  /// (i) y < N and (ii) S(y) > 1 (interference term valid). Returns an
  /// inclusive [lo, hi] range, or nullopt when no y satisfies (ii) — the
  /// GPU is lightly loaded and the whole demand fits spatially without
  /// saturating bandwidth.
  std::optional<std::pair<int, int>> optimal_range(const WorkloadPoint& point) const;

 private:
  double beta_;
};

}  // namespace paldia::perfmodel
