// Memoization of the Algorithm 1 y-sweep (Eq. 1, Section III).
//
// Every monitor tick re-runs HardwareSelection's candidate sweep, and every
// dispatch round re-runs plan_dispatch's split sweep — both bottom out in
// YOptimizer::best_split over a WorkloadPoint that is a pure function of
// (model, node, N, SLO budget, probe count): batch size derives from N and
// the model's max_batch, and Solo/FBR/compute come from the immutable
// profile table. TmaxModel is deterministic math, so caching the sweep
// result is exact, not approximate — cached and recomputed decisions are
// bit-identical, and the CI byte-identity check (cache on vs
// --no-tmax-cache) verifies exactly that.
//
// Keying and invalidation: the key is (model, node, N, SLO quantized to a
// 1/1024 ms grid, max_probes). There is no invalidation rule because there
// is nothing to invalidate — the profile table and model/catalog specs are
// immutable for the lifetime of the owning policy, and each policy instance
// (one per repetition) owns its own cache, so entries can never go stale.
// The stored value keeps only (y, t_max); feasibility is recomputed against
// the caller's *unquantized* SLO at lookup time, so grid rounding can never
// flip a feasibility verdict.
//
// Bypass mode (--no-tmax-cache): lookups and insertions still happen and
// hits/misses are counted identically, but the returned decision is always
// freshly recomputed. This keeps every exported byte (including the
// hit/miss counter stream) identical between modes, which is what makes the
// byte-identity check meaningful rather than vacuous.
//
// Thread safety: HardwareSelection::choose evaluates candidate nodes in a
// parallel_for, so concurrent lookups happen — a mutex guards the map.
// Concurrent callers always probe *different* keys (the node is in the
// key), so hit/miss totals stay deterministic regardless of thread count.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::perfmodel {

struct TmaxCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class TmaxCache {
 public:
  /// bypass = true: count and populate as usual but always recompute (the
  /// --no-tmax-cache mode; see the file comment).
  explicit TmaxCache(bool bypass = false) : bypass_(bypass) {}
  TmaxCache(const TmaxCache&) = delete;
  TmaxCache& operator=(const TmaxCache&) = delete;

  /// Cache key. model/node are the raw enum values (kept as integers so
  /// this header needs neither models/ nor hw/); slo_q is the SLO budget
  /// quantized to the 1/1024 ms grid via quantize_slo().
  struct Key {
    std::int16_t model = -1;
    std::int16_t node = -1;
    std::int32_t n_requests = 0;
    std::int64_t slo_q = 0;
    std::int32_t max_probes = 0;

    bool operator==(const Key& other) const {
      return model == other.model && node == other.node &&
             n_requests == other.n_requests && slo_q == other.slo_q &&
             max_probes == other.max_probes;
    }
  };

  static std::int64_t quantize_slo(DurationMs slo_ms);

  /// best_split through the cache: returns the memoized (y, t_max) when the
  /// key is present, computing and inserting it otherwise. Feasibility is
  /// always re-derived from point.slo_ms, never stored.
  SharingDecision best_split(const YOptimizer& optimizer, const Key& key,
                             const WorkloadPoint& point, int max_probes);

  TmaxCacheStats stats() const;
  std::size_t size() const;
  bool bypass() const { return bypass_; }

 private:
  struct Value {
    int y = 0;
    DurationMs t_max_ms = 0.0;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, Value, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  const bool bypass_;
};

}  // namespace paldia::perfmodel
