#include "src/perfmodel/tmax_cache.hpp"

#include <cassert>
#include <cmath>

namespace paldia::perfmodel {

std::int64_t TmaxCache::quantize_slo(DurationMs slo_ms) {
  // 1/1024 ms grid: exact for every SLO the zoo defines (integral ms times
  // the 0.85 headroom factor), fine enough that two budgets landing in the
  // same cell are indistinguishable for the sweep (t_max does not depend on
  // the SLO at all; only the candidate set could, through optimal_range).
  return static_cast<std::int64_t>(std::llround(slo_ms * 1024.0));
}

std::size_t TmaxCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the packed fields; the key is small enough that quality
  // beyond "spread the low bits" does not matter.
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(key.model)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(key.node)) << 16);
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.n_requests)));
  mix(static_cast<std::uint64_t>(key.slo_q));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.max_probes)));
  return static_cast<std::size_t>(hash);
}

SharingDecision TmaxCache::best_split(const YOptimizer& optimizer, const Key& key,
                                      const WorkloadPoint& point, int max_probes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      if (!bypass_) {
        SharingDecision decision;
        decision.y = it->second.y;
        decision.t_max_ms = it->second.t_max_ms;
        decision.feasible = decision.t_max_ms <= point.slo_ms;
        return decision;
      }
    } else {
      ++misses_;
    }
  }
  // Miss (or bypass): compute outside the lock — concurrent callers always
  // probe different keys (see file comment), so nobody duplicates this work.
  const SharingDecision decision = optimizer.best_split(point, max_probes);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, Value{decision.y, decision.t_max_ms});
  if (!inserted) {
    // Bypass hit re-verifies the memoized value against the recomputation —
    // the bit-identity contract, also asserted by the CI byte-identity run.
    assert(it->second.y == decision.y && it->second.t_max_ms == decision.t_max_ms);
    (void)it;
  }
  return decision;
}

TmaxCacheStats TmaxCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return TmaxCacheStats{hits_, misses_};
}

std::size_t TmaxCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace paldia::perfmodel
