#include "src/perfmodel/tmax_model.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::perfmodel {

double TmaxModel::fbr_sum(const WorkloadPoint& point, int y) const {
  const double concurrent = std::max(0, point.n_requests - y);
  return concurrent / static_cast<double>(point.batch_size) * point.fbr;
}

double TmaxModel::compute_sum(const WorkloadPoint& point, int y) const {
  const double concurrent = std::max(0, point.n_requests - y);
  return concurrent / static_cast<double>(point.batch_size) * point.compute;
}

double TmaxModel::stretch(double demand_sum) const {
  if (demand_sum <= 1.0) return 1.0;
  return demand_sum * (1.0 + beta_ * (demand_sum - 1.0));
}

DurationMs TmaxModel::t_max_ms(const WorkloadPoint& point, int y) const {
  y = std::clamp(y, 0, point.n_requests);
  const double queued =
      point.solo_ms * static_cast<double>(y) / static_cast<double>(point.batch_size);
  if (y == point.n_requests) {
    return queued;  // pure time sharing: last batch ends after N/BS batches
  }
  const double spatial =
      point.solo_ms * std::max(stretch(fbr_sum(point, y)),
                               stretch(compute_sum(point, y)));
  return queued + spatial;
}

DurationMs TmaxModel::t_max_lower_bound(const WorkloadPoint& point) const {
  if (point.n_requests <= 0) return 0.0;
  const double batches =
      static_cast<double>(point.n_requests) / static_cast<double>(point.batch_size);
  const double q = std::max(point.fbr, point.compute);
  return point.solo_ms * std::min(batches, std::max(1.0, batches * q));
}

std::optional<std::pair<int, int>> TmaxModel::optimal_range(
    const WorkloadPoint& point) const {
  if (point.n_requests <= 0 || point.fbr <= 0.0) return std::nullopt;
  // Constraint (ii): ((N - y) / BS) * FBR > 1  =>  y < N - BS / FBR.
  const double limit = point.n_requests - point.batch_size / point.fbr;
  const int hi = static_cast<int>(std::ceil(limit)) - 1;
  if (hi < 0) return std::nullopt;
  return std::make_pair(0, std::min(hi, point.n_requests - 1));
}

}  // namespace paldia::perfmodel
