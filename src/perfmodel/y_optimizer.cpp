#include "src/perfmodel/y_optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <vector>

namespace paldia::perfmodel {

SharingDecision YOptimizer::best_split(const WorkloadPoint& point,
                                       int max_probes) const {
  SharingDecision best;
  if (point.n_requests <= 0) {
    best.y = 0;
    best.t_max_ms = 0.0;
    best.feasible = true;
    return best;
  }

  // Assemble the candidate y values.
  std::vector<int> candidates;
  candidates.push_back(0);
  candidates.push_back(point.n_requests);
  if (const auto range = model_.optimal_range(point)) {
    const auto [lo, hi] = *range;
    const int span = hi - lo + 1;
    const int stride = std::max(1, (span + max_probes - 1) / max_probes);
    for (int y = lo; y <= hi; y += stride) candidates.push_back(y);
    if ((hi - lo) % stride != 0) candidates.push_back(hi);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<double> t_max(candidates.size());
  auto evaluate = [&](std::size_t i) {
    t_max[i] = model_.t_max_ms(point, candidates[i]);
  };
  // Safe to run even when best_split is itself inside a pool task (the
  // hardware sweep's par_for over nodes): parallel_for is nestable — the
  // caller help-drains its own task group instead of blocking on a global
  // counter. The >= 64 gate only skips dispatch overhead on tiny sweeps.
  if (pool_ != nullptr && candidates.size() >= 64) {
    pool_->parallel_for(candidates.size(), evaluate);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) evaluate(i);
  }

  // Min-reduction; ties break towards the smaller y (less queueing).
  std::size_t best_index = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (t_max[i] < t_max[best_index]) best_index = i;
  }
  best.y = candidates[best_index];
  best.t_max_ms = t_max[best_index];
  best.feasible = best.t_max_ms <= point.slo_ms;
  return best;
}

}  // namespace paldia::perfmodel
