#include "src/perfmodel/cpu_latency_model.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::perfmodel {

CpuEstimate approx_cpu_t_max(const models::ModelSpec& model,
                             const models::ProfileTable& profile, hw::NodeType node,
                             int n_requests, DurationMs slo_ms) {
  CpuEstimate estimate;
  if (n_requests <= 0) {
    estimate.feasible = true;
    return estimate;
  }
  // Largest batch whose isolated latency leaves headroom for at least one
  // more batch ahead of it in the queue would be ideal; the simple bound the
  // paper needs is: batches drain sequentially, last one finishes after
  // ceil(N / bs) * solo(bs). Pick the bs minimising that subject to
  // solo(bs) <= SLO.
  const int fit = profile.max_batch_within(model, node, slo_ms);
  if (fit <= 0) {
    // Even one request cannot be served within the SLO on this node.
    estimate.t_max_ms = profile.lookup(model, node, 1).solo_ms;
    estimate.batch_size = 1;
    estimate.feasible = false;
    return estimate;
  }
  double best_t = kTimeNever;
  int best_bs = fit;
  for (int bs = 1; bs <= std::min(fit, model.max_batch); ++bs) {
    const double solo = profile.lookup(model, node, bs).solo_ms;
    const double batches = std::ceil(static_cast<double>(n_requests) / bs);
    const double t = batches * solo;
    if (t < best_t) {
      best_t = t;
      best_bs = bs;
    }
  }
  estimate.t_max_ms = best_t;
  estimate.batch_size = best_bs;
  estimate.feasible = best_t <= slo_ms;
  return estimate;
}

CpuSteadyState cpu_steady_state(const models::ModelSpec& model,
                                const models::ProfileTable& profile,
                                hw::NodeType node, Rps rate, DurationMs slo_ms,
                                DurationMs batch_wait_ms, double max_utilization) {
  CpuSteadyState state;
  if (rate <= 0.0) {
    state.feasible = true;
    state.batch_size = 1;
    state.latency_ms = profile.lookup(model, node, 1).solo_ms;
    return state;
  }
  const int fit = profile.max_batch_within(model, node, slo_ms);
  if (fit <= 0) return state;  // infeasible: one request alone busts the SLO

  // The batcher collects for at most batch_wait_ms, so the operating batch
  // size is what accumulates in that window.
  const int bs = std::clamp(
      static_cast<int>(std::ceil(rate * batch_wait_ms / kMsPerSecond)), 1, fit);
  const DurationMs solo = profile.lookup(model, node, bs).solo_ms;
  const Rps capacity = bs / (solo / kMsPerSecond);
  const double rho = rate / capacity;

  state.batch_size = bs;
  state.utilization = rho;
  if (rho >= max_utilization) {
    state.latency_ms = kTimeNever;
    return state;
  }
  const DurationMs fill =
      std::min(batch_wait_ms, bs / rate * kMsPerSecond);
  const DurationMs queue = solo * rho / (2.0 * (1.0 - rho));
  state.latency_ms = fill + solo + queue;
  state.feasible = state.latency_ms <= slo_ms;
  return state;
}

}  // namespace paldia::perfmodel
