// approx_T_max for CPU nodes (Algorithm 1): CPU nodes serve batches
// sequentially in the framework's batched CPU mode, so the worst-case
// completion time for N outstanding requests is the drain time of the batch
// queue at the best SLO-fitting batch size.
#pragma once

#include "src/common/units.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/profile.hpp"

namespace paldia::perfmodel {

struct CpuEstimate {
  DurationMs t_max_ms = 0.0;
  int batch_size = 1;  // the batch size the estimate assumes
  bool feasible = false;
};

/// Worst-case completion time of `n_requests` on the CPU node, assuming the
/// batcher uses the largest batch size whose isolated latency fits within
/// the SLO budget (flexible batching, Section IV-B).
CpuEstimate approx_cpu_t_max(const models::ModelSpec& model,
                             const models::ProfileTable& profile, hw::NodeType node,
                             int n_requests, DurationMs slo_ms);

/// Steady-state latency estimate under a *sustained* arrival rate:
/// batch-fill wait + isolated batch time + an M/D/1-style queueing term
/// (rho / (2 (1 - rho)) of the service time). Marked infeasible above
/// max_utilization — a sequential executor near saturation has unbounded
/// tails no matter what the drain bound says.
struct CpuSteadyState {
  DurationMs latency_ms = 0.0;
  double utilization = 0.0;  // rho
  int batch_size = 1;
  bool feasible = false;
};
CpuSteadyState cpu_steady_state(const models::ModelSpec& model,
                                const models::ProfileTable& profile,
                                hw::NodeType node, Rps rate, DurationMs slo_ms,
                                DurationMs batch_wait_ms = 50.0,
                                double max_utilization = 0.85);

}  // namespace paldia::perfmodel
