// Linear idle->peak power model per node, substituting the paper's
// nvtop/powerstat measurements (Section V). Power at utilization u is
// idle + u * (peak - idle), summed over the node's host CPU and GPU.
#pragma once

#include "src/hw/node_spec.hpp"

namespace paldia::hw {

class PowerModel {
 public:
  explicit PowerModel(const NodeSpec& spec) : spec_(&spec) {}

  /// Instantaneous draw given device utilizations in [0, 1].
  Watts power(double cpu_util, double gpu_util) const;

  /// Draw of a powered-on but idle node.
  Watts idle_power() const { return power(0.0, 0.0); }

  /// Draw at full utilization of every device.
  Watts peak_power() const { return power(1.0, 1.0); }

 private:
  const NodeSpec* spec_;
};

}  // namespace paldia::hw
