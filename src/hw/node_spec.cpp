#include "src/hw/node_spec.hpp"

namespace paldia::hw {

std::string NodeSpec::display_name() const {
  if (gpu.has_value()) return gpu->name;
  return cpu.name + " x" + std::to_string(cpu.vcpus);
}

std::string_view node_type_name(NodeType type) {
  switch (type) {
    case NodeType::kP3_2xlarge: return "p3.2xlarge";
    case NodeType::kP2_xlarge: return "p2.xlarge";
    case NodeType::kG3s_xlarge: return "g3s.xlarge";
    case NodeType::kC6i_4xlarge: return "c6i.4xlarge";
    case NodeType::kC6i_2xlarge: return "c6i.2xlarge";
    case NodeType::kM4_xlarge: return "m4.xlarge";
  }
  // Generated-catalog index: no static name. The returned view aliases a
  // thread-local scratch buffer valid until the next call on this thread —
  // fine for display/debug, which is all this function serves; catalogs
  // carry the real instance names (Catalog::name()).
  thread_local std::string scratch;
  scratch = "node" + std::to_string(static_cast<int>(type));
  return scratch;
}

}  // namespace paldia::hw
