// The node-type catalog (paper Table II) and lookups over it.
#pragma once

#include <span>
#include <vector>

#include "src/hw/node_spec.hpp"

namespace paldia::hw {

/// Immutable catalog of the six Table II node types. A singleton view —
/// specs never change during a run; tests may build their own Catalog.
class Catalog {
 public:
  /// Build the default Table II catalog.
  Catalog();

  /// Build from explicit specs (test seam). specs[i] corresponds to
  /// NodeType(i).
  explicit Catalog(std::vector<NodeSpec> specs);

  const NodeSpec& spec(NodeType type) const;
  std::span<const NodeSpec> all() const { return specs_; }

  /// All node types ordered by ascending hourly price (Algorithm 1 iterates
  /// the candidate pool cheapest-first).
  std::vector<NodeType> by_cost_ascending() const;

  /// GPU-equipped node types ordered by ascending compute capability.
  std::vector<NodeType> gpus_by_capability_ascending() const;

  /// The most performant GPU node (highest speed) — the "(P)" baselines pin
  /// this.
  NodeType most_performant_gpu() const;

  static const Catalog& instance();

 private:
  std::vector<NodeSpec> specs_;
};

}  // namespace paldia::hw
