// The node-type catalog (paper Table II by default) and lookups over it.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/hw/node_spec.hpp"

namespace paldia::hw {

/// Immutable catalog of node types. The default holds the six Table II rows;
/// generated catalogs (catalog_gen.hpp) can hold hundreds. A singleton view
/// exists for the default — specs never change during a run; tests and the
/// fleet paths build their own Catalog.
///
/// All orderings are computed once at construction: by_cost_ascending() and
/// gpus_by_capability_ascending() sit inside the per-tick selection sweep, so
/// they return cached references rather than re-sorting per call.
class Catalog {
 public:
  /// Build the default Table II catalog.
  Catalog();

  /// Build from explicit specs (test seam and generated catalogs). specs[i]
  /// corresponds to NodeType(i).
  explicit Catalog(std::vector<NodeSpec> specs);

  const NodeSpec& spec(NodeType type) const;
  std::span<const NodeSpec> all() const { return specs_; }
  std::size_t size() const { return specs_.size(); }

  /// Instance name of a node type. Unlike node_type_name() this works for
  /// generated catalogs, whose names live in the specs.
  std::string_view name(NodeType type) const { return spec(type).instance; }

  /// All node types ordered by ascending hourly price (Algorithm 1 iterates
  /// the candidate pool cheapest-first). Ties break on catalog index so the
  /// order is deterministic for generated catalogs.
  const std::vector<NodeType>& by_cost_ascending() const { return cost_ascending_; }

  /// GPU-equipped node types ordered by ascending compute capability.
  /// Ties break on catalog index.
  const std::vector<NodeType>& gpus_by_capability_ascending() const {
    return gpus_by_capability_;
  }

  /// The most performant GPU node (highest speed) — the "(P)" baselines pin
  /// this. nullopt on a CPU-only catalog; callers degrade to CPU selection.
  std::optional<NodeType> most_performant_gpu() const { return most_performant_gpu_; }

  /// One contiguous [begin, end) slice of by_cost_ascending() whose prices
  /// span at most a fixed geometric band. The pruned selection sweep walks
  /// buckets cheapest-first and can discard a whole bucket once a feasible
  /// in-band winner is found in a cheaper one.
  struct CostBucket {
    std::size_t begin = 0;  // index into by_cost_ascending()
    std::size_t end = 0;    // exclusive
    Dollars min_price = 0;
    Dollars max_price = 0;
  };

  /// Partition of by_cost_ascending() into price bands (geometric factor 2).
  const std::vector<CostBucket>& cost_buckets() const { return cost_buckets_; }

  static const Catalog& instance();

 private:
  void build_indexes();

  std::vector<NodeSpec> specs_;
  std::vector<NodeType> cost_ascending_;
  std::vector<NodeType> gpus_by_capability_;
  std::vector<CostBucket> cost_buckets_;
  std::optional<NodeType> most_performant_gpu_;
};

}  // namespace paldia::hw
