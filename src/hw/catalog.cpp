#include "src/hw/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace paldia::hw {

namespace {

std::vector<NodeSpec> default_specs() {
  std::vector<NodeSpec> specs(kNodeTypeCount);

  // GPU nodes. Host CPUs on GPU instances run request plumbing only; their
  // inference role is nil, but they contribute to the power model.
  specs[static_cast<int>(NodeType::kP3_2xlarge)] = NodeSpec{
      .instance = "p3.2xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 3.06,
      .cpu = CpuSpec{"Intel Broadwell", 8, 0.75, 35.0, 105.0},
      .gpu = GpuSpec{"V100", 1.0, 900.0, GiB(16), 80, 55.0, 300.0},
      .family = "nvidia-volta",
  };
  specs[static_cast<int>(NodeType::kP2_xlarge)] = NodeSpec{
      .instance = "p2.xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 0.90,
      .cpu = CpuSpec{"Intel Broadwell", 4, 0.75, 25.0, 70.0},
      .gpu = GpuSpec{"K80", 0.20, 240.0, GiB(12), 13, 62.0, 149.0},
      .family = "nvidia-kepler",
  };
  specs[static_cast<int>(NodeType::kG3s_xlarge)] = NodeSpec{
      .instance = "g3s.xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 0.75,
      .cpu = CpuSpec{"Intel Broadwell", 4, 0.75, 25.0, 70.0},
      .gpu = GpuSpec{"M60", 0.30, 160.0, GiB(8), 16, 40.0, 150.0},
      .family = "nvidia-maxwell",
  };

  // CPU-only nodes.
  specs[static_cast<int>(NodeType::kC6i_4xlarge)] = NodeSpec{
      .instance = "c6i.4xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.68,
      .cpu = CpuSpec{"Intel IceLake", 16, 1.0, 45.0, 180.0},
      .gpu = std::nullopt,
      .family = "intel-icelake",
  };
  specs[static_cast<int>(NodeType::kC6i_2xlarge)] = NodeSpec{
      .instance = "c6i.2xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.34,
      .cpu = CpuSpec{"Intel IceLake", 8, 1.0, 30.0, 110.0},
      .gpu = std::nullopt,
      .family = "intel-icelake",
  };
  // The paper's Table II lists m4.xlarge with 2 vCPUs; we follow the paper.
  specs[static_cast<int>(NodeType::kM4_xlarge)] = NodeSpec{
      .instance = "m4.xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.20,
      .cpu = CpuSpec{"Intel Broadwell", 2, 0.72, 20.0, 65.0},
      .gpu = std::nullopt,
      .family = "intel-broadwell",
  };
  return specs;
}

}  // namespace

Catalog::Catalog() : specs_(default_specs()) { build_indexes(); }

Catalog::Catalog(std::vector<NodeSpec> specs) : specs_(std::move(specs)) {
  if (specs_.empty()) throw std::invalid_argument("catalog requires at least one spec");
  build_indexes();
}

const NodeSpec& Catalog::spec(NodeType type) const {
  const auto index = static_cast<std::size_t>(type);
  assert(index < specs_.size());
  return specs_[index];
}

void Catalog::build_indexes() {
  cost_ascending_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) cost_ascending_.push_back(NodeType(i));
  std::sort(cost_ascending_.begin(), cost_ascending_.end(),
            [this](NodeType a, NodeType b) {
              const Dollars pa = spec(a).price_per_hour;
              const Dollars pb = spec(b).price_per_hour;
              if (pa != pb) return pa < pb;
              return node_index(a) < node_index(b);
            });

  for (NodeType type : cost_ascending_) {
    if (spec(type).is_gpu()) gpus_by_capability_.push_back(type);
  }
  std::sort(gpus_by_capability_.begin(), gpus_by_capability_.end(),
            [this](NodeType a, NodeType b) {
              const double sa = spec(a).gpu->speed;
              const double sb = spec(b).gpu->speed;
              if (sa != sb) return sa < sb;
              return node_index(a) < node_index(b);
            });
  if (!gpus_by_capability_.empty()) most_performant_gpu_ = gpus_by_capability_.back();

  // Price bands with a geometric factor of 2: a bucket closes when the next
  // node costs more than twice the bucket's cheapest member. Zero-price
  // specs (degenerate test catalogs) all land in the first bucket.
  for (std::size_t i = 0; i < cost_ascending_.size(); ++i) {
    const Dollars price = spec(cost_ascending_[i]).price_per_hour;
    if (cost_buckets_.empty() || (cost_buckets_.back().min_price > 0 &&
                                  price > 2.0 * cost_buckets_.back().min_price)) {
      cost_buckets_.push_back(CostBucket{i, i + 1, price, price});
    } else {
      cost_buckets_.back().end = i + 1;
      cost_buckets_.back().max_price = price;
    }
  }
}

const Catalog& Catalog::instance() {
  static const Catalog catalog;
  return catalog;
}

}  // namespace paldia::hw
