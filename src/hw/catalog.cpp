#include "src/hw/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace paldia::hw {

namespace {

std::vector<NodeSpec> default_specs() {
  std::vector<NodeSpec> specs(kNodeTypeCount);

  // GPU nodes. Host CPUs on GPU instances run request plumbing only; their
  // inference role is nil, but they contribute to the power model.
  specs[static_cast<int>(NodeType::kP3_2xlarge)] = NodeSpec{
      .instance = "p3.2xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 3.06,
      .cpu = CpuSpec{"Intel Broadwell", 8, 0.75, 35.0, 105.0},
      .gpu = GpuSpec{"V100", 1.0, 900.0, GiB(16), 80, 55.0, 300.0},
  };
  specs[static_cast<int>(NodeType::kP2_xlarge)] = NodeSpec{
      .instance = "p2.xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 0.90,
      .cpu = CpuSpec{"Intel Broadwell", 4, 0.75, 25.0, 70.0},
      .gpu = GpuSpec{"K80", 0.20, 240.0, GiB(12), 13, 62.0, 149.0},
  };
  specs[static_cast<int>(NodeType::kG3s_xlarge)] = NodeSpec{
      .instance = "g3s.xlarge",
      .kind = DeviceKind::kGpu,
      .price_per_hour = 0.75,
      .cpu = CpuSpec{"Intel Broadwell", 4, 0.75, 25.0, 70.0},
      .gpu = GpuSpec{"M60", 0.30, 160.0, GiB(8), 16, 40.0, 150.0},
  };

  // CPU-only nodes.
  specs[static_cast<int>(NodeType::kC6i_4xlarge)] = NodeSpec{
      .instance = "c6i.4xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.68,
      .cpu = CpuSpec{"Intel IceLake", 16, 1.0, 45.0, 180.0},
      .gpu = std::nullopt,
  };
  specs[static_cast<int>(NodeType::kC6i_2xlarge)] = NodeSpec{
      .instance = "c6i.2xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.34,
      .cpu = CpuSpec{"Intel IceLake", 8, 1.0, 30.0, 110.0},
      .gpu = std::nullopt,
  };
  // The paper's Table II lists m4.xlarge with 2 vCPUs; we follow the paper.
  specs[static_cast<int>(NodeType::kM4_xlarge)] = NodeSpec{
      .instance = "m4.xlarge",
      .kind = DeviceKind::kCpu,
      .price_per_hour = 0.20,
      .cpu = CpuSpec{"Intel Broadwell", 2, 0.72, 20.0, 65.0},
      .gpu = std::nullopt,
  };
  return specs;
}

}  // namespace

Catalog::Catalog() : specs_(default_specs()) {}

Catalog::Catalog(std::vector<NodeSpec> specs) : specs_(std::move(specs)) {
  if (specs_.empty()) throw std::invalid_argument("catalog requires at least one spec");
}

const NodeSpec& Catalog::spec(NodeType type) const {
  const auto index = static_cast<std::size_t>(type);
  assert(index < specs_.size());
  return specs_[index];
}

std::vector<NodeType> Catalog::by_cost_ascending() const {
  std::vector<NodeType> types;
  types.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) types.push_back(NodeType(i));
  std::sort(types.begin(), types.end(), [this](NodeType a, NodeType b) {
    return spec(a).price_per_hour < spec(b).price_per_hour;
  });
  return types;
}

std::vector<NodeType> Catalog::gpus_by_capability_ascending() const {
  std::vector<NodeType> types;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].is_gpu()) types.push_back(NodeType(i));
  }
  std::sort(types.begin(), types.end(), [this](NodeType a, NodeType b) {
    return spec(a).gpu->speed < spec(b).gpu->speed;
  });
  return types;
}

NodeType Catalog::most_performant_gpu() const {
  auto gpus = gpus_by_capability_ascending();
  if (gpus.empty()) throw std::logic_error("catalog has no GPU nodes");
  return gpus.back();
}

const Catalog& Catalog::instance() {
  static const Catalog catalog;
  return catalog;
}

}  // namespace paldia::hw
