#include "src/hw/power_model.hpp"

#include <algorithm>

namespace paldia::hw {

Watts PowerModel::power(double cpu_util, double gpu_util) const {
  cpu_util = std::clamp(cpu_util, 0.0, 1.0);
  gpu_util = std::clamp(gpu_util, 0.0, 1.0);
  Watts total = spec_->cpu.idle_power +
                cpu_util * (spec_->cpu.peak_power - spec_->cpu.idle_power);
  if (spec_->gpu.has_value()) {
    total += spec_->gpu->idle_power +
             gpu_util * (spec_->gpu->peak_power - spec_->gpu->idle_power);
  }
  return total;
}

}  // namespace paldia::hw
