// Hardware descriptions for the six worker-node types of the paper's
// cluster (Table II), plus the per-device parameters the simulated devices
// and the performance model consume.
//
// GPU compute capability is expressed as `speed` relative to the V100
// (solo batch time on GPU g = solo time on V100 * v100.speed / g.speed) and
// memory bandwidth in GB/s, which sets each model's Fractional Bandwidth
// Requirement (FBR) on that GPU. The numbers are calibrated from public
// datasheets: V100 900 GB/s / 15.7 TFLOPS, M60 160 GB/s (per die), K80
// 240 GB/s (per die) — exactness is irrelevant, only the ordering and rough
// ratios drive the scheduling decisions (see DESIGN.md section 2).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/common/units.hpp"

namespace paldia::hw {

enum class DeviceKind { kCpu, kGpu };

/// GPU microarchitecture parameters that matter to the simulation.
struct GpuSpec {
  std::string name;              // e.g. "V100"
  double speed = 1.0;            // compute throughput relative to V100
  double mem_bandwidth_gbps = 0; // global memory bandwidth
  Bytes memory = 0;              // device memory
  int sm_count = 0;              // streaming multiprocessors (MPS partitions)
  Watts idle_power = 0;
  Watts peak_power = 0;
};

/// CPU parameters (host processors double as inference devices on CPU-only
/// nodes, via the ML framework's batched CPU mode).
struct CpuSpec {
  std::string name;       // e.g. "Intel IceLake"
  int vcpus = 0;
  double per_core_speed = 1.0;  // single-thread throughput relative to IceLake
  Watts idle_power = 0;
  Watts peak_power = 0;
};

/// One node (instance) type. The default catalog holds the six Table II
/// rows; generated catalogs (catalog_gen.hpp) add fleet-scale variety.
struct NodeSpec {
  std::string instance;  // AWS instance name, e.g. "p3.2xlarge"
  DeviceKind kind = DeviceKind::kCpu;
  Dollars price_per_hour = 0;
  CpuSpec cpu;                   // host CPU (always present)
  std::optional<GpuSpec> gpu;    // present iff kind == kGpu
  std::string family;            // architecture family, e.g. "nvidia-volta"

  /// Display name used in figures: the primary compute device.
  std::string display_name() const;

  bool is_gpu() const { return kind == DeviceKind::kGpu; }
};

/// Stable identifier of a node type: an index into the owning Catalog, not a
/// closed enumeration. The named constants are the indices of the six
/// Table II rows in the *default* catalog; generated catalogs use indices
/// beyond any named constant, addressed via make_node_type(). Code that needs
/// fixed-size per-node-type storage (telemetry, chrome-trace pid layout) is
/// sized by kNodeTypeCount and therefore only supports the default catalog;
/// the fleet-scale paths (HardwareSelection, exp::fleet) take the catalog
/// size at runtime.
enum class NodeType : int {
  kP3_2xlarge = 0,   // NVIDIA V100
  kP2_xlarge = 1,    // NVIDIA K80
  kG3s_xlarge = 2,   // NVIDIA M60
  kC6i_4xlarge = 3,  // IceLake 16 vCPU
  kC6i_2xlarge = 4,  // IceLake 8 vCPU
  kM4_xlarge = 5,    // Broadwell 2 vCPU
};

constexpr NodeType make_node_type(int index) { return static_cast<NodeType>(index); }
constexpr int node_index(NodeType type) { return static_cast<int>(type); }

/// Number of node types in the *default* Table II catalog. Fixed-size
/// telemetry arrays are bounded by this; generated catalogs bypass them.
inline constexpr int kNodeTypeCount = 6;

/// Instance name for the default catalog's node types; "node<i>" for catalog
/// indices beyond Table II (generated catalogs carry their names in the
/// NodeSpec — prefer Catalog::name() when a catalog is at hand).
std::string_view node_type_name(NodeType type);

}  // namespace paldia::hw
