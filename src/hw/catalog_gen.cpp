#include "src/hw/catalog_gen.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <string>

#include "src/common/rng.hpp"

namespace paldia::hw {

namespace {

// Synthetic GPU generations, loosely modeled on real parts so the spread of
// speed/bandwidth/price matches what a heterogeneous fleet actually looks
// like. Speed is relative to V100, as everywhere else in the repo; nominal
// prices are calibrated against the Table II anchors (K80 $0.90, M60 $0.75,
// V100 $3.06) and extended up and down the range.
struct GpuGen {
  const char* family;     // NodeSpec::family suffix
  const char* name;       // GpuSpec::name
  const char* tag;        // instance-name token
  double speed;
  double bandwidth_gbps;
  double mem_gib;
  int sm_count;
  Watts idle_power;
  Watts peak_power;
  Dollars nominal_price;  // per hour, before variant scaling and noise
};

constexpr GpuGen kGpuGens[] = {
    {"nvidia-kepler", "K80", "k80", 0.20, 240.0, 12.0, 13, 62.0, 149.0, 0.90},
    {"nvidia-maxwell", "M60", "m60", 0.30, 160.0, 8.0, 16, 40.0, 150.0, 0.75},
    {"nvidia-pascal", "P4", "p4", 0.40, 192.0, 8.0, 20, 26.0, 75.0, 0.95},
    {"nvidia-pascal", "P100", "p100", 0.65, 720.0, 16.0, 56, 30.0, 250.0, 1.85},
    {"nvidia-volta", "V100", "v100", 1.00, 900.0, 16.0, 80, 55.0, 300.0, 3.06},
    {"nvidia-turing", "T4", "t4", 0.50, 320.0, 16.0, 40, 17.0, 70.0, 1.10},
    {"nvidia-ampere", "A10G", "a10g", 1.25, 600.0, 24.0, 80, 35.0, 150.0, 1.60},
    {"nvidia-ampere", "A100", "a100", 2.05, 1555.0, 40.0, 108, 60.0, 400.0, 4.10},
    {"nvidia-hopper", "H100", "h100", 3.30, 2000.0, 80.0, 132, 70.0, 700.0, 7.90},
};

struct CpuGen {
  const char* family;
  const char* name;
  const char* tag;
  double per_core_speed;    // relative to IceLake, as in Table II
  Dollars price_per_vcpu;   // per hour, before noise
};

constexpr CpuGen kCpuGens[] = {
    {"intel-broadwell", "Intel Broadwell", "bdw", 0.72, 0.050},
    {"intel-skylake", "Intel Skylake", "skl", 0.85, 0.046},
    {"intel-cascadelake", "Intel CascadeLake", "clx", 0.92, 0.044},
    {"intel-icelake", "Intel IceLake", "icx", 1.00, 0.0425},
    {"intel-sapphirerapids", "Intel SapphireRapids", "spr", 1.15, 0.050},
};

constexpr int kVcpuBins[] = {2, 4, 8, 16, 32, 48, 64};

double round_to(double value, double step) { return std::round(value / step) * step; }

NodeSpec make_gpu_node(int index, Rng& rng) {
  const GpuGen& gen = kGpuGens[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kGpuGens) - 1))];
  // Variant bins are quantized so distinct nodes of the same generation can
  // share identical profile-relevant parameters (speed, bandwidth) — twin
  // groups are what makes dominance pruning pay off, and real fleets are
  // full of same-silicon SKUs at different prices.
  static constexpr double kSpeedBins[] = {0.9, 1.0, 1.1};
  static constexpr double kBwBins[] = {0.85, 1.0};
  const double speed_bin = kSpeedBins[rng.uniform_int(0, 2)];
  const double bw_bin = kBwBins[rng.uniform_int(0, 1)];
  const double mem_scale = rng.bernoulli(0.25) ? 2.0 : 1.0;

  GpuSpec gpu;
  gpu.name = gen.name;
  gpu.speed = round_to(gen.speed * speed_bin, 0.01);
  gpu.mem_bandwidth_gbps = round_to(gen.bandwidth_gbps * bw_bin, 10.0);
  gpu.memory = GiB(gen.mem_gib * mem_scale);
  gpu.sm_count = gen.sm_count;
  gpu.idle_power = gen.idle_power;
  gpu.peak_power = gen.peak_power * (0.9 + 0.2 * speed_bin);

  // Price follows capability super-linearly (big parts carry a premium) with
  // lognormal regional noise; memory upgrades cost extra.
  const double capability_scale =
      std::pow(speed_bin, 1.2) * (bw_bin >= 1.0 ? 1.0 : 0.93);
  const Dollars price = round_to(
      gen.nominal_price * capability_scale * (mem_scale > 1.0 ? 1.15 : 1.0) *
          rng.lognormal(0.0, 0.10),
      0.0001);

  const int host_vcpus = static_cast<int>(rng.uniform_int(1, 4)) * 4;
  NodeSpec spec;
  spec.instance = std::string("g9.") + gen.tag + ".n" + std::to_string(index);
  spec.kind = DeviceKind::kGpu;
  spec.price_per_hour = price;
  spec.cpu = CpuSpec{"Intel Broadwell", host_vcpus, 0.75, 25.0 + host_vcpus,
                     70.0 + 4.0 * host_vcpus};
  spec.gpu = gpu;
  spec.family = gen.family;
  return spec;
}

NodeSpec make_cpu_node(int index, Rng& rng) {
  const CpuGen& gen = kCpuGens[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kCpuGens) - 1))];
  const int vcpus =
      kVcpuBins[static_cast<std::size_t>(rng.uniform_int(0, std::size(kVcpuBins) - 1))];
  NodeSpec spec;
  spec.instance = std::string("c7.") + gen.tag + "-" + std::to_string(vcpus) + ".n" +
                  std::to_string(index);
  spec.kind = DeviceKind::kCpu;
  spec.price_per_hour =
      round_to(gen.price_per_vcpu * vcpus * rng.lognormal(0.0, 0.10), 0.0001);
  spec.cpu = CpuSpec{gen.name, vcpus, gen.per_core_speed, 12.0 + 2.0 * vcpus,
                     30.0 + 9.5 * vcpus};
  spec.gpu = std::nullopt;
  spec.family = gen.family;
  return spec;
}

// A regional price variant: identical silicon (so the profile-relevant
// parameters match the base node exactly), never cheaper.
NodeSpec make_twin_node(int index, const NodeSpec& base, Rng& rng) {
  NodeSpec spec = base;
  spec.instance = base.instance + ".r" + std::to_string(index);
  spec.price_per_hour =
      round_to(base.price_per_hour * rng.uniform(1.05, 1.45), 0.0001);
  return spec;
}

}  // namespace

std::vector<NodeSpec> generate_specs(const CatalogGenConfig& config) {
  const int count = std::clamp(config.node_count, 2, 256);
  const double gpu_fraction = std::clamp(config.gpu_fraction, 0.0, 1.0);
  const double twin_fraction = std::clamp(config.twin_fraction, 0.0, 0.9);

  Rng root(config.seed);
  std::vector<NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  int gpus = 0;
  for (int i = 0; i < count; ++i) {
    Rng rng = root.fork("node-" + std::to_string(i));
    if (i >= 2 && rng.bernoulli(twin_fraction)) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
      specs.push_back(make_twin_node(i, specs[j], rng));
      if (specs.back().is_gpu()) ++gpus;
      continue;
    }
    // Node 0 is always CPU (a catalog must be able to serve the CPU
    // short-circuit); otherwise track the GPU quota deterministically.
    const bool want_gpu =
        i > 0 && static_cast<double>(gpus) < gpu_fraction * static_cast<double>(i + 1);
    if (want_gpu) {
      specs.push_back(make_gpu_node(i, rng));
      ++gpus;
    } else {
      specs.push_back(make_cpu_node(i, rng));
    }
  }
  // Apply the configured price-noise knob as a final deterministic scale
  // relative to the calibrated sigma of 0.10 baked into the draws above.
  if (config.price_noise != 0.10) {
    Rng noise = root.fork("price-noise");
    for (NodeSpec& spec : specs) {
      const double extra = noise.lognormal(0.0, std::abs(config.price_noise - 0.10));
      spec.price_per_hour = round_to(spec.price_per_hour * extra, 0.0001);
    }
  }
  return specs;
}

Catalog generate_catalog(const CatalogGenConfig& config) {
  return Catalog(generate_specs(config));
}

namespace {

bool parse_double(std::string_view text, double* out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::optional<CatalogGenConfig> parse_catalog_spec(std::string_view spec,
                                                   std::string* error) {
  set_error(error, "");
  if (spec.empty() || spec == "table2") return std::nullopt;
  if (spec.substr(0, 4) != "gen:") {
    set_error(error, "unknown catalog spec '" + std::string(spec) +
                         "' (expected 'table2' or 'gen:<count>[:seed=N][:gpu=F]')");
    return std::nullopt;
  }

  CatalogGenConfig config;
  std::string_view rest = spec.substr(4);
  bool first = true;
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string_view token =
        colon == std::string_view::npos ? rest : rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view{} : rest.substr(colon + 1);
    if (first) {
      double count = 0;
      if (!parse_double(token, &count) || count < 2 || count > 256) {
        set_error(error, "catalog spec needs a node count in [2, 256], got '" +
                             std::string(token) + "'");
        return std::nullopt;
      }
      config.node_count = static_cast<int>(count);
      first = false;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      set_error(error, "malformed catalog option '" + std::string(token) + "'");
      return std::nullopt;
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      std::uint64_t seed = 0;
      if (!parse_u64(value, &seed)) {
        set_error(error, "bad catalog seed '" + std::string(value) + "'");
        return std::nullopt;
      }
      config.seed = seed;
    } else if (key == "gpu") {
      double fraction = 0;
      if (!parse_double(value, &fraction) || fraction < 0.0 || fraction > 1.0) {
        set_error(error, "bad catalog gpu fraction '" + std::string(value) + "'");
        return std::nullopt;
      }
      config.gpu_fraction = fraction;
    } else if (key == "noise") {
      double noise = 0;
      if (!parse_double(value, &noise) || noise < 0.0 || noise > 1.0) {
        set_error(error, "bad catalog price noise '" + std::string(value) + "'");
        return std::nullopt;
      }
      config.price_noise = noise;
    } else if (key == "twins") {
      double twins = 0;
      if (!parse_double(value, &twins) || twins < 0.0 || twins > 0.9) {
        set_error(error, "bad catalog twin fraction '" + std::string(value) + "'");
        return std::nullopt;
      }
      config.twin_fraction = twins;
    } else {
      set_error(error, "unknown catalog option '" + std::string(key) + "'");
      return std::nullopt;
    }
  }
  if (first) {
    set_error(error, "catalog spec 'gen:' needs a node count");
    return std::nullopt;
  }
  return config;
}

}  // namespace paldia::hw
