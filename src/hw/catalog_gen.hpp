// Generated device catalogs: fleet-scale heterogeneity beyond Table II.
//
// Production clouds expose dozens of device generations, not six rows; this
// generator produces NodeSpec entries across synthetic GPU/CPU architecture
// families (the registry-of-device-specs idiom from IREE's HAL device
// libraries), with prices following a capability-correlated law plus
// deterministic regional noise. The default Catalog stays Table II — the
// generator only runs when a driver asks for it (--catalog gen:...), so
// every existing export is untouched.
//
// Determinism contract: generate_specs(config) is a pure function of the
// config (all draws come from Rng forks of config.seed), so two processes
// with the same spec string build byte-identical catalogs — the pruned-vs-
// linear CI byte comparisons depend on this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/hw/catalog.hpp"
#include "src/hw/node_spec.hpp"

namespace paldia::hw {

struct CatalogGenConfig {
  int node_count = 64;         // clamped to [2, 256]
  double gpu_fraction = 0.6;   // share of GPU-equipped node types
  std::uint64_t seed = 42;
  double price_noise = 0.10;   // lognormal sigma applied to the price law
  /// Fraction of nodes emitted as regional price variants of an earlier node
  /// (same silicon, different price) — these are exactly the "≥ price,
  /// ≤ capability" rows dominance pruning exists for.
  double twin_fraction = 0.20;
};

/// Generate node specs per the config. Always emits at least one CPU node so
/// a catalog can serve the CPU short-circuit; GPU count follows gpu_fraction.
std::vector<NodeSpec> generate_specs(const CatalogGenConfig& config);

/// Convenience: generate_specs wrapped into a Catalog.
Catalog generate_catalog(const CatalogGenConfig& config);

/// Parse a --catalog spec string:
///   "table2" (or "")                  -> nullopt: use the default catalog
///   "gen:<count>"                     -> generated, default seed
///   "gen:<count>:seed=<n>"            -> generated with explicit seed
///   "gen:<count>:seed=<n>:gpu=<frac>" -> ... and GPU fraction
/// Options after the count may appear in any order. On a malformed spec,
/// returns nullopt and sets *error (if non-null) to a diagnostic.
std::optional<CatalogGenConfig> parse_catalog_spec(std::string_view spec,
                                                   std::string* error = nullptr);

}  // namespace paldia::hw
