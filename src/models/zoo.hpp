// The 16-model zoo with calibrated performance envelopes.
#pragma once

#include <span>
#include <vector>

#include "src/models/model_spec.hpp"

namespace paldia::models {

class Zoo {
 public:
  Zoo();

  const ModelSpec& spec(ModelId id) const;
  std::span<const ModelSpec> all() const { return specs_; }

  std::vector<ModelId> vision_models() const;
  std::vector<ModelId> language_models() const;

  static const Zoo& instance();

 private:
  std::vector<ModelSpec> specs_;
};

}  // namespace paldia::models
