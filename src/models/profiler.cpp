#include "src/models/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "src/cluster/gpu_device.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::models {

namespace {

cluster::GpuJob make_job(DurationMs solo_ms, double fbr, DurationMs* out_exec) {
  cluster::GpuJob job;
  job.solo_ms = solo_ms;
  job.fbr = fbr;
  job.on_complete = [out_exec](const cluster::ExecutionReport& report) {
    *out_exec = report.end_ms - report.start_ms;
  };
  return job;
}

}  // namespace

DurationMs Profiler::measure_solo_ms(const ModelSpec& model, const hw::GpuSpec& gpu,
                                     int bs, int repetitions) const {
  const DurationMs analytic_solo = gpu_solo_ms(model, gpu, bs);
  const double analytic_fbr = gpu_fbr(model, gpu, bs);
  double total = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim::Simulator simulator;
    cluster::GpuDevice device(simulator, gpu,
                              Rng(seed_ + static_cast<std::uint64_t>(rep)));
    DurationMs exec = 0.0;
    device.submit_spatial(make_job(analytic_solo, analytic_fbr, &exec));
    simulator.run_to_completion();
    total += exec;
  }
  return total / repetitions;
}

double Profiler::measure_slowdown(const ModelSpec& model, const hw::GpuSpec& gpu,
                                  int bs, int k, int repetitions) const {
  const DurationMs analytic_solo = gpu_solo_ms(model, gpu, bs);
  const double analytic_fbr = gpu_fbr(model, gpu, bs);
  const DurationMs solo = measure_solo_ms(model, gpu, bs, repetitions);
  double total = 0.0;
  int samples = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim::Simulator simulator;
    cluster::GpuDevice device(simulator, gpu,
                              Rng(seed_ ^ (0x5bd1e995ull * (rep + 1))));
    std::vector<DurationMs> execs(static_cast<std::size_t>(k), 0.0);
    for (int j = 0; j < k; ++j) {
      device.submit_spatial(make_job(analytic_solo, analytic_fbr, &execs[j]));
    }
    simulator.run_to_completion();
    for (DurationMs exec : execs) {
      total += exec / solo;
      ++samples;
    }
  }
  return samples == 0 ? 1.0 : total / samples;
}

std::pair<double, double> Profiler::fit_fbr_beta(
    const std::vector<std::pair<int, double>>& slowdowns) {
  // Model: slowdown(k) = S * (1 + beta * (S - 1)), S = k * fbr (for S > 1).
  // Grid-search fbr; for each candidate, beta has a closed-form least
  // squares solution from  (slowdown/S - 1) = beta * (S - 1).
  double best_fbr = 0.0, best_beta = 0.0;
  double best_error = std::numeric_limits<double>::infinity();
  for (double fbr = 0.02; fbr <= 0.95; fbr += 0.005) {
    double num = 0.0, den = 0.0;
    for (const auto& [k, slowdown] : slowdowns) {
      const double s = k * fbr;
      if (s <= 1.0) continue;
      const double x = s - 1.0;
      const double y = slowdown / s - 1.0;
      num += x * y;
      den += x * x;
    }
    if (den <= 0.0) continue;
    const double beta = std::max(0.0, num / den);
    double error = 0.0;
    for (const auto& [k, slowdown] : slowdowns) {
      const double s = k * fbr;
      const double predicted = s <= 1.0 ? 1.0 : s * (1.0 + beta * (s - 1.0));
      error += (predicted - slowdown) * (predicted - slowdown);
    }
    if (error < best_error) {
      best_error = error;
      best_fbr = fbr;
      best_beta = beta;
    }
  }
  return {best_fbr, best_beta};
}

ProfiledWorkload Profiler::profile(const ModelSpec& model, const hw::GpuSpec& gpu,
                                   int bs) const {
  ProfiledWorkload result;
  result.solo_ms = measure_solo_ms(model, gpu, bs);
  std::vector<std::pair<int, double>> slowdowns;
  for (int k : {2, 4, 6, 8, 12, 16}) {
    slowdowns.emplace_back(k, measure_slowdown(model, gpu, bs, k));
  }
  const auto [fbr, beta] = fit_fbr_beta(slowdowns);
  result.fbr = fbr;
  result.beta = beta;
  return result;
}

}  // namespace paldia::models
