// Workload (ML model) descriptions for the paper's 16 inference models
// (Section V): 12 vision classifiers (ImageNet-1k, max batch 128) and
// 4 language models (Large Movie Review, max batch 8).
//
// The real models are replaced by calibrated performance envelopes (see
// DESIGN.md section 2): everything the schedulers consume — Solo(bs), FBR,
// memory footprint, CPU batched latency — is carried here. Calibration
// anchors: batch execution latency stays in ~50-200 ms on the hardware that
// serves the model (paper Section V), language models have much higher FBRs
// and execution times than vision models, EfficientNet-B0 is a low-FBR
// outlier, and GoogleNet on the V100 saturates near ~750 rps so the
// resource-exhaustion study (Fig. 13a) can overwhelm it at ~700 rps.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/units.hpp"

namespace paldia::models {

enum class Domain { kVision, kLanguage };

struct ModelSpec {
  std::string name;
  Domain domain = Domain::kVision;

  /// Maximum batch size (flexible batching never exceeds this).
  int max_batch = 128;

  /// Isolated execution time of a max_batch batch on the V100, ms.
  DurationMs solo_v100_ms = 50.0;

  /// Fraction of batch latency that does not scale with batch size
  /// (kernel launch, framework overhead).
  double fixed_fraction = 0.22;

  /// Fractional Bandwidth Requirement on the V100 at max_batch.
  double fbr_v100 = 0.3;

  /// Fraction of the V100's compute (SMs) a max_batch batch occupies.
  /// Below 1.0, MPS can genuinely overlap batches (the whole point of
  /// spatial sharing); at/above 1.0 co-located batches time-slice compute.
  double compute_v100 = 0.5;

  /// Per-item batched-CPU latency on the reference CPU (c6i.4xlarge:
  /// 16 vCPU IceLake), ms. Full-batch CPU time ~= this * batch size.
  DurationMs cpu_per_item_ms = 30.0;

  /// Host/device memory footprint of one serving container.
  Bytes container_memory = 0;

  /// Paper's traffic classification: high-FBR vision models get a peak of
  /// 225 rps, the rest 450 rps (Section V "Request Traces").
  bool high_fbr = false;

  /// Response-time SLO (200 ms for every workload in the paper).
  DurationMs slo_ms = 200.0;
};

/// Stable identifiers for the 16 paper workloads.
enum class ModelId : int {
  // Vision (ImageNet-1k).
  kResNet50 = 0,
  kGoogleNet,
  kDenseNet121,
  kDpn92,
  kVgg19,
  kResNet18,
  kMobileNet,
  kMobileNetV2,
  kSeNet18,
  kShuffleNetV2,
  kEfficientNetB0,
  kSimplifiedDla,
  // Language (Large Movie Review Dataset).
  kAlbert,
  kBert,
  kDistilBert,
  kFunnelTransformer,
};

inline constexpr int kModelCount = 16;
inline constexpr int kVisionModelCount = 12;

std::string_view model_id_name(ModelId id);

}  // namespace paldia::models
