// Performance envelopes: isolated batch latency and FBR of each model on
// each hardware type, as a function of batch size.
//
// This is the information the paper's provider obtains "through profiling
// the workloads over time" (Section III). The analytic form lives here; the
// Profiler (profiler.hpp) additionally verifies it against the simulated
// devices, mirroring how a real deployment would fill these tables from
// measurements.
//
// GPU model:
//   solo(bs)  = solo_v100 * (1 / gpu.speed) * scale(bs) * stretch
//   scale(bs) = fixed_fraction + (1 - fixed_fraction) * bs / max_batch
//   fbr(bs)   = min(0.95, fbr_raw),    and when fbr_raw > 0.95 the batch is
//               bandwidth-bound even solo, so solo stretches by
//               fbr_raw / 0.95 (stretch above).
//   fbr_raw   = fbr_v100 * (gpu.speed * v100.bandwidth / gpu.bandwidth)
//               * fbr_scale(bs),  fbr_scale = 0.6 + 0.4 * bs / max_batch.
// The gpu.speed factor models that a faster GPU issues memory traffic
// proportionally faster; dividing by the GPU's own bandwidth converts the
// demand into the fraction of *that* device's bandwidth.
//
// CPU model (framework batched CPU mode):
//   solo(bs) = fixed + cpu_per_item * bs * (ref_vcpus / vcpus)^0.85
//              / per_core_speed
// with ref_vcpus = 16 (c6i.4xlarge) and imperfect scaling exponent 0.85.
#pragma once

#include "src/hw/catalog.hpp"
#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"

namespace paldia::models {

inline constexpr double kMaxFbr = 0.95;
inline constexpr double kV100Bandwidth = 900.0;
inline constexpr double kCpuRefVcpus = 16.0;
inline constexpr double kCpuScalingExponent = 0.85;
inline constexpr DurationMs kCpuFixedOverheadMs = 8.0;

/// Isolated execution time of a `bs`-sized batch on the given GPU.
DurationMs gpu_solo_ms(const ModelSpec& model, const hw::GpuSpec& gpu, int bs);

/// FBR of a `bs`-sized batch on the given GPU (capped at kMaxFbr).
double gpu_fbr(const ModelSpec& model, const hw::GpuSpec& gpu, int bs);

/// Compute (SM) occupancy fraction of a `bs`-sized batch on the given GPU:
///   compute_v100 * (v100.speed / gpu.speed) * (0.3 + 0.7 * bs / max_batch)
/// capped just below 1 — a weaker GPU is occupied proportionally more by
/// the same batch, and small batches leave SMs idle (what MPS recovers).
double gpu_compute(const ModelSpec& model, const hw::GpuSpec& gpu, int bs);

inline constexpr double kMaxCompute = 0.98;

/// Isolated execution time of a `bs`-sized batch in the CPU batched mode.
DurationMs cpu_solo_ms(const ModelSpec& model, const hw::CpuSpec& cpu, int bs);

/// One profiled operating point.
struct ProfileEntry {
  DurationMs solo_ms = 0.0;
  double fbr = 0.0;      // 0 for CPU nodes (no MPS concept there)
  double compute = 0.0;  // SM occupancy fraction; 0 for CPU nodes
};

/// Profile lookup across the whole catalog. Thin, stateless facade over the
/// analytic envelopes; the Profiler can overwrite entries with measured
/// values (calibration), which is why it is a class and not free functions.
class ProfileTable {
 public:
  explicit ProfileTable(const hw::Catalog& catalog = hw::Catalog::instance());

  ProfileEntry lookup(const ModelSpec& model, hw::NodeType node, int bs) const;

  /// Max batch size whose isolated latency fits within `budget_ms` on the
  /// node; 0 when even a single request does not fit.
  int max_batch_within(const ModelSpec& model, hw::NodeType node,
                       DurationMs budget_ms) const;

  /// Isolated steady-state throughput (requests/s) at the best batch size
  /// no larger than the model max. Used to prune the hardware pool.
  Rps peak_solo_throughput(const ModelSpec& model, hw::NodeType node) const;

  const hw::Catalog& catalog() const { return *catalog_; }

 private:
  const hw::Catalog* catalog_;
};

}  // namespace paldia::models
