// Device-driven profiling (Section III: Solo and FBR "can be obtained
// through profiling the workloads over time on the GPU").
//
// The Profiler runs measurement batches on a *simulated* GpuDevice — the
// same way a real provider would measure on real hardware — and recovers
// Solo, FBR and the contention coefficient beta from observed execution
// times. Tests use it to verify that what the scheduler's analytic profile
// claims matches what the device actually does (the paper's <4% model
// error band).
#pragma once

#include <vector>

#include "src/hw/node_spec.hpp"
#include "src/models/model_spec.hpp"
#include "src/models/profile.hpp"

namespace paldia::models {

struct ProfiledWorkload {
  DurationMs solo_ms = 0.0;   // isolated batch execution time
  double fbr = 0.0;           // recovered fractional bandwidth requirement
  double beta = 0.0;          // recovered superlinear contention coefficient
};

class Profiler {
 public:
  /// Deterministic measurement seed; jitter is part of what is measured.
  explicit Profiler(std::uint64_t seed = 42) : seed_(seed) {}

  /// Isolated execution time of one `bs` batch on the GPU (averaged over
  /// `repetitions` runs to smooth jitter).
  DurationMs measure_solo_ms(const ModelSpec& model, const hw::GpuSpec& gpu, int bs,
                             int repetitions = 8) const;

  /// Mean execution-time stretch of `k` identical concurrent batches
  /// relative to solo.
  double measure_slowdown(const ModelSpec& model, const hw::GpuSpec& gpu, int bs,
                          int k, int repetitions = 4) const;

  /// Full profile: solo + (FBR, beta) recovered from a co-location sweep.
  ProfiledWorkload profile(const ModelSpec& model, const hw::GpuSpec& gpu,
                           int bs) const;

  /// Fit (fbr, beta) to observed (k, slowdown) pairs by grid search over
  /// fbr followed by a closed-form beta per candidate. Exposed for tests.
  static std::pair<double, double> fit_fbr_beta(
      const std::vector<std::pair<int, double>>& slowdowns);

 private:
  std::uint64_t seed_;
};

}  // namespace paldia::models
