#include "src/models/profile.hpp"

#include <algorithm>
#include <cmath>

namespace paldia::models {

namespace {

double batch_scale(const ModelSpec& model, int bs) {
  const double frac = std::clamp(static_cast<double>(bs) / model.max_batch, 0.0, 1.0);
  return model.fixed_fraction + (1.0 - model.fixed_fraction) * frac;
}

double fbr_scale(const ModelSpec& model, int bs) {
  const double frac = std::clamp(static_cast<double>(bs) / model.max_batch, 0.0, 1.0);
  return 0.6 + 0.4 * frac;
}

double raw_fbr(const ModelSpec& model, const hw::GpuSpec& gpu, int bs) {
  return model.fbr_v100 * (gpu.speed * kV100Bandwidth / gpu.mem_bandwidth_gbps) *
         fbr_scale(model, bs);
}

}  // namespace

DurationMs gpu_solo_ms(const ModelSpec& model, const hw::GpuSpec& gpu, int bs) {
  bs = std::clamp(bs, 1, model.max_batch);
  double solo = model.solo_v100_ms * (1.0 / gpu.speed) * batch_scale(model, bs);
  const double fbr = raw_fbr(model, gpu, bs);
  if (fbr > kMaxFbr) {
    // Bandwidth-bound even in isolation: execution stretches until the
    // demanded traffic fits in the device's bandwidth.
    solo *= fbr / kMaxFbr;
  }
  return solo;
}

double gpu_fbr(const ModelSpec& model, const hw::GpuSpec& gpu, int bs) {
  bs = std::clamp(bs, 1, model.max_batch);
  return std::min(kMaxFbr, raw_fbr(model, gpu, bs));
}

double gpu_compute(const ModelSpec& model, const hw::GpuSpec& gpu, int bs) {
  bs = std::clamp(bs, 1, model.max_batch);
  const double frac = static_cast<double>(bs) / model.max_batch;
  const double scale = 0.3 + 0.7 * frac;
  return std::min(kMaxCompute, model.compute_v100 * (1.0 / gpu.speed) * scale);
}

DurationMs cpu_solo_ms(const ModelSpec& model, const hw::CpuSpec& cpu, int bs) {
  bs = std::max(bs, 1);
  const double core_penalty =
      std::pow(kCpuRefVcpus / static_cast<double>(cpu.vcpus), kCpuScalingExponent);
  return kCpuFixedOverheadMs +
         model.cpu_per_item_ms * static_cast<double>(bs) * core_penalty /
             cpu.per_core_speed;
}

ProfileTable::ProfileTable(const hw::Catalog& catalog) : catalog_(&catalog) {}

ProfileEntry ProfileTable::lookup(const ModelSpec& model, hw::NodeType node,
                                  int bs) const {
  const hw::NodeSpec& spec = catalog_->spec(node);
  if (spec.is_gpu()) {
    return ProfileEntry{gpu_solo_ms(model, *spec.gpu, bs),
                        gpu_fbr(model, *spec.gpu, bs),
                        gpu_compute(model, *spec.gpu, bs)};
  }
  return ProfileEntry{cpu_solo_ms(model, spec.cpu, bs), 0.0, 0.0};
}

int ProfileTable::max_batch_within(const ModelSpec& model, hw::NodeType node,
                                   DurationMs budget_ms) const {
  int best = 0;
  // Latency is monotone in batch size, so binary search would do; the range
  // is <= 128, a linear scan is simpler and just as fast in context.
  for (int bs = 1; bs <= model.max_batch; ++bs) {
    if (lookup(model, node, bs).solo_ms <= budget_ms) {
      best = bs;
    } else {
      break;
    }
  }
  return best;
}

Rps ProfileTable::peak_solo_throughput(const ModelSpec& model, hw::NodeType node) const {
  Rps best = 0.0;
  for (int bs = 1; bs <= model.max_batch; bs *= 2) {
    const auto entry = lookup(model, node, bs);
    best = std::max(best, static_cast<double>(bs) / (entry.solo_ms / kMsPerSecond));
  }
  const auto entry = lookup(model, node, model.max_batch);
  best = std::max(best,
                  static_cast<double>(model.max_batch) / (entry.solo_ms / kMsPerSecond));
  return best;
}

}  // namespace paldia::models
