#include "src/models/model_spec.hpp"

namespace paldia::models {

std::string_view model_id_name(ModelId id) {
  switch (id) {
    case ModelId::kResNet50: return "ResNet 50";
    case ModelId::kGoogleNet: return "GoogleNet";
    case ModelId::kDenseNet121: return "DenseNet 121";
    case ModelId::kDpn92: return "DPN 92";
    case ModelId::kVgg19: return "VGG 19";
    case ModelId::kResNet18: return "ResNet 18";
    case ModelId::kMobileNet: return "MobileNet";
    case ModelId::kMobileNetV2: return "MobileNet V2";
    case ModelId::kSeNet18: return "SENet 18";
    case ModelId::kShuffleNetV2: return "ShuffleNet V2";
    case ModelId::kEfficientNetB0: return "EfficientNet-B0";
    case ModelId::kSimplifiedDla: return "Simplified DLA";
    case ModelId::kAlbert: return "ALBERT";
    case ModelId::kBert: return "BERT";
    case ModelId::kDistilBert: return "DistilBERT";
    case ModelId::kFunnelTransformer: return "Funnel-Transformer";
  }
  return "?";
}

}  // namespace paldia::models
