#include "src/models/zoo.hpp"

#include <cassert>

namespace paldia::models {

namespace {

// Calibration table. Values are not measurements of the real models; they
// are envelopes chosen so that (a) relative heaviness ordering matches the
// real architectures, (b) batch latency lands in the paper's 50-200 ms band
// on the hardware that serves the model, and (c) the evaluation scenarios
// reproduce the paper's regimes (see DESIGN.md). All vision FBRs are quoted
// on the V100 at max batch; M60/K80 FBRs derive from bandwidth ratios in
// profile.cpp.
std::vector<ModelSpec> build_specs() {
  std::vector<ModelSpec> specs(kModelCount);
  auto set = [&specs](ModelId id, ModelSpec spec) {
    specs[static_cast<int>(id)] = std::move(spec);
  };

  // --- Vision, high-FBR class (peak 225 rps in the Azure trace). ---
  set(ModelId::kResNet50,
      {.name = "ResNet 50", .domain = Domain::kVision, .max_batch = 64,
       .solo_v100_ms = 48.0, .fixed_fraction = 0.08, .fbr_v100 = 0.30, .compute_v100 = 0.60,
       .cpu_per_item_ms = 25.0, .container_memory = GiB(1.6), .high_fbr = true});
  set(ModelId::kGoogleNet,
      {.name = "GoogleNet", .domain = Domain::kVision, .max_batch = 64,
       .solo_v100_ms = 75.0, .fixed_fraction = 0.08, .fbr_v100 = 0.45, .compute_v100 = 0.98,
       .cpu_per_item_ms = 28.0, .container_memory = GiB(1.2), .high_fbr = true});
  set(ModelId::kDenseNet121,
      {.name = "DenseNet 121", .domain = Domain::kVision, .max_batch = 64,
       .solo_v100_ms = 60.0, .fixed_fraction = 0.08, .fbr_v100 = 0.33, .compute_v100 = 0.55,
       .cpu_per_item_ms = 26.0, .container_memory = GiB(1.4), .high_fbr = true});
  set(ModelId::kDpn92,
      {.name = "DPN 92", .domain = Domain::kVision, .max_batch = 64,
       .solo_v100_ms = 95.0, .fixed_fraction = 0.08, .fbr_v100 = 0.36, .compute_v100 = 0.75,
       .cpu_per_item_ms = 36.0, .container_memory = GiB(2.0), .high_fbr = true});
  set(ModelId::kVgg19,
      {.name = "VGG 19", .domain = Domain::kVision, .max_batch = 32,
       .solo_v100_ms = 70.0, .fixed_fraction = 0.08, .fbr_v100 = 0.38, .compute_v100 = 0.80,
       .cpu_per_item_ms = 46.0, .container_memory = GiB(2.4), .high_fbr = true});

  // --- Vision, low-FBR class (peak 450 rps). ---
  set(ModelId::kResNet18,
      {.name = "ResNet 18", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 35.0, .fixed_fraction = 0.08, .fbr_v100 = 0.20, .compute_v100 = 0.45,
       .cpu_per_item_ms = 8.0, .container_memory = GiB(0.8)});
  set(ModelId::kMobileNet,
      {.name = "MobileNet", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 25.0, .fixed_fraction = 0.10, .fbr_v100 = 0.16, .compute_v100 = 0.30,
       .cpu_per_item_ms = 4.0, .container_memory = GiB(0.5)});
  set(ModelId::kMobileNetV2,
      {.name = "MobileNet V2", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 28.0, .fixed_fraction = 0.10, .fbr_v100 = 0.17, .compute_v100 = 0.33,
       .cpu_per_item_ms = 4.6, .container_memory = GiB(0.5)});
  set(ModelId::kSeNet18,
      {.name = "SENet 18", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 40.0, .fixed_fraction = 0.08, .fbr_v100 = 0.22, .compute_v100 = 0.50,
       .cpu_per_item_ms = 8.6, .container_memory = GiB(0.9)});
  set(ModelId::kShuffleNetV2,
      {.name = "ShuffleNet V2", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 22.0, .fixed_fraction = 0.10, .fbr_v100 = 0.14, .compute_v100 = 0.28,
       .cpu_per_item_ms = 3.4, .container_memory = GiB(0.4)});
  set(ModelId::kEfficientNetB0,
      {.name = "EfficientNet-B0", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 30.0, .fixed_fraction = 0.10, .fbr_v100 = 0.11, .compute_v100 = 0.35,
       .cpu_per_item_ms = 5.2, .container_memory = GiB(0.6)});
  set(ModelId::kSimplifiedDla,
      {.name = "Simplified DLA", .domain = Domain::kVision, .max_batch = 128,
       .solo_v100_ms = 38.0, .fixed_fraction = 0.08, .fbr_v100 = 0.21, .compute_v100 = 0.45,
       .cpu_per_item_ms = 8.0, .container_memory = GiB(0.8)});

  // --- Language (max batch 8, very high FBR, heavy; peak 8 rps). ---
  set(ModelId::kAlbert,
      {.name = "ALBERT", .domain = Domain::kLanguage, .max_batch = 8,
       .solo_v100_ms = 105.0, .fixed_fraction = 0.08, .fbr_v100 = 0.72, .compute_v100 = 0.50,
       .cpu_per_item_ms = 210.0, .container_memory = GiB(2.2), .high_fbr = true});
  set(ModelId::kBert,
      {.name = "BERT", .domain = Domain::kLanguage, .max_batch = 8,
       .solo_v100_ms = 130.0, .fixed_fraction = 0.08, .fbr_v100 = 0.80, .compute_v100 = 0.60,
       .cpu_per_item_ms = 280.0, .container_memory = GiB(3.0), .high_fbr = true});
  set(ModelId::kDistilBert,
      {.name = "DistilBERT", .domain = Domain::kLanguage, .max_batch = 8,
       .solo_v100_ms = 80.0, .fixed_fraction = 0.08, .fbr_v100 = 0.66, .compute_v100 = 0.45,
       .cpu_per_item_ms = 150.0, .container_memory = GiB(1.6), .high_fbr = true});
  set(ModelId::kFunnelTransformer,
      {.name = "Funnel-Transformer", .domain = Domain::kLanguage, .max_batch = 8,
       .solo_v100_ms = 120.0, .fixed_fraction = 0.08, .fbr_v100 = 0.76, .compute_v100 = 0.55,
       .cpu_per_item_ms = 240.0, .container_memory = GiB(2.6), .high_fbr = true});

  return specs;
}

}  // namespace

Zoo::Zoo() : specs_(build_specs()) {}

const ModelSpec& Zoo::spec(ModelId id) const {
  const auto index = static_cast<std::size_t>(id);
  assert(index < specs_.size());
  return specs_[index];
}

std::vector<ModelId> Zoo::vision_models() const {
  std::vector<ModelId> ids;
  for (int i = 0; i < kModelCount; ++i) {
    if (specs_[i].domain == Domain::kVision) ids.push_back(ModelId(i));
  }
  return ids;
}

std::vector<ModelId> Zoo::language_models() const {
  std::vector<ModelId> ids;
  for (int i = 0; i < kModelCount; ++i) {
    if (specs_[i].domain == Domain::kLanguage) ids.push_back(ModelId(i));
  }
  return ids;
}

const Zoo& Zoo::instance() {
  static const Zoo zoo;
  return zoo;
}

}  // namespace paldia::models
