#include "src/common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace paldia::common {

JsonValue JsonValue::boolean(bool value) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = value;
  return out;
}

JsonValue JsonValue::number(double value) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = value;
  return out;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(value);
  return out;
}

JsonValue JsonValue::array(JsonArray value) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::make_shared<JsonArray>(std::move(value));
  return out;
}

JsonValue JsonValue::object(JsonObject value) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::make_shared<JsonObject>(std::move(value));
  return out;
}

const JsonArray& JsonValue::as_array() const {
  static const JsonArray kEmpty;
  return array_ != nullptr ? *array_ : kEmpty;
}

const JsonObject& JsonValue::as_object() const {
  static const JsonObject kEmpty;
  return object_ != nullptr ? *object_ : kEmpty;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_bool() ? value->as_bool() : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t offset)
      : text_(text), pos_(offset) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_whitespace();
    result.value = parse_value(result);
    if (result.error.empty()) result.ok = true;
    result.end = pos_;
    return result;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  std::string where() const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return "line " + std::to_string(line);
  }

  JsonValue fail(JsonParseResult& result, const std::string& message) {
    if (result.error.empty()) result.error = where() + ": " + message;
    return JsonValue();
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(JsonParseResult& result) {
    if (pos_ >= text_.size()) return fail(result, "unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(result);
      case '[': return parse_array(result);
      case '"': return parse_string(result);
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        return fail(result, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        return fail(result, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        return fail(result, "invalid literal");
      default: return parse_number(result);
    }
  }

  JsonValue parse_number(JsonParseResult& result) {
    // strtod accepts a superset (hex, "inf"); restrict the span to JSON's
    // number grammar first so stray tokens fail instead of parsing as 0.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == digits) return fail(result, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endptr = nullptr;
    const double value = std::strtod(token.c_str(), &endptr);
    if (endptr != token.c_str() + token.size()) {
      return fail(result, "malformed number '" + token + "'");
    }
    return JsonValue::number(value);
  }

  JsonValue parse_string(JsonParseResult& result) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return JsonValue::string(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Exporters only emit \u00XX for control characters; decode the
          // low byte and ignore the (always-zero) high byte.
          if (pos_ + 4 > text_.size()) return fail(result, "truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          char* endptr = nullptr;
          const long code = std::strtol(hex.c_str(), &endptr, 16);
          if (endptr != hex.c_str() + 4) return fail(result, "bad \\u escape");
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: return fail(result, "unknown escape");
      }
    }
    return fail(result, "unterminated string");
  }

  JsonValue parse_array(JsonParseResult& result) {
    ++pos_;  // '['
    JsonArray items;
    skip_whitespace();
    if (consume(']')) return JsonValue::array(std::move(items));
    while (true) {
      skip_whitespace();
      items.push_back(parse_value(result));
      if (!result.error.empty()) return JsonValue();
      skip_whitespace();
      if (consume(']')) return JsonValue::array(std::move(items));
      if (!consume(',')) return fail(result, "expected ',' or ']'");
    }
  }

  JsonValue parse_object(JsonParseResult& result) {
    ++pos_;  // '{'
    JsonObject members;
    skip_whitespace();
    if (consume('}')) return JsonValue::object(std::move(members));
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(result, "expected object key");
      }
      JsonValue key = parse_string(result);
      if (!result.error.empty()) return JsonValue();
      skip_whitespace();
      if (!consume(':')) return fail(result, "expected ':'");
      skip_whitespace();
      JsonValue value = parse_value(result);
      if (!result.error.empty()) return JsonValue();
      members.emplace_back(key.as_string(), std::move(value));
      skip_whitespace();
      if (consume('}')) return JsonValue::object(std::move(members));
      if (!consume(',')) return fail(result, "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text, std::size_t offset) {
  return Parser(text, offset).run();
}

JsonLinesResult parse_json_lines(std::string_view text) {
  JsonLinesResult out;
  std::size_t line_start = 0;
  std::size_t line_no = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    ++line_no;
    std::string_view line = text.substr(line_start, line_end - line_start);
    // Trim \r and surrounding spaces; skip blank lines.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (!line.empty()) {
      JsonParseResult row = parse_json(line);
      if (!row.ok) {
        out.error = "row " + std::to_string(line_no) + ": " + row.error;
        return out;
      }
      out.rows.push_back(std::move(row.value));
    }
    if (line_end == text.size()) break;
    line_start = line_end + 1;
  }
  out.ok = true;
  return out;
}

}  // namespace paldia::common
