// Deterministic random-number generation.
//
// Every stochastic component of the simulation draws from an Rng that is
// seeded explicitly, so a (scheme, repetition) pair is bit-reproducible.
// We use splitmix64 for stream derivation and xoshiro256** as the engine —
// both are tiny, fast and high quality, and keep the repo free of
// platform-dependent std::mt19937 distribution behaviour. Distribution
// sampling is implemented locally for the same reason: libstdc++ and libc++
// disagree on std::*_distribution streams, and reproducibility across
// toolchains matters for the recorded EXPERIMENTS.md numbers.
#pragma once

#include <cstdint>
#include <string_view>

namespace paldia {

/// xoshiro256** engine with convenience distribution samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream, e.g. per node or per trace.
  /// Deterministic in (parent seed, label).
  Rng fork(std::string_view label) const;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform on [0, 1).
  double uniform();

  /// Uniform on [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer on [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  /// Lognormal with the given underlying normal parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (1/mean).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean. Uses Knuth for small
  /// means and a normal approximation above 64 (error is negligible there).
  std::int64_t poisson(double mean);

  /// True with probability p.
  bool bernoulli(double p);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step; exposed for tests and for hashing labels.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit hash of a string, used to derive child stream seeds.
std::uint64_t hash_label(std::string_view label);

}  // namespace paldia
