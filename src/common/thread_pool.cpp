#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace paldia {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling: workers pull the next index from a shared
  // counter, which balances uneven per-index costs (e.g. CPU vs GPU nodes in
  // the hardware sweep).
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t shards = std::min(n, workers_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    submit([counter, n, &fn] {
      for (std::size_t i = counter->fetch_add(1); i < n; i = counter->fetch_add(1)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace paldia
