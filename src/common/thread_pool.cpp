#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace paldia {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(Task{std::move(task), nullptr});
    ++total_pending_;
  }
  task_available_.notify_one();
  all_done_.notify_all();  // a helping wait_idle may want this task
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (total_pending_ == 0) return;
    if (!tasks_.empty()) {
      Task task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      run_task(std::move(task));
      lock.lock();
      continue;
    }
    // Everything pending is running on workers; wake on completion, or on
    // a new task we could help with.
    all_done_.wait(lock, [this] { return total_pending_ == 0 || !tasks_.empty(); });
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked dynamic scheduling: workers pull the next index from a shared
  // counter, which balances uneven per-index costs (e.g. CPU vs GPU nodes in
  // the hardware sweep). The +1 shard is the caller, which helps drain its
  // own group below instead of blocking.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  auto group = std::make_shared<Group>();
  const std::size_t shards = std::min(n, workers_.size() + 1);
  {
    std::lock_guard lock(mutex_);
    group->pending = shards;
    total_pending_ += shards;
    for (std::size_t s = 0; s < shards; ++s) {
      tasks_.push_back(Task{[counter, n, &fn] {
                              for (std::size_t i = counter->fetch_add(1); i < n;
                                   i = counter->fetch_add(1)) {
                                fn(i);
                              }
                            },
                            group});
    }
  }
  task_available_.notify_all();
  all_done_.notify_all();
  help_until_done(group);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping, queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    run_task(std::move(task));
  }
}

void ThreadPool::run_task(Task task) {
  task.fn();
  std::lock_guard lock(mutex_);
  if (task.group != nullptr && --task.group->pending == 0) {
    task.group->done.notify_all();
  }
  if (--total_pending_ == 0) all_done_.notify_all();
}

void ThreadPool::help_until_done(const std::shared_ptr<Group>& group) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (group->pending == 0) return;
    // Prefer running our own group's queued shards over blocking. Tasks of
    // other groups are left for the workers: stealing them here would only
    // delay this caller behind unrelated work.
    const auto it = std::find_if(tasks_.begin(), tasks_.end(),
                                 [&](const Task& t) { return t.group == group; });
    if (it != tasks_.end()) {
      Task task = std::move(*it);
      tasks_.erase(it);
      lock.unlock();
      run_task(std::move(task));
      lock.lock();
      continue;
    }
    // No queued shard of ours left: the remainder is running on workers
    // (each of which always retires, helping through any nested groups of
    // its own), so waiting on the group latch cannot deadlock.
    group->done.wait(lock, [&] { return group->pending == 0; });
  }
}

}  // namespace paldia
