// Small numeric statistics helpers used by trace analysis, the experiment
// summariser (mean with 2.5-sigma outlier rejection, as in the paper's
// Section VI), and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace paldia {

double mean(std::span<const double> values);
double variance(std::span<const double> values);  // population variance
double stddev(std::span<const double> values);
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Exact quantile of a copy of the data (linear interpolation between order
/// statistics). For small vectors only; streaming data uses Histogram.
double quantile(std::span<const double> values, double q);

/// Exact quantiles for several probabilities at once: the sample is copied
/// and sorted a single time (quantile() pays a full sort per call — P50/P95/
/// P99 readers were paying three). Results match quantile(values, qs[i])
/// exactly and come back in the order the probabilities were given.
std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs);

/// Mean after dropping samples further than `sigmas` standard deviations
/// from the raw mean — the paper's outlier rule ("outliers of more than
/// 2.5x the standard deviation from the mean ignored").
double outlier_filtered_mean(std::span<const double> values, double sigmas = 2.5);

/// Welford running accumulator for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace paldia
