// Console table printer used by the bench harness to render figure/table
// rows in the same layout the paper reports (scheme x metric grids).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace paldia {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string percent(double fraction, int precision = 2);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paldia
