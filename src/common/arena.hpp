// Slab arena for hot-path buffer recycling.
//
// The request path allocates and frees a fresh std::vector for every take /
// chunk / batch round trip — millions of times per run. Arena<T> owns a set
// of recycled buffer slabs and hands out move-only ArenaBlock<T> views: a
// block behaves like a small vector, and returning it (destruction or an
// explicit release()) pushes its slab onto a free list instead of freeing
// the memory, so steady-state acquisition is a free-list pop with the
// buffer's capacity already grown.
//
// Safety follows the EventQueue handle discipline: every slot carries a
// generation counter that is bumped on release and on reset(), so a release
// with a stale generation — a double release, or a block outliving a
// reset() — is a counted no-op instead of a free-list corruption. Note the
// guarantee is release-only: *reading* a block after reset() is as invalid
// as reading any other reclaimed buffer.
//
// Bypass mode (Arena(false)) keeps all the bookkeeping but drops each
// buffer's storage on release, so every acquisition re-allocates like a
// plain vector — the --no-request-pool reference side of the byte-identity
// check (the arena never changes values, only where they live).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace paldia::common {

template <typename T>
class Arena;

/// Move-only, vector-like view over one pooled buffer. Destruction returns
/// the buffer to its arena's free list.
template <typename T>
class ArenaBlock {
 public:
  ArenaBlock() = default;
  ArenaBlock(ArenaBlock&& other) noexcept { move_from(other); }
  ArenaBlock& operator=(ArenaBlock&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ArenaBlock(const ArenaBlock&) = delete;
  ArenaBlock& operator=(const ArenaBlock&) = delete;
  ~ArenaBlock() { release(); }

  T* data() { return buffer_ == nullptr ? nullptr : buffer_->data(); }
  const T* data() const { return buffer_ == nullptr ? nullptr : buffer_->data(); }
  std::size_t size() const { return buffer_ == nullptr ? 0 : buffer_->size(); }
  bool empty() const { return size() == 0; }

  T& operator[](std::size_t i) { return (*buffer_)[i]; }
  const T& operator[](std::size_t i) const { return (*buffer_)[i]; }
  T& front() { return buffer_->front(); }
  const T& front() const { return buffer_->front(); }
  T& back() { return buffer_->back(); }
  const T& back() const { return buffer_->back(); }

  T* begin() { return data(); }
  T* end() { return data() + size(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  void push_back(const T& value) { buffer_->push_back(value); }

  /// Bulk append; for trivially copyable T this is one memcpy.
  void append(const T* src, std::size_t n) {
    if (n == 0) return;
    buffer_->insert(buffer_->end(), src, src + n);
  }

  void clear() {
    if (buffer_ != nullptr) buffer_->clear();
  }

  /// Return the buffer to the arena. Idempotent; safe (and counted) after
  /// the arena was reset().
  void release() {
    if (arena_ == nullptr) return;
    arena_->release_slot(slot_, generation_);
    arena_ = nullptr;
    buffer_ = nullptr;
  }

  /// The owning arena (null for a default-constructed or released block).
  Arena<T>* arena() const { return arena_; }

 private:
  friend class Arena<T>;
  ArenaBlock(Arena<T>* arena, std::uint32_t slot, std::uint32_t generation,
             std::vector<T>* buffer)
      : arena_(arena), buffer_(buffer), slot_(slot), generation_(generation) {}

  void move_from(ArenaBlock& other) noexcept {
    arena_ = other.arena_;
    buffer_ = other.buffer_;
    slot_ = other.slot_;
    generation_ = other.generation_;
    other.arena_ = nullptr;
    other.buffer_ = nullptr;
  }

  Arena<T>* arena_ = nullptr;
  std::vector<T>* buffer_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

template <typename T>
class Arena {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;          // acquisitions served from the free list
    std::uint64_t releases = 0;
    std::uint64_t stale_releases = 0;  // generation mismatch (double release
                                       // or a block outliving reset())
    std::size_t slots = 0;             // peak concurrent blocks
  };

  explicit Arena(bool pooling = true) : pooling_(pooling) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;  // blocks hold back-pointers
  Arena& operator=(Arena&&) = delete;

  /// Hand out an empty block. Reuses a free slab when one exists.
  ArenaBlock<T> acquire() {
    std::uint32_t index;
    if (free_head_ != kNoSlot) {
      index = free_head_;
      Slot& slot = *slots_[index];
      free_head_ = slot.next_free;
      slot.next_free = kNoSlot;
      slot.in_use = true;
      ++stats_.reuses;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::make_unique<Slot>());
      slots_.back()->in_use = true;
      stats_.slots = slots_.size();
    }
    ++stats_.acquires;
    Slot& slot = *slots_[index];
    slot.buffer.clear();
    return ArenaBlock<T>(this, index, slot.generation, &slot.buffer);
  }

  /// Reclaim every slot and invalidate all outstanding blocks: their later
  /// releases become counted no-ops (generation mismatch). Called once per
  /// repetition boundary.
  void reset() {
    free_head_ = kNoSlot;
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(slots_.size()); ++i) {
      Slot& slot = *slots_[i];
      ++slot.generation;
      slot.in_use = false;
      recycle_buffer(slot);
      slot.next_free = free_head_;
      free_head_ = i;
    }
  }

  bool pooling() const { return pooling_; }
  const Stats& stats() const { return stats_; }

 private:
  friend class ArenaBlock<T>;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    std::vector<T> buffer;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool in_use = false;
  };

  void recycle_buffer(Slot& slot) {
    if (pooling_) {
      slot.buffer.clear();  // capacity retained: the whole point of the pool
    } else {
      std::vector<T>().swap(slot.buffer);  // bypass: next acquire re-allocates
    }
  }

  void release_slot(std::uint32_t index, std::uint32_t generation) {
    Slot& slot = *slots_[index];
    if (slot.generation != generation || !slot.in_use) {
      ++stats_.stale_releases;
      return;
    }
    ++slot.generation;  // any remaining handle to this acquisition is stale
    slot.in_use = false;
    recycle_buffer(slot);
    slot.next_free = free_head_;
    free_head_ = index;
    ++stats_.releases;
  }

  std::vector<std::unique_ptr<Slot>> slots_;
  std::uint32_t free_head_ = kNoSlot;
  bool pooling_ = true;
  Stats stats_{};
};

}  // namespace paldia::common
