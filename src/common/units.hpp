// Basic value types and units used throughout the Paldia reproduction.
//
// Simulated time is carried as double milliseconds (TimeMs). The simulation
// never runs long enough for double precision to matter (5 simulated days is
// 4.3e8 ms, still exactly representable well past the microsecond digit).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace paldia {

/// Simulated wall-clock time, in milliseconds since simulation start.
using TimeMs = double;

/// A span of simulated time, in milliseconds.
using DurationMs = double;

/// Requests per second.
using Rps = double;

/// US dollars.
using Dollars = double;

/// Watts.
using Watts = double;

/// Bytes (device or host memory).
using Bytes = std::uint64_t;

inline constexpr TimeMs kTimeNever = std::numeric_limits<TimeMs>::infinity();

inline constexpr double kMsPerSecond = 1000.0;
inline constexpr double kMsPerMinute = 60.0 * kMsPerSecond;
inline constexpr double kMsPerHour = 60.0 * kMsPerMinute;

constexpr DurationMs seconds(double s) { return s * kMsPerSecond; }
constexpr DurationMs minutes(double m) { return m * kMsPerMinute; }
constexpr DurationMs hours(double h) { return h * kMsPerHour; }

constexpr Bytes GiB(double g) { return static_cast<Bytes>(g * 1024.0 * 1024.0 * 1024.0); }

/// Strongly-typed integer id. Tag distinguishes unrelated id spaces at
/// compile time (NodeId vs ContainerId etc.) with zero runtime cost.
template <typename Tag>
struct Id {
  std::int64_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int64_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct RequestTag {};
struct BatchTag {};
struct ContainerTag {};
struct NodeTag {};
struct VmTag {};

using RequestId = Id<RequestTag>;
using BatchId = Id<BatchTag>;
using ContainerId = Id<ContainerTag>;
using NodeId = Id<NodeTag>;
using VmId = Id<VmTag>;

template <typename Tag>
std::string to_string(Id<Tag> id) {
  return std::to_string(id.value);
}

}  // namespace paldia
