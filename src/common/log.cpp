#include "src/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace paldia {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogSink> g_sink{nullptr};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  // Compose the whole line before taking the lock so the critical section
  // is a single write; concurrent callers can never interleave mid-line.
  std::string line;
  line.reserve(message.size() + 16);
  line.append("[").append(level_name(level)).append("] ");
  line.append(message).append("\n");
  const LogSink sink = g_sink.load(std::memory_order_acquire);
  std::lock_guard lock(g_mutex);
  if (sink != nullptr) {
    sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace paldia
