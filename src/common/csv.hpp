// Minimal CSV writer/reader for exporting figure data series and loading
// externally captured traces. Only the subset needed here: numeric and
// string cells, no embedded quotes in our own output.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace paldia {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<std::string>& cells);

  /// Format a double with enough digits for round-tripping figure data.
  static std::string cell(double value);
  static std::string cell(std::int64_t value);

 private:
  std::ostream& out_;
};

struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Index of a column by name, or npos.
  std::size_t column_index(std::string_view name) const;
};

/// Parse CSV text (simple comma split, optional quoted cells, CR tolerated).
CsvTable parse_csv(std::string_view text);

/// Read and parse a CSV file; throws std::runtime_error when unreadable.
CsvTable read_csv_file(const std::string& path);

}  // namespace paldia
