#include "src/common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace paldia {

namespace {
constexpr std::size_t kLinearBuckets =
    static_cast<std::size_t>(Histogram::kLinearLimitMs / Histogram::kLinearBucketMs);
// Exponential region: each bucket grows by 2^(1/16); covers 512ms..300s.
constexpr double kGrowth = 1.0442737824274138;  // 2^(1/16)
}  // namespace

Histogram::Histogram() {
  std::size_t exp_buckets = 0;
  double upper = kLinearLimitMs;
  while (upper < kMaxTrackableMs) {
    upper *= kGrowth;
    ++exp_buckets;
  }
  buckets_.assign(kLinearBuckets + exp_buckets + 1, 0);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::size_t Histogram::bucket_index(double value_ms) const {
  if (value_ms < 0.0) value_ms = 0.0;
  if (value_ms < kLinearLimitMs) {
    return static_cast<std::size_t>(value_ms / kLinearBucketMs);
  }
  const double ratio = value_ms / kLinearLimitMs;
  const auto exp_index = static_cast<std::size_t>(std::log(ratio) / std::log(kGrowth));
  return std::min(kLinearBuckets + exp_index, buckets_.size() - 1);
}

double Histogram::bucket_upper(std::size_t index) const {
  if (index < kLinearBuckets) return (static_cast<double>(index) + 1.0) * kLinearBucketMs;
  const auto exp_index = static_cast<double>(index - kLinearBuckets);
  return kLinearLimitMs * std::pow(kGrowth, exp_index + 1.0);
}

double Histogram::bucket_value(std::size_t index) const {
  if (index < kLinearBuckets) {
    return (static_cast<double>(index) + 0.5) * kLinearBucketMs;
  }
  const auto exp_index = static_cast<double>(index - kLinearBuckets);
  const double lo = kLinearLimitMs * std::pow(kGrowth, exp_index);
  return lo * (1.0 + kGrowth) / 2.0;
}

void Histogram::add(double value_ms, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(value_ms)] += count;
  total_count_ += count;
  sum_ += value_ms * static_cast<double>(count);
  min_ = std::min(min_, value_ms);
  max_ = std::max(max_, value_ms);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::mean() const {
  return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
}

double Histogram::min() const { return total_count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return total_count_ == 0 ? 0.0 : max_; }

double Histogram::quantile(double q) const {
  if (total_count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;
}

std::vector<double> Histogram::quantiles(std::span<const double> qs) const {
  std::vector<double> out(qs.size(), 0.0);
  if (total_count_ == 0) return out;

  // Visit the probabilities in ascending order so one cumulative walk over
  // the buckets answers all of them; results land back in input order.
  std::vector<std::size_t> order(qs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return qs[a] < qs[b]; });

  std::uint64_t seen = 0;  // cumulative count of buckets before `bucket`
  std::size_t bucket = 0;
  for (const std::size_t qi : order) {
    const double q = std::clamp(qs[qi], 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_count_)));
    // Same rule as quantile(): the first non-empty bucket whose cumulative
    // count (through itself) reaches the target. Targets ascend, so the
    // walk never rewinds and a bucket may answer several probabilities.
    while (bucket < buckets_.size() &&
           (buckets_[bucket] == 0 || seen + buckets_[bucket] < target)) {
      seen += buckets_[bucket];
      ++bucket;
    }
    out[qi] = bucket < buckets_.size() ? std::clamp(bucket_value(bucket), min_, max_)
                                       : max_;
  }
  return out;
}

double Histogram::fraction_at_or_below(double threshold_ms) const {
  if (total_count_ == 0) return 1.0;
  const std::size_t limit = bucket_index(threshold_ms);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i <= limit && i < buckets_.size(); ++i) below += buckets_[i];
  return static_cast<double>(below) / static_cast<double>(total_count_);
}

std::vector<std::pair<double, std::uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<double, std::uint64_t>> pairs;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) pairs.emplace_back(bucket_value(i), buckets_[i]);
  }
  return pairs;
}

std::vector<std::pair<double, double>> Histogram::cdf() const {
  std::vector<std::pair<double, double>> points;
  if (total_count_ == 0) return points;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.emplace_back(bucket_upper(i),
                        static_cast<double>(seen) / static_cast<double>(total_count_));
  }
  return points;
}

}  // namespace paldia
