// Streaming latency histogram with bounded memory.
//
// Latency percentiles over tens of millions of simulated requests must not
// require storing every sample. We use a log-linear bucketed histogram
// (HDR-histogram style): linear 0.25 ms buckets up to 512 ms, then
// exponentially growing buckets up to ~5 minutes. Relative quantile error is
// < 0.5 ms in the region that matters for a 200 ms SLO.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/units.hpp"

namespace paldia {

class Histogram {
 public:
  Histogram();

  void add(double value_ms, std::uint64_t count = 1);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const { return total_count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Quantile in [0, 1]; returns the representative value of the bucket
  /// containing the q-th sample. quantile(0.99) == P99.
  double quantile(double q) const;

  /// Several quantiles in one bucket scan (quantile() walks the bucket
  /// array per call). Results are bit-identical to calling quantile() on
  /// each probability and come back in the given order.
  std::vector<double> quantiles(std::span<const double> qs) const;

  /// Fraction of samples <= threshold (e.g. SLO compliance).
  double fraction_at_or_below(double threshold_ms) const;

  /// (value, cumulative fraction) pairs for CDF export; one point per
  /// non-empty bucket.
  std::vector<std::pair<double, double>> cdf() const;

  /// Sparse serialization: (representative value, count) per non-empty
  /// bucket. Each representative maps back into its own bucket, so feeding
  /// the pairs through add() reconstructs the bucket counts exactly (mean /
  /// min / max become representative-based approximations).
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

  static constexpr double kLinearLimitMs = 512.0;
  static constexpr double kLinearBucketMs = 0.25;
  static constexpr double kMaxTrackableMs = 300'000.0;

 private:
  std::size_t bucket_index(double value_ms) const;
  double bucket_value(std::size_t index) const;
  double bucket_upper(std::size_t index) const;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace paldia
