#include "src/common/rng.hpp"

#include <cmath>

namespace paldia {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  return Rng(seed_ ^ hash_label(label) ^ 0xd1b54a32d192ed03ull);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<std::int64_t>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  std::int64_t count = 0;
  while (product > limit) {
    product *= uniform();
    ++count;
  }
  return count;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace paldia
