// Nestable worker pool used by the Hardware Selection module's parallel
// y-sweep (Algorithm 1 probes candidate y values "in parallel" and candidate
// nodes with par_for) and by the experiment runner's repetition sweep.
//
// Completion is tracked per *task group*, not globally: every parallel_for
// (and every submit batch awaited by wait_idle) drains its own latch, and a
// caller that would block instead pulls its group's pending tasks off the
// queue and runs them itself. That makes the executor safe to re-enter —
// a pool worker evaluating one candidate node may open a nested
// parallel_for over y candidates without deadlocking on its own in-flight
// task, and two threads may run independent parallel_for calls concurrently
// without observing each other's completion state.
//
// Determinism note: all uses are pure reductions over precomputed inputs
// writing to fixed slots, so scheduling order never affects results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace paldia {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a detached task. Tasks must not throw; exceptions terminate
  /// (by design — a failed model evaluation is a programming error, not a
  /// runtime state).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished. Helps run
  /// pending tasks while waiting, so it is safe to call from a worker.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait. The caller
  /// participates (it drains its own batch's tasks while waiting), so
  /// nested calls from inside pool tasks are deadlock-free and concurrent
  /// top-level calls are isolated. Falls back to the calling thread when
  /// the pool has a single worker or n == 1.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  /// Per-batch completion latch. Tasks hold a shared_ptr so a group
  /// outlives its parallel_for frame even if the pool is torn down late.
  struct Group {
    std::size_t pending = 0;
    std::condition_variable done;
  };
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Group> group;  // null for detached submits
  };

  void worker_loop();
  /// Run one task and retire it against its group and the global count.
  /// Called without the lock held.
  void run_task(Task task);
  /// Wait for `group` to drain, executing its queued tasks in the
  /// meantime. Must be called without the lock held.
  void help_until_done(const std::shared_ptr<Group>& group);

  std::vector<std::thread> workers_;
  std::deque<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t total_pending_ = 0;  // queued + running, across all groups
  bool stopping_ = false;
};

}  // namespace paldia
