// Fixed-size worker pool used by the Hardware Selection module's parallel
// y-sweep (Algorithm 1 probes candidate y values "in parallel" and candidate
// nodes with par_for). The pool is intentionally simple: submit tasks, wait
// for a batch to drain. Determinism note: all uses are pure min-reductions
// over precomputed inputs, so scheduling order never affects results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace paldia {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate (by design —
  /// a failed model evaluation is a programming error, not a runtime state).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait. Falls back to the
  /// calling thread when the pool has a single worker or n == 1.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace paldia
