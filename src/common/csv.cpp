#include "src/common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace paldia {

void CsvWriter::header(const std::vector<std::string>& columns) { row(columns); }

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string CsvWriter::cell(std::int64_t value) { return std::to_string(value); }

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

namespace {

std::vector<std::string> split_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

}  // namespace

CsvTable parse_csv(std::string_view text) {
  CsvTable table;
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() && start > text.size()) break;
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (first) {
      table.columns = std::move(cells);
      first = false;
    } else {
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace paldia
