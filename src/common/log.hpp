// Leveled logging with a global threshold. Simulation-heavy code keeps debug
// logging behind the level check so hot paths pay one branch when disabled.
#pragma once

#include <sstream>
#include <string>

namespace paldia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at the given level (no-op when below threshold).
///
/// Thread-safe: the "[LEVEL] message\n" line is composed into a single
/// buffer and handed to the sink as one write under a global mutex, so
/// concurrent callers never interleave within a line.
void log_message(LogLevel level, const std::string& message);

/// Sink invoked with one fully-formatted line (including trailing '\n')
/// per log_message call, always under the logging mutex.
using LogSink = void (*)(const std::string& line);

/// Replace the output sink (default writes to stderr). Pass nullptr to
/// restore the default. Returns the previous sink (nullptr if default).
/// Intended for tests; the sink must not call back into the logger.
LogSink set_log_sink(LogSink sink);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) {
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace paldia
