#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace paldia {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return sq / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

namespace {

/// Interpolated order statistic of an already-sorted sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  std::vector<double> out(qs.size(), 0.0);
  if (values.empty()) return out;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < qs.size(); ++i) out[i] = sorted_quantile(sorted, qs[i]);
  return out;
}

double outlier_filtered_mean(std::span<const double> values, double sigmas) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  const double sd = stddev(values);
  if (sd == 0.0) return m;
  double total = 0.0;
  std::size_t kept = 0;
  for (double v : values) {
    if (std::abs(v - m) <= sigmas * sd) {
      total += v;
      ++kept;
    }
  }
  return kept == 0 ? m : total / static_cast<double>(kept);
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_);
  const auto m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace paldia
