#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace paldia {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  print_row(columns_);
  out << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace paldia
