// Small-buffer-optimized, move-only callable wrapper.
//
// The event queue stores one callback per scheduled event; with
// std::function almost every capture list of more than two pointers pays a
// heap allocation on the simulation hot path. InlineFunction keeps captures
// up to kInlineFunctionBytes (48 B, enough for every closure the framework
// schedules) inside the object and falls back to the heap only beyond that.
// Move-only is deliberate: events are scheduled once and fired once, and it
// lets the queue store non-copyable captures.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace paldia {

inline constexpr std::size_t kInlineFunctionBytes = 48;

template <typename Signature, std::size_t InlineBytes = kInlineFunctionBytes>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vtable_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    /// Move-construct the callable at dst from the one at src, then destroy
    /// the source. dst is raw storage. nullptr means the callable is
    /// trivially relocatable — move_from memcpys the buffer inline instead
    /// of paying an indirect call. Nearly every closure the simulator
    /// schedules (captures of pointers, indices and times) takes this path,
    /// and each event is relocated several times between scheduling and
    /// firing, so this shows up on the drain hot path.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr when destruction is a no-op (trivially destructible inline
    /// callables) — reset skips the indirect call entirely.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static R invoke_inline(void* self, Args&&... args) {
    return (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void relocate_inline(void* dst, void* src) noexcept {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void destroy_inline(void* self) noexcept {
    static_cast<Fn*>(self)->~Fn();
  }

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      &invoke_inline<Fn>,
      std::is_trivially_copyable_v<Fn> ? nullptr : &relocate_inline<Fn>,
      std::is_trivially_destructible_v<Fn> ? nullptr : &destroy_inline<Fn>,
  };

  template <typename Fn>
  static R invoke_heap(void* self, Args&&... args) {
    return (**static_cast<Fn**>(self))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void destroy_heap(void* self) noexcept {
    delete *static_cast<Fn**>(self);
  }

  // Heap-held callables relocate by moving the owning pointer — a plain
  // memcpy. The source is never left dangling: move_from clears the source's
  // vtable, so its destroy can no longer run.
  template <typename Fn>
  static constexpr VTable heap_vtable = {
      &invoke_heap<Fn>,
      nullptr,
      &destroy_heap<Fn>,
  };

  void move_from(InlineFunction& other) noexcept {
    if (other.vtable_ == nullptr) return;
    if (other.vtable_->relocate == nullptr) {
      // Trivially relocatable: blit the whole buffer (fixed size, so the
      // compiler lowers it to a few vector moves, no branching on sizeof).
      std::memcpy(storage_, other.storage_, InlineBytes);
    } else {
      other.vtable_->relocate(storage_, other.storage_);
    }
    vtable_ = other.vtable_;
    other.vtable_ = nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace paldia
