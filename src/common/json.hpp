// Minimal recursive-descent JSON parser for the offline analysis tools.
//
// The simulator's exporters emit JSON/JSONL; `paldia-analyze` needs to read
// those files back without external dependencies. This parser covers exactly
// the JSON the exporters produce (objects, arrays, strings with the escapes
// json_escape() emits, numbers via strtod, true/false/null) and keeps object
// keys in insertion order so re-serialization round-trips deterministically.
//
// Numbers are parsed with strtod — the same conversion the analyzer's
// quantization helpers use — so a value formatted with "%.10g" parses back
// to the bit-identical double that produced it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paldia::common {

class JsonValue;

/// Object members in insertion order. Lookup is linear; exporter objects
/// have tens of keys at most.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array(JsonArray value);
  static JsonValue object(JsonObject value);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// `find(key)` as a number, or `fallback` when absent / wrong type.
  double number_or(std::string_view key, double fallback) const;
  /// `find(key)` as a string, or `fallback` when absent / wrong type.
  std::string string_or(std::string_view key, std::string_view fallback) const;
  /// `find(key)` as a bool, or `fallback` when absent / wrong type.
  bool bool_or(std::string_view key, bool fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays movable while JsonObject/JsonArray contain it.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

struct JsonParseResult {
  JsonValue value;
  bool ok = false;
  std::string error;       // "line 3: expected ':'" style
  std::size_t end = 0;     // offset one past the parsed value (JSONL streaming)
};

/// Parse one JSON value starting at `offset`; trailing input is allowed
/// (use `end` to continue, e.g. for JSON Lines).
JsonParseResult parse_json(std::string_view text, std::size_t offset = 0);

/// Parse a whole JSONL buffer: one value per non-empty line. Stops at the
/// first malformed line and reports it in `error`; earlier rows are kept.
struct JsonLinesResult {
  std::vector<JsonValue> rows;
  bool ok = false;
  std::string error;
};
JsonLinesResult parse_json_lines(std::string_view text);

}  // namespace paldia::common
