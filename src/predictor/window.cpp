#include "src/predictor/window.hpp"

namespace paldia::predictor {

void ArrivalWindow::record(TimeMs now, int count) {
  evict(now);
  if (!events_.empty() && events_.back().first == now) {
    events_.back().second += count;
  } else {
    events_.emplace_back(now, count);
  }
  window_total_ += count;
}

void ArrivalWindow::evict(TimeMs now) const {
  const TimeMs cutoff = now - window_ms_;
  while (!events_.empty() && events_.front().first <= cutoff) {
    window_total_ -= events_.front().second;
    events_.pop_front();
  }
}

Rps ArrivalWindow::rate(TimeMs now) const {
  evict(now);
  return static_cast<double>(window_total_) / (window_ms_ / kMsPerSecond);
}

int ArrivalWindow::count_in_window(TimeMs now) const {
  evict(now);
  return window_total_;
}

}  // namespace paldia::predictor
