// EWMA rate predictor (the paper's default, as in Atoll/Cypress). A plain
// exponentially weighted moving average with an optional trend term
// (Holt-style) so short surges are tracked with bounded lag. With
// trend_alpha = 0 this is the classic EWMA.
#pragma once

#include "src/predictor/predictor.hpp"

namespace paldia::predictor {

class EwmaPredictor final : public Predictor {
 public:
  explicit EwmaPredictor(double alpha = 0.5, double trend_alpha = 0.35)
      : alpha_(alpha), trend_alpha_(trend_alpha) {}

  void observe(TimeMs now, Rps rate) override;
  Rps predict(TimeMs now, DurationMs horizon_ms) const override;

  Rps level() const { return level_; }
  double trend_per_ms() const { return trend_per_ms_; }

 private:
  double alpha_;
  double trend_alpha_;
  Rps level_ = 0.0;
  double trend_per_ms_ = 0.0;
  TimeMs last_observe_ms_ = -1.0;
  bool primed_ = false;
};

/// Trivial last-value predictor (ablation baseline).
class LastValuePredictor final : public Predictor {
 public:
  void observe(TimeMs, Rps rate) override { last_ = rate; }
  Rps predict(TimeMs, DurationMs) const override { return last_; }

 private:
  Rps last_ = 0.0;
};

}  // namespace paldia::predictor
