#include "src/predictor/ewma.hpp"

#include <algorithm>

namespace paldia::predictor {

void EwmaPredictor::observe(TimeMs now, Rps rate) {
  if (!primed_) {
    level_ = rate;
    trend_per_ms_ = 0.0;
    primed_ = true;
    last_observe_ms_ = now;
    return;
  }
  // Sharded delivery can replay or reorder monitor samples; a stale tick
  // (now <= last observation) must not move the level and would make the
  // trend denominator non-positive, so it is dropped outright.
  if (now <= last_observe_ms_) return;
  const double previous_level = level_;
  level_ = alpha_ * rate + (1.0 - alpha_) * level_;
  // Clamp dt to one tick: near-duplicate timestamps otherwise explode the
  // instantaneous trend.
  const DurationMs dt = std::max(1.0, now - last_observe_ms_);
  const double instantaneous_trend = (level_ - previous_level) / dt;
  trend_per_ms_ =
      trend_alpha_ * instantaneous_trend + (1.0 - trend_alpha_) * trend_per_ms_;
  last_observe_ms_ = now;
}

Rps EwmaPredictor::predict(TimeMs, DurationMs horizon_ms) const {
  return std::max(0.0, level_ + trend_per_ms_ * horizon_ms);
}

}  // namespace paldia::predictor
