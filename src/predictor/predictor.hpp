// Pluggable demand predictors (Section IV-A: "a lightweight statistical
// model (such as EWMA) which relies on current and history request
// information"). The Hardware Selection module and the predictive
// autoscaler both consume this interface.
#pragma once

#include "src/common/units.hpp"

namespace paldia::predictor {

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Feed the observed arrival rate over the last observation window.
  virtual void observe(TimeMs now, Rps rate) = 0;

  /// Predicted arrival rate `horizon_ms` ahead of `now`.
  virtual Rps predict(TimeMs now, DurationMs horizon_ms) const = 0;
};

}  // namespace paldia::predictor
