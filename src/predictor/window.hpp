// Sliding-window arrival counter: turns raw arrival events into the
// windowed rates the predictors observe, and exposes the instantaneous
// backlog-aware rate the Hardware Selection module uses.
#pragma once

#include <deque>

#include "src/common/units.hpp"

namespace paldia::predictor {

class ArrivalWindow {
 public:
  explicit ArrivalWindow(DurationMs window_ms = 1000.0) : window_ms_(window_ms) {}

  void record(TimeMs now, int count = 1);

  /// Arrivals per second over the trailing window ending at `now`.
  Rps rate(TimeMs now) const;

  /// Total arrivals in the trailing window.
  int count_in_window(TimeMs now) const;

  DurationMs window_ms() const { return window_ms_; }

 private:
  void evict(TimeMs now) const;

  DurationMs window_ms_;
  mutable std::deque<std::pair<TimeMs, int>> events_;
  mutable int window_total_ = 0;
};

}  // namespace paldia::predictor
