// paldia-analyze: offline report over exported observability artifacts.
//
//   paldia-analyze trace1.json [trace2.json ...] [options]
//
// Ingests Chrome-trace exports (bench --trace-out files, one per
// scenario/scheme run), reconstructs the SLO-violation attribution and
// analytical-model calibration the framework computed online, and prints a
// human-readable report. The analysis core (src/obs/report.cpp) is shared
// with the drivers' inline --report-out path, so the offline numbers are
// byte-identical to the inline ones.
//
// Rollup-only mode ingests a --rollup-out JSONL stream instead of (or in
// addition to) full traces: compliance and attribution are rebuilt from the
// windowed cells alone, without any lifecycle trace on disk. Alert mode
// (--alerts) likewise rebuilds the report's "health" section — incident
// timeline, MTTD, false-positive rate — from an --alerts-out JSONL stream,
// byte-identical to the inline --report-out section.
//
// Options:
//   --rollup PATH       rebuild reports from a rollup JSONL stream
//   --alerts PATH       rebuild health reports from an alert JSONL stream
//   --report-out PATH   also write the report as JSON
//   --metrics PATH      echo a metrics JSONL/CSV export (cross-check section)
//   --decisions PATH    count rows of a decision-log export
//   --json              print the JSON report to stdout instead of text
//   --quiet             suppress the text report (use with --report-out)
//
// Unknown or malformed flags exit nonzero with the usage message.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"

namespace {

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// "artifacts/fig13.azure_Paldia.json" -> "fig13.azure_Paldia"
std::string label_for_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [trace.json ...] [options]\n"
               "  --rollup PATH      rebuild reports from a rollup JSONL stream\n"
               "  --alerts PATH      rebuild health reports from an alert JSONL\n"
               "                     stream (--alerts-out output)\n"
               "  --report-out PATH  also write the report as JSON\n"
               "  --metrics PATH     echo a metrics JSONL/CSV export\n"
               "  --decisions PATH   count rows of a decision-log export\n"
               "  --json             print the JSON report to stdout\n"
               "  --quiet            suppress the text report\n"
               "  --help, -h         this message\n"
               "at least one trace file, --rollup, or --alerts stream is "
               "required\n",
               argv0);
}

int usage(const char* argv0) {
  print_usage(stderr, argv0);
  return 2;
}

/// Optional cross-check section: echo the exporter's own metrics rows so a
/// report and the raw export can be eyeballed side by side.
void print_metrics_echo(std::ostream& out, const std::string& path) {
  std::string text;
  std::string error;
  if (!read_file(path, &text, &error)) {
    out << "metrics: " << error << "\n";
    return;
  }
  if (paldia::obs::format_for_path(path) == paldia::obs::ExportFormat::kCsv) {
    std::size_t rows = 0;
    for (const char c : text) rows += c == '\n' ? 1 : 0;
    out << "metrics: " << path << " (" << (rows > 0 ? rows - 1 : 0)
        << " CSV rows)\n";
    return;
  }
  const auto parsed = paldia::common::parse_json_lines(text);
  if (!parsed.ok) {
    out << "metrics: " << path << ": " << parsed.error << "\n";
    return;
  }
  out << "metrics: " << path << " (" << parsed.rows.size() << " rows)\n";
  for (const auto& row : parsed.rows) {
    out << "  " << row.string_or("figure", "?") << " " << row.string_or("scheme", "?")
        << " " << row.string_or("workload", "?") << ": compliance "
        << row.number_or("slo_compliance", 0.0) * 100.0 << "%, violations "
        << row.number_or("slo_violations", 0.0) << ", p99 "
        << row.number_or("p99_latency_ms", 0.0) << " ms\n";
  }
}

void print_decisions_echo(std::ostream& out, const std::string& path) {
  std::string text;
  std::string error;
  if (!read_file(path, &text, &error)) {
    out << "decisions: " << error << "\n";
    return;
  }
  std::size_t rows = 0;
  for (const char c : text) rows += c == '\n' ? 1 : 0;
  // Sweep-work accounting (pool_size/evaluated/pruned columns): how much of
  // Algorithm 1's candidate enumeration the pruned walk actually ran. The
  // counters replay the pruned walk even under --no-prune, so the savings
  // report is bypass-agnostic.
  long long pool = 0, evaluated = 0, pruned = 0;
  if (paldia::obs::format_for_path(path) == paldia::obs::ExportFormat::kCsv) {
    if (rows > 0) --rows;  // header
    std::istringstream lines(text);
    std::string line;
    std::vector<std::string> header;
    int pool_col = -1, evaluated_col = -1, pruned_col = -1;
    if (std::getline(lines, line)) {
      std::istringstream cells(line);
      std::string cell;
      for (int i = 0; std::getline(cells, cell, ','); ++i) {
        if (cell == "pool_size") pool_col = i;
        if (cell == "evaluated") evaluated_col = i;
        if (cell == "pruned") pruned_col = i;
      }
    }
    while (pool_col >= 0 && std::getline(lines, line)) {
      std::istringstream cells(line);
      std::string cell;
      for (int i = 0; i <= std::max({pool_col, evaluated_col, pruned_col}) &&
                      std::getline(cells, cell, ',');
           ++i) {
        if (i == pool_col) pool += std::atoll(cell.c_str());
        if (i == evaluated_col) evaluated += std::atoll(cell.c_str());
        if (i == pruned_col) pruned += std::atoll(cell.c_str());
      }
    }
  } else {
    const auto parsed = paldia::common::parse_json_lines(text);
    if (parsed.ok) {
      for (const auto& row : parsed.rows) {
        pool += static_cast<long long>(row.number_or("pool_size", 0.0));
        evaluated += static_cast<long long>(row.number_or("evaluated", 0.0));
        pruned += static_cast<long long>(row.number_or("pruned", 0.0));
      }
    }
  }
  out << "decisions: " << path << " (" << rows << " rows)\n";
  if (pool > 0) {
    out << "  selection sweep: " << evaluated << " of " << pool
        << " pool candidates evaluated, " << pruned << " pruned ("
        << 100.0 * static_cast<double>(pruned) / static_cast<double>(pool)
        << "% of sweep work saved)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> trace_paths;
  std::string rollup_path;
  std::string alerts_path;
  std::string report_out;
  std::string metrics_path;
  std::string decisions_path;
  bool json_stdout = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value" (the bench drivers use
    // the latter form).
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    const auto next = [&](const char* flag) -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rollup") {
      rollup_path = next("--rollup");
    } else if (arg == "--alerts") {
      alerts_path = next("--alerts");
    } else if (arg == "--report-out") {
      report_out = next("--report-out");
    } else if (arg == "--metrics") {
      metrics_path = next("--metrics");
    } else if (arg == "--decisions") {
      decisions_path = next("--decisions");
    } else if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      trace_paths.push_back(arg);
    }
  }
  if (trace_paths.empty() && rollup_path.empty() && alerts_path.empty()) {
    return usage(argv[0]);
  }

  std::vector<paldia::obs::AnalysisReport> reports;
  for (const std::string& path : trace_paths) {
    std::string text;
    std::string error;
    if (!read_file(path, &text, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const auto parsed = paldia::common::parse_json(text);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error.c_str());
      return 1;
    }
    paldia::obs::RunData data;
    if (!paldia::obs::parse_chrome_trace(parsed.value, label_for_path(path), &data,
                                         &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    reports.push_back(paldia::obs::analyze_with_zoo(data));
  }

  if (!rollup_path.empty()) {
    std::string text;
    std::string error;
    if (!read_file(rollup_path, &text, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::vector<paldia::obs::AnalysisReport> rollup_reports;
    if (!paldia::obs::analyze_rollup_stream(text, &rollup_reports, &error)) {
      std::fprintf(stderr, "%s: %s\n", rollup_path.c_str(), error.c_str());
      return 1;
    }
    for (auto& report : rollup_reports) {
      reports.push_back(std::move(report));
    }
  }

  if (!alerts_path.empty()) {
    std::string text;
    std::string error;
    if (!read_file(alerts_path, &text, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::vector<paldia::obs::AnalysisReport> alert_reports;
    if (!paldia::obs::analyze_alert_stream(text, &alert_reports, &error)) {
      std::fprintf(stderr, "%s: %s\n", alerts_path.c_str(), error.c_str());
      return 1;
    }
    for (auto& report : alert_reports) {
      reports.push_back(std::move(report));
    }
  }

  if (!quiet) {
    if (json_stdout) {
      paldia::obs::write_report_json(std::cout, reports);
    } else {
      paldia::obs::render_report_text(std::cout, reports);
      if (!metrics_path.empty()) print_metrics_echo(std::cout, metrics_path);
      if (!decisions_path.empty()) print_decisions_echo(std::cout, decisions_path);
    }
  }

  if (!report_out.empty()) {
    std::string error;
    if (!paldia::obs::write_report_json_file(report_out, reports, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!quiet && !json_stdout) {
      std::cout << "report written to " << report_out << "\n";
    }
  }
  return 0;
}
