#!/usr/bin/env python3
"""Track micro_perf results against a recorded baseline.

Workflow (see EXPERIMENTS.md, "Performance"):

  1. Record a baseline (typically on the pre-change tree):
       build/bench/micro_perf --json-out=baseline.json
  2. Run the same benchmarks on the current tree:
       build/bench/micro_perf --json-out=current.json
  3. Compare and write the tracked report:
       tools/perf_baseline.py --baseline baseline.json --current current.json \
           --out BENCH_perf.json [--require-speedup BM_Name:2.0]

The report keys each benchmark by name and stores items_per_second (the
throughput counter every queue/simulator benchmark sets) plus wall time,
with the baseline/current ratio. --require-speedup makes the script exit
nonzero unless current/baseline throughput meets the floor — CI uses a
plain existence/plausibility smoke instead, since shared runners make
timing assertions flaky.

With only --current (no --baseline), the report records the current run
alone; ratios are null. This keeps the CI smoke path independent of any
checked-in timing numbers.

--prune-stale updates an existing --out report in place: entries from the
previous report that are missing from the current run are carried forward
when they have a recorded baseline (a filtered run must not lose tracked
history), but entries whose baseline is null AND which no longer exist in
the current run are deleted benchmarks — they are dropped and listed under
the report's "pruned" key instead of being carried forever.
"""

import argparse
import json
import os
import re
import sys


def load_benchmarks(path):
    """google-benchmark JSON -> {name: {time_ns, items_per_second}}."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    out = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and bench.get(
                "aggregate_name") != "mean":
            continue
        name = bench.get("run_name", bench.get("name"))
        # ->Iterations(N) lands in the benchmark name; strip it so report
        # keys (and the colon-separated --require-speedup specs) stay clean.
        name = re.sub(r"/iterations:\d+", "", name)
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        out[name] = {
            "real_time_ns": bench.get("real_time", 0.0) * scale,
            "items_per_second": bench.get("items_per_second"),
        }
    return out


def build_report(baseline, current):
    report = {"benchmarks": {}}
    for name, entry in sorted(current.items()):
        row = {
            "current": entry,
            "baseline": baseline.get(name) if baseline else None,
            "speedup": None,
        }
        base = row["baseline"]
        if base:
            cur_ips, base_ips = entry["items_per_second"], base["items_per_second"]
            if cur_ips and base_ips:
                row["speedup"] = cur_ips / base_ips
            elif base["real_time_ns"] > 0 and entry["real_time_ns"] > 0:
                row["speedup"] = base["real_time_ns"] / entry["real_time_ns"]
        report["benchmarks"][name] = row
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="google-benchmark JSON of the current tree")
    parser.add_argument("--baseline",
                        help="google-benchmark JSON of the reference tree")
    parser.add_argument("--out", required=True,
                        help="tracked report path (BENCH_perf.json)")
    parser.add_argument("--require-speedup", action="append", default=[],
                        metavar="BM_Name:RATIO",
                        help="fail unless current/baseline throughput of the "
                             "named benchmark is at least RATIO")
    parser.add_argument("--require-bench", action="append", default=[],
                        metavar="BM_Name",
                        help="fail unless the named benchmark appears in the "
                             "current run with a positive throughput")
    parser.add_argument("--prune-stale", action="store_true",
                        help="merge with the existing --out report: carry "
                             "forward absent benchmarks that have a baseline, "
                             "drop (and list under 'pruned') absent ones whose "
                             "baseline is null")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    baseline = load_benchmarks(args.baseline) if args.baseline else {}
    report = build_report(baseline, current)

    if args.prune_stale:
        previous = {}
        if os.path.exists(args.out):
            with open(args.out, "r", encoding="utf-8") as fh:
                previous = json.load(fh).get("benchmarks", {})
        pruned = []
        for name, row in sorted(previous.items()):
            if name in report["benchmarks"]:
                continue
            if row.get("baseline") is None:
                pruned.append(name)
            else:
                report["benchmarks"][name] = row
        report["pruned"] = pruned

    failures = []
    for requirement in args.require_bench:
        entry = current.get(requirement)
        if entry is None:
            failures.append(
                f"{requirement}: not in the current run {args.current} — "
                f"check the benchmark name and --benchmark_filter")
        elif not (entry.get("items_per_second") or 0) > 0:
            failures.append(f"{requirement}: present but has zero throughput "
                            f"(benchmark must SetItemsProcessed)")
    for requirement in args.require_speedup:
        name, sep, floor = requirement.rpartition(":")
        if not sep or not name:
            failures.append(f"--require-speedup '{requirement}': expected "
                            f"BM_Name:RATIO")
            continue
        try:
            floor = float(floor)
        except ValueError:
            failures.append(f"--require-speedup '{requirement}': ratio "
                            f"'{floor}' is not a number")
            continue
        if name not in current:
            failures.append(
                f"{name}: not in the current run {args.current} — "
                f"check the benchmark name and --benchmark_filter")
            continue
        if not baseline:
            failures.append(f"{name}: --require-speedup needs --baseline")
            continue
        if name not in baseline:
            failures.append(
                f"{name}: not in the baseline run {args.baseline} — "
                f"re-record the baseline with this benchmark included")
            continue
        speedup = report["benchmarks"].get(name, {}).get("speedup")
        if speedup is None:
            failures.append(f"{name}: present in both runs but neither "
                            f"throughput nor wall time is comparable")
        elif speedup < floor:
            failures.append(f"{name}: speedup {speedup:.2f}x < required "
                            f"{floor:.2f}x")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, row in sorted(report["benchmarks"].items()):
        ips = row["current"]["items_per_second"]
        line = f"{name}: "
        line += f"{ips:,.0f} items/s" if ips else \
            f"{row['current']['real_time_ns']:.0f} ns"
        if row["speedup"] is not None:
            line += f"  ({row['speedup']:.2f}x vs baseline)"
        print(line)
    for name in report.get("pruned", []):
        print(f"pruned stale benchmark: {name}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
