// Unit tests for the analysis layer behind --report-out / paldia-analyze:
// the exporter-quantization helpers, the inline-vs-offline producer parity
// (extract_run_data over a RunTrace must equal parse_chrome_trace over its
// serialized form, down to the report JSON bytes), and analyze()'s
// cause-sum / unserved accounting.
#include "src/obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "src/common/json.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/telemetry/slo_tracker.hpp"

namespace paldia::obs {
namespace {

TEST(Quantize, TimestampIsIdempotent) {
  // The inline extractor pre-quantizes through the exporter's "%.3f" (us)
  // format; applying it twice must be a no-op or parity breaks.
  for (const double ms : {0.0, 0.1234567, 1000.0 / 3.0, 98765.4321, 1e-7}) {
    const double once = quantize_timestamp(ms);
    EXPECT_DOUBLE_EQ(quantize_timestamp(once), once) << ms;
    EXPECT_NEAR(once, ms, 5e-7) << ms;  // %.3f of microseconds: ns resolution
  }
}

TEST(Quantize, NumberIsIdempotentAndSanitizesNonFinite) {
  for (const double x : {0.0, 1.0 / 3.0, 123456.789, 1e-12, -42.5}) {
    const double once = quantize_number(x);
    EXPECT_DOUBLE_EQ(quantize_number(once), once) << x;
    EXPECT_NEAR(once, x, std::abs(x) * 1e-9);
  }
  EXPECT_DOUBLE_EQ(quantize_number(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_DOUBLE_EQ(quantize_number(std::nan("")), 0.0);
}

/// A small but feature-complete RunTrace: lifecycles (compliant, violating,
/// retried), a batch, a switch blackout, a decision sweep, and unserved
/// counters — across two repetitions.
RunTrace make_trace() {
  RunTrace trace;
  for (int rep = 0; rep < 2; ++rep) {
    auto tracer = std::make_unique<Tracer>();
    const double base = rep * 10.0;  // desync the reps slightly

    // Compliant request.
    tracer->record_request_lifecycle(
        1, models::ModelId::kResNet50, hw::NodeType::kG3s_xlarge,
        cluster::ShareMode::kSpatial, 4, 3, 1, base + 100.0, base + 102.0,
        base + 105.0, base + 195.0, 85.0, 5.0, 0.0);
    // Interference-dominated violation.
    tracer->record_request_lifecycle(
        2, models::ModelId::kResNet50, hw::NodeType::kG3s_xlarge,
        cluster::ShareMode::kSpatial, 4, 3, 1, base + 200.0, base + 203.0,
        base + 206.0, base + 520.0, 90.0, 224.0, 0.0);
    // Retried violation.
    tracer->request_requeued(3, models::ModelId::kVgg19, base + 300.0,
                             hw::NodeType::kG3s_xlarge);
    tracer->record_request_lifecycle(
        3, models::ModelId::kVgg19, hw::NodeType::kP3_2xlarge,
        cluster::ShareMode::kTemporal, 1, 1, 1, base + 300.0, base + 580.0,
        base + 590.0, base + 700.0, 100.0, 0.0, 4.0);

    // Switch blackout plus a request that waited through it.
    tracer->instant("switch_begin", base + 1000.0, hw::NodeType::kP3_2xlarge);
    tracer->record_request_lifecycle(
        4, models::ModelId::kResNet50, hw::NodeType::kP3_2xlarge,
        cluster::ShareMode::kTemporal, 1, 1, 1, base + 1010.0, base + 1290.0,
        base + 1295.0, base + 1340.0, 40.0, 0.0, 0.0);
    tracer->instant("switch_active", base + 1300.0, hw::NodeType::kP3_2xlarge);

    // Batch observation answering the decision below.
    tracer->record_batch(11, models::ModelId::kResNet50, hw::NodeType::kG3s_xlarge,
                         cluster::ShareMode::kSpatial, 4, base + 900.0,
                         base + 905.0, base + 1010.0, 100.0, 0.0);
    DecisionRecord* decision =
        tracer->begin_decision(base + 890.0, hw::NodeType::kG3s_xlarge);
    EXPECT_NE(decision, nullptr) << "decision log full in test setup";
    decision->has_sweep = true;
    decision->predicted_rps = 55.5;
    decision->observed_rps = 50.25;
    CandidateEval candidate;
    candidate.node = hw::NodeType::kG3s_xlarge;
    candidate.t_max_ms = 123.456;
    candidate.feasible = true;
    candidate.is_gpu = true;
    candidate.best_y = 3;
    decision->candidates.push_back(candidate);
    tracer->end_decision(hw::NodeType::kG3s_xlarge, false);

    // Drain-cap leftovers, sampled as the exporters do at run end. The
    // counter carries the model *name*, matching the framework's drain loop.
    const std::string unserved_counter =
        "unserved:" + std::string(models::model_id_name(models::ModelId::kResNet50));
    tracer->count(unserved_counter.c_str(), 2.0);
    tracer->sample_counters(base + 2000.0);

    trace.reps.push_back(std::move(tracer));
  }
  return trace;
}

TEST(Report, AnalyzeCountsCausesAndUnserved) {
  const RunTrace trace = make_trace();
  const AnalysisReport report =
      analyze_with_zoo(extract_run_data(trace, "unit"));

  EXPECT_EQ(report.reps, 2);
  // 4 lifecycles + 2 unserved per rep.
  EXPECT_EQ(report.total.completed, 12u);
  EXPECT_EQ(report.unserved, 4u);
  // Violations: interference + retry + blackout + unserved x2, per rep.
  EXPECT_EQ(report.total.violations, 10u);

  std::uint64_t cause_sum = 0;
  for (const std::uint64_t n : report.total.causes) cause_sum += n;
  EXPECT_EQ(cause_sum, report.total.violations);

  using telemetry::ViolationCause;
  const auto cause = [&](ViolationCause c) {
    return report.total.causes[static_cast<std::size_t>(c)];
  };
  EXPECT_EQ(cause(ViolationCause::kMpsInterference), 2u);
  EXPECT_EQ(cause(ViolationCause::kFailureRetry), 2u);
  EXPECT_EQ(cause(ViolationCause::kHardwareSwitch), 2u);
  EXPECT_EQ(cause(ViolationCause::kUnserved), 4u);

  // Calibration: one decision per rep, answered by the batch that follows.
  EXPECT_EQ(report.calibration.intervals_total, 2);
  EXPECT_EQ(report.calibration.intervals_observed, 2);
  ASSERT_EQ(report.calibration.per_node.size(), 1u);
  EXPECT_EQ(report.calibration.per_node[0].node,
            static_cast<int>(hw::NodeType::kG3s_xlarge));

  // Switch timeline: begin + active per rep, rep-major order.
  ASSERT_EQ(report.switch_timeline.size(), 4u);
  EXPECT_EQ(report.switch_timeline[0].event, "switch_begin");
  EXPECT_EQ(report.switch_timeline[1].event, "switch_active");
  EXPECT_EQ(report.switch_timeline[2].rep, 1);
}

TEST(Report, OfflineParseReproducesInlineReportBytes) {
  const RunTrace trace = make_trace();

  std::ostringstream serialized;
  write_chrome_trace(serialized, trace, "unit");
  const auto parsed = common::parse_json(serialized.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;

  RunData offline;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(parsed.value, "unit", &offline, &error)) << error;

  const AnalysisReport inline_report =
      analyze_with_zoo(extract_run_data(trace, "unit"));
  const AnalysisReport offline_report = analyze_with_zoo(offline);

  std::ostringstream inline_json;
  std::ostringstream offline_json;
  write_report_json(inline_json, {inline_report});
  write_report_json(offline_json, {offline_report});
  EXPECT_EQ(inline_json.str(), offline_json.str());
  EXPECT_NE(inline_json.str().find("\"attribution\""), std::string::npos);
}

TEST(Report, ReportJsonIsDeterministicAndValid) {
  const RunTrace trace = make_trace();
  const AnalysisReport report =
      analyze_with_zoo(extract_run_data(trace, "unit"));

  std::ostringstream first;
  std::ostringstream second;
  write_report_json(first, {report});
  write_report_json(second, {report});
  EXPECT_EQ(first.str(), second.str());

  const auto parsed = common::parse_json(first.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const common::JsonValue* runs = parsed.value.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->as_array().size(), 1u);
  const common::JsonValue& run = runs->as_array()[0];
  EXPECT_EQ(run.string_or("label", ""), "unit");
  const common::JsonValue* attribution = run.find("attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_DOUBLE_EQ(attribution->number_or("violations", -1.0), 10.0);
  const common::JsonValue* causes = attribution->find("causes");
  ASSERT_NE(causes, nullptr);
  double cause_sum = 0.0;
  for (const auto& member : causes->as_object()) {
    cause_sum += member.second.as_number();
  }
  EXPECT_DOUBLE_EQ(cause_sum, attribution->number_or("violations", -1.0));
}

TEST(Report, RenderTextMentionsEverySection) {
  const RunTrace trace = make_trace();
  const AnalysisReport report =
      analyze_with_zoo(extract_run_data(trace, "unit"));
  std::ostringstream out;
  render_report_text(out, {report});
  const std::string text = out.str();
  EXPECT_NE(text.find("unit"), std::string::npos);
  EXPECT_NE(text.find("mps_interference"), std::string::npos);
  EXPECT_NE(text.find("switch_begin"), std::string::npos);
  EXPECT_NE(text.find("Calibration"), std::string::npos);
}

}  // namespace
}  // namespace paldia::obs
