// String-field escaping of the CSV/JSONL exporters: scheme/workload/trace
// labels containing commas, quotes, CR or (JSONL) newlines must survive a
// write -> parse round trip through the repo's own readers. Guards the
// csv_escape \r fix — a bare CR in an unquoted cell splits the row for any
// CRLF-aware reader and was previously emitted verbatim.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/common/csv.hpp"
#include "src/common/json.hpp"
#include "src/obs/export.hpp"
#include "src/telemetry/metrics.hpp"

namespace paldia::obs {
namespace {

telemetry::RunMetrics awkward_metrics() {
  telemetry::RunMetrics metrics;
  metrics.scheme = "Paldia, \"tuned\"";   // comma + embedded quotes
  metrics.workload = "burst\rcr";         // bare carriage return
  metrics.trace = "azure 2021";
  metrics.requests = 1234;
  metrics.slo_compliance = 0.991;
  metrics.p99_latency_ms = 187.5;
  return metrics;
}

TEST(ExportEscaping, CsvStringFieldsRoundTrip) {
  std::ostringstream out;
  MetricsWriter writer(out, ExportFormat::kCsv);
  writer.write(awkward_metrics(), "fig,04");

  const CsvTable table = parse_csv(out.str());
  ASSERT_EQ(table.rows.size(), 1u);
  const auto& row = table.rows[0];
  ASSERT_EQ(row.size(), table.columns.size());
  EXPECT_EQ(row[table.column_index("figure")], "fig,04");
  EXPECT_EQ(row[table.column_index("scheme")], "Paldia, \"tuned\"");
  EXPECT_EQ(row[table.column_index("workload")], "burst\rcr");
  EXPECT_EQ(row[table.column_index("trace")], "azure 2021");
  EXPECT_EQ(row[table.column_index("requests")], "1234");
}

TEST(ExportEscaping, CsvBareCrDoesNotSplitTheRow) {
  // Regression for the csv_escape fix: with \r missing from the must-quote
  // set, "burst\rcr" was written unquoted and the reader (which strips \r
  // from unquoted cells) silently corrupted the field.
  std::ostringstream out;
  MetricsWriter writer(out, ExportFormat::kCsv);
  writer.write(awkward_metrics(), "fig04");
  const std::string text = out.str();
  EXPECT_NE(text.find("\"burst\rcr\""), std::string::npos)
      << "CR-carrying cell must be quoted";
}

TEST(ExportEscaping, JsonlStringFieldsRoundTrip) {
  telemetry::RunMetrics metrics = awkward_metrics();
  metrics.workload = "line1\nline2\ttab\\slash";  // JSONL can carry \n

  std::ostringstream out;
  MetricsWriter writer(out, ExportFormat::kJsonl);
  writer.write(metrics, "fig\"04\"");

  const auto parsed = common::parse_json_lines(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.rows.size(), 1u);
  const auto& row = parsed.rows[0];
  EXPECT_EQ(row.string_or("figure", ""), "fig\"04\"");
  EXPECT_EQ(row.string_or("scheme", ""), "Paldia, \"tuned\"");
  EXPECT_EQ(row.string_or("workload", ""), "line1\nline2\ttab\\slash");
  EXPECT_EQ(row.string_or("trace", ""), "azure 2021");
  EXPECT_DOUBLE_EQ(row.number_or("requests", 0.0), 1234.0);
}

TEST(ExportEscaping, RollupRunLabelRoundTrips) {
  // The rollup "run" label is driver-controlled text ("scenario / scheme");
  // it must survive both formats like every other string field.
  RunTrace trace;
  trace.collect_rollups = true;
  trace.rollups.push_back(std::make_unique<RollupAggregator>());
  trace.rollups[0]->observe_completion(
      100.0, static_cast<int>(models::ModelId::kResNet50),
      static_cast<int>(hw::NodeType::kG3s_xlarge), 40.0, std::nullopt);
  const std::string run = "fig,04 \"hot\" / Pal\rdia";

  std::ostringstream jsonl;
  RollupWriter jw(jsonl, ExportFormat::kJsonl);
  jw.write(trace, run);
  const auto parsed = common::parse_json_lines(jsonl.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0].string_or("run", ""), run);

  std::ostringstream csv;
  RollupWriter cw(csv, ExportFormat::kCsv);
  cw.write(trace, run);
  const CsvTable table = parse_csv(csv.str());
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][table.column_index("run")], run);
}

}  // namespace
}  // namespace paldia::obs
