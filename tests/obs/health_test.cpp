// Online SLO health engine (obs/health.hpp): config validation, the three
// detectors (multi-window burn rate, latency CUSUM, queue z-score), the
// alert lifecycle state machine with hysteresis, blame hints, and the
// AlertWriter -> analyze_alert_stream round trip that powers
// `paldia-analyze --alerts` — whose health section must match the inline
// summarize_health() output exactly.
#include "src/obs/health.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::obs {
namespace {

constexpr int kModel = static_cast<int>(models::ModelId::kResNet50);
constexpr int kNode = static_cast<int>(hw::NodeType::kG3s_xlarge);
constexpr auto kExec = telemetry::ViolationCause::kExecution;

/// Tight burn-rate config for unit-scale timelines; the anomaly detectors
/// stay effectively disarmed (huge warmup) so tests isolate one detector.
HealthConfig burn_config() {
  HealthConfig config;
  config.slo_target = 0.9;  // budget 0.1
  config.fast_window_ms = 1000.0;
  config.slow_window_ms = 5000.0;
  config.burn_threshold = 2.0;  // breach at >= 20% violation fraction
  config.min_window_samples = 5;
  config.pending_ticks = 2;
  config.resolve_ticks = 2;
  config.warmup_ticks = 1000;  // CUSUM / z-score never arm
  return config;
}

/// `count` completions spread through (t - 500, t], `violating` of them
/// blamed on execution.
void feed_interval(HealthEngine& engine, TimeMs t, int count, int violating,
                   telemetry::ViolationCause cause = kExec) {
  for (int i = 0; i < count; ++i) {
    const bool bad = i < violating;
    engine.observe_completion(t - 500.0 + 50.0 * (i + 1), kModel, kNode,
                              bad ? 400.0 : 40.0,
                              bad ? std::optional<telemetry::ViolationCause>(cause)
                                  : std::nullopt);
  }
}

TEST(HealthConfigValidation, RejectsOutOfRangeParameters) {
  const HealthConfig good;
  EXPECT_NO_THROW(HealthEngine{good});
  auto bad = [&](auto mutate) {
    HealthConfig config;
    mutate(config);
    EXPECT_THROW(HealthEngine{config}, std::invalid_argument);
  };
  bad([](HealthConfig& c) { c.slo_target = 0.0; });
  bad([](HealthConfig& c) { c.slo_target = 1.0; });
  bad([](HealthConfig& c) { c.fast_window_ms = 0.0; });
  bad([](HealthConfig& c) { c.slow_window_ms = -1.0; });
  bad([](HealthConfig& c) { c.fast_window_ms = c.slow_window_ms; });
  bad([](HealthConfig& c) { c.burn_threshold = 0.0; });
  bad([](HealthConfig& c) { c.pending_ticks = 0; });
  bad([](HealthConfig& c) { c.resolve_ticks = 0; });
  bad([](HealthConfig& c) { c.cusum_k = -0.1; });
  bad([](HealthConfig& c) { c.cusum_h = 0.0; });
  bad([](HealthConfig& c) { c.ewma_alpha = 0.0; });
  bad([](HealthConfig& c) { c.ewma_alpha = 1.5; });
  bad([](HealthConfig& c) { c.z_threshold = 0.0; });
  bad([](HealthConfig& c) { c.warmup_ticks = 0; });
}

TEST(HealthEngine, CompliantRunRaisesNoAlerts) {
  HealthEngine engine(burn_config());
  for (int tick = 1; tick <= 20; ++tick) {
    const TimeMs t = 500.0 * tick;
    feed_interval(engine, t, 10, 0);
    engine.evaluate(t);
  }
  engine.finalize(10'500.0);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_EQ(engine.completions(), 200u);
  EXPECT_EQ(engine.violations(), 0u);
  EXPECT_DOUBLE_EQ(engine.first_violation_ms(), -1.0);
  // finalize() runs one last evaluation on top of the 20 ticks.
  EXPECT_EQ(engine.evaluations(), 21u);
}

TEST(HealthEngine, SustainedBurnWalksTheFullLifecycle) {
  // Compliant for 3 s, 50% violations for 3 s, compliant again: the burn
  // detector must raise exactly one pending -> firing -> resolved incident
  // per key (cluster-wide and (model, node) see the same stream).
  HealthEngine engine(burn_config());
  for (int tick = 1; tick <= 20; ++tick) {
    const TimeMs t = 500.0 * tick;
    const bool burning = t > 3000.0 && t <= 6000.0;
    feed_interval(engine, t, 10, burning ? 5 : 0);
    engine.evaluate(t);
  }
  engine.finalize(10'500.0);

  ASSERT_EQ(engine.alerts().size(), 2u);
  const AlertRecord& cluster = engine.alerts()[0];
  const AlertRecord& keyed = engine.alerts()[1];
  EXPECT_EQ(cluster.model, -1);
  EXPECT_EQ(cluster.node, -1);
  EXPECT_EQ(keyed.model, kModel);
  EXPECT_EQ(keyed.node, kNode);
  for (const AlertRecord* alert : {&cluster, &keyed}) {
    EXPECT_EQ(alert->detector, HealthDetector::kBurnRate);
    // Slow-window fraction crosses 20% at t = 5000 (20 violations / 100
    // requests); hysteresis fires one tick later; the fast window clears at
    // t = 7000 and resolve_ticks = 2 closes the incident at t = 7500.
    EXPECT_DOUBLE_EQ(alert->open_ms, 5000.0);
    EXPECT_DOUBLE_EQ(alert->fire_ms, 5500.0);
    EXPECT_DOUBLE_EQ(alert->resolve_ms, 7500.0);
    EXPECT_FALSE(alert->resolved_at_end);
    EXPECT_EQ(alert->blame, kExec);
    EXPECT_GE(alert->peak_severity, 2.0);
    EXPECT_GT(alert->ticks_breached, 0u);
    // Ground truth starts one tick before open (the interval that triggered
    // the breach): (4500, 7500] holds 15 of the burn's 30 violations.
    EXPECT_EQ(alert->violations, 15u);
    EXPECT_EQ(alert->completed, 60u);
  }
  EXPECT_DOUBLE_EQ(engine.first_violation_ms(), 3050.0);
  EXPECT_EQ(engine.violations(), 30u);
}

TEST(HealthEngine, BlipIsDroppedWhilePending) {
  // One breaching evaluation followed by a clear one never fires: the
  // pending alert is discarded silently and nothing is exported.
  HealthConfig config = burn_config();
  config.min_window_samples = 1;
  HealthEngine engine(config);
  engine.observe_completion(100.0, kModel, kNode, 400.0, kExec);
  engine.evaluate(500.0);  // 1/1 violations: burn 10 >= 2 -> pending
  feed_interval(engine, 1000.0, 20, 0);
  engine.evaluate(1000.0);  // 1/21 ~ 4.8% < 20% -> cleared
  engine.finalize(1500.0);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_EQ(engine.violations(), 1u);
  EXPECT_DOUBLE_EQ(engine.first_violation_ms(), 100.0);
}

TEST(HealthEngine, BlameHintTracksTheDominantCauseDelta) {
  // The burn window mixes causes; the hint must pick the one that moved the
  // most while the alert was open (cold starts here, 3:2 over execution).
  HealthConfig config = burn_config();
  HealthEngine engine(config);
  for (int tick = 1; tick <= 20; ++tick) {
    const TimeMs t = 500.0 * tick;
    const bool burning = t > 3000.0 && t <= 6000.0;
    feed_interval(engine, t, 10, burning ? 3 : 0,
                  telemetry::ViolationCause::kColdStart);
    if (burning) {
      engine.observe_completion(t - 100.0, kModel, kNode, 400.0, kExec);
      engine.observe_completion(t - 50.0, kModel, kNode, 400.0, kExec);
    }
    engine.evaluate(t);
  }
  engine.finalize(10'500.0);
  ASSERT_FALSE(engine.alerts().empty());
  for (const AlertRecord& alert : engine.alerts()) {
    EXPECT_EQ(alert.blame, telemetry::ViolationCause::kColdStart);
  }
}

TEST(HealthEngine, UnservedRequestsBurnTheClusterBudget) {
  // Drain-cap leftovers are cluster-wide violations that finalize()'s last
  // evaluation still sees; incidents firing through the run end are closed
  // with resolved_at_end = true.
  HealthEngine engine(burn_config());
  for (int tick = 1; tick <= 10; ++tick) {
    const TimeMs t = 500.0 * tick;
    feed_interval(engine, t, 10, tick > 4 ? 5 : 0);
    engine.evaluate(t);
  }
  engine.observe_unserved(5200.0, kModel, 25);
  engine.finalize(5500.0);
  EXPECT_EQ(engine.violations(), 30u + 25u);
  // The cluster key fired and was closed at the end; the (model, node) key
  // breached too (its own 50% stream), also truncated at the end.
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_TRUE(engine.alerts()[0].resolved_at_end);
  EXPECT_DOUBLE_EQ(engine.alerts()[0].resolve_ms, 5500.0);
}

TEST(HealthEngine, LatencyCusumCatchesARegimeShift) {
  HealthConfig config;
  config.warmup_ticks = 3;
  config.cusum_h = 2.0;
  config.pending_ticks = 1;
  config.resolve_ticks = 1;
  config.burn_threshold = 1e9;  // burn detector effectively off
  HealthEngine engine(config);
  // Stable 10 ms p99 for 6 ticks, then a 100x latency shift (all compliant,
  // so the burn detector and blame taxonomy see nothing).
  for (int tick = 1; tick <= 6; ++tick) {
    const TimeMs t = 500.0 * tick;
    for (int i = 0; i < 5; ++i) {
      engine.observe_completion(t - 100.0 - i, kModel, kNode, 10.0,
                                std::nullopt);
    }
    engine.evaluate(t);
  }
  for (int tick = 7; tick <= 9; ++tick) {
    const TimeMs t = 500.0 * tick;
    for (int i = 0; i < 5; ++i) {
      engine.observe_completion(t - 100.0 - i, kModel, kNode, 1000.0,
                                std::nullopt);
    }
    engine.evaluate(t);
  }
  engine.finalize(5000.0);
  ASSERT_FALSE(engine.alerts().empty());
  const AlertRecord& alert = engine.alerts()[0];
  EXPECT_EQ(alert.detector, HealthDetector::kLatencyCusum);
  EXPECT_DOUBLE_EQ(alert.open_ms, 3500.0);  // first shifted tick
  EXPECT_DOUBLE_EQ(alert.fire_ms, 3500.0);  // pending_ticks = 1
  EXPECT_TRUE(alert.resolved_at_end);       // S+ stays high through the end
  // No attributed violations anywhere: blame falls back to execution and
  // the alert counts as a false positive in the report.
  EXPECT_EQ(alert.blame, kExec);
  EXPECT_EQ(alert.violations, 0u);
}

TEST(HealthEngine, QueueZScoreAlertsOnGrowthOnly) {
  HealthConfig config;
  config.warmup_ticks = 3;
  config.z_threshold = 2.0;
  config.pending_ticks = 1;
  config.resolve_ticks = 1;
  config.burn_threshold = 1e9;
  HealthEngine engine(config);
  // Flat queue for 4 ticks (arms after 3 baseline samples), a spike, then
  // recovery: exactly one alert, resolved when the queue drains.
  for (int tick = 1; tick <= 4; ++tick) {
    engine.observe_queue_depth(500.0 * tick, kModel, kNode, 5.0);
    engine.evaluate(500.0 * tick);
  }
  engine.observe_queue_depth(2500.0, kModel, kNode, 50.0);
  engine.evaluate(2500.0);  // z >> threshold -> pending + firing
  engine.observe_queue_depth(3000.0, kModel, kNode, 5.0);
  engine.evaluate(3000.0);  // below the adapted mean -> clear -> resolved
  engine.finalize(3500.0);
  ASSERT_EQ(engine.alerts().size(), 1u);
  const AlertRecord& alert = engine.alerts()[0];
  EXPECT_EQ(alert.detector, HealthDetector::kQueueZScore);
  EXPECT_DOUBLE_EQ(alert.open_ms, 2500.0);
  EXPECT_DOUBLE_EQ(alert.resolve_ms, 3000.0);
  EXPECT_FALSE(alert.resolved_at_end);
  // A draining queue (negative z) must never open an alert of its own.
  EXPECT_EQ(engine.alerts().size(), 1u);
}

// --- AlertWriter -> analyze_alert_stream round trip --------------------------

RunTrace make_health_trace() {
  RunTrace trace;
  trace.capture_events = false;
  trace.collect_health = true;
  trace.health_config = burn_config();
  trace.healths.push_back(std::make_unique<HealthEngine>(trace.health_config));
  HealthEngine& engine = *trace.healths.back();
  for (int tick = 1; tick <= 20; ++tick) {
    const TimeMs t = 500.0 * tick;
    const bool burning = t > 3000.0 && t <= 6000.0;
    feed_interval(engine, t, 10, burning ? 5 : 0);
    engine.evaluate(t);
  }
  engine.finalize(10'500.0);
  return trace;
}

TEST(AlertRoundTrip, JsonlRowsMatchSchema) {
  const RunTrace trace = make_health_trace();
  std::ostringstream out;
  AlertWriter writer(out, ExportFormat::kJsonl);
  writer.write(trace, "scenario / Paldia");

  const auto parsed = common::parse_json_lines(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  // 2 alert rows + 1 per-rep summary row.
  ASSERT_EQ(parsed.rows.size(), 3u);
  std::size_t alerts = 0;
  std::size_t summaries = 0;
  for (const auto& row : parsed.rows) {
    EXPECT_EQ(row.string_or("run", ""), "scenario / Paldia");
    EXPECT_EQ(row.number_or("rep", -1.0), 0.0);
    const std::string kind = row.string_or("row", "");
    if (kind == "alert") {
      ++alerts;
      EXPECT_EQ(row.string_or("detector", ""), "burn_rate");
      EXPECT_EQ(row.string_or("blame", ""), "execution");
      EXPECT_DOUBLE_EQ(row.number_or("open_ms", -1.0), 5000.0);
      EXPECT_DOUBLE_EQ(row.number_or("fire_ms", -1.0), 5500.0);
      EXPECT_DOUBLE_EQ(row.number_or("resolve_ms", -1.0), 7500.0);
      EXPECT_EQ(row.number_or("violations", -1.0), 15.0);
    } else {
      ASSERT_EQ(kind, "summary");
      ++summaries;
      EXPECT_EQ(row.number_or("completed", -1.0), 200.0);
      EXPECT_EQ(row.number_or("violations", -1.0), 30.0);
      EXPECT_DOUBLE_EQ(row.number_or("first_violation_ms", -1.0), 3050.0);
      EXPECT_EQ(row.number_or("alerts", -1.0), 2.0);
    }
  }
  EXPECT_EQ(alerts, 2u);
  EXPECT_EQ(summaries, 1u);
}

TEST(AlertRoundTrip, OfflineHealthSectionMatchesInlineExactly) {
  const RunTrace trace = make_health_trace();
  std::ostringstream out;
  AlertWriter writer(out, ExportFormat::kJsonl);
  writer.write(trace, "scenario / Paldia");

  const HealthReport inline_health = summarize_health(trace);
  std::vector<AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(analyze_alert_stream(out.str(), &reports, &error)) << error;
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].label, "scenario / Paldia");
  EXPECT_EQ(reports[0].reps, 1);
  const HealthReport& offline = reports[0].health;

  ASSERT_TRUE(inline_health.enabled);
  ASSERT_TRUE(offline.enabled);
  EXPECT_EQ(offline.completed, inline_health.completed);
  EXPECT_EQ(offline.violations, inline_health.violations);
  EXPECT_EQ(offline.evaluations, inline_health.evaluations);
  EXPECT_EQ(offline.false_positives, inline_health.false_positives);
  EXPECT_DOUBLE_EQ(offline.false_positive_rate,
                   inline_health.false_positive_rate);
  EXPECT_DOUBLE_EQ(offline.first_violation_ms, inline_health.first_violation_ms);
  EXPECT_DOUBLE_EQ(offline.first_fire_ms, inline_health.first_fire_ms);
  EXPECT_DOUBLE_EQ(offline.mttd_ms, inline_health.mttd_ms);
  ASSERT_EQ(offline.alerts.size(), inline_health.alerts.size());
  for (std::size_t i = 0; i < offline.alerts.size(); ++i) {
    const HealthAlert& a = offline.alerts[i];
    const HealthAlert& b = inline_health.alerts[i];
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.detector, b.detector);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.node, b.node);
    EXPECT_DOUBLE_EQ(a.open_ms, b.open_ms);
    EXPECT_DOUBLE_EQ(a.fire_ms, b.fire_ms);
    EXPECT_DOUBLE_EQ(a.resolve_ms, b.resolve_ms);
    EXPECT_EQ(a.resolved_at_end, b.resolved_at_end);
    EXPECT_DOUBLE_EQ(a.peak_severity, b.peak_severity);
    EXPECT_EQ(a.ticks_breached, b.ticks_breached);
    EXPECT_EQ(a.blame, b.blame);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.completed, b.completed);
  }

  // Byte parity end to end: serialize both sides through the JSON report
  // writer and compare the documents.
  AnalysisReport inline_report;
  inline_report.label = "scenario / Paldia";
  inline_report.reps = 1;
  inline_report.health = inline_health;
  std::ostringstream inline_json;
  write_report_json(inline_json, {inline_report});
  std::ostringstream offline_json;
  write_report_json(offline_json, reports);
  EXPECT_EQ(inline_json.str(), offline_json.str());
}

TEST(AlertRoundTrip, CompliantRunExportsOnlyASummaryRow) {
  RunTrace trace;
  trace.collect_health = true;
  trace.health_config = burn_config();
  trace.healths.push_back(std::make_unique<HealthEngine>(trace.health_config));
  HealthEngine& engine = *trace.healths.back();
  for (int tick = 1; tick <= 10; ++tick) {
    feed_interval(engine, 500.0 * tick, 10, 0);
    engine.evaluate(500.0 * tick);
  }
  engine.finalize(5500.0);

  std::ostringstream out;
  AlertWriter writer(out, ExportFormat::kJsonl);
  writer.write(trace, "compliant");
  std::vector<AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(analyze_alert_stream(out.str(), &reports, &error)) << error;
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].health.enabled);
  EXPECT_TRUE(reports[0].health.alerts.empty());
  EXPECT_EQ(reports[0].health.completed, 100u);
  EXPECT_DOUBLE_EQ(reports[0].health.first_violation_ms, -1.0);
  EXPECT_DOUBLE_EQ(reports[0].health.mttd_ms, -1.0);
  EXPECT_DOUBLE_EQ(reports[0].health.false_positive_rate, 0.0);
}

TEST(AlertRoundTrip, CsvExportCarriesHeaderAndAllRows) {
  const RunTrace trace = make_health_trace();
  std::ostringstream out;
  AlertWriter writer(out, ExportFormat::kCsv);
  writer.write(trace, "scenario / Paldia");
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.compare(0, 4, "run,"), 0);
  std::size_t rows = 0;
  for (const char c : text) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 1u + 2u + 1u);  // header + 2 alerts + 1 summary
}

TEST(AlertRoundTrip, MalformedStreamIsAnError) {
  std::vector<AnalysisReport> reports;
  std::string error;
  EXPECT_FALSE(analyze_alert_stream("{not json\n", &reports, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(analyze_alert_stream(
      "{\"run\":\"r\",\"rep\":0,\"row\":\"bogus\"}\n", &reports, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace paldia::obs
