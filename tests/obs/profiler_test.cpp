// Simulator self-profiling (obs/profiler.hpp): phase accounting, rep
// merging, the nullptr-tolerant ScopedPhase, and summarize_profile's report
// rows. Wall-clock values are nondeterministic, so assertions cover counts
// and arithmetic, never absolute durations.
#include "src/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/obs/report.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::obs {
namespace {

TEST(Profiler, RecordAccumulatesPerPhase) {
  Profiler profiler;
  EXPECT_TRUE(profiler.empty());
  profiler.record(ProfilePhase::kSelectionSweep, 1000);
  profiler.record(ProfilePhase::kSelectionSweep, 3000);
  profiler.record(ProfilePhase::kDispatchTick, 500);
  EXPECT_FALSE(profiler.empty());

  const PhaseStats& sweep = profiler.phase(ProfilePhase::kSelectionSweep);
  EXPECT_EQ(sweep.calls, 2u);
  EXPECT_EQ(sweep.total_ns, 4000u);
  EXPECT_EQ(sweep.max_ns, 3000u);
  EXPECT_EQ(profiler.phase(ProfilePhase::kDispatchTick).calls, 1u);
  EXPECT_EQ(profiler.phase(ProfilePhase::kEpochMerge).calls, 0u);
}

TEST(Profiler, MergeSumsCallsAndTakesMaxOfMaxes) {
  Profiler a;
  a.record(ProfilePhase::kEpochExtract, 100);
  a.record(ProfilePhase::kEpochExtract, 900);
  Profiler b;
  b.record(ProfilePhase::kEpochExtract, 400);
  b.record(ProfilePhase::kMonitorTick, 50);

  a.merge(b);
  const PhaseStats& extract = a.phase(ProfilePhase::kEpochExtract);
  EXPECT_EQ(extract.calls, 3u);
  EXPECT_EQ(extract.total_ns, 1400u);
  EXPECT_EQ(extract.max_ns, 900u);
  EXPECT_EQ(a.phase(ProfilePhase::kMonitorTick).calls, 1u);
}

TEST(ScopedPhase, NullProfilerIsANoOp) {
  // The disabled path must tolerate nullptr (call sites hold a Profiler*
  // that is null when --profile is off).
  { ScopedPhase scope(nullptr, ProfilePhase::kSerialDrain); }
  SUCCEED();
}

TEST(ScopedPhase, RecordsOnePositiveSample) {
  Profiler profiler;
  {
    ScopedPhase scope(&profiler, ProfilePhase::kExportFlush);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const PhaseStats& flush = profiler.phase(ProfilePhase::kExportFlush);
  EXPECT_EQ(flush.calls, 1u);
  EXPECT_EQ(flush.max_ns, flush.total_ns);
}

TEST(ProfilePhaseNames, AllPhasesHaveUniqueStableNames) {
  std::set<std::string> names;
  for (int i = 0; i < kProfilePhaseCount; ++i) {
    const auto name = profile_phase_name(static_cast<ProfilePhase>(i));
    EXPECT_FALSE(name.empty()) << i;
    names.insert(std::string(name));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kProfilePhaseCount));
  EXPECT_EQ(profile_phase_name(ProfilePhase::kSelectionSweep),
            "selection_sweep");
}

TEST(SummarizeProfile, MergesRepsIntoPhaseOrderedRows) {
  RunTrace trace;
  trace.profile = true;
  trace.profiles.push_back(std::make_unique<Profiler>());
  trace.profiles.push_back(std::make_unique<Profiler>());
  // Record out of phase order to confirm rows come back in enum order.
  trace.profiles[0]->record(ProfilePhase::kMonitorTick, 2'000'000);  // 2 ms
  trace.profiles[0]->record(ProfilePhase::kEpochExtract, 1'000'000);
  trace.profiles[1]->record(ProfilePhase::kEpochExtract, 3'000'000);

  const auto rows = summarize_profile(trace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].phase, "epoch_extract");
  EXPECT_EQ(rows[0].calls, 2u);
  EXPECT_DOUBLE_EQ(rows[0].total_ms, 4.0);
  EXPECT_DOUBLE_EQ(rows[0].mean_us, 2000.0);
  EXPECT_DOUBLE_EQ(rows[0].max_us, 3000.0);
  EXPECT_EQ(rows[1].phase, "monitor_tick");
  EXPECT_EQ(rows[1].calls, 1u);
}

TEST(SummarizeProfile, EmptyWhenProfilingWasOff) {
  RunTrace trace;
  EXPECT_TRUE(summarize_profile(trace).empty());
  trace.profile = true;
  trace.profiles.push_back(std::make_unique<Profiler>());
  EXPECT_TRUE(summarize_profile(trace).empty());  // allocated but never used
}

}  // namespace
}  // namespace paldia::obs
