// Windowed rollup aggregation (obs/rollup.hpp) and its export/ingest loop:
// fixed-memory per-(window, model, node) cells, deterministic sorted-key
// iteration, and the RollupWriter -> analyze_rollup_stream round trip that
// powers `paldia-analyze --rollup` (rollup-only compliance/attribution).
#include "src/obs/rollup.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::obs {
namespace {

constexpr int kModel = static_cast<int>(models::ModelId::kResNet50);
constexpr int kNode = static_cast<int>(hw::NodeType::kG3s_xlarge);

TEST(RollupAggregator, RejectsNonPositiveWindow) {
  // A zero or negative width would make window_of() divide into garbage
  // indices; the constructor refuses it instead of silently substituting a
  // default the caller never asked for.
  EXPECT_THROW(RollupAggregator(RollupConfig{.window_ms = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(RollupAggregator(RollupConfig{.window_ms = -5.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(RollupAggregator(RollupConfig{.window_ms = 0.5}));
}

TEST(RollupAggregator, CellCacheSurvivesMapGrowth) {
  // The aggregator keeps a one-entry (key -> cell*) cache to skip the map
  // lookup on same-cell bursts. Interleave keys so every other observation
  // misses the cache while new keys keep inserting (std::map nodes are
  // stable, but the cached pointer must also track the *key* correctly), and
  // assert each count landed in the right cell.
  RollupAggregator rollup(RollupConfig{.window_ms = 1000.0});
  constexpr int kModels = 6;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    for (int m = 0; m < kModels; ++m) {
      // Two hits on the same key (second one served by the cache), then move
      // to the next key, forcing a re-lookup after the map may have grown.
      rollup.observe_completion(100.0, m, kNode, 10.0, std::nullopt);
      rollup.observe_completion(200.0, m, kNode, 20.0, std::nullopt);
      // A different window for the same model inserts a fresh key between
      // revisits of window 0.
      rollup.observe_completion(1000.0 * (round + 1) + 50.0, m, kNode, 30.0,
                                std::nullopt);
    }
  }
  EXPECT_EQ(rollup.completions(),
            static_cast<std::uint64_t>(kModels * kRounds * 3));
  ASSERT_EQ(rollup.cells().size(),
            static_cast<std::size_t>(kModels * (kRounds + 1)));
  for (int m = 0; m < kModels; ++m) {
    const RollupKey base{0, static_cast<std::int16_t>(m),
                         static_cast<std::int16_t>(kNode)};
    const auto it = rollup.cells().find(base);
    ASSERT_NE(it, rollup.cells().end()) << "model " << m;
    EXPECT_EQ(it->second.completed, static_cast<std::uint64_t>(kRounds * 2))
        << "model " << m;
    for (int round = 0; round < kRounds; ++round) {
      const RollupKey later{round + 1, static_cast<std::int16_t>(m),
                            static_cast<std::int16_t>(kNode)};
      const auto jt = rollup.cells().find(later);
      ASSERT_NE(jt, rollup.cells().end()) << "model " << m << " w" << round + 1;
      EXPECT_EQ(jt->second.completed, 1u) << "model " << m << " w" << round + 1;
    }
  }
}

TEST(RollupAggregator, WindowAssignment) {
  RollupAggregator rollup(RollupConfig{.window_ms = 1000.0});
  EXPECT_EQ(rollup.window_of(0.0), 0);
  EXPECT_EQ(rollup.window_of(999.9), 0);
  EXPECT_EQ(rollup.window_of(1000.0), 1);
  EXPECT_EQ(rollup.window_of(59'500.0), 59);
}

TEST(RollupAggregator, CompletionsFoldIntoCells) {
  RollupAggregator rollup(RollupConfig{.window_ms = 1000.0});
  rollup.observe_completion(100.0, kModel, kNode, 40.0, std::nullopt);
  rollup.observe_completion(200.0, kModel, kNode, 50.0, std::nullopt);
  rollup.observe_completion(300.0, kModel, kNode, 250.0,
                            telemetry::ViolationCause::kGatewayQueue);
  rollup.observe_completion(1500.0, kModel, kNode, 45.0, std::nullopt);

  EXPECT_EQ(rollup.completions(), 4u);
  ASSERT_EQ(rollup.cells().size(), 2u);

  const RollupKey first{0, static_cast<std::int16_t>(kModel),
                        static_cast<std::int16_t>(kNode)};
  const auto it = rollup.cells().find(first);
  ASSERT_NE(it, rollup.cells().end());
  EXPECT_EQ(it->second.completed, 3u);
  EXPECT_EQ(it->second.violations, 1u);
  EXPECT_EQ(it->second.causes[static_cast<int>(
                telemetry::ViolationCause::kGatewayQueue)],
            1u);
  EXPECT_EQ(it->second.latency.count(), 3u);
}

TEST(RollupAggregator, UnservedCountsAsideFromViolations) {
  // Unserved requests aggregate under node = -1 with cause kUnserved but do
  // NOT bump the cell's violation count — the rollup parser derives
  // violations + unserved itself, so double-counting here would skew
  // rollup-only compliance.
  RollupAggregator rollup;
  rollup.observe_unserved(30'000.0, kModel, 7);

  ASSERT_EQ(rollup.cells().size(), 1u);
  const auto& [key, cell] = *rollup.cells().begin();
  EXPECT_EQ(key.node, -1);
  EXPECT_EQ(key.model, kModel);
  EXPECT_EQ(cell.unserved, 7u);
  EXPECT_EQ(cell.violations, 0u);
  EXPECT_EQ(cell.completed, 0u);
  EXPECT_EQ(cell.causes[static_cast<int>(telemetry::ViolationCause::kUnserved)],
            7u);
}

TEST(RollupAggregator, GaugeAccumulators) {
  RollupAggregator rollup(RollupConfig{.window_ms = 1000.0});
  rollup.observe_queue_depth(100.0, kModel, kNode, 4.0);
  rollup.observe_queue_depth(200.0, kModel, kNode, 6.0);
  rollup.observe_in_flight(150.0, kNode, 2.0);

  const RollupKey depth_key{0, static_cast<std::int16_t>(kModel),
                            static_cast<std::int16_t>(kNode)};
  const auto depth = rollup.cells().find(depth_key);
  ASSERT_NE(depth, rollup.cells().end());
  EXPECT_DOUBLE_EQ(depth->second.queue_depth_sum, 10.0);
  EXPECT_EQ(depth->second.queue_depth_samples, 2u);

  // In-flight samples are cluster-wide: model = -1.
  const RollupKey flight_key{0, -1, static_cast<std::int16_t>(kNode)};
  const auto flight = rollup.cells().find(flight_key);
  ASSERT_NE(flight, rollup.cells().end());
  EXPECT_DOUBLE_EQ(flight->second.in_flight_sum, 2.0);
  EXPECT_EQ(flight->second.in_flight_samples, 1u);
}

TEST(RollupAggregator, CellIterationIsSortedRegardlessOfArrivalOrder) {
  RollupAggregator rollup(RollupConfig{.window_ms = 1000.0});
  rollup.observe_completion(2500.0, kModel, kNode, 10.0, std::nullopt);
  rollup.observe_completion(500.0, kModel + 1, kNode, 10.0, std::nullopt);
  rollup.observe_completion(500.0, kModel, kNode, 10.0, std::nullopt);
  rollup.observe_unserved(500.0, kModel, 1);

  std::vector<RollupKey> keys;
  for (const auto& [key, cell] : rollup.cells()) keys.push_back(key);
  ASSERT_EQ(keys.size(), 4u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_TRUE(keys[i - 1] < keys[i]) << "position " << i;
  }
  // Unserved (node = -1) sorts before served rows of the same model.
  EXPECT_EQ(keys[0].window, 0);
  EXPECT_EQ(keys[0].node, -1);
}

TEST(QuantileSketchSerialization, SparseBucketsRoundTripExactly) {
  // The rollup row's "hist" field is nonzero_buckets(); re-adding each
  // (representative, count) pair reconstructs the bucket counts exactly
  // (every representative maps back into its own bucket). Quantiles agree
  // to within a bucket — exactly for interior buckets; the extremes differ
  // only by the min/max clamp, which becomes representative-based.
  QuantileSketch original;
  for (const double v : {0.4, 3.7, 3.8, 55.0, 212.9, 480.0, 9000.0}) {
    original.insert(v);
  }
  QuantileSketch rebuilt;
  for (const auto& [value, count] : original.histogram().nonzero_buckets()) {
    rebuilt.add(value, count);
  }
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_EQ(rebuilt.histogram().nonzero_buckets(),
            original.histogram().nonzero_buckets());
  const auto a = original.summary();
  const auto b = rebuilt.summary();
  EXPECT_DOUBLE_EQ(a.p50_ms, b.p50_ms);  // interior bucket: exact
  EXPECT_NEAR(b.p95_ms, a.p95_ms, 0.05 * a.p95_ms);  // top bucket is ~4.4% wide
  EXPECT_NEAR(b.p99_ms, a.p99_ms, 0.05 * a.p99_ms);

  // A second serialize -> rebuild cycle is a fixed point: the rebuilt
  // sketch's representatives ARE its samples, so everything round-trips
  // bit-exactly from then on.
  QuantileSketch again;
  for (const auto& [value, count] : rebuilt.histogram().nonzero_buckets()) {
    again.add(value, count);
  }
  const auto c = again.summary();
  EXPECT_DOUBLE_EQ(c.p50_ms, b.p50_ms);
  EXPECT_DOUBLE_EQ(c.p95_ms, b.p95_ms);
  EXPECT_DOUBLE_EQ(c.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(c.max_ms, b.max_ms);
}

// --- RollupWriter -> analyze_rollup_stream round trip -----------------------

RunTrace make_rollup_trace() {
  RunTrace trace;
  trace.capture_events = false;
  trace.collect_rollups = true;
  trace.rollup_config.window_ms = 1000.0;
  trace.rollups.push_back(
      std::make_unique<RollupAggregator>(trace.rollup_config));
  RollupAggregator& rollup = *trace.rollups.back();
  // 10 completions: 8 compliant, 2 violating (one cold start, one gateway
  // queue), plus 3 unserved — across two windows.
  for (int i = 0; i < 5; ++i) {
    rollup.observe_completion(100.0 + i, kModel, kNode, 40.0 + i, std::nullopt);
  }
  for (int i = 0; i < 3; ++i) {
    rollup.observe_completion(1500.0 + i, kModel, kNode, 45.0 + i, std::nullopt);
  }
  rollup.observe_completion(700.0, kModel, kNode, 250.0,
                            telemetry::ViolationCause::kColdStart);
  rollup.observe_completion(1800.0, kModel, kNode, 300.0,
                            telemetry::ViolationCause::kGatewayQueue);
  rollup.observe_unserved(2000.0, kModel, 3);
  rollup.observe_queue_depth(500.0, kModel, kNode, 5.0);
  return trace;
}

TEST(RollupRoundTrip, JsonlRowsMatchSchema) {
  const RunTrace trace = make_rollup_trace();
  std::ostringstream out;
  RollupWriter writer(out, ExportFormat::kJsonl);
  writer.write(trace, "scenario / Paldia");

  const auto parsed = common::parse_json_lines(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.rows.size(), trace.rollups[0]->cells().size());
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  std::uint64_t unserved = 0;
  std::uint64_t hist_total = 0;
  for (const auto& row : parsed.rows) {
    EXPECT_EQ(row.string_or("run", ""), "scenario / Paldia");
    EXPECT_EQ(row.number_or("rep", -1.0), 0.0);
    const double window = row.number_or("window", -1.0);
    EXPECT_DOUBLE_EQ(row.number_or("window_start_ms", -1.0), window * 1000.0);
    completed += static_cast<std::uint64_t>(row.number_or("completed", 0.0));
    violations += static_cast<std::uint64_t>(row.number_or("violations", 0.0));
    unserved += static_cast<std::uint64_t>(row.number_or("unserved", 0.0));
    const common::JsonValue* causes = row.find("causes");
    ASSERT_NE(causes, nullptr);
    EXPECT_NE(causes->find("cold_start"), nullptr);
    EXPECT_NE(causes->find("unserved"), nullptr);
    const common::JsonValue* hist = row.find("hist");
    ASSERT_NE(hist, nullptr);
    ASSERT_TRUE(hist->is_array());
    for (const common::JsonValue& pair : hist->as_array()) {
      ASSERT_TRUE(pair.is_array());
      ASSERT_EQ(pair.as_array().size(), 2u);
      hist_total += static_cast<std::uint64_t>(pair.as_array()[1].as_number());
    }
  }
  EXPECT_EQ(completed, 10u);
  EXPECT_EQ(violations, 2u);
  EXPECT_EQ(unserved, 3u);
  EXPECT_EQ(hist_total, 10u);  // every completion is sketched
}

TEST(RollupRoundTrip, AnalyzeRollupStreamRebuildsAttribution) {
  const RunTrace trace = make_rollup_trace();
  std::ostringstream out;
  RollupWriter writer(out, ExportFormat::kJsonl);
  writer.write(trace, "scenario / Paldia");

  std::vector<AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(analyze_rollup_stream(out.str(), &reports, &error)) << error;
  ASSERT_EQ(reports.size(), 1u);
  const AnalysisReport& report = reports[0];

  EXPECT_EQ(report.label, "scenario / Paldia");
  EXPECT_EQ(report.reps, 1);
  // Unserved requests count as completed-and-violating, mirroring the
  // full-trace analyzer's drain-cap accounting.
  EXPECT_EQ(report.total.completed, 13u);
  EXPECT_EQ(report.total.violations, 5u);
  EXPECT_EQ(report.unserved, 3u);
  EXPECT_DOUBLE_EQ(report.compliance, 1.0 - 5.0 / 13.0);
  EXPECT_EQ(report.total.causes[static_cast<int>(
                telemetry::ViolationCause::kColdStart)],
            1u);
  EXPECT_EQ(report.total.causes[static_cast<int>(
                telemetry::ViolationCause::kGatewayQueue)],
            1u);
  EXPECT_EQ(report.total.causes[static_cast<int>(
                telemetry::ViolationCause::kUnserved)],
            3u);
  EXPECT_EQ(report.total.latency.count(), 10u);

  ASSERT_EQ(report.per_model.size(), 1u);
  EXPECT_EQ(report.per_model[0].index, kModel);
  EXPECT_EQ(report.per_model[0].completed, 13u);
  EXPECT_EQ(report.per_model[0].violations, 5u);
  ASSERT_EQ(report.per_node.size(), 1u);
  EXPECT_EQ(report.per_node[0].index, kNode);
  // Node rows never see unserved requests (they never reached a node).
  EXPECT_EQ(report.per_node[0].completed, 10u);
  EXPECT_EQ(report.per_node[0].violations, 2u);
}

TEST(RollupRoundTrip, GroupsRowsByRunLabel) {
  const RunTrace a = make_rollup_trace();
  const RunTrace b = make_rollup_trace();
  std::ostringstream out;
  RollupWriter writer(out, ExportFormat::kJsonl);
  writer.write(a, "scenario / Paldia");
  writer.write(b, "scenario / Oracle");

  std::vector<AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(analyze_rollup_stream(out.str(), &reports, &error)) << error;
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].label, "scenario / Paldia");
  EXPECT_EQ(reports[1].label, "scenario / Oracle");
  EXPECT_EQ(reports[0].total.completed, reports[1].total.completed);
}

TEST(RollupRoundTrip, MalformedStreamIsAnError) {
  std::vector<AnalysisReport> reports;
  std::string error;
  EXPECT_FALSE(analyze_rollup_stream("{not json\n", &reports, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RollupRoundTrip, CsvExportCarriesTheSameTotals) {
  const RunTrace trace = make_rollup_trace();
  std::ostringstream out;
  RollupWriter writer(out, ExportFormat::kCsv);
  writer.write(trace, "scenario / Paldia");
  const std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.compare(0, 4, "run,"), 0);
  std::size_t rows = 0;
  for (const char c : text) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, trace.rollups[0]->cells().size() + 1);  // + header
}

}  // namespace
}  // namespace paldia::obs
