// End-to-end tests of the tracing pipeline on a real (small) simulated run:
// phase durations sum exactly to end-to-end latency, the decision log has
// one record per monitor tick consistent with the candidate sweep, and the
// serialized Chrome trace / JSONL exports are byte-identical between serial
// and parallel repetition execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "src/core/framework.hpp"
#include "src/exp/runner.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/tracer.hpp"
#include "src/trace/generators.hpp"

namespace paldia::obs {
namespace {

exp::Scenario small_scenario(int repetitions = 2) {
  exp::Scenario scenario;
  scenario.name = "trace_export";
  trace::PoissonOptions options;
  options.mean_rps = 30.0;
  options.duration_ms = seconds(30);
  scenario.workloads.push_back(
      exp::WorkloadSpec{models::ModelId::kResNet50,
                        trace::make_poisson_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

TEST(TraceExport, PhaseDurationsSumToEndToEndLatency) {
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  RunTrace trace;
  const auto result =
      runner.run(small_scenario(1), exp::SchemeId::kPaldia, trace);
  ASSERT_EQ(trace.reps.size(), 1u);
  EXPECT_EQ(trace.dropped_events(), 0u);

  const Tracer& tracer = *trace.reps[0];
  std::size_t requests_seen = 0;
  const auto& events = tracer.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != TraceEvent::Type::kRequest) continue;
    ++requests_seen;
    const TraceEvent& parent = events[i];
    // The three phases follow contiguously (atomic 4-event reservation).
    ASSERT_LE(i + 3, events.size() - 0u);
    double phase_sum = 0.0;
    TimeMs cursor = parent.start_ms;
    for (std::size_t p = i + 1; p <= i + 3; ++p) {
      ASSERT_EQ(events[p].type, TraceEvent::Type::kPhase);
      ASSERT_EQ(events[p].id, parent.id);
      EXPECT_DOUBLE_EQ(events[p].start_ms, cursor);
      cursor = events[p].end_ms;
      phase_sum += events[p].end_ms - events[p].start_ms;
    }
    // queue + dispatch + execute == arrival -> completion, exactly.
    EXPECT_DOUBLE_EQ(phase_sum, parent.end_ms - parent.start_ms);
    EXPECT_DOUBLE_EQ(cursor, parent.end_ms);
  }
  // The run served real traffic: ~30 rps * 30 s, minus drops.
  EXPECT_GT(requests_seen, 100u);
  EXPECT_EQ(requests_seen, static_cast<std::size_t>(result.combined.requests));
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.unbalanced_spans(), 0u);
}

TEST(TraceExport, OneDecisionPerMonitorTickConsistentWithSweep) {
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  RunTrace trace;
  (void)runner.run(small_scenario(1), exp::SchemeId::kPaldia, trace);
  const Tracer& tracer = *trace.reps[0];
  const auto& decisions = tracer.decisions();
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(tracer.dropped_decisions(), 0u);

  // One record per monitor tick: timestamps advance by exactly the monitor
  // interval (Algorithm 1's W, 500 ms by default).
  const DurationMs interval = core::FrameworkConfig{}.monitor_interval_ms;
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    EXPECT_DOUBLE_EQ(decisions[i].t_ms - decisions[i - 1].t_ms, interval) << i;
  }

  std::size_t with_sweep = 0;
  for (const DecisionRecord& record : decisions) {
    if (!record.has_sweep) continue;
    ++with_sweep;
    // The raw winner must appear in the recorded candidate sweep, with
    // feasibility matching the decision's summary bit.
    const auto it = std::find_if(
        record.candidates.begin(), record.candidates.end(),
        [&](const CandidateEval& c) { return c.node == record.raw_choice; });
    ASSERT_NE(it, record.candidates.end());
    EXPECT_EQ(it->feasible, record.raw_feasible);
    EXPECT_DOUBLE_EQ(it->t_max_ms, record.raw_t_max_ms);
    if (record.cpu_short_circuit) {
      EXPECT_FALSE(it->is_gpu);
      EXPECT_TRUE(record.raw_feasible);
    } else if (record.raw_feasible && it->is_gpu) {
      // choose_best_HW picks the cheapest feasible GPU within the band of
      // the most performant feasible one.
      EXPECT_LE(it->t_max_ms, record.best_t_max_ms + record.band_ms + 1e-9);
      for (const CandidateEval& other : record.candidates) {
        if (!other.feasible || !other.is_gpu) continue;
        if (other.t_max_ms > record.best_t_max_ms + record.band_ms) continue;
        EXPECT_LE(it->price_per_hour, other.price_per_hour + 1e-12)
            << "winner must be the cheapest within the band";
      }
    }
    EXPECT_GE(record.wait_ctr, 0);
    EXPECT_GE(record.downgrade_ctr, 0);
  }
  EXPECT_GT(with_sweep, 0u);
  // Hysteresis can only hold or confirm the raw choice, and a switch is
  // only begun when the final choice differs from the serving node.
  for (const DecisionRecord& record : decisions) {
    if (record.switch_begun) {
      EXPECT_NE(record.final_choice, record.current);
    }
  }
}

TEST(TraceExport, SerialAndParallelRunsExportIdenticalBytes) {
  ThreadPool pool(4);
  exp::Runner serial(models::Zoo::instance(), hw::Catalog::instance());
  exp::Runner parallel(models::Zoo::instance(), hw::Catalog::instance(), &pool);
  const auto scenario = small_scenario(4);

  RunTrace trace_a;
  RunTrace trace_b;
  const auto result_a = serial.run(scenario, exp::SchemeId::kPaldia, trace_a);
  const auto result_b = parallel.run(scenario, exp::SchemeId::kPaldia, trace_b);

  std::ostringstream chrome_a, chrome_b;
  write_chrome_trace(chrome_a, trace_a, "serial");
  write_chrome_trace(chrome_b, trace_b, "serial");  // same label on purpose
  EXPECT_EQ(chrome_a.str(), chrome_b.str());
  EXPECT_FALSE(chrome_a.str().empty());

  std::ostringstream metrics_a, metrics_b;
  MetricsWriter writer_a(metrics_a, ExportFormat::kJsonl);
  MetricsWriter writer_b(metrics_b, ExportFormat::kJsonl);
  writer_a.write(result_a.combined, "test");
  writer_b.write(result_b.combined, "test");
  EXPECT_EQ(metrics_a.str(), metrics_b.str());

  std::ostringstream decisions_a, decisions_b;
  DecisionLogWriter log_a(decisions_a, ExportFormat::kJsonl);
  DecisionLogWriter log_b(decisions_b, ExportFormat::kJsonl);
  log_a.write(trace_a, "Paldia", scenario.name);
  log_b.write(trace_b, "Paldia", scenario.name);
  EXPECT_EQ(decisions_a.str(), decisions_b.str());
  EXPECT_FALSE(decisions_a.str().empty());
}

TEST(TraceExport, ChromeTraceIsStructurallySoundJson) {
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  RunTrace trace;
  (void)runner.run(small_scenario(1), exp::SchemeId::kPaldia, trace);
  std::ostringstream out;
  write_chrome_trace(out, trace, "sanity");
  const std::string json = out.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // batch slices

  // Balanced delimiters and no unescaped control characters. Event names
  // are identifiers, so braces/brackets never appear inside strings and a
  // straight count is a valid structural check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  for (const char c : json) {
    ASSERT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n') << int(c);
  }
  // No NaN/Infinity tokens — they are not valid JSON.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(TraceExport, CsvAndJsonlWritersEmitOneRowPerRecord) {
  exp::Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  RunTrace trace;
  const auto result =
      runner.run(small_scenario(2), exp::SchemeId::kPaldia, trace);

  std::ostringstream csv;
  DecisionLogWriter writer(csv, ExportFormat::kCsv);
  writer.write(trace, "Paldia", "trace_export");
  std::size_t total_decisions = 0;
  for (const auto& rep : trace.reps) total_decisions += rep->decisions().size();
  const std::string text = csv.str();
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), total_decisions + 1);  // + header

  std::ostringstream jsonl;
  MetricsWriter metrics(jsonl, ExportFormat::kJsonl);
  metrics.write(result.combined, "fig");
  const std::string row = jsonl.str();
  EXPECT_EQ(std::count(row.begin(), row.end(), '\n'), 1);
  EXPECT_NE(row.find("\"slo_compliance\""), std::string::npos);
}

TEST(TraceExport, DeriveTracePathInsertsScenarioAndScheme) {
  EXPECT_EQ(derive_trace_path("out.json", "azure", "Paldia"),
            "out.azure_Paldia.json");
  // Extension-less bases get ".json"; non-alphanumerics sanitize to '-'.
  EXPECT_EQ(derive_trace_path("trace", "wiki", "INFless($)"),
            "trace.wiki_INFless---.json");
  EXPECT_EQ(derive_trace_path("dir.v2/trace", "a b", "X"),
            "dir.v2/trace.a-b_X.json");
}

}  // namespace
}  // namespace paldia::obs
