// Unit tests for prediction-vs-observation calibration: interval lookup,
// batch folding, and the MAPE/coverage/rate-pairing summary math.
#include "src/obs/calibration.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::obs {
namespace {

CalibrationInterval tick(TimeMs t_ms, int node, DurationMs predicted_tmax_ms,
                         bool feasible = true, int best_y = 0) {
  CalibrationInterval interval;
  interval.t_ms = t_ms;
  interval.node = node;
  interval.predicted_tmax_ms = predicted_tmax_ms;
  interval.predicted_feasible = feasible;
  interval.best_y = best_y;
  return interval;
}

TEST(IntervalContaining, FindsTheTickWindow) {
  std::vector<CalibrationInterval> intervals = {tick(1000.0, 0, 100.0),
                                                tick(2000.0, 0, 100.0),
                                                tick(3000.0, 0, 100.0)};
  EXPECT_EQ(interval_containing(intervals, 500.0), -1);  // before the first
  EXPECT_EQ(interval_containing(intervals, 1000.0), 0);  // left-closed
  EXPECT_EQ(interval_containing(intervals, 1999.9), 0);
  EXPECT_EQ(interval_containing(intervals, 2000.0), 1);
  EXPECT_EQ(interval_containing(intervals, 9999.0), 2);  // last is open-ended
  EXPECT_EQ(interval_containing({}, 1000.0), -1);
}

TEST(CalibrationTracker, ObserveBatchFoldsMaxIntoMatchingInterval) {
  CalibrationTracker tracker;
  tracker.on_decision(1000.0, /*node=*/2, /*predicted_tmax_ms=*/120.0,
                      /*best_y=*/3, /*feasible=*/true, /*predicted_rps=*/0.0,
                      /*observed_rps=*/0.0);
  tracker.on_decision(2000.0, /*node=*/1, 90.0, 2, true, 0.0, 0.0);

  tracker.observe_batch(/*node=*/2, /*submit_ms=*/1100.0, /*end_ms=*/1180.0);
  tracker.observe_batch(2, 1200.0, 1350.0);  // larger e2e wins
  tracker.observe_batch(1, 1300.0, 1310.0);  // wrong node for interval 0
  tracker.observe_batch(2, 500.0, 600.0);    // before the first tick
  tracker.observe_batch(1, 2500.0, 2560.0);

  const auto& intervals = tracker.intervals();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_TRUE(intervals[0].observed);
  EXPECT_DOUBLE_EQ(intervals[0].observed_max_e2e_ms, 150.0);
  EXPECT_TRUE(intervals[1].observed);
  EXPECT_DOUBLE_EQ(intervals[1].observed_max_e2e_ms, 60.0);
}

TEST(SummarizeCalibration, MapeAndCoverage) {
  std::vector<CalibrationInterval> intervals;
  // Observed 150 vs predicted 100: 50% error, over the 200 ms SLO? No.
  auto a = tick(1000.0, 0, 100.0, /*feasible=*/true, /*best_y=*/2);
  a.observed = true;
  a.observed_max_e2e_ms = 150.0;
  // Observed 250 vs predicted 200: 25% error, feasible but NOT covered.
  auto b = tick(2000.0, 1, 200.0, true, 4);
  b.observed = true;
  b.observed_max_e2e_ms = 250.0;
  // Unobserved tick: counts toward intervals_total only.
  const auto c = tick(3000.0, 0, 100.0);
  intervals = {a, b, c};

  const CalibrationSummary summary =
      summarize_calibration({intervals}, /*slo_ms=*/200.0,
                            /*rate_horizon_ms=*/7000.0);
  EXPECT_EQ(summary.intervals_total, 3);
  EXPECT_EQ(summary.intervals_observed, 2);
  EXPECT_NEAR(summary.tmax_mape, (0.5 + 0.25) / 2.0, 1e-12);
  EXPECT_NEAR(summary.tmax_coverage, 0.5, 1e-12);  // 1 of 2 feasible covered

  ASSERT_EQ(summary.per_node.size(), 2u);
  EXPECT_EQ(summary.per_node[0].node, 0);
  EXPECT_NEAR(summary.per_node[0].mape, 0.5, 1e-12);
  EXPECT_NEAR(summary.per_node[0].coverage, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(summary.per_node[0].mean_predicted_ms, 100.0);
  EXPECT_DOUBLE_EQ(summary.per_node[0].mean_observed_ms, 150.0);
  EXPECT_EQ(summary.per_node[1].node, 1);
  EXPECT_NEAR(summary.per_node[1].coverage, 0.0, 1e-12);

  ASSERT_EQ(summary.per_y_split.size(), 2u);
  EXPECT_EQ(summary.per_y_split[0].best_y, 2);
  EXPECT_EQ(summary.per_y_split[1].best_y, 4);
  EXPECT_NEAR(summary.per_y_split[1].mape, 0.25, 1e-12);
}

TEST(SummarizeCalibration, RatePairingUsesHorizonWithinRep) {
  std::vector<CalibrationInterval> intervals;
  for (int i = 0; i < 5; ++i) {
    auto t = tick(i * 1000.0, 0, 0.0);
    t.predicted_rps = 100.0;
    t.observed_rps = 100.0 + i * 10.0;  // 100, 110, ..., 140
    intervals.push_back(t);
  }
  // Horizon 2 s: tick i pairs with tick i+2; the last two have no answer.
  const CalibrationSummary summary =
      summarize_calibration({intervals}, 200.0, /*rate_horizon_ms=*/2000.0);
  EXPECT_EQ(summary.rate.pairs, 3);
  // Errors: |120-100|/100, |130-100|/100, |140-100|/100.
  EXPECT_NEAR(summary.rate.mape, (0.2 + 0.3 + 0.4) / 3.0, 1e-12);
  EXPECT_NEAR(summary.rate.mean_predicted_rps, 100.0, 1e-12);
  EXPECT_NEAR(summary.rate.mean_observed_rps, 130.0, 1e-12);

  // Two repetitions never pair across the boundary: same ticks split into
  // two runs yield no pair (each run is shorter than the horizon).
  const std::vector<CalibrationInterval> first(intervals.begin(),
                                               intervals.begin() + 2);
  const std::vector<CalibrationInterval> second(intervals.begin() + 2,
                                                intervals.end());
  const CalibrationSummary split =
      summarize_calibration({first, second}, 200.0, 3000.0);
  EXPECT_EQ(split.rate.pairs, 0);
}

TEST(SummarizeCalibration, EmptyRunsYieldDefaults) {
  const CalibrationSummary summary = summarize_calibration({}, 200.0, 7000.0);
  EXPECT_EQ(summary.intervals_total, 0);
  EXPECT_EQ(summary.intervals_observed, 0);
  EXPECT_DOUBLE_EQ(summary.tmax_mape, 0.0);
  EXPECT_DOUBLE_EQ(summary.tmax_coverage, 1.0);
  EXPECT_TRUE(summary.per_node.empty());
  EXPECT_EQ(summary.rate.pairs, 0);
}

}  // namespace
}  // namespace paldia::obs
